"""Gate nightly benchmark runs on the committed baseline JSON.

Compares freshly measured ``results/perf_*.json`` records against the
versions committed at ``HEAD`` (``git show HEAD:results/<name>.json``),
entry by entry.  An entry regresses when its measured wall is more than
``--threshold`` (default 25%) slower than the committed baseline; any
regression fails the run with exit code 1.

Entries present on only one side are reported but never fail the gate
(benchmarks grow arms over time), and entries faster than baseline are
reported as improvements.  Sub-millisecond rows (e.g. warm cache hits)
are compared with a 0.25 ms absolute floor so scheduler noise on a
microsecond-scale measurement cannot trip a percentage gate.

Usage (after re-running the ``perf_*`` scripts)::

    python benchmarks/check_regression.py perf_planner perf_ensemble
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
ABS_FLOOR_MS = 0.25


def committed_record(name: str):
    out = subprocess.run(
        ["git", "show", f"HEAD:results/{name}.json"],
        cwd=REPO, capture_output=True, text=True,
    )
    if out.returncode != 0:
        return None
    return json.loads(out.stdout)


def fresh_record(name: str):
    path = REPO / "results" / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def compare(name: str, threshold: float) -> list[str]:
    """Returns regression messages for one benchmark (empty = pass)."""
    base = committed_record(name)
    fresh = fresh_record(name)
    if fresh is None:
        return [f"{name}: no fresh results/{name}.json — run benchmarks/{name}.py first"]
    if base is None:
        print(f"{name}: no committed baseline at HEAD — skipping (first run?)")
        return []
    base_ms = {e["name"]: e["ms"] for e in base["entries"]}
    regressions = []
    for entry in fresh["entries"]:
        ename, ms = entry["name"], entry["ms"]
        if ename not in base_ms:
            print(f"{name}/{ename}: new entry ({ms:.2f} ms), no baseline")
            continue
        ref = base_ms.pop(ename)
        limit = max(ref * (1.0 + threshold), ref + ABS_FLOOR_MS)
        verdict = "REGRESSION" if ms > limit else ("ok" if ms >= ref else "improved")
        print(
            f"{name}/{ename}: {ms:9.2f} ms vs baseline {ref:9.2f} ms "
            f"({ms / ref:5.2f}x) {verdict}"
        )
        if ms > limit:
            regressions.append(
                f"{name}/{ename}: {ms:.2f} ms > {limit:.2f} ms "
                f"(baseline {ref:.2f} ms + {threshold:.0%})"
            )
    for ename in base_ms:
        print(f"{name}/{ename}: entry dropped from fresh run")
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="+", help="e.g. perf_planner perf_ensemble")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed slowdown fraction vs baseline (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    failures = []
    for name in args.benchmarks:
        failures += compare(name, args.threshold)
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no benchmark regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared pytest-benchmark configuration for the experiment harness.

Run everything with::

    pytest benchmarks/ --benchmark-only

Each benchmark reproduces one table or figure of the paper and writes the
rendered result to ``results/<experiment>.txt``.  Heavy experiments are
benchmarked pedantically (one round) — the artifact is the reproduced
table, not a timing distribution.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run

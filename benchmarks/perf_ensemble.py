"""A/B measurement of the batched ensemble engine vs the per-seed path.

Runs the repo's headline fault study — a 32-seed BERT-48 Config A
straggler ensemble (one persistent 1.5x SlowDevice per seed, the paper's
tail-effect scenario that ``repro.experiments.straggler_sweep`` scans) —
through both ``run_ensemble`` strategies: the batched multi-scenario
engine and the per-seed compiled loop.  Both are measured with
observability off and on, the two reports are verified **bit-identical**,
and the walls plus the single-run reference unit go to
``results/perf_ensemble.txt``.

The headline target: the batched 32-seed straggler ensemble must finish
within 3x one clean single-seed evaluation (graph build + compiled
simulation + analysis) — i.e. the marginal cost of 32 extra fault
scenarios is at most two more clean runs.  A second, heavier ensemble
(straggler + 5% compute jitter) is recorded as well; its per-scenario
event loops are intrinsically ~2x the clean run's (randomized durations
leave almost no completion-time ties to batch), so it is gated on
bit-identity and on beating the per-seed path, not on the 3x unit.

Tier-1 enforces the cheaper invariant (batched wall <= per-seed wall on a
small ensemble) in ``tests/perf/test_ensemble_smoke.py``; this script is
the full measurement.
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro.obs as obs
from repro.cluster import config_a
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.faults import ComputeJitter, SlowDevice, run_ensemble
from repro.faults.analysis import evaluate_seed
from repro.models import get_model
from repro.perf.record import write_bench_json
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator

ROUNDS = 3
NUM_SEEDS = 32
STRAGGLER = (SlowDevice(factor=1.5),)
HEAVY = (SlowDevice(factor=1.5), ComputeJitter(sigma=0.05))
TARGET_FACTOR = 3.0


def _problem():
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    d = clu.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        256,
        128,
    )
    return prof, clu, plan


def _best(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def _measure_ensemble(prof, clu, plan, models):
    """(batched, per_seed, batched_obs, per_seed_obs) walls + bit-identity."""
    seeds = range(NUM_SEEDS)

    def ensemble(engine, enabled):
        if enabled:
            obs.enable(reset_state=True)
        try:
            return run_ensemble(
                prof, clu, plan, models, seeds,
                enforce_memory=False, sim_engine=engine,
            )
        finally:
            if enabled:
                obs.disable()
                obs.reset()

    batched_wall, batched_rep = _best(lambda: ensemble("batched", False))
    per_seed_wall, per_seed_rep = _best(lambda: ensemble("compiled", False))
    batched_obs_wall, _ = _best(lambda: ensemble("batched", True))
    per_seed_obs_wall, _ = _best(lambda: ensemble("compiled", True))
    identical = batched_rep.identical(per_seed_rep)
    return (
        batched_wall, per_seed_wall, batched_obs_wall, per_seed_obs_wall,
        identical,
    )


def _section(title, walls):
    batched, per_seed, batched_obs, per_seed_obs, identical = walls
    return [
        f"{title}\n",
        f"  per-seed compiled, obs off          : {per_seed * 1e3:9.1f} ms\n",
        f"  batched engine,    obs off          : {batched * 1e3:9.1f} ms\n",
        f"  per-seed compiled, obs on           : {per_seed_obs * 1e3:9.1f} ms\n",
        f"  batched engine,    obs on           : {batched_obs * 1e3:9.1f} ms\n",
        f"  batched speedup over per-seed       : {per_seed / batched:9.2f} x\n",
        f"  reports bit-identical               : {identical}\n",
    ]


def main():
    prof, clu, plan = _problem()

    # Reference units: one compiled simulation on a prebuilt graph, and one
    # full clean single-seed evaluation (build + sim + analysis) — the
    # per-seed path pays roughly the latter once per seed.
    graph = PipelineExecutor(prof, clu, plan, enforce_memory=False).build_graph()
    sim_only, _ = _best(lambda: Simulator(graph, engine="compiled").run())
    single, _ = _best(
        lambda: evaluate_seed(prof, clu, plan, (), 0, enforce_memory=False)
    )

    straggler = _measure_ensemble(prof, clu, plan, STRAGGLER)
    heavy = _measure_ensemble(prof, clu, plan, HEAVY)

    factor = straggler[0] / single
    ok = (
        straggler[4]
        and heavy[4]
        and factor <= TARGET_FACTOR
        and heavy[0] <= heavy[1]
    )

    lines = [
        f"batched ensemble engine vs per-seed path, best of {ROUNDS} runs each\n",
        f"BERT-48 on Config A (16 GPUs), fixed 2-stage plan, M=128, "
        f"{NUM_SEEDS} seeds\n",
        "\n",
        "reference units\n",
        f"  compiled sim only (prebuilt graph)  : {sim_only * 1e3:9.1f} ms\n",
        f"  single clean evaluation (build+sim) : {single * 1e3:9.1f} ms\n",
        "\n",
        *_section(
            f"straggler ensemble (SlowDevice 1.5x), {NUM_SEEDS} seeds",
            straggler,
        ),
        f"  batched wall / single evaluation    : {factor:9.2f} x"
        f"  (target <= {TARGET_FACTOR:.1f}x)\n",
        "\n",
        *_section(
            f"heavy ensemble (SlowDevice 1.5x + ComputeJitter 5%), "
            f"{NUM_SEEDS} seeds",
            heavy,
        ),
        f"  batched wall / single evaluation    : {heavy[0] / single:9.2f} x"
        f"  (informational: jittered rows batch\n"
        f"   no completion ties, so each scenario's event loop is ~2x the "
        f"clean run's)\n",
        "\n",
        f"{'OK' if ok else 'FAIL'}: batched {NUM_SEEDS}-seed straggler "
        f"ensemble runs in {factor:.2f}x one clean evaluation, "
        f"bit-identical to the per-seed path\n",
    ]
    results_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / "perf_ensemble.txt"
    out.write_text("".join(lines))
    sys.stdout.write("".join(lines))
    sys.stdout.write(f"\nwrote {out}\n")

    entries = [
        {"name": "sim_only", "ms": sim_only * 1e3},
        {"name": "single_eval", "ms": single * 1e3},
        {"name": "straggler_batched", "ms": straggler[0] * 1e3,
         "speedup": straggler[1] / straggler[0]},
        {"name": "straggler_per_seed", "ms": straggler[1] * 1e3},
        {"name": "straggler_batched_obs", "ms": straggler[2] * 1e3},
        {"name": "straggler_per_seed_obs", "ms": straggler[3] * 1e3},
        {"name": "heavy_batched", "ms": heavy[0] * 1e3,
         "speedup": heavy[1] / heavy[0]},
        {"name": "heavy_per_seed", "ms": heavy[1] * 1e3},
    ]
    json_out = write_bench_json(
        results_dir / "perf_ensemble.json",
        "perf_ensemble",
        {"model": "bert48", "cluster": "A", "num_seeds": NUM_SEEDS,
         "rounds": ROUNDS},
        entries,
        repo_root=results_dir.parent,
    )
    sys.stdout.write(f"wrote {json_out}\n")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

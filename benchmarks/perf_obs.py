"""A/B measurement of observability overhead on the heavy benchmarks.

Runs the BERT-48 M=256 compiled-simulator benchmark and the BERT-48
planner fast-scan search twice each — once with observability disabled
(the default no-op path) and once with tracing + metrics enabled — and
records the wall-time delta to ``results/perf_obs.txt``.

Standalone by design (``python benchmarks/perf_obs.py``): wall-clock A/B
deltas at the 1-2% level are too noisy for a CI assertion, so tier-1
instead enforces the budget structurally in
``tests/perf/test_obs_overhead.py`` (shared no-op singletons + measured
per-call no-op cost times a padded touchpoint count).  This script is the
full measurement behind that budget.
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro.obs as obs
from repro.cluster import config_a
from repro.core import Planner, profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator

ROUNDS = 3


def _bert48_graph(num_micro_batches=256):
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    d = clu.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        2 * num_micro_batches,
        num_micro_batches,
    )
    return PipelineExecutor(prof, clu, plan, enforce_memory=False).build_graph()


def _time_sim(enabled):
    """Best-of-ROUNDS wall time for one compiled-sim run, fresh graph each."""
    best = None
    makespan = 0.0
    for _ in range(ROUNDS):
        g = _bert48_graph()
        if enabled:
            obs.enable(reset_state=True)
        t0 = time.perf_counter()
        res = Simulator(g, engine="compiled").run()
        dt = time.perf_counter() - t0
        if enabled:
            obs.disable()
        best = dt if best is None else min(best, dt)
        makespan = res.makespan
    return best, makespan


def _time_planner(enabled):
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    best = None
    for _ in range(ROUNDS):
        if enabled:
            obs.enable(reset_state=True)
        t0 = time.perf_counter()
        res = Planner(prof, clu, 64).search()
        dt = time.perf_counter() - t0
        if enabled:
            obs.disable()
        best = dt if best is None else min(best, dt)
        assert res.plan is not None
    return best


def main():
    sim_off, makespan_off = _time_sim(enabled=False)
    sim_on, makespan_on = _time_sim(enabled=True)
    assert makespan_on == makespan_off, "instrumentation changed the result"
    plan_off = _time_planner(enabled=False)
    plan_on = _time_planner(enabled=True)

    lines = [
        "observability overhead, best of %d runs each\n" % ROUNDS,
        "\n",
        "compiled simulator, BERT-48 on Config A (16 GPUs), M=256\n",
        f"  obs disabled (default no-op path) : {sim_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + histograms)  : {sim_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(sim_on / sim_off - 1) * 100:+9.1f} %\n",
        "\n",
        "planner fast-scan search, BERT-48 on Config A, GBS=64\n",
        f"  obs disabled (default no-op path) : {plan_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + counters)    : {plan_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(plan_on / plan_off - 1) * 100:+9.1f} %\n",
        "\n",
        "the disabled path is the shipped default; its budget (<2% of sim\n",
        "wall time) is enforced structurally in tests/perf/test_obs_overhead.py\n",
    ]
    out = pathlib.Path(__file__).resolve().parent.parent / "results" / "perf_obs.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("".join(lines))
    sys.stdout.write("".join(lines))
    sys.stdout.write(f"\nwrote {out}\n")


if __name__ == "__main__":
    main()

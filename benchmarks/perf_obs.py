"""A/B measurement of observability overhead on the heavy benchmarks.

Runs the BERT-48 M=256 compiled-simulator benchmark and the BERT-48
planner fast-scan search twice each — once with observability disabled
(the default no-op path) and once with tracing + metrics enabled — and
records the wall-time delta to ``results/perf_obs.txt``.

Also A/Bs the serve path: a live :class:`~repro.serve.server.PlanServer`
with tracing + metrics on (the default) vs off, measured on warm
(plan-cache-hit) ``POST /v1/plans`` submissions — the request path that
pays for context minting, the ``serve.request`` span, per-route counters,
histograms, and the SLO window.  The enabled arm must stay within 5% of
the disabled arm (with a 0.5 ms absolute floor); nightly CI runs this
script and gates on it, plus ``benchmarks/check_regression.py`` over the
committed ``results/perf_obs.json`` (bench-v1) baseline.

The heavy-kernel arms stay standalone-calibration only: wall-clock A/B
deltas at the 1-2% level are too noisy for a CI assertion, so tier-1
instead enforces that budget structurally in
``tests/perf/test_obs_overhead.py`` (shared no-op singletons + measured
per-call no-op cost times a padded touchpoint count).  This script is the
full measurement behind that budget.
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro.obs as obs
from repro.cluster import config_a
from repro.core import Planner, profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator

ROUNDS = 3


def _bert48_graph(num_micro_batches=256):
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    d = clu.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        2 * num_micro_batches,
        num_micro_batches,
    )
    return PipelineExecutor(prof, clu, plan, enforce_memory=False).build_graph()


def _time_sim_pair(engine="compiled", rounds=2 * ROUNDS):
    """Best-of-rounds (disabled, enabled) walls for one simulator run.

    The two arms are interleaved within every round — fresh graph, run
    disabled, fresh graph, run enabled — so slow phases of the host bias
    both sides equally instead of whichever arm ran later."""
    best_off = best_on = None
    makespan_off = makespan_on = 0.0

    def one(enabled):
        g = _bert48_graph()
        if enabled:
            obs.enable(reset_state=True)
        t0 = time.perf_counter()
        res = Simulator(g, engine=engine).run()
        dt = time.perf_counter() - t0
        if enabled:
            obs.disable()
        return dt, res.makespan

    for _ in range(rounds):
        dt, makespan_off = one(False)
        best_off = dt if best_off is None else min(best_off, dt)
        dt, makespan_on = one(True)
        best_on = dt if best_on is None else min(best_on, dt)
    return best_off, best_on, makespan_off, makespan_on


def _time_planner_pair():
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    best_off = best_on = None

    def one(enabled):
        if enabled:
            obs.enable(reset_state=True)
        t0 = time.perf_counter()
        res = Planner(prof, clu, 64).search()
        dt = time.perf_counter() - t0
        if enabled:
            obs.disable()
        assert res.plan is not None
        return dt

    for _ in range(ROUNDS):
        dt = one(False)
        best_off = dt if best_off is None else min(best_off, dt)
        dt = one(True)
        best_on = dt if best_on is None else min(best_on, dt)
    return best_off, best_on


def _serve_arm(obs_enabled: bool, warm: int = 40) -> float:
    """Median warm ``POST /v1/plans`` wall against one live server."""
    from repro.core.serialization import graph_to_dict
    from repro.models import uniform_model
    from repro.serve import PlanClient, PlanServer

    graph = uniform_model(
        "perf-obs-serve", 6, 2e9, 500_000, 2e6, profile_batch=4
    )
    body = {
        "graph": graph_to_dict(graph), "config": "A",
        "devices": 8, "gbs": 32,
    }
    srv = PlanServer(
        workers=1, exec_mode="inline", queue_depth=64,
        obs_enabled=obs_enabled,
    ).start()
    try:
        client = PlanClient(srv.url, timeout=30.0)
        client.wait(
            client.submit(body)["job_id"], timeout=120.0, poll_interval=0.002
        )
        submits = []
        job = None
        for _ in range(warm):
            t0 = time.perf_counter()
            sub = client.submit(body)
            submits.append(time.perf_counter() - t0)
            job = client.wait(sub["job_id"], timeout=60.0, poll_interval=0.001)
        assert job["summary"]["cache_hit"] is True, "warm arm missed the cache"
        submits.sort()
        return submits[len(submits) // 2]
    finally:
        srv.close()


def _time_serve_pair(rounds=ROUNDS):
    """Best-of-rounds (disabled, enabled) median warm-submit walls."""
    best_off = best_on = None
    for _ in range(rounds):
        dt = _serve_arm(False)
        best_off = dt if best_off is None else min(best_off, dt)
        dt = _serve_arm(True)
        best_on = dt if best_on is None else min(best_on, dt)
    return best_off, best_on


#: Warm serve requests with tracing on must stay within 5% of tracing off
#: (0.5 ms absolute floor so sub-ms scheduler noise cannot trip the gate).
SERVE_OVERHEAD_PCT = 0.05
SERVE_OVERHEAD_FLOOR_S = 5e-4


def main() -> int:
    sim_off, sim_on, makespan_off, makespan_on = _time_sim_pair()
    assert makespan_on == makespan_off, "instrumentation changed the result"
    bat_off, bat_on, bat_makespan_off, bat_makespan_on = _time_sim_pair(
        engine="batched"
    )
    assert bat_makespan_on == bat_makespan_off, (
        "instrumentation changed the batched result"
    )
    assert bat_makespan_off == makespan_off, "engines diverged"
    plan_off, plan_on = _time_planner_pair()
    serve_off, serve_on = _time_serve_pair()
    serve_limit = max(
        serve_off * (1.0 + SERVE_OVERHEAD_PCT),
        serve_off + SERVE_OVERHEAD_FLOOR_S,
    )

    lines = [
        "observability overhead, disabled/enabled arms interleaved per round\n"
        "(best of %d rounds for the planner, %d for the simulators)\n"
        % (ROUNDS, 2 * ROUNDS),
        "\n",
        "compiled simulator, BERT-48 on Config A (16 GPUs), M=256\n",
        f"  obs disabled (default no-op path) : {sim_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + histograms)  : {sim_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(sim_on / sim_off - 1) * 100:+9.1f} %\n",
        "\n",
        "batched engine (single scenario row), same graph\n",
        f"  obs disabled (default no-op path) : {bat_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + histograms)  : {bat_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(bat_on / bat_off - 1) * 100:+9.1f} %\n",
        "\n",
        "planner fast-scan search, BERT-48 on Config A, GBS=64\n",
        f"  obs disabled (default no-op path) : {plan_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + counters)    : {plan_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(plan_on / plan_off - 1) * 100:+9.1f} %\n",
        "\n",
        "serve path, warm POST /v1/plans (plan-cache hit), median of 40\n",
        f"  tracing off (obs_enabled=False)   : {serve_off * 1e3:9.2f} ms\n",
        f"  tracing on (default: spans, SLO,  : {serve_on * 1e3:9.2f} ms\n",
        "                counters, histograms)\n",
        f"  enabled overhead                  : {(serve_on / serve_off - 1) * 100:+9.1f} %"
        f"  (gate: <= {serve_limit * 1e3:.2f} ms)\n",
        "\n",
        "the disabled path is the shipped default; its budget (<2% of sim\n",
        "wall time) is enforced structurally in tests/perf/test_obs_overhead.py,\n",
        "as is the enabled-path budget (<20%): per-resource occupancy and\n",
        "per-device memory-peak gauges are registered with collect-time\n",
        "providers (Gauge.set_fn) backed by vectorized busy_totals/peak_all\n",
        "passes, so the simulation's critical path only pays for list appends\n",
        "and two bulk histogram records\n",
    ]
    out = pathlib.Path(__file__).resolve().parent.parent / "results" / "perf_obs.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("".join(lines))
    sys.stdout.write("".join(lines))
    sys.stdout.write(f"\nwrote {out}\n")

    from repro.perf.record import write_bench_json

    json_out = write_bench_json(
        out.parent / "perf_obs.json",
        "perf_obs",
        {
            "kernel_model": "bert48", "cluster": "A",
            "num_micro_batches": 256,
            "serve_model": "uniform-6", "serve_warm_requests": 40,
        },
        [
            {"name": "sim_compiled_off", "ms": sim_off * 1e3},
            {"name": "sim_compiled_on", "ms": sim_on * 1e3},
            {"name": "sim_batched_off", "ms": bat_off * 1e3},
            {"name": "sim_batched_on", "ms": bat_on * 1e3},
            {"name": "planner_off", "ms": plan_off * 1e3},
            {"name": "planner_on", "ms": plan_on * 1e3},
            {"name": "serve_warm_submit_off", "ms": serve_off * 1e3},
            {
                "name": "serve_warm_submit_on", "ms": serve_on * 1e3,
                "overhead_pct": round((serve_on / serve_off - 1) * 100, 2),
            },
        ],
        repo_root=out.parent.parent,
    )
    sys.stdout.write(f"wrote {json_out}\n")

    if serve_on > serve_limit:
        sys.stderr.write(
            f"FAIL: warm serve requests with tracing on took "
            f"{serve_on * 1e3:.2f} ms, over the "
            f"{SERVE_OVERHEAD_PCT:.0%}+{SERVE_OVERHEAD_FLOOR_S * 1e3:.1f}ms "
            f"gate ({serve_limit * 1e3:.2f} ms vs {serve_off * 1e3:.2f} ms "
            f"with tracing off)\n"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""A/B measurement of observability overhead on the heavy benchmarks.

Runs the BERT-48 M=256 compiled-simulator benchmark and the BERT-48
planner fast-scan search twice each — once with observability disabled
(the default no-op path) and once with tracing + metrics enabled — and
records the wall-time delta to ``results/perf_obs.txt``.

Standalone by design (``python benchmarks/perf_obs.py``): wall-clock A/B
deltas at the 1-2% level are too noisy for a CI assertion, so tier-1
instead enforces the budget structurally in
``tests/perf/test_obs_overhead.py`` (shared no-op singletons + measured
per-call no-op cost times a padded touchpoint count).  This script is the
full measurement behind that budget.
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro.obs as obs
from repro.cluster import config_a
from repro.core import Planner, profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator

ROUNDS = 3


def _bert48_graph(num_micro_batches=256):
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    d = clu.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        2 * num_micro_batches,
        num_micro_batches,
    )
    return PipelineExecutor(prof, clu, plan, enforce_memory=False).build_graph()


def _time_sim_pair(engine="compiled", rounds=2 * ROUNDS):
    """Best-of-rounds (disabled, enabled) walls for one simulator run.

    The two arms are interleaved within every round — fresh graph, run
    disabled, fresh graph, run enabled — so slow phases of the host bias
    both sides equally instead of whichever arm ran later."""
    best_off = best_on = None
    makespan_off = makespan_on = 0.0

    def one(enabled):
        g = _bert48_graph()
        if enabled:
            obs.enable(reset_state=True)
        t0 = time.perf_counter()
        res = Simulator(g, engine=engine).run()
        dt = time.perf_counter() - t0
        if enabled:
            obs.disable()
        return dt, res.makespan

    for _ in range(rounds):
        dt, makespan_off = one(False)
        best_off = dt if best_off is None else min(best_off, dt)
        dt, makespan_on = one(True)
        best_on = dt if best_on is None else min(best_on, dt)
    return best_off, best_on, makespan_off, makespan_on


def _time_planner_pair():
    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    best_off = best_on = None

    def one(enabled):
        if enabled:
            obs.enable(reset_state=True)
        t0 = time.perf_counter()
        res = Planner(prof, clu, 64).search()
        dt = time.perf_counter() - t0
        if enabled:
            obs.disable()
        assert res.plan is not None
        return dt

    for _ in range(ROUNDS):
        dt = one(False)
        best_off = dt if best_off is None else min(best_off, dt)
        dt = one(True)
        best_on = dt if best_on is None else min(best_on, dt)
    return best_off, best_on


def main():
    sim_off, sim_on, makespan_off, makespan_on = _time_sim_pair()
    assert makespan_on == makespan_off, "instrumentation changed the result"
    bat_off, bat_on, bat_makespan_off, bat_makespan_on = _time_sim_pair(
        engine="batched"
    )
    assert bat_makespan_on == bat_makespan_off, (
        "instrumentation changed the batched result"
    )
    assert bat_makespan_off == makespan_off, "engines diverged"
    plan_off, plan_on = _time_planner_pair()

    lines = [
        "observability overhead, disabled/enabled arms interleaved per round\n"
        "(best of %d rounds for the planner, %d for the simulators)\n"
        % (ROUNDS, 2 * ROUNDS),
        "\n",
        "compiled simulator, BERT-48 on Config A (16 GPUs), M=256\n",
        f"  obs disabled (default no-op path) : {sim_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + histograms)  : {sim_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(sim_on / sim_off - 1) * 100:+9.1f} %\n",
        "\n",
        "batched engine (single scenario row), same graph\n",
        f"  obs disabled (default no-op path) : {bat_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + histograms)  : {bat_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(bat_on / bat_off - 1) * 100:+9.1f} %\n",
        "\n",
        "planner fast-scan search, BERT-48 on Config A, GBS=64\n",
        f"  obs disabled (default no-op path) : {plan_off * 1e3:9.1f} ms\n",
        f"  obs enabled (spans + counters)    : {plan_on * 1e3:9.1f} ms\n",
        f"  enabled overhead                  : {(plan_on / plan_off - 1) * 100:+9.1f} %\n",
        "\n",
        "the disabled path is the shipped default; its budget (<2% of sim\n",
        "wall time) is enforced structurally in tests/perf/test_obs_overhead.py,\n",
        "as is the enabled-path budget (<20%): per-resource occupancy and\n",
        "per-device memory-peak gauges are registered with collect-time\n",
        "providers (Gauge.set_fn) backed by vectorized busy_totals/peak_all\n",
        "passes, so the simulation's critical path only pays for list appends\n",
        "and two bulk histogram records\n",
    ]
    out = pathlib.Path(__file__).resolve().parent.parent / "results" / "perf_obs.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("".join(lines))
    sys.stdout.write("".join(lines))
    sys.stdout.write(f"\nwrote {out}\n")


if __name__ == "__main__":
    main()

"""A/B/C measurement of the planner search kernel and the plan cache.

Runs the DAPPLE §IV-C search on a large problem — BERT-48 on Config B
(16 GPUs, the paper's hierarchical-interconnect cluster) — through three
arms that are required to be **bit-identical**:

* ``scalar``      — the reference ``evaluate_plan``-per-candidate loop
  (``use_fast_scan=False``), kept as the correctness oracle.
* ``per_state``   — the vectorized ``CompletionScanner`` called once per
  frontier state (``level_batch=False``), the previous fast path.
* ``level``       — the level-batched kernel (default): one padded scan
  per frontier generation, with allocation rows and per-row coefficient
  bundles memoized across states and levels.

plus a fourth arm measuring the content-addressed plan cache:

* ``cache_hit``   — ``plan_best`` against a warm in-memory
  :class:`~repro.core.plancache.PlanCache` tier.

Headline targets: ``level`` at least 3x faster than ``per_state`` on this
config, and a warm cache hit in at most 5 ms (vs a few hundred ms of
search).  A second problem (GNMT-16 on Config C) is measured on the fast
arms as a secondary data point.  Results go to ``results/perf_planner.txt``
and, machine-readable, ``results/perf_planner.json`` (schema in
:mod:`repro.perf.record`; nightly CI diffs it via
``benchmarks/check_regression.py``).
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import config_by_name
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plancache import PlanCache
from repro.core.planner import plan_best
from repro.models import get_model
from repro.perf.record import write_bench_json

ROUNDS = 3
HEADLINE = ("bert48", "B", 64)
SECONDARY = ("gnmt16", "C", 64)
SPEEDUP_TARGET = 3.0
CACHE_HIT_MS_TARGET = 5.0


def _best(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def _identical(a, b):
    return (
        a.plan.notation == b.plan.notation
        and a.plan.split_notation == b.plan.split_notation
        and a.plan.num_micro_batches == b.plan.num_micro_batches
        and a.estimate.latency == b.estimate.latency
        and a.plans_evaluated == b.plans_evaluated
        and a.infeasible_plans == b.infeasible_plans
    )


def _measure(model, config, gbs, with_scalar):
    prof = profile_model(get_model(model))
    clu = config_by_name(config, 16)

    cfgs = {
        "level": PlannerConfig(),
        "per_state": PlannerConfig(level_batch=False),
    }
    if with_scalar:
        cfgs["scalar"] = PlannerConfig(use_fast_scan=False)

    walls, results = {}, {}
    for name, cfg in cfgs.items():
        walls[name], results[name] = _best(
            lambda cfg=cfg: Planner(prof, clu, gbs, cfg).search()
        )

    cache = PlanCache()  # memory tier only: the warm-hit case
    cache.store(prof, clu, gbs, cfgs["level"], results["level"])
    walls["cache_hit"], results["cache_hit"] = _best(
        lambda: plan_best(prof, clu, gbs, cfgs["level"], cache=cache)
    )
    assert cache.hits == ROUNDS and cache.misses == 0

    identical = all(
        _identical(results["level"], results[name])
        for name in results if name != "level"
    )
    return prof, walls, results, identical


def _section(title, walls, results, identical):
    lines = [f"{title}\n"]
    if "scalar" in walls:
        lines.append(
            f"  scalar evaluate_plan loop           : {walls['scalar'] * 1e3:9.1f} ms\n"
        )
    lines += [
        f"  per-state vectorized scan           : {walls['per_state'] * 1e3:9.1f} ms\n",
        f"  level-batched scan (default)        : {walls['level'] * 1e3:9.1f} ms\n",
        f"  warm plan-cache hit                 : {walls['cache_hit'] * 1e3:9.2f} ms\n",
        f"  level speedup over per-state        : "
        f"{walls['per_state'] / walls['level']:9.2f} x\n",
    ]
    if "scalar" in walls:
        lines.append(
            f"  level speedup over scalar           : "
            f"{walls['scalar'] / walls['level']:9.2f} x\n"
        )
    r = results["level"]
    lines += [
        f"  all arms bit-identical              : {identical}\n",
        f"  plan                                : {r.plan.notation} "
        f"({r.plan.split_notation}), latency {r.estimate.latency * 1e3:.2f} ms\n",
    ]
    return lines


def main():
    model, config, gbs = HEADLINE
    _, walls, results, identical = _measure(model, config, gbs, with_scalar=True)
    m2, c2, g2 = SECONDARY
    _, walls2, results2, identical2 = _measure(m2, c2, g2, with_scalar=False)

    speedup = walls["per_state"] / walls["level"]
    hit_ms = walls["cache_hit"] * 1e3
    ok = (
        identical
        and identical2
        and speedup >= SPEEDUP_TARGET
        and hit_ms <= CACHE_HIT_MS_TARGET
    )

    lines = [
        f"planner search kernel + plan cache, best of {ROUNDS} runs each\n",
        "\n",
        *_section(
            f"{model} on Config {config} (16 GPUs), GBS={gbs}",
            walls, results, identical,
        ),
        "\n",
        *_section(
            f"{m2} on Config {c2} (16 GPUs), GBS={g2}",
            walls2, results2, identical2,
        ),
        "\n",
        f"{'OK' if ok else 'FAIL'}: level-batched search is {speedup:.2f}x "
        f"the per-state path (target >= {SPEEDUP_TARGET:.1f}x), warm cache "
        f"hit {hit_ms:.2f} ms (target <= {CACHE_HIT_MS_TARGET:.1f} ms), "
        f"all arms bit-identical\n",
    ]
    results_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / "perf_planner.txt"
    out.write_text("".join(lines))
    sys.stdout.write("".join(lines))
    sys.stdout.write(f"\nwrote {out}\n")

    entries = [
        {"name": "scalar", "ms": walls["scalar"] * 1e3,
         "speedup": walls["scalar"] / walls["scalar"]},
        {"name": "per_state", "ms": walls["per_state"] * 1e3,
         "speedup": walls["scalar"] / walls["per_state"]},
        {"name": "level", "ms": walls["level"] * 1e3,
         "speedup": walls["scalar"] / walls["level"]},
        {"name": "cache_hit", "ms": hit_ms,
         "speedup": walls["scalar"] / walls["cache_hit"]},
        {"name": f"{m2}_{c2}_per_state", "ms": walls2["per_state"] * 1e3},
        {"name": f"{m2}_{c2}_level", "ms": walls2["level"] * 1e3,
         "speedup": walls2["per_state"] / walls2["level"]},
        {"name": f"{m2}_{c2}_cache_hit", "ms": walls2["cache_hit"] * 1e3},
    ]
    json_out = write_bench_json(
        results_dir / "perf_planner.json",
        "perf_planner",
        {"model": model, "cluster": config, "gbs": gbs,
         "secondary": f"{m2}/{c2}/gbs{g2}", "rounds": ROUNDS},
        entries,
        repo_root=results_dir.parent,
    )
    sys.stdout.write(f"wrote {json_out}\n")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

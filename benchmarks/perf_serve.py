"""Closed-loop load benchmark for the planner service (``repro.serve``).

Starts an in-process :class:`~repro.serve.PlanServer` on an ephemeral port
and drives it with a closed-loop client (one request in flight at a time,
submit -> poll -> fetch-result per iteration), measuring end-to-end request
latency through the full stack: HTTP parse, request decode, job queue,
worker execution, artifact store, poll, artifact fetch.

Two phases over the same problem set (VGG-19 on Config C, 16 GPUs, a grid
of global batch sizes):

* **cold**  — every request is a fresh planner search (empty plan cache).
* **warm**  — the identical requests again: each short-circuits through
  the content-addressed plan cache in O(1), so the measured latency is
  pure service overhead.

Headline target: warm p95 under 50 ms on localhost — the served-from-cache
path must cost milliseconds, not a re-search.  Results go to
``results/perf_serve.txt`` and, machine-readable, ``results/perf_serve.json``
(schema in :mod:`repro.perf.record`; nightly CI diffs it via
``benchmarks/check_regression.py``).
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import tempfile

from repro.perf.record import write_bench_json
from repro.serve import PlanClient, PlanServer

MODEL = "vgg19"
CONFIG = "C"
DEVICES = 16
GBS_GRID = [256, 512, 1024, 2048]
WARM_ROUNDS = 8
POLL_INTERVAL_S = 0.002
WARM_P95_TARGET_MS = 50.0


def _percentile(samples, q):
    xs = sorted(samples)
    idx = min(len(xs) - 1, max(0, round(q / 100 * (len(xs) - 1))))
    return xs[idx]


def _drive(client, requests):
    """One closed-loop pass; returns per-request end-to-end seconds."""
    latencies = []
    for body in requests:
        t0 = time.perf_counter()
        job = client.wait(
            client.submit(body)["job_id"], timeout=300.0,
            poll_interval=POLL_INTERVAL_S,
        )
        result = client.result(job)
        latencies.append(time.perf_counter() - t0)
        assert result["plan"]["stages"], "served an empty plan"
    return latencies


def _stats(latencies):
    total = sum(latencies)
    return {
        "p50_ms": _percentile(latencies, 50) * 1e3,
        "p95_ms": _percentile(latencies, 95) * 1e3,
        "mean_ms": total / len(latencies) * 1e3,
        "rps": len(latencies) / total,
        "n": len(latencies),
    }


def main():
    requests = [
        {"model": MODEL, "config": CONFIG, "devices": DEVICES, "gbs": gbs}
        for gbs in GBS_GRID
    ]
    with tempfile.TemporaryDirectory(prefix="perf-serve-") as tmp:
        server = PlanServer(
            workers=2, queue_depth=32, exec_mode="fork", data_dir=tmp
        ).start()
        try:
            client = PlanClient(server.url, timeout=300.0)
            mode = client.health()["exec_mode"]

            cold = _drive(client, requests)
            warm = []
            for _ in range(WARM_ROUNDS):
                warm.extend(_drive(client, requests))

            served = client.cache_stats()["served"]
            assert served["jobs_done"] == len(cold) + len(warm)
            assert served["cache_hits"] == len(warm), (
                "warm phase was not served from the plan cache: "
                f"{served['cache_hits']}/{len(warm)} hits"
            )
        finally:
            server.close()

    cs, ws = _stats(cold), _stats(warm)
    ok = ws["p95_ms"] <= WARM_P95_TARGET_MS

    lines = [
        f"planner service closed-loop load: {MODEL} on Config {CONFIG} "
        f"({DEVICES} GPUs), GBS grid {GBS_GRID}\n",
        f"exec mode: {mode}, 2 workers, in-process server on localhost\n",
        "\n",
        f"  cold (fresh search), n={cs['n']:<3}        : "
        f"p50 {cs['p50_ms']:8.1f} ms   p95 {cs['p95_ms']:8.1f} ms   "
        f"{cs['rps']:6.1f} req/s\n",
        f"  warm (plan-cache hit), n={ws['n']:<3}      : "
        f"p50 {ws['p50_ms']:8.1f} ms   p95 {ws['p95_ms']:8.1f} ms   "
        f"{ws['rps']:6.1f} req/s\n",
        f"  cold/warm p50 ratio                 : "
        f"{cs['p50_ms'] / ws['p50_ms']:9.1f} x\n",
        "\n",
        f"{'OK' if ok else 'FAIL'}: warm p95 {ws['p95_ms']:.1f} ms "
        f"(target <= {WARM_P95_TARGET_MS:.0f} ms); every warm request "
        f"served from the content-addressed cache\n",
    ]
    results_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / "perf_serve.txt"
    out.write_text("".join(lines))
    sys.stdout.write("".join(lines))
    sys.stdout.write(f"\nwrote {out}\n")

    entries = [
        {"name": "cold_p50", "ms": cs["p50_ms"], "rps": cs["rps"]},
        {"name": "cold_p95", "ms": cs["p95_ms"]},
        {"name": "warm_p50", "ms": ws["p50_ms"], "rps": ws["rps"],
         "speedup": cs["p50_ms"] / ws["p50_ms"]},
        {"name": "warm_p95", "ms": ws["p95_ms"]},
    ]
    json_out = write_bench_json(
        results_dir / "perf_serve.json",
        "perf_serve",
        {"model": MODEL, "cluster": CONFIG, "devices": DEVICES,
         "gbs_grid": GBS_GRID, "warm_rounds": WARM_ROUNDS,
         "exec_mode": mode},
        entries,
        repo_root=results_dir.parent,
    )
    sys.stdout.write(f"wrote {json_out}\n")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Ablation: per-stage overhead penalty vs plan shape.

The planner's pure analytical objective occasionally prefers 3+-stage
plans that beat the paper's 2-stage picks by low single digits; a per-stage
overhead penalty (modelling unmodelled runtime costs) collapses those
near-ties toward fewer stages — quantifying the paper's "as few stages as
possible" design rule (§IV-D1).
"""

from repro.core import Planner, PlannerConfig
from repro.experiments import write_result
from repro.experiments.common import cluster, profile
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES


def test_stage_overhead_sweep(once):
    def run():
        rows = []
        for name in ("bert48", "gnmt16"):
            prof = profile(name)
            clu = cluster("A")
            gbs = PAPER_FIGURES[name].global_batch_size
            for frac in (0.0, 0.02, 0.05, 0.10):
                res = Planner(
                    prof, clu, gbs, PlannerConfig(stage_overhead_frac=frac)
                ).search()
                rows.append((name, frac, res.plan.notation,
                             res.plan.num_stages, res.estimate.latency))
        return rows

    rows = once(run)
    write_result(
        "ablation_stage_overhead",
        format_table(
            ["model", "penalty/stage", "plan", "#stages", "analytic L"],
            [[n, f"{f:.0%}", p, s, f"{l*1e3:.0f}ms"] for n, f, p, s, l in rows],
            title="Ablation: per-stage overhead penalty vs chosen plan",
        ),
    )
    # The penalty never *increases* stage count.
    for name in ("bert48", "gnmt16"):
        series = [r for r in rows if r[0] == name]
        series.sort(key=lambda r: r[1])
        stages = [r[3] for r in series]
        assert stages == sorted(stages, reverse=True) or len(set(stages)) == 1

"""Ablation benches for the design choices called out in DESIGN.md.

* D1 — pivot-stage heuristic (eq. 3) vs exhaustive pivot search;
* D2 — the three placement policies vs any single one;
* D4 — warm-up depth K sweep (GPipe K=M ... DAPPLE PA/PB ... K=1);
* D5 — analytical latency model vs simulator ground truth.
"""

import numpy as np
import pytest

from repro.core import Planner, PlannerConfig, profile_model
from repro.core.latency import evaluate_plan, find_pivot, stage_costs
from repro.core.plan import ParallelPlan, Stage
from repro.core.scheduler import dapple_schedule, warmup_counts
from repro.experiments import write_result
from repro.experiments.common import cluster, profile
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES
from repro.runtime import execute_plan


def _sample_plans(model_name: str, cfg: str, max_plans: int = 12):
    """A spread of 2-stage plans across splits/replication for one model."""
    prof = profile(model_name)
    clu = cluster(cfg)
    n = prof.num_layers
    gbs = PAPER_FIGURES[model_name].global_batch_size
    plans = []
    devices = clu.devices
    for split in range(max(1, n // 6), n, max(1, n // 6)):
        for r0 in (4, 8, 12):
            stages = [
                Stage(0, split, tuple(devices[:r0])),
                Stage(split, n, tuple(devices[r0:])),
            ]
            m = max(1, gbs // prof.graph.profile_batch)
            while gbs % m:
                m -= 1
            plans.append(ParallelPlan(prof.graph, stages, gbs, m))
            if len(plans) >= max_plans:
                return plans
    return plans


class TestD1Pivot:
    def test_pivot_heuristic_near_exhaustive(self, once):
        """Eq. 3's pivot choice loses <2 % vs trying every pivot."""

        def measure():
            rows = []
            for name in ("gnmt16", "bert48", "vgg19"):
                prof = profile(name)
                clu = cluster("A")
                for plan in _sample_plans(name, "A", max_plans=6):
                    costs = stage_costs(prof, clu, plan)
                    m = plan.num_micro_batches
                    q_h = find_pivot(costs, m)

                    def latency_with_pivot(q):
                        warm = sum(costs.fwd[: q + 1])
                        steady = (m - 1) * (costs.fwd[q] + costs.bwd[q])
                        end = max(
                            costs.allreduce[s]
                            + (
                                sum(costs.bwd[a] for a in range(s, q + 1))
                                if s <= q
                                else -sum(costs.bwd[a] for a in range(q, s))
                            )
                            for s in range(costs.num_extended)
                        )
                        return warm + steady + end

                    # The pivot is meant to *dominate* the steady phase, so
                    # eq. 3 should pick the worst-case (max-latency) stage:
                    # a lower-latency pivot choice would just under-estimate.
                    best_q = max(range(costs.num_extended), key=latency_with_pivot)
                    rows.append(
                        (name, q_h, best_q,
                         latency_with_pivot(q_h) / latency_with_pivot(best_q))
                    )
            return rows

        rows = once(measure)
        ratios = [r[3] for r in rows]
        write_result(
            "ablation_pivot",
            format_table(
                ["model", "heuristic Q", "exhaustive Q", "L ratio"],
                [[m, q1, q2, f"{r:.3f}"] for m, q1, q2, r in rows],
                title="D1: pivot heuristic (eq. 3) vs exhaustive pivot",
            ),
        )
        assert min(ratios) > 0.9


class TestD2Placement:
    @pytest.mark.parametrize("solo", ["fresh_first", "append_first", "scatter_first"])
    def test_full_policy_set_at_least_as_good(self, solo, once):
        def run():
            out = []
            for name in ("gnmt16", "vgg19"):
                prof = profile(name)
                clu = cluster("A")
                gbs = PAPER_FIGURES[name].global_batch_size
                full = Planner(prof, clu, gbs).search().estimate.latency
                only = Planner(
                    prof, clu, gbs, PlannerConfig(policies=(solo,))
                ).search().estimate.latency
                out.append((name, full, only))
            return out

        rows = once(run)
        for name, full, only in rows:
            # The memoized search keeps one best prefix per (layers, GPUs)
            # state — like the paper's DP — so adding policies can shift
            # which prefix survives and lose a near-tie; allow 2 %.
            assert full <= only * 1.02
        write_result(
            f"ablation_placement_{solo}",
            format_table(
                ["model", "all policies", f"{solo} only", "gain"],
                [[n, f"{f*1e3:.1f}ms", f"{o*1e3:.1f}ms", f"{o/f:.3f}x"] for n, f, o in rows],
                title=f"D2: placement policy set vs {solo} alone",
            ),
        )


class TestD4WarmupSweep:
    def test_k_sweep_memory_throughput_tradeoff(self, once):
        """Sweep warm-up depth: K=1 (serial-ish) ... PA ... PB ... GPipe."""
        from repro.models import uniform_model

        def run():
            model = uniform_model(
                "ksweep", 4, 90e9, 1_000_000, 4 * 2**20,
                stored_bytes=128 * 2**20, profile_batch=1,
            )
            clu = cluster("B", 4)
            prof = profile_model(model)
            stages = [Stage(i, i + 1, (clu.device(i),)) for i in range(4)]
            plan = ParallelPlan(model, stages, 16, 16)
            rows = []
            for k_cap in (1, 2, 4, 7, 16):
                sched = dapple_schedule(4, 16, policy="PB", max_in_memory=k_cap)
                res = execute_plan(prof, clu, plan, schedule=sched)
                rows.append((k_cap, res.iteration_time, res.memory.peak("gpu:0")))
            return rows

        rows = once(run)
        write_result(
            "ablation_warmup",
            format_table(
                ["K cap", "iteration", "GPU0 peak"],
                [[k, f"{t*1e3:.1f}ms", f"{p/2**20:.0f}MiB"] for k, t, p in rows],
                title="D4: warm-up depth sweep (memory vs throughput)",
            ),
        )
        times = [t for _, t, _ in rows]
        peaks = [p for _, _, p in rows]
        # Deeper warm-up: never slower, monotonically more memory.
        assert times == sorted(times, reverse=True)
        assert peaks == sorted(peaks)
        # Diminishing returns: beyond PB's 2S-1 the speed gain vanishes.
        assert times[-1] == pytest.approx(times[-2], rel=0.01)


class TestD5ModelVsSimulator:
    def test_analytic_latency_tracks_simulator(self, once):
        """Planner's eq. 1-2 estimates correlate with simulated makespans."""

        def run():
            prof = profile("bert48")
            clu = cluster("A")
            pairs = []
            for plan in _sample_plans("bert48", "A"):
                est = evaluate_plan(prof, clu, plan).latency
                sim = execute_plan(
                    prof, clu, plan, warmup_policy="PB", enforce_memory=False
                ).iteration_time
                pairs.append((est, sim))
            return pairs

        pairs = once(run)
        est = np.array([p[0] for p in pairs])
        sim = np.array([p[1] for p in pairs])
        corr = float(np.corrcoef(est, sim)[0, 1])
        err = np.abs(est - sim) / sim
        write_result(
            "ablation_model_vs_sim",
            format_table(
                ["analytic", "simulated", "rel err"],
                [[f"{e*1e3:.1f}ms", f"{s*1e3:.1f}ms", f"{abs(e-s)/s*100:.1f}%"]
                 for e, s in pairs],
                title=f"D5: analytic model vs simulator (corr={corr:.3f}, "
                f"median err={np.median(err)*100:.1f}%)",
            ),
        )
        assert corr > 0.9
        assert float(np.median(err)) < 0.25

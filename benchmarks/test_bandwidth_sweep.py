"""Interconnect sweep: DP↔pipeline crossovers vs network speed."""

from repro.experiments import bandwidth_sweep as bs
from repro.experiments import write_result


def test_bandwidth_sweep(once):
    points = once(bs.run)
    write_result("ext_bandwidth_sweep", bs.format_results(points))

    def kinds(model):
        return {p.gbps: p.kind for p in points if p.model == model}

    # ResNet-50: tiny gradients + heavy compute -> DP at every speed
    # (generalizes Table V's DP/DP/DP row).
    assert set(kinds("ResNet-50").values()) == {"DP"}

    # VGG-19 and GNMT-16: pipelines on slow networks, DP once the network
    # is fast enough (the Config B->C flip, extended).
    for model in ("VGG-19", "GNMT-16"):
        k = kinds(model)
        assert k[1.0] != "DP", f"{model} should pipeline at 1 Gbps"
        assert k[100.0] == "DP", f"{model} should go DP at 100 Gbps"

    # Hybrid advantage shrinks monotonically-ish as bandwidth grows.
    for model in ("VGG-19", "GNMT-16"):
        adv = [
            p.hybrid_advantage
            for p in sorted(
                (p for p in points if p.model == model), key=lambda p: p.gbps
            )
            if p.hybrid_advantage is not None
        ]
        assert adv[0] > adv[-1]
        assert adv[0] > 1.5

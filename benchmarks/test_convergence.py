"""Convergence preservation: the paper's §VI-A equivalence claim."""

from repro.experiments import convergence, write_result


def test_convergence_equivalence(once):
    r = once(convergence.run)
    write_result("convergence_equivalence", convergence.format_results(r))
    # All three training modes follow the *same* loss trajectory...
    for a, b, c in zip(r.losses_sequential, r.losses_pipeline, r.losses_dp):
        assert abs(a - b) < 1e-9
        assert abs(a - c) < 1e-9
    # ...and actually learn something.
    assert r.losses_sequential[-1] < r.losses_sequential[0] * 0.5
    # Parameters agree to float64 epsilon scale.
    assert r.max_param_deviation < 1e-10

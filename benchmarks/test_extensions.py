"""Benches for the extensions beyond the paper's headline experiments.

* sync-vs-async steady state — quantifies the throughput-vs-staleness
  trade-off the paper uses to motivate synchronous training (§I–II);
* checkpoint-strategy sweep — none / boundary / sqrt(n) on BERT-48,
  extending the paper's single re-computation policy.
"""

import pytest

from repro.baselines import gpipe_plan
from repro.experiments import write_result
from repro.experiments.common import cluster, profile
from repro.experiments.reporting import format_table
from repro.runtime import execute_plan, simulate_iterations


def test_sync_vs_async_steady_state(once):
    def run():
        prof = profile("bert48")
        clu = cluster("B", 4)
        plan = gpipe_plan(prof, clu, 32, num_stages=4, micro_batch_size=2)
        rows = []
        for sync in (True, False):
            r = simulate_iterations(
                prof, clu, plan, num_iterations=5, warmup_policy="PB", sync=sync
            )
            rows.append(
                (
                    "synchronous (DAPPLE)" if sync else "asynchronous (PipeDream-style)",
                    r.first_iteration_time,
                    r.steady_iteration_time,
                    r.steady_throughput,
                )
            )
        return rows

    rows = once(run)
    write_result(
        "ext_sync_vs_async",
        format_table(
            ["regime", "first iter", "steady iter", "steady samples/s"],
            [[n, f"{f*1e3:.1f}ms", f"{s*1e3:.1f}ms", f"{t:.2f}"] for n, f, s, t in rows],
            title="Extension: iteration overlap — sync vs async pipelines",
        ),
    )
    sync_row, async_row = rows
    # Async overlaps iterations -> higher steady throughput; sync cannot.
    assert async_row[3] > sync_row[3]
    assert sync_row[2] == pytest.approx(sync_row[1], rel=0.02)


def test_checkpoint_strategy_sweep(once):
    def run():
        prof = profile("bert48")
        clu = cluster("B", 2)
        plan = gpipe_plan(prof, clu, 32, num_stages=2, micro_batch_size=2)
        rows = []
        for strategy in ("none", "boundary", "sqrt"):
            res = execute_plan(prof, clu, plan, recompute=strategy, warmup_policy="PB")
            rows.append((strategy, res.throughput, res.average_peak_memory()))
        return rows

    rows = once(run)
    write_result(
        "ext_checkpoint_strategies",
        format_table(
            ["strategy", "throughput", "avg peak memory"],
            [[s, f"{t:.2f}/s", f"{m/2**30:.2f} GiB"] for s, t, m in rows],
            title="Extension: activation checkpointing strategies (BERT-48, M=16)",
        ),
    )
    by = {s: (t, m) for s, t, m in rows}
    # none is fastest and biggest; both recompute strategies cut memory and
    # pay roughly one extra forward (~25-35 % slower with B=2F).
    assert by["none"][0] > by["boundary"][0]
    assert by["none"][0] > by["sqrt"][0]
    assert by["boundary"][1] < by["none"][1]
    assert by["sqrt"][1] < by["none"][1]
    assert by["boundary"][0] == pytest.approx(by["sqrt"][0], rel=0.05)

"""Fig. 12: training speedup vs global batch size, 5 models x 3 configs."""

import math

from repro.experiments import fig12, write_result


def test_fig12_speedups(once):
    points = once(fig12.run)
    write_result("fig12_speedups", fig12.format_results(points))

    def pick(model, cfg, gbs):
        return next(
            p for p in points if (p.model, p.config, p.gbs) == (model, cfg, gbs)
        )

    # Speedups grow with GBS for every (model, config) series.
    by_series: dict = {}
    for p in points:
        by_series.setdefault((p.model, p.config), []).append(p)
    for series in by_series.values():
        series.sort(key=lambda p: p.gbs)
        hybrids = [p.best_hybrid for p in series]
        assert hybrids[-1] >= hybrids[0] * 0.95

    # The hybrid never loses badly to the best DP arm, and wins big on the
    # slow flat network (paper: up to 2.32x for GNMT on config C).
    for p in points:
        best_dp = max(
            (x for x in (p.dp_no_overlap, p.dp_overlap) if not math.isnan(x)),
            default=float("nan"),
        )
        if not math.isnan(best_dp):
            assert p.best_hybrid > 0.9 * best_dp
    gnmt_c = pick("gnmt16", "C", 1024)
    assert gnmt_c.best_hybrid / gnmt_c.dp_overlap > 1.8

    # AmoebaNet-36 cannot run data parallel at all (OOM on one device).
    for p in points:
        if p.model == "amoebanet36":
            assert math.isnan(p.dp_no_overlap) and math.isnan(p.dp_overlap)

    # DP-with-overlap is never slower than DP-without.
    for p in points:
        if not math.isnan(p.dp_no_overlap):
            assert p.dp_overlap >= p.dp_no_overlap - 1e-9

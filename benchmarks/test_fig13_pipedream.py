"""Fig. 13: DAPPLE-plan vs PipeDream-plan speedups on 2x8 and 4x8 clusters."""

from repro.experiments import table7, write_result
from repro.experiments.reporting import format_table


def test_fig13_pipedream_comparison(once):
    rows = once(table7.run, machine_counts=(2, 4))
    text = format_table(
        ["Model", "cluster", "DAPPLE x", "PipeDream-strategy x", "advantage"],
        [
            [r.model, f"{r.machines}x8", f"{r.dapple_speedup:.1f}",
             f"{r.pipedream_speedup:.1f}", f"{r.advantage:.2f}x"]
            for r in rows
        ],
        title="Fig. 13: speedup of DAPPLE plans vs PipeDream plans (DAPPLE runtime)",
    )
    write_result("fig13_pipedream", text)

    # DAPPLE's strategy wins (or ties within noise) on every model and
    # both cluster sizes, and wins clearly somewhere.
    for r in rows:
        assert r.advantage >= 0.97
    assert max(r.advantage for r in rows) > 1.2

    # Larger clusters give DAPPLE at least comparable absolute speedups.
    by_model: dict = {}
    for r in rows:
        by_model.setdefault(r.model, {})[r.machines] = r
    for model, per in by_model.items():
        if model == "AmoebaNet-36":
            # Comm-bound at 1-sample micro-batches: 11.2 MB boundary per
            # micro-batch saturates 25 GbE regardless of cluster size.
            continue
        if 2 in per and 4 in per:
            assert per[4].dapple_speedup >= per[2].dapple_speedup * 0.9

"""Fig. 14: strong scaling on Config-A with fixed global batch size."""

import math

from repro.experiments import fig14, write_result


def test_fig14_strong_scaling(once):
    points = once(fig14.run)
    write_result("fig14_strong_scaling", fig14.format_results(points))

    by_model: dict = {}
    for p in points:
        by_model.setdefault(p.model, {})[p.num_gpus] = p

    for model in ("gnmt16", "bert48", "xlnet36"):
        per = by_model[model]
        counts = sorted(per)
        hybrids = [per[n].best_hybrid for n in counts]
        # Hybrid speedup grows with device count for the language models.
        # (AmoebaNet is exempt: its 11.2 MB/sample boundary activations at
        # 1-sample micro-batches make the single-NVLink-machine 8-GPU point
        # a local optimum before crossing to 25 GbE.)
        assert hybrids == sorted(hybrids), f"{model}: hybrid not monotone {hybrids}"

    # The paper's §VI-G kink: DP scalability stalls crossing the machine
    # boundary (8 -> 12 GPUs) while the hybrid keeps scaling.
    for model in ("bert48", "xlnet36", "gnmt16"):
        per = by_model[model]
        dp_gain = per[12].dp_overlap / per[8].dp_overlap
        hybrid_gain = per[12].best_hybrid / per[8].best_hybrid
        assert hybrid_gain > dp_gain

    # AmoebaNet has no DP arm at any scale.
    for p in points:
        if p.model == "amoebanet36":
            assert math.isnan(p.dp_overlap)

    # Hybrid is at least competitive with DP everywhere, and strictly
    # better at 16 GPUs for the big language models.
    for model in ("bert48", "xlnet36"):
        per = by_model[model]
        assert per[16].best_hybrid > per[16].dp_overlap

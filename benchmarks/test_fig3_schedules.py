"""Fig. 3: GPipe vs DAPPLE schedule shapes and memory-over-time curves."""

import pytest

from repro.experiments import fig3, write_result


def test_fig3_schedules(once):
    res = once(fig3.run)
    write_result("fig3_schedules", fig3.format_results(res))

    # Same bubbles: identical makespans under the PB warm-up (paper §III-B
    # "DAPPLE introduces the exact same bubble time as GPipe").
    assert res.dapple.iteration_time == pytest.approx(
        res.gpipe.iteration_time, rel=0.02
    )

    # But a much lower first-stage memory peak (Fig. 3c).
    assert res.memory_saving < 0.8

    # GPipe's peak occurs mid-iteration after all forwards; DAPPLE's
    # plateau is reached during warm-up and never grows.
    gp_t, gp_u = res.gpipe.memory.curve("gpu:0", num_points=100)
    da_t, da_u = res.dapple.memory.curve("gpu:0", num_points=100)
    assert gp_u.max() > da_u.max()


def test_fig3_memory_flat_vs_m(once):
    def peaks():
        out = []
        for m in (5, 7, 11):
            r = fig3.run(num_micro_batches=m)
            out.append((r.gpipe.memory.peak("gpu:0"), r.dapple.memory.peak("gpu:0")))
        return out

    rows = once(peaks)
    gpipe_peaks = [g for g, _ in rows]
    dapple_peaks = [d for _, d in rows]
    assert gpipe_peaks == sorted(gpipe_peaks) and gpipe_peaks[0] < gpipe_peaks[-1]
    assert max(dapple_peaks) == pytest.approx(min(dapple_peaks), rel=1e-9)

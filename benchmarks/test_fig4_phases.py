"""Fig. 4: warm-up / steady / ending phase decomposition."""

import pytest

from repro.experiments import fig4, write_result


def test_fig4_phase_decomposition(once):
    r = once(fig4.run)
    write_result("fig4_phases", fig4.format_results(r))
    # The analytic eq. 1 decomposition tracks the simulated phases.
    assert r.analytic_total == pytest.approx(r.measured_total, rel=0.15)
    assert r.analytic_steady == pytest.approx(r.measured_steady, rel=0.15)
    # Steady dominates at M=8 (the trapezoid of the paper's figure).
    assert r.measured_steady > r.measured_warmup
    assert r.measured_steady > r.measured_ending

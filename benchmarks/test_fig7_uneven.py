"""Fig. 7: slightly uneven partitions beat the even split at small M."""

from repro.experiments import fig7, write_result


def test_fig7_uneven_partitioning(once):
    rows = once(fig7.run)
    write_result("fig7_uneven", fig7.format_results(rows))
    best = fig7.best_split(rows)
    even = min(rows, key=lambda r: abs(r.layers_stage0 - r.layers_stage1))
    # The winner is an uneven split, strictly faster than the even one.
    assert best.layers_stage0 != best.layers_stage1
    assert best.latency < even.latency

    # At larger M the steady phase dominates and the even split recovers.
    rows_big_m = fig7.run(num_micro_batches=16)
    best_big = fig7.best_split(rows_big_m)
    assert abs(best_big.layers_stage0 - best_big.layers_stage1) <= 1

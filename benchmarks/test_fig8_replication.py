"""Fig. 8: micro-batch splitting vs round-robin stage replication."""

from repro.experiments import fig8, write_result


def test_fig8_replication(once):
    res = once(fig8.run)
    write_result("fig8_replication", fig8.format_results(res))
    # Splitting wins despite its split/concat overhead (paper §V-B2).
    assert res.split_advantage > 1.05


def test_fig8_split_wins_across_micro_batch_counts(once):
    def sweep():
        return {m: fig8.run(num_micro_batches=m).split_advantage for m in (3, 4, 5, 7, 8)}

    adv = once(sweep)
    # Splitting wins at every micro-batch count — the round-robin tail
    # effect (idle replica slots around the warm-up/drain edges) never
    # pays for skipping the split/concat.
    for m, a in adv.items():
        assert a > 1.05, f"M={m}: advantage {a:.3f}"

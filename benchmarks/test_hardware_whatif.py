"""What-if ablation: faster accelerators shift plans toward communication.

Replaying Table V's Config-A planning with an A100-class accelerator
(~3x the sustained FLOP/s, 40 GB memory) shrinks compute times while
communication stays fixed — effective ACR triples, so pipeline plans lose
ground relative to DP exactly as the paper's efficiency model (§II-A)
predicts.  A quantitative sanity check that the planner responds to the
compute/communication balance, not to model identity.
"""

from repro.cluster.configs import config_a
from repro.cluster.device import GPUSpec
from repro.core import Planner, profile_model
from repro.experiments import write_result
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES, get_model

#: A100-class spec: ~3x V100 sustained fp32-equivalent training throughput.
A100 = GPUSpec(name="A100", memory_bytes=40 * 2**30, flops=27e12)


def test_faster_gpus_shift_balance(once):
    def run():
        rows = []
        for name in ("gnmt16", "bert48"):
            model = get_model(name)
            gbs = PAPER_FIGURES[name].global_batch_size
            out = {}
            for spec in (None, A100):
                clu = config_a(2) if spec is None else config_a(2, gpu_spec=spec)
                prof = profile_model(model, spec) if spec else profile_model(model)
                res = Planner(prof, clu, gbs).search()
                sim_label = spec.name if spec else "V100"
                out[sim_label] = (res.plan.notation, res.estimate.latency,
                                  res.estimate.acr)
            rows.append((name, out))
        return rows

    rows = once(run)
    table_rows = []
    for name, out in rows:
        for gpu, (plan, lat, acr) in out.items():
            table_rows.append([name, gpu, plan, f"{lat*1e3:.0f}ms", f"{acr:.3f}"])
    write_result(
        "ext_hardware_whatif",
        format_table(
            ["model", "GPU", "plan", "latency", "ACR"],
            table_rows,
            title="What-if: V100 vs A100-class accelerators on Config-A",
        ),
    )
    for name, out in rows:
        v100_plan, v100_lat, v100_acr = out["V100"]
        a100_plan, a100_lat, a100_acr = out["A100"]
        # Faster compute: lower latency, higher effective comm ratio.
        assert a100_lat < v100_lat
        if v100_acr > 0 and a100_acr > 0:
            assert a100_acr > v100_acr

"""Micro-benchmarks of the library's hot primitives.

These are conventional pytest-benchmark timings (many rounds) guarding the
performance characteristics the rest of the harness depends on: the
simulator's event throughput, latency-model evaluation speed, planner
search time, and the gradient-equivalent pipeline trainer.
"""

import pathlib
import time

import numpy as np

from repro.core import Planner, PlannerConfig, profile_model
from repro.core.latency import evaluate_plan
from repro.core.plan import ParallelPlan, Stage
from repro.core.scheduler import dapple_schedule
from repro.experiments.common import cluster, profile
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.runtime.executor import PipelineExecutor
from repro.sim import Op, Simulator, TaskGraph


def test_simulator_event_throughput(benchmark):
    """10k-op chain graph: engine should sustain >100k ops/s."""

    def build_and_run():
        g = TaskGraph()
        prev = None
        for i in range(10_000):
            g.add(Op(f"op{i}", 1e-6, resources=(f"gpu:{i % 8}",)))
            if prev:
                g.add_dep(prev, f"op{i}")
            prev = f"op{i}"
        return Simulator(g).run().makespan

    makespan = benchmark(build_and_run)
    assert makespan > 0


def test_latency_model_evaluation_speed(benchmark):
    prof = profile("bert48")
    clu = cluster("A")
    d = clu.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        64,
        32,
    )
    est = benchmark(lambda: evaluate_plan(prof, clu, plan))
    assert est.latency > 0


def test_planner_search_vgg_config_c(benchmark):
    prof = profile("vgg19")
    clu = cluster("C")
    res = benchmark.pedantic(
        lambda: Planner(prof, clu, 2048).search(), rounds=1, iterations=1
    )
    assert res.plan is not None


def test_planner_search_vgg_config_c_scalar(benchmark):
    """The reference scalar path, kept measurable for before/after deltas."""
    prof = profile("vgg19")
    clu = cluster("C")
    res = benchmark.pedantic(
        lambda: Planner(
            prof, clu, 2048, PlannerConfig(use_fast_scan=False)
        ).search(),
        rounds=1,
        iterations=1,
    )
    assert res.plan is not None


def test_planner_search_bert48_before_after():
    """BERT-48 / Config A: scalar vs per-state vs level-batched search.

    Asserts three-way bit-identity and the expected speedup ordering; the
    recorded artifact (``results/perf_planner.txt`` + ``.json``) is owned
    by the standalone ``benchmarks/perf_planner.py`` script, which measures
    the bigger Config B problem best-of-N.
    """
    prof = profile("bert48")
    clu = cluster("A")
    gbs = 64

    t0 = time.perf_counter()
    scalar = Planner(prof, clu, gbs, PlannerConfig(use_fast_scan=False)).search()
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    per_state = Planner(prof, clu, gbs, PlannerConfig(level_batch=False)).search()
    t_per_state = time.perf_counter() - t0
    t0 = time.perf_counter()
    level = Planner(prof, clu, gbs, PlannerConfig()).search()
    t_level = time.perf_counter() - t0

    for other in (scalar, per_state):
        assert level.estimate.latency == other.estimate.latency
        assert level.plan.notation == other.plan.notation
        assert level.plans_evaluated == other.plans_evaluated

    assert t_level < t_scalar
    assert t_per_state < t_scalar


def _bert48_pipeline_graph(num_micro_batches):
    """A large-M BERT-48 two-stage DAPPLE iteration graph (Config A).

    Uses ``config_a`` directly (micro-batches sharded per replica), which
    yields the ~66k-op graph shape that dominates sweep cost.
    """
    from repro.cluster import config_a
    from repro.models import get_model

    prof = profile_model(get_model("bert48"))
    clu = config_a(16)
    d = clu.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        2 * num_micro_batches,
        num_micro_batches,
    )
    return PipelineExecutor(prof, clu, plan, enforce_memory=False).build_graph()


def test_simulator_bert48_before_after():
    """BERT-48 / Config A, M=256 (~66k ops): reference vs compiled event
    loop, recorded to ``results/perf_sim.txt`` so the speedup is tracked
    in-repo.  Each engine simulates a freshly built graph — the sweep
    scenario the compiled engine was built for — and makespans must match
    exactly (the engines are bit-identical by contract)."""
    times = {}
    ops = 0
    makespans = {}
    for _ in range(2):
        for engine in ("reference", "compiled"):
            g = _bert48_pipeline_graph(256)
            ops = len(g)
            t0 = time.perf_counter()
            res = Simulator(g, engine=engine).run()
            dt = time.perf_counter() - t0
            times[engine] = min(dt, times.get(engine, dt))
            makespans[engine] = res.makespan

    assert makespans["compiled"] == makespans["reference"]
    t_ref = times["reference"]
    t_fast = times["compiled"]

    out = pathlib.Path(__file__).resolve().parent.parent / "results" / "perf_sim.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        f"simulator event loop, BERT-48 on Config A (16 GPUs), 2-stage DAPPLE "
        f"schedule, M=256 ({ops} ops)\n"
        f"before (reference drain-everything loop)  : {t_ref * 1e3:9.1f} ms "
        f"({t_ref / ops * 1e6:5.2f} us/op)\n"
        f"after  (compiled indexed + waiter queues) : {t_fast * 1e3:9.1f} ms "
        f"({t_fast / ops * 1e6:5.2f} us/op)\n"
        f"speedup                                   : {t_ref / t_fast:9.1f}x\n"
        f"methodology: each engine simulates a freshly built graph (the sweep\n"
        f"scenario), min of 2 runs, timing Simulator.run() only; makespans\n"
        f"verified identical ({makespans['compiled'] * 1e3:.2f} ms simulated)\n"
    )
    assert t_fast < t_ref / 2


def test_executor_two_stage_pipeline(benchmark):
    model = uniform_model("perf", 8, 9e9, 1_000_000, 1e6, profile_batch=2)
    clu = cluster("B", 2)
    prof = profile_model(model)
    plan = ParallelPlan(
        model,
        [Stage(0, 4, (clu.device(0),)), Stage(4, 8, (clu.device(1),))],
        64,
        32,
    )
    res = benchmark(lambda: execute_plan(prof, clu, plan))
    assert res.iteration_time > 0


def test_schedule_generation(benchmark):
    scheds = benchmark(lambda: dapple_schedule(16, 128))
    assert len(scheds) == 16


def test_pipeline_trainer_step(benchmark):
    from repro.training import Linear, PipelineTrainer, Sequential, Tanh, Tensor, mse_loss

    rng = np.random.default_rng(0)
    model = Sequential(
        Linear(32, 64, rng), Tanh(), Linear(64, 64, rng), Tanh(), Linear(64, 8, rng)
    )
    tr = PipelineTrainer(model, [2], num_micro_batches=4, replicas=[2, 1])
    x = rng.standard_normal((32, 32))
    y = rng.standard_normal((32, 8))

    def loss_fn(pred, target, normalizer):
        return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)

    loss, grads = benchmark(lambda: tr.step_gradients(x, y, loss_fn))
    assert len(grads) == 6

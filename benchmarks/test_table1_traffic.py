"""Table I: activation-vs-gradient traffic volume."""

from repro.experiments import table1, write_result


def test_table1_traffic(once):
    rows = once(table1.run)
    write_result("table1_traffic", table1.format_results(rows))
    for r in rows:
        # The paper's central asymmetry: gradients dwarf boundary
        # activations by orders of magnitude for every benchmark.
        assert r.gradient_bytes > 20 * r.activation_bytes
        if r.paper_gradient_bytes:
            assert abs(r.gradient_bytes - r.paper_gradient_bytes) / r.paper_gradient_bytes < 0.2

"""Table II: benchmark model inventory and profiling memory cost."""

from repro.experiments import table2, write_result


def test_table2_models(once):
    rows = once(table2.run)
    write_result("table2_models", table2.format_results(rows))
    for r in rows:
        assert abs(r.params - r.paper_params) / r.paper_params < 0.10
        assert abs(r.memory_bytes - r.paper_memory_bytes) / r.paper_memory_bytes < 0.30

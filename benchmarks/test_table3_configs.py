"""Table III: the calibrated hardware configurations."""

from repro.experiments import table3, write_result


def test_table3_configs(once):
    rows = once(table3.run)
    write_result("table3_configs", table3.format_results(rows))
    by = {r.config: r for r in rows}
    # Paper's Table III shape: A = 8 GPUs/server + NVLink + 25GbE;
    # B = 1 GPU/server + 25GbE; C = 1 GPU/server + 10GbE.
    assert by["A"].gpus_per_machine == 8
    assert by["B"].gpus_per_machine == 1
    assert by["C"].gpus_per_machine == 1
    assert by["A"].intra_bandwidth > 40 * by["A"].inter_bandwidth
    assert by["B"].inter_bandwidth == by["A"].inter_bandwidth
    assert by["C"].inter_bandwidth < by["B"].inter_bandwidth
    # All three expose the paper's 16 GB V100.
    for r in rows:
        assert r.gpu == "V100"
        assert r.gpu_memory_bytes == 16 * 2**30

"""Table IV: warm-up policy PB vs PA throughput on Config-A."""

from repro.experiments import table4, write_result


def test_table4_scheduling_policy(once):
    rows = once(table4.run)
    write_result("table4_scheduling_policy", table4.format_results(rows))
    by_model = {r.model: r for r in rows}
    # PB never loses (it only adds warm-up depth).
    for r in rows:
        assert r.speedup >= 0.99
    # The high-ACR model (GNMT) gains the most, the low-ACR transformers
    # the least — the paper's Table IV ordering.
    assert by_model["GNMT-16"].speedup >= by_model["BERT-48"].speedup
    assert by_model["GNMT-16"].speedup > 1.1

"""Table V: DAPPLE planning results for all six models on configs A/B/C."""

from repro.experiments import table5, write_result


def test_table5_planning(once):
    rows = once(table5.run)
    write_result("table5_planning", table5.format_results(rows))

    by_key = {(r.model, r.config): r for r in rows}

    # ResNet-50: DP everywhere (small gradients, dense compute).
    for cfg in "ABC":
        assert by_key[("ResNet-50", cfg)].free_plan == "DP"

    # Big language models on Config-A land on the hierarchical two-stage
    # 8:8-style hybrid in the paper family.
    for model in ("GNMT-16", "BERT-48", "XLNet-36"):
        fam = by_key[(model, "A")].family_plan
        assert fam not in ("DP", "straight")

    # AmoebaNet cannot run data-parallel (OOM on one device).
    for cfg in "ABC":
        assert by_key[("AmoebaNet-36", cfg)].free_plan != "DP"

    # Overall agreement with the paper's published plans.
    matches = sum(r.matches_paper for r in rows)
    assert matches >= 10, f"only {matches}/18 plans match the paper"


def test_planner_search_speed(benchmark):
    """The paper claims planning is 'offline … within a few seconds'."""
    from repro.core import Planner
    from repro.experiments.common import cluster, profile

    prof = profile("gnmt16")
    clu = cluster("A")
    result = benchmark(lambda: Planner(prof, clu, 1024).search())
    assert result.plan is not None

"""Table VI: DAPPLE vs GPipe throughput and peak memory on BERT-48."""

from repro.experiments import table6, write_result


def test_table6_gpipe_comparison(once):
    rows = once(table6.run)
    write_result("table6_gpipe", table6.format_results(rows))

    def pick(system, m):
        return next(r for r in rows if r.system == system and r.num_micro_batches == m)

    # GPipe peak memory grows with M and eventually OOMs.
    assert pick("GPipe", 2).avg_peak_memory < pick("GPipe", 5).avg_peak_memory
    assert pick("GPipe", 8).oom

    # DAPPLE's peak memory is independent of M (early backward bound).
    da = [pick("DAPPLE", m) for m in (2, 8, 16)]
    assert max(r.avg_peak_memory for r in da) - min(r.avg_peak_memory for r in da) < 1e6

    # DAPPLE at M=16 beats every GPipe point on throughput with less memory
    # than GPipe's last non-OOM point (paper: 1.6x speedup at 0.88x memory
    # vs GPipe's M=2 ceiling; our calibrated activations let GPipe survive
    # to M=5, so the margin over *best* GPipe is smaller but still strict).
    best_gpipe = max((r for r in rows if r.system == "GPipe" and not r.oom),
                     key=lambda r: r.throughput)
    assert pick("DAPPLE", 16).throughput > 1.3 * pick("GPipe", 2).throughput
    assert pick("DAPPLE", 16).throughput > 1.05 * best_gpipe.throughput
    assert pick("DAPPLE", 16).avg_peak_memory < best_gpipe.avg_peak_memory

    # Re-computation costs ~20-30 % throughput on either schedule.
    for system in ("GPipe", "DAPPLE"):
        base = pick(system, 2)
        rc = pick(f"{system}+RC", 2)
        assert 0.6 < rc.throughput / base.throughput < 0.9

    # DAPPLE+RC is the smallest footprint of all configurations.
    smallest = min(r.avg_peak_memory for r in rows if not r.oom)
    assert pick("DAPPLE+RC", 16).avg_peak_memory == smallest

"""Table VII: planner strategy comparison, DAPPLE vs PipeDream (2x8)."""

from repro.experiments import table7, write_result


def test_table7_strategy_comparison(once):
    rows = once(table7.run, machine_counts=(2,))
    write_result("table7_strategies", table7.format_results(rows))
    for r in rows:
        # DAPPLE's strategies win under synchronous evaluation (§VI-F).
        assert r.advantage >= 1.0, f"{r.model}: PipeDream won ({r.advantage:.2f}x)"
    # And by a meaningful margin somewhere (paper: up to 3.23x).
    assert max(r.advantage for r in rows) > 1.3

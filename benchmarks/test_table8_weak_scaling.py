"""Table VIII: weak scaling — maximum BERT depth per pipeline size."""

from repro.experiments import table8, write_result


def test_table8_weak_scaling(once):
    rows = once(table8.run)
    write_result("table8_weak_scaling", table8.format_results(rows))
    by_p = {r.pipeline_devices: r for r in rows}

    # Depth grows monotonically with pipeline size...
    depths = [by_p[p].max_layers for p in (1, 2, 4, 8)]
    assert depths == sorted(depths)

    # ...approximately linearly (BERT's params distribute evenly).
    per_dev = [by_p[p].max_layers / p for p in (1, 2, 4, 8)]
    assert max(per_dev) / min(per_dev) < 1.15

    # Within 30 % of the paper's absolute depths (48/106/215/428) — our
    # stored-activation calibration is slightly lighter, so all pipeline
    # sizes fit ~13 % more layers, uniformly.
    for p, r in by_p.items():
        assert abs(r.max_layers - r.paper_max_layers) / r.paper_max_layers <= 0.30

    # Multi-billion-parameter models fit an 8-GPU pipeline (paper: 5.5B).
    assert by_p[8].params > 4e9

    # Utilization dips only slightly as the pipeline deepens.
    assert by_p[8].avg_gpu_utilization > 0.8
    assert by_p[1].avg_gpu_utilization >= by_p[8].avg_gpu_utilization

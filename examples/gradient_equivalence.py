#!/usr/bin/env python
"""Convergence preservation: pipelined training == full-batch training.

The paper argues (§VI-A) that DAPPLE's optimizations "give equivalent
gradients for training when keeping global batch size fixed and thus
convergence is safely preserved".  This example makes the claim concrete:

1. train a classifier on synthetic data with plain single-device SGD;
2. train an identical copy with a DAPPLE pipeline — 3 stages, one of them
   2-way replicated with micro-batch slicing, 4 micro-batches per step,
   early-backward scheduling, gradient accumulation + AllReduce;
3. show the two runs produce numerically identical parameters step by step.

Run:  python examples/gradient_equivalence.py
"""

import numpy as np

from repro.training import (
    SGD,
    Linear,
    PipelineTrainer,
    Sequential,
    Tanh,
    sequential_step_gradients,
    softmax_cross_entropy,
)


def make_model(seed: int) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(16, 64, rng), Tanh(),
        Linear(64, 64, rng), Tanh(),
        Linear(64, 4, rng),
    )


def make_dataset(n=256, seed=42):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 16))
    # Nonlinear 4-class labels.
    scores = np.stack(
        [x[:, :4].sum(1), np.sin(x[:, 4:8]).sum(1), (x[:, 8:12] ** 2).sum(1), x[:, 12:].sum(1)],
        axis=1,
    )
    return x, scores.argmax(1)


def loss_fn(pred, labels, normalizer):
    return softmax_cross_entropy(pred, labels, normalizer=normalizer)


def main() -> None:
    x, y = make_dataset()
    seq_model, pipe_model = make_model(7), make_model(7)
    seq_opt = SGD(seq_model.parameters(), lr=0.1, momentum=0.9)
    pipe_opt = SGD(pipe_model.parameters(), lr=0.1, momentum=0.9)

    # 3 stages (splits after module 1 and 3), stage 1 replicated 2-way.
    trainer = PipelineTrainer(
        pipe_model, split_points=[1, 3], num_micro_batches=4, replicas=[1, 2, 1]
    )
    print(f"pipeline: {trainer.num_stages} stages, replicas {trainer.replicas}, "
          f"M={trainer.num_micro_batches}")
    print(f"{'step':>4s} {'seq loss':>10s} {'pipe loss':>10s} {'max |Δparam|':>14s}")

    for step in range(20):
        seq_loss, grads = sequential_step_gradients(seq_model, x, y, loss_fn)
        seq_opt.step(grads)
        pipe_loss = trainer.train_step(x, y, loss_fn, pipe_opt)
        max_delta = max(
            float(np.abs(ps.data - pp.data).max())
            for ps, pp in zip(seq_model.parameters(), pipe_model.parameters())
        )
        if step % 4 == 0 or step == 19:
            print(f"{step:>4d} {seq_loss:>10.6f} {pipe_loss:>10.6f} {max_delta:>14.2e}")

    assert max_delta < 1e-8, "pipelined training diverged from sequential!"
    print("\npipelined parameters identical to sequential training "
          f"(max deviation {max_delta:.2e}) — convergence is preserved.")


if __name__ == "__main__":
    main()

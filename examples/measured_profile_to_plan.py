#!/usr/bin/env python
"""The full DAPPLE workflow on real code: measure → plan → verify.

1. build a real numpy MLP and *measure* its per-layer forward/backward
   times, activation sizes and parameter counts on this machine — exactly
   what the paper's profiler does on GPUs (Fig. 1);
2. feed the measured profile to the DAPPLE planner to pick a pipeline
   split for a 4-device cluster;
3. execute the planned split numerically with the gradient-equivalent
   pipeline trainer and confirm the loss matches single-device training.

Run:  python examples/measured_profile_to_plan.py
"""

import numpy as np

from repro.cluster import config_b
from repro.core import Planner, PlannerConfig, profile_model
from repro.training import (
    Adam,
    Linear,
    PipelineTrainer,
    Sequential,
    Tanh,
    Tensor,
    mse_loss,
    sequential_step_gradients,
)
from repro.training.empirical_profiler import profile_sequential


def main() -> None:
    rng = np.random.default_rng(0)
    model = Sequential(
        Linear(64, 512, rng), Tanh(),
        Linear(512, 512, rng), Tanh(),
        Linear(512, 512, rng), Tanh(),
        Linear(512, 8, rng),
    )
    sample = rng.standard_normal((64, 64))

    # 1. Measure.
    graph = profile_sequential(model, sample, name="measured-mlp")
    print("measured per-layer profile:")
    for spec in graph.layers:
        print(f"  {spec.name:12s} {spec.flops_fwd/1e6:9.2f} MFLOP/sample  "
              f"{spec.params:>8d} params  {spec.activation_out_bytes:>7.0f} B act")

    # 2. Plan a forced pipeline over 4 simulated devices.
    cluster = config_b(4)
    prof = profile_model(graph)
    result = Planner(prof, cluster, 256, PlannerConfig(min_stages=2)).search()
    plan = result.plan
    print(f"\nplanned pipeline: {plan.notation} (module split "
          f"{plan.split_notation}), estimated {result.estimate.latency*1e3:.2f} ms")

    # 3. Execute the planned split numerically and verify equivalence.
    x = rng.standard_normal((256, 64))
    y = rng.standard_normal((256, 8))

    def loss_fn(pred, target, normalizer):
        return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)

    trainer = PipelineTrainer(
        model,
        split_points=plan.split_positions,
        num_micro_batches=min(plan.num_micro_batches, 8),
        replicas=[s.replicas for s in plan.stages],
    )
    ref_loss, ref_grads = sequential_step_gradients(model, x, y, loss_fn)
    loss, grads = trainer.step_gradients(x, y, loss_fn)
    err = max(float(np.abs(a - b).max()) for a, b in zip(grads, ref_grads))
    print(f"pipelined loss {loss:.6f} vs sequential {ref_loss:.6f} "
          f"(max grad deviation {err:.2e})")
    assert err < 1e-9
    print("the planner's split trains with exactly the gradients of "
          "single-device full-batch training.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Early backward scheduling: GPipe vs DAPPLE memory behaviour (paper Fig. 3).

Builds a 4-stage pipeline over XLNet-36 on four single-V100 servers, runs
the same plan under the GPipe schedule and the DAPPLE early-backward
schedule (plus re-computation variants), and renders Gantt charts and
memory curves side by side.

Run:  python examples/memory_schedules.py
"""

from repro.baselines import gpipe_plan
from repro.cluster import config_b
from repro.core import profile_model
from repro.models import xlnet36
from repro.runtime import execute_plan
from repro.runtime.memory import OutOfMemoryError
from repro.viz import render_gantt, render_memory_curve


def main() -> None:
    model = xlnet36()
    prof = profile_model(model)
    cluster = config_b(4)
    plan = gpipe_plan(prof, cluster, global_batch_size=16, num_stages=4,
                      micro_batch_size=1)
    print(f"plan: {plan.notation}, layers {plan.split_notation}, "
          f"M={plan.num_micro_batches} micro-batches of "
          f"{plan.micro_batch_size:.0f} sample(s)\n")

    runs = {}
    for label, schedule, rc in [
        ("GPipe", "gpipe", False),
        ("GPipe+RC", "gpipe", True),
        ("DAPPLE", "dapple", False),
        ("DAPPLE+RC", "dapple", True),
    ]:
        try:
            runs[label] = execute_plan(prof, cluster, plan, schedule=schedule,
                                       recompute=rc, warmup_policy="PB")
        except OutOfMemoryError as e:
            print(f"{label:10s}: OOM ({e})")

    print(f"{'schedule':10s} {'iteration':>12s} {'throughput':>12s} {'peak mem':>10s}")
    for label, res in runs.items():
        peak = max(res.peak_memory_per_device().values())
        print(f"{label:10s} {res.iteration_time*1e3:>10.1f}ms "
              f"{res.throughput:>10.2f}/s {peak/2**30:>8.2f}GiB")

    for label in ("GPipe", "DAPPLE"):
        if label in runs:
            print(f"\n{label} schedule:")
            print(render_gantt(runs[label].trace, width=100))
            print(render_memory_curve(runs[label].memory, "gpu:0",
                                      label=f"{label} GPU0", height=8))


if __name__ == "__main__":
    main()

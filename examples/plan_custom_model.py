#!/usr/bin/env python
"""Planning a custom model: bring your own layer graph.

Defines a GPT-style decoder stack that does not exist in the zoo, profiles
it, and asks the planner for the best hybrid strategy on each of the three
hardware configurations — then prints *why* each plan wins by comparing it
against pure data parallelism and a straight pipeline.

Run:  python examples/plan_custom_model.py
"""

from repro.cluster import config_by_name
from repro.core import Planner, profile_model
from repro.core.latency import evaluate_plan
from repro.models import LayerGraph
from repro.models.blocks import embedding_layer, fc_layer, transformer_encoder_layer
from repro.runtime.dataparallel import dp_iteration_time, single_device_time


def gpt_medium(num_layers: int = 24, hidden: int = 1536, seq_len: int = 1024) -> LayerGraph:
    """A ~460M-parameter GPT-style stack at planner granularity."""
    layers = [embedding_layer("embedding", vocab=50257, hidden=hidden, seq_len=seq_len)]
    layers += [
        transformer_encoder_layer(f"block{i}", hidden=hidden, seq_len=seq_len, heads=16)
        for i in range(num_layers)
    ]
    layers.append(fc_layer("ln_head", hidden, hidden))
    return LayerGraph(name="GPT-medium", layers=layers, profile_batch=2, optimizer="adam")


def main() -> None:
    model = gpt_medium()
    prof = profile_model(model)
    gbs = 128
    print(f"{model!r}, global batch {gbs}\n")

    for cfg in "ABC":
        cluster = config_by_name(cfg, 16)
        planner = Planner(prof, cluster, gbs)
        best = planner.search()
        plan = best.plan

        t_single = single_device_time(prof, gbs)
        dp = dp_iteration_time(prof, cluster, cluster.devices, gbs, overlap=True)
        lines = [
            f"Config {cfg} ({cluster!r})",
            f"  best plan     : {plan.notation} (layers {plan.split_notation}), "
            f"L={best.estimate.latency*1e3:.0f} ms, "
            f"speedup {t_single/best.estimate.latency:.1f}x",
            f"  vs DP+overlap : {dp.iteration_time*1e3:.0f} ms "
            f"(speedup {t_single/dp.iteration_time:.1f}x, "
            f"AllReduce exposed {dp.allreduce_exposed*1e3:.0f} ms)",
        ]
        straight = planner.straight_plan()
        if straight is not None:
            est = evaluate_plan(prof, cluster, straight)
            lines.append(
                f"  vs straight   : {est.latency*1e3:.0f} ms "
                f"(speedup {t_single/est.latency:.1f}x)"
            )
        lines.append(
            f"  verdict       : hybrid beats best alternative by "
            f"{min(dp.iteration_time, est.latency)/best.estimate.latency:.2f}x"
        )
        print("\n".join(lines) + "\n")


if __name__ == "__main__":
    main()

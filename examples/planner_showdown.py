#!/usr/bin/env python
"""Planner showdown: DAPPLE vs PipeDream under synchronous training.

Reproduces the paper's §VI-F methodology interactively: both planners get
the same profile and cluster; both output strategies run on the DAPPLE
runtime simulator; the synchronous pipeline latency decides the winner.

Run:  python examples/planner_showdown.py [model] [gbs]
"""

import sys

from repro.baselines import pipedream_plan
from repro.cluster import config_a
from repro.core import Planner, profile_model
from repro.models import get_model
from repro.runtime import execute_plan
from repro.runtime.dataparallel import single_device_time
from repro.runtime.memory import OutOfMemoryError


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bert-large"
    gbs = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    model = get_model(name)
    prof = profile_model(model)
    cluster = config_a(2)
    t_single = single_device_time(prof, gbs)
    print(f"{model!r} on {cluster!r}, GBS={gbs}\n")

    dap = Planner(prof, cluster, gbs).search()
    print(f"DAPPLE plan    : {dap.plan.notation} (layers {dap.plan.split_notation})")
    print(f"  searched {dap.plans_evaluated} candidate plans "
          f"({dap.infeasible_plans} memory-infeasible)")

    pd = pipedream_plan(prof, cluster, gbs)
    print(f"PipeDream plan : {pd.plan.notation} "
          f"(stage bounds {pd.stage_layer_bounds})")
    print(f"  optimized async bottleneck: {pd.bottleneck_time*1e3:.2f} ms\n")

    results = {}
    for label, plan in [("DAPPLE", dap.plan), ("PipeDream", pd.plan)]:
        try:
            res = execute_plan(prof, cluster, plan, warmup_policy="PB")
            results[label] = res
            print(f"{label:10s}: iteration {res.iteration_time*1e3:8.1f} ms, "
                  f"speedup {t_single/res.iteration_time:5.1f}x vs 1 GPU")
        except OutOfMemoryError as e:
            print(f"{label:10s}: OOM under synchronous execution ({e})")

    if len(results) == 2:
        adv = results["PipeDream"].iteration_time / results["DAPPLE"].iteration_time
        print(f"\nDAPPLE's strategy is {adv:.2f}x faster under synchronous "
              "training — PipeDream's asynchronous objective ignores "
              "warm-up/drain bubbles and the end-of-batch AllReduce (§VI-F).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: plan and simulate hybrid-parallel training in three lines.

Plans BERT-48 on a 2x8-V100 cluster (the paper's Config-A), executes one
training iteration on the discrete-event simulator, and reports the chosen
strategy, throughput, memory, and a Gantt chart of the pipeline.

Run:  python examples/quickstart.py
"""

from repro import plan_and_run
from repro.viz import render_gantt


def main() -> None:
    result = plan_and_run("bert48", hardware="A", global_batch_size=64)

    plan = result.plan
    ex = result.execution
    print(f"model        : {result.model.name} ({result.model.total_params/1e6:.0f}M params)")
    print(f"cluster      : {result.cluster!r}")
    print(f"chosen plan  : {plan.notation} (layers {plan.split_notation}, "
          f"M={plan.num_micro_batches} micro-batches)")
    for i, stage in enumerate(plan.stages):
        devs = ",".join(str(d.global_id) for d in stage.devices)
        print(f"  stage {i}: layers [{stage.layer_lo}, {stage.layer_hi}) "
              f"on GPUs [{devs}]")
    print(f"iteration    : {ex.iteration_time*1e3:.1f} ms "
          f"({ex.throughput:.1f} samples/s)")
    peak = max(ex.peak_memory_per_device().values())
    print(f"peak memory  : {peak/2**30:.2f} GiB (16 GiB devices)")
    print(f"planner ACR  : {result.planning.estimate.acr:.3f}")
    print()
    print("pipeline schedule (first 2 devices per stage):")
    keys = [s.devices[0].resource_key for s in plan.stages]
    print(render_gantt(ex.trace, width=100, resources=keys))


if __name__ == "__main__":
    main()

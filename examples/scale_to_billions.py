#!/usr/bin/env python
"""Weak scaling: how big a BERT fits a DAPPLE pipeline? (paper Table VIII)

Grows BERT's encoder depth until the pipeline no longer fits 16 GB V100s
(with boundary re-computation), for pipelines of 1/2/4/8 GPUs, then
simulates the largest model and reports per-device memory and utilization.

Run:  python examples/scale_to_billions.py
"""

from repro.baselines import gpipe_plan
from repro.core import profile_model
from repro.experiments.table8 import max_depth
from repro.experiments.common import cluster
from repro.models import bert_layers
from repro.runtime import execute_plan
from repro.runtime.analysis import analyze


def main() -> None:
    print(f"{'pipeline':>9s} {'max BERT-L':>10s} {'params':>8s} {'16B/param':>10s}")
    depths = {}
    for p in (1, 2, 4, 8):
        layers = max_depth(p)
        depths[p] = layers
        model = bert_layers(layers)
        print(f"{p:>9d} {layers:>10d} {model.total_params/1e9:>7.2f}B "
              f"{model.total_params*16/2**30:>9.1f}G")

    # Simulate the largest configuration slightly below the ceiling.
    p = 8
    layers = int(depths[p] * 0.88)
    model = bert_layers(layers)
    prof = profile_model(model)
    clu = cluster("A", 8)
    plan = gpipe_plan(prof, clu, 2 * 8 * p, num_stages=p, micro_batch_size=2)
    res = execute_plan(prof, clu, plan, recompute="boundary")
    print(f"\nsimulating BERT-{layers} ({model.total_params/1e9:.2f}B params) "
          f"on an 8-GPU pipeline with re-computation:")
    print(analyze(res).summary())
    peaks = res.peak_memory_per_device()
    print("per-device peak memory: " + ", ".join(
        f"{k.split(':')[1]}:{v/2**30:.1f}G" for k, v in sorted(peaks.items())
    ))


if __name__ == "__main__":
    main()

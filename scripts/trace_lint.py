#!/usr/bin/env python
"""Static span-name lint (run in CI).

Walks every ``*.py`` under ``src/`` with :mod:`ast` (so docstrings and
comments can't false-positive) collecting the literal first argument of
``span(...)``, ``add_span(...)``, and ``start_trace(...)`` calls, then
asserts:

1. every literal span name matches the documented ``component.operation``
   naming convention (lowercase, exactly one dot);
2. every literal span name is registered in
   ``repro.obs.schema.SPAN_NAMES`` — under its own component key;
3. nothing registered in ``SPAN_NAMES`` has gone stale (registered but no
   longer emitted anywhere in ``src/``).

It also lints the schedule registry: every schedule registered in
``repro.schedules`` must be exercised by name in at least one conformance
test under ``tests/`` — a schedule nobody tests is a schedule nobody can
trust, and this is the backstop that forces a conformance test to land in
the same change that registers a new schedule.

Exit code 0 = clean, 1 = violations (printed one per line).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

#: ``component.operation``: lowercase identifiers, exactly one dot.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")

#: Calls whose literal first argument is a span name.
SPAN_CALLS = frozenset({"span", "add_span", "start_trace"})


def literal_span_names(tree: ast.AST):
    """Yield ``(name, lineno)`` for every literal span-opening call."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        called = (func.attr if isinstance(func, ast.Attribute)
                  else getattr(func, "id", None))
        if called not in SPAN_CALLS:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield first.value, node.lineno


def run_lint(src: Path = SRC) -> list[str]:
    sys.path.insert(0, str(src))
    from repro.obs.schema import SPAN_NAMES, span_names

    registered = span_names()
    errors: list[str] = []
    used: set[str] = set()
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(src.parent)
        tree = ast.parse(path.read_text(), filename=str(path))
        for name, lineno in literal_span_names(tree):
            used.add(name)
            if not NAME_RE.match(name):
                errors.append(
                    f"{rel}:{lineno}: span name {name!r} does not match the "
                    f"component.operation convention"
                )
                continue
            if name not in registered:
                errors.append(
                    f"{rel}:{lineno}: span name {name!r} is not registered "
                    f"in repro.obs.schema.SPAN_NAMES"
                )
    for component, names in SPAN_NAMES.items():
        for name in names:
            if not name.startswith(component + "."):
                errors.append(
                    f"schema.SPAN_NAMES[{component!r}]: {name!r} registered "
                    f"under the wrong component"
                )
            if name not in used:
                errors.append(
                    f"schema.SPAN_NAMES[{component!r}]: {name!r} is "
                    f"registered but never emitted anywhere in src/"
                )
    return errors


def run_schedule_lint(src: Path = SRC, tests: Path = ROOT / "tests") -> list[str]:
    """Every registered schedule name must appear in a tests/ string literal.

    String literals only (via ``ast``), so a comment mentioning a schedule
    does not satisfy the check — a test has to actually name it in a spec,
    a parametrize list, or an assertion.
    """
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.schedules import schedule_names

    literals: set[str] = set()
    for path in sorted(tests.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                # "zb2bp:w=0.4" should count as coverage of "zb2bp".
                literals.add(node.value.partition(":")[0].strip().lower())
    return [
        f"schedule registry: {name!r} is registered in repro.schedules but "
        f"no test under tests/ references it by name"
        for name in schedule_names()
        if name not in literals
    ]


def main() -> int:
    errors = run_lint() + run_schedule_lint()
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"trace lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("trace lint: all span names conform and are registered; "
          "all registered schedules have conformance tests")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""DAPPLE reproduction: pipelined data-parallel training for large models.

A faithful, fully-simulated reproduction of *DAPPLE: A Pipelined Data
Parallel Approach for Training Large Models* (Fan et al., PPoPP 2021):

* :mod:`repro.core` — the paper's contribution: profiler, pipeline-latency
  model (eq. 1–3), topology-aware placement, DP planner, and the
  early-backward micro-batch scheduler;
* :mod:`repro.cluster` — the hardware substrate (Table III configs,
  interconnects, collectives);
* :mod:`repro.sim` / :mod:`repro.runtime` — a deterministic discrete-event
  executor standing in for the paper's TF runtime;
* :mod:`repro.models` — the six benchmark models calibrated to Tables I–II;
* :mod:`repro.baselines` — PipeDream's planner and GPipe's partitioner;
* :mod:`repro.training` — numpy autograd + pipelined trainer proving the
  gradient-equivalence claim;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import plan_and_run
    result = plan_and_run("bert48", hardware="A", global_batch_size=64)
    print(result.plan.notation, result.execution.throughput)
"""

from dataclasses import dataclass

from repro.cluster import Cluster, config_by_name
from repro.core import (
    ParallelPlan,
    Planner,
    PlannerConfig,
    profile_model,
)
from repro.core.planner import PlanResult, plan_best, plan_paper_family
from repro.models import LayerGraph, get_model
from repro.runtime import ExecutionResult, execute_plan

__version__ = "1.0.0"


@dataclass
class PlanAndRunResult:
    """Bundled output of :func:`plan_and_run`."""

    model: LayerGraph
    cluster: Cluster
    plan: ParallelPlan
    planning: PlanResult
    execution: ExecutionResult


def plan_and_run(
    model: str | LayerGraph,
    hardware: str | Cluster = "A",
    global_batch_size: int | None = None,
    num_devices: int = 16,
    planner_config: PlannerConfig | None = None,
    schedule: str = "dapple",
    warmup_policy: str = "PA",
    recompute: bool = False,
) -> PlanAndRunResult:
    """Plan and simulate one training iteration end to end.

    Parameters
    ----------
    model:
        A registry name (``"bert48"``, ``"vgg19"``, …) or a custom
        :class:`~repro.models.LayerGraph`.
    hardware:
        Table III config letter (``"A"``/``"B"``/``"C"``) or a custom
        :class:`~repro.cluster.Cluster`.
    global_batch_size:
        Defaults to the paper's per-model GBS (Table V).
    """
    graph = get_model(model) if isinstance(model, str) else model
    cluster = (
        config_by_name(hardware, num_devices) if isinstance(hardware, str) else hardware
    )
    if global_batch_size is None:
        from repro.models import PAPER_FIGURES

        key = model if isinstance(model, str) else None
        if key is None or key not in PAPER_FIGURES:
            raise ValueError("global_batch_size required for custom models")
        global_batch_size = PAPER_FIGURES[key].global_batch_size

    profile = profile_model(graph)
    planning = Planner(profile, cluster, global_batch_size, planner_config).search()
    execution = execute_plan(
        profile,
        cluster,
        planning.plan,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
    )
    return PlanAndRunResult(
        model=graph,
        cluster=cluster,
        plan=planning.plan,
        planning=planning,
        execution=execution,
    )


__all__ = [
    "plan_and_run",
    "PlanAndRunResult",
    "Planner",
    "PlannerConfig",
    "plan_best",
    "plan_paper_family",
    "profile_model",
    "execute_plan",
    "get_model",
    "config_by_name",
    "__version__",
]

"""Comparison baselines: PipeDream's planner and GPipe's partitioner."""

from repro.baselines.gpipe_partition import balanced_partition, gpipe_plan
from repro.baselines.pipedream import (
    HierarchicalPipeDreamPlanner,
    PipeDreamPlanner,
    pipedream_plan,
    pipedream_plan_hierarchical,
)

__all__ = [
    "balanced_partition",
    "gpipe_plan",
    "HierarchicalPipeDreamPlanner",
    "PipeDreamPlanner",
    "pipedream_plan",
    "pipedream_plan_hierarchical",
]

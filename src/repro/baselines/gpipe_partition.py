"""GPipe-style partitioner: block partitioning of sequences.

torchgpipe (the paper's GPipe reference implementation) balances per-layer
costs into contiguous blocks using "Block Partitions of Sequences"
(Bárány & Grinberg).  We solve the min-max contiguous-partition problem
exactly with a small DP — for the ≤50-layer planner graphs this is
instantaneous and gives the best partition that family can express.

GPipe has no replication concept: ``S`` balanced stages on ``S`` devices.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Cluster
from repro.core.plan import ParallelPlan, Stage
from repro.core.profiler import ModelProfile


def balanced_partition(costs: list[float], num_blocks: int) -> list[int]:
    """Split ``costs`` into ``num_blocks`` contiguous blocks minimizing the
    maximum block sum.  Returns ``num_blocks + 1`` boundary indices.
    """
    n = len(costs)
    if not (1 <= num_blocks <= n):
        raise ValueError(f"cannot split {n} items into {num_blocks} blocks")
    prefix = np.zeros(n + 1)
    np.cumsum(np.asarray(costs, dtype=float), out=prefix[1:])

    # dp[k][j] = minimal max-block-sum splitting the first j items into k.
    inf = float("inf")
    dp = np.full((num_blocks + 1, n + 1), inf)
    cut = np.zeros((num_blocks + 1, n + 1), dtype=int)
    dp[0][0] = 0.0
    for k in range(1, num_blocks + 1):
        for j in range(k, n - (num_blocks - k) + 1):
            for i in range(k - 1, j):
                cand = max(dp[k - 1][i], prefix[j] - prefix[i])
                if cand < dp[k][j]:
                    dp[k][j] = cand
                    cut[k][j] = i
    bounds = [n]
    j = n
    for k in range(num_blocks, 0, -1):
        j = int(cut[k][j])
        bounds.append(j)
    return list(reversed(bounds))


def gpipe_plan(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    num_stages: int | None = None,
    micro_batch_size: int | None = None,
) -> ParallelPlan:
    """Build the GPipe-style plan: ``num_stages`` balanced stages.

    Defaults to one stage per device (GPipe's usual deployment).  Stage
    cost is per-layer forward+backward time, the quantity torchgpipe
    balances from its profiling pass.
    """
    g = cluster.num_devices
    s = num_stages if num_stages is not None else min(g, profile.num_layers)
    if s > g:
        raise ValueError(f"{s} stages need {s} devices but cluster has {g}")
    costs = [
        profile.fwd_time(i, i + 1, 1.0) + profile.bwd_time(i, i + 1, 1.0)
        for i in range(profile.num_layers)
    ]
    bounds = balanced_partition(costs, s)
    devices = cluster.devices
    stages = [Stage(bounds[i], bounds[i + 1], (devices[i],)) for i in range(s)]
    mbs = micro_batch_size or profile.graph.profile_batch
    m = max(1, global_batch_size // mbs)
    while global_batch_size % m != 0:
        m -= 1
    return ParallelPlan(
        model=profile.graph,
        stages=stages,
        global_batch_size=global_batch_size,
        num_micro_batches=m,
    )

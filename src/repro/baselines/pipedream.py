"""PipeDream's pipeline planner (Narayanan et al., SOSP'19), as the paper's
comparison baseline (§VI-F, Table VII, Fig. 13).

PipeDream optimizes *asynchronous steady-state throughput*: it partitions
layers into stages (each optionally replicated) to minimize the slowest
pipeline component,

``A(j, m) = min over (i, m') of max( A(i, m−m'),  C_i,  T(i..j, m') )``

where ``T`` is the replicated stage's per-batch time including its own
weight-synchronization cost, and ``C_i`` the inter-stage activation
transfer.  Crucially — as the DAPPLE paper points out — this objective
models neither the warm-up/drain bubbles of *synchronous* pipelines nor
the end-of-batch gradient AllReduce, which is why its plans lose to
DAPPLE's under synchronous evaluation (we evaluate both under the DAPPLE
runtime, exactly like the paper's §VI-F methodology).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cluster.topology import Cluster
from repro.core.plan import ParallelPlan, Stage
from repro.core.profiler import ModelProfile


@dataclass
class PipeDreamResult:
    """Planner output: the plan plus the optimized (async) bottleneck time."""

    plan: ParallelPlan
    bottleneck_time: float
    stage_layer_bounds: list[int]
    stage_replicas: list[int]


class PipeDreamPlanner:
    """DP over (layers-prefix, machines) minimizing the slowest component."""

    def __init__(
        self,
        profile: ModelProfile,
        cluster: Cluster,
        global_batch_size: int,
        micro_batch_size: int | None = None,
    ):
        self.profile = profile
        self.cluster = cluster
        self.gbs = global_batch_size
        self.mbs = micro_batch_size or profile.graph.profile_batch

    # ------------------------------------------------------------------ #
    # Cost terms (per micro-batch of self.mbs samples)
    # ------------------------------------------------------------------ #
    def _sync_bandwidth(self, workers: int) -> float:
        """Bandwidth for a contiguous ``workers``-GPU replica group."""
        if workers <= self.cluster.gpus_per_machine:
            return self.cluster.machines[0].intra_bw
        return self.cluster.inter.bandwidth

    def stage_time(self, lo: int, hi: int, workers: int) -> float:
        """Replicated stage time: compute split ``workers`` ways + weight sync.

        PipeDream's model: ``(Σ compute) / m'`` plus the data-parallel
        synchronization volume ``4·(m'−1)·|W| / (m'·B)`` amortized over the
        replicas.
        """
        compute = self.profile.fwd_time(lo, hi, self.mbs) + self.profile.bwd_time(
            lo, hi, self.mbs
        )
        t = compute / workers
        if workers > 1:
            # Async PipeDream synchronizes weights every mini-batch — there
            # is no gradient accumulation to amortize the volume over.
            w = self.profile.param_bytes(lo, hi)
            t += 4.0 * (workers - 1) * w / (workers * self._sync_bandwidth(workers))
        return t

    def comm_time(self, split: int) -> float:
        """Inter-stage activation transfer (forward + backward)."""
        nbytes = self.profile.boundary_bytes(split, self.mbs)
        return 2.0 * (self.cluster.inter.latency + nbytes / self.cluster.inter.bandwidth)

    # ------------------------------------------------------------------ #
    # DP
    # ------------------------------------------------------------------ #
    def solve(self) -> PipeDreamResult:
        n = self.profile.num_layers
        g = self.cluster.num_devices

        @lru_cache(maxsize=None)
        def best(j: int, m: int) -> tuple[float, tuple]:
            """Optimal (bottleneck, decisions) for layers [0, j) on m GPUs.

            decisions is a tuple of (split_lo, workers) stage descriptors.
            """
            if j == 0:
                return (0.0, ()) if m == 0 else (float("inf"), ())
            out = (float("inf"), ())
            # Last stage covers [i, j) replicated on m' workers.
            for i in range(j):
                for workers in range(1, m + 1):
                    if i == 0 and m - workers != 0:
                        continue  # all GPUs must be used
                    prev, decisions = best(i, m - workers) if i > 0 else (0.0, ())
                    if prev == float("inf"):
                        continue
                    terms = [prev, self.stage_time(i, j, workers)]
                    if i > 0:
                        terms.append(self.comm_time(i))
                    cand = max(terms)
                    if cand < out[0]:
                        out = (cand, decisions + ((i, workers),))
            return out

        bottleneck, decisions = best(n, g)
        if bottleneck == float("inf"):
            raise RuntimeError("PipeDream planner found no feasible partition")

        bounds = [d[0] for d in decisions] + [n]
        replicas = [d[1] for d in decisions]
        plan = self._materialize(bounds, replicas)
        return PipeDreamResult(
            plan=plan,
            bottleneck_time=bottleneck,
            stage_layer_bounds=bounds,
            stage_replicas=replicas,
        )

    def _materialize(self, bounds: list[int], replicas: list[int]) -> ParallelPlan:
        """Assign contiguous device blocks to stages, PipeDream-style."""
        devices = self.cluster.devices
        stages = []
        cursor = 0
        for k, r in enumerate(replicas):
            stages.append(Stage(bounds[k], bounds[k + 1], tuple(devices[cursor : cursor + r])))
            cursor += r
        m = max(1, self.gbs // self.mbs)
        while self.gbs % m != 0:
            m -= 1
        return ParallelPlan(
            model=self.profile.graph,
            stages=stages,
            global_batch_size=self.gbs,
            num_micro_batches=m,
        )


def pipedream_plan(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    micro_batch_size: int | None = None,
) -> PipeDreamResult:
    """One-call façade for the PipeDream baseline planner."""
    return PipeDreamPlanner(profile, cluster, global_batch_size, micro_batch_size).solve()


class HierarchicalPipeDreamPlanner(PipeDreamPlanner):
    """PipeDream's two-level planner for hierarchical interconnects.

    The SOSP'19 planner recurses over bandwidth levels: first partition the
    model over *machines* (replication crossing the slow inter-server
    network), then partition each machine-level stage over that machine's
    GPUs (replication over NVLink).  The paper notes this "works well for
    asynchronous training" but constrains placement to nested contiguous
    blocks — a strict subset of DAPPLE's placement space (§IV-B/D).

    We implement the two-level recursion directly: an outer DP over
    machine counts using inter-server bandwidth for weight sync, whose
    per-stage cost is the *inner* single-level solution over one machine's
    GPUs with NVLink bandwidth.
    """

    def solve(self) -> PipeDreamResult:
        n = self.profile.num_layers
        machines = self.cluster.machines
        if len(machines) < 2 or self.cluster.gpus_per_machine < 2:
            return super().solve()  # flat topology: single level

        from functools import lru_cache

        gpm = self.cluster.gpus_per_machine

        def inner_bottleneck(lo: int, hi: int) -> tuple[float, tuple]:
            """Best single-machine partition of layers [lo, hi) on gpm GPUs."""
            sub = _SingleMachinePlanner(self, lo, hi, gpm)
            return sub.best(hi - lo, gpm)

        @lru_cache(maxsize=None)
        def outer(j: int, m: int) -> tuple[float, tuple]:
            """Layers [0, j) over m machines; machine-level stages only."""
            if j == 0:
                return (0.0, ()) if m == 0 else (float("inf"), ())
            out = (float("inf"), ())
            for i in range(j):
                for used in range(1, m + 1):
                    if i == 0 and m - used != 0:
                        continue
                    prev, decisions = outer(i, m - used) if i > 0 else (0.0, ())
                    if prev == float("inf"):
                        continue
                    if used == 1:
                        # One machine: recurse to the GPU level.
                        stage_cost, inner = inner_bottleneck(i, j)
                        descriptor = (i, 1, inner)
                    else:
                        # Replicate the whole [i, j) block over `used`
                        # machines (all their GPUs), syncing over Ethernet.
                        workers = used * gpm
                        compute = (
                            self.profile.fwd_time(i, j, self.mbs)
                            + self.profile.bwd_time(i, j, self.mbs)
                        ) / workers
                        w = self.profile.param_bytes(i, j)
                        sync = 4.0 * (used - 1) * w / (
                            used * self.cluster.inter.bandwidth
                        )
                        stage_cost = compute + sync
                        descriptor = (i, used, None)
                    terms = [prev, stage_cost]
                    if i > 0:
                        terms.append(self.comm_time(i))
                    cand = max(terms)
                    if cand < out[0]:
                        out = (cand, decisions + (descriptor,))
            return out

        bottleneck, decisions = outer(n, len(machines))
        if bottleneck == float("inf"):
            raise RuntimeError("hierarchical PipeDream found no feasible partition")

        # Materialize: walk machine-level stages, expanding inner solutions.
        stages: list = []
        bounds: list[int] = []
        replicas: list[int] = []
        machine_cursor = 0
        from repro.core.plan import Stage

        # Stage extents come from consecutive machine-level descriptors.
        extents = [d[0] for d in decisions] + [n]
        for k, (lo, used, inner) in enumerate(decisions):
            hi = extents[k + 1]
            if used > 1 or inner is None:
                devs = []
                for mm in range(machine_cursor, machine_cursor + used):
                    devs.extend(machines[mm].devices)
                stages.append(Stage(lo, hi, tuple(devs)))
                bounds.append(lo)
                replicas.append(len(devs))
            else:
                # Expand the inner single-machine partition.
                machine = machines[machine_cursor]
                gpu_cursor = 0
                inner_bounds = [d[0] + lo for d in inner] + [hi]
                for kk, (_rel_lo, workers) in enumerate(inner):
                    ilo, ihi = inner_bounds[kk], inner_bounds[kk + 1]
                    devs = machine.devices[gpu_cursor : gpu_cursor + workers]
                    stages.append(Stage(ilo, ihi, tuple(devs)))
                    bounds.append(ilo)
                    replicas.append(workers)
                    gpu_cursor += workers
            machine_cursor += used

        m = max(1, self.gbs // self.mbs)
        while self.gbs % m:
            m -= 1
        from repro.core.plan import ParallelPlan

        plan = ParallelPlan(
            model=self.profile.graph,
            stages=stages,
            global_batch_size=self.gbs,
            num_micro_batches=m,
        )
        return PipeDreamResult(
            plan=plan,
            bottleneck_time=bottleneck,
            stage_layer_bounds=bounds + [n],
            stage_replicas=replicas,
        )


class _SingleMachinePlanner:
    """Inner-level PipeDream DP over one machine's GPUs (NVLink sync)."""

    def __init__(self, parent: PipeDreamPlanner, lo: int, hi: int, gpus: int):
        self.parent = parent
        self.lo = lo
        self.hi = hi
        self.gpus = gpus
        self._cache: dict = {}

    def stage_time(self, lo: int, hi: int, workers: int) -> float:
        p = self.parent
        compute = (
            p.profile.fwd_time(lo, hi, p.mbs) + p.profile.bwd_time(lo, hi, p.mbs)
        ) / workers
        if workers > 1:
            w = p.profile.param_bytes(lo, hi)
            compute += 4.0 * (workers - 1) * w / (
                workers * p.cluster.machines[0].intra_bw
            )
        return compute

    def best(self, j: int, m: int) -> tuple[float, tuple]:
        """Layers [lo, lo+j) on m GPUs; returns (bottleneck, descriptors)."""
        key = (j, m)
        if key in self._cache:
            return self._cache[key]
        if j == 0:
            out = (0.0, ()) if m == 0 else (float("inf"), ())
            self._cache[key] = out
            return out
        out = (float("inf"), ())
        for i in range(j):
            for workers in range(1, m + 1):
                if i == 0 and m - workers != 0:
                    continue
                prev, decisions = self.best(i, m - workers) if i > 0 else (0.0, ())
                if prev == float("inf"):
                    continue
                terms = [prev, self.stage_time(self.lo + i, self.lo + j, workers)]
                if i > 0:
                    terms.append(self.parent.comm_time(self.lo + i))
                cand = max(terms)
                if cand < out[0]:
                    out = (cand, decisions + ((i, workers),))
        self._cache[key] = out
        return out


def pipedream_plan_hierarchical(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    micro_batch_size: int | None = None,
) -> PipeDreamResult:
    """Two-level PipeDream planning for hierarchical clusters (Config-A)."""
    return HierarchicalPipeDreamPlanner(
        profile, cluster, global_batch_size, micro_batch_size
    ).solve()

"""Schedule conformance checking and differential testing (`repro.check`).

Three pillars, one report type:

* :mod:`repro.check.invariants` — static verification of a built task
  graph + executed trace against DAPPLE's semantics (1F1B interleave,
  warm-up counts, Ki memory bound, resource exclusivity, synchronous
  weight sync, analytical makespan lower bound);
* :mod:`repro.check.oracles` — differential oracles over the repo's
  redundant implementations (compiled vs reference engine, fast-scan vs
  scalar planner, evaluate vs explain, clean fault path);
* :mod:`repro.check.generators` — seeded random instances so both run
  beyond the model zoo.

Entry points: ``repro check`` in the CLI, ``Simulator.run(validate=True)``
for opportunistic in-line checking, and the suite in ``tests/check/``.
"""

from repro.check.invariants import (
    ConformanceError,
    ConformanceReport,
    Violation,
    check_execution,
    check_simulation,
    verify_execution,
)
from repro.check.oracles import (
    oracle_batched_ensemble,
    oracle_clean_faults,
    oracle_engines,
    oracle_explain,
    oracle_memory_m_independence,
    oracle_plan_cache,
    oracle_planner,
    oracle_served_plan,
    run_oracles,
)
from repro.check.generators import GeneratedCase, generate_cases, random_case

__all__ = [
    "ConformanceError",
    "ConformanceReport",
    "Violation",
    "check_execution",
    "check_simulation",
    "verify_execution",
    "oracle_batched_ensemble",
    "oracle_clean_faults",
    "oracle_engines",
    "oracle_explain",
    "oracle_memory_m_independence",
    "oracle_plan_cache",
    "oracle_planner",
    "oracle_served_plan",
    "run_oracles",
    "GeneratedCase",
    "generate_cases",
    "random_case",
]

"""Seeded random pipeline/cluster instance generators.

The differential oracles and property tests should not only run over the
nine zoo models — those share one construction idiom and would miss whole
classes of bugs (odd layer counts, tiny device sets, non-uniform stage
cuts, M=1 pipelines).  This module derives a full random test case —
synthetic uniform-layer model, hierarchical cluster, hand-cut hybrid plan
— from a single integer seed, so every generated instance is reproducible
from the seed alone.

Two entry styles:

* :func:`random_case` / :func:`generate_cases` — plain ``random.Random``
  generation, no third-party dependency, used by the ``repro check
  --generated N`` CLI path.
* :func:`case_strategy` / :func:`schedule_strategy` — hypothesis
  strategies (seeds mapped through the same generators, so hypothesis
  shrinks to the smallest failing *seed*); importing them raises only
  when hypothesis is genuinely missing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.configs import config_by_name
from repro.core.plan import ParallelPlan, Stage
from repro.core.profiler import profile_model
from repro.core.scheduler import MicroBatchTask
from repro.models.graph import uniform_model

__all__ = [
    "GeneratedCase",
    "random_case",
    "generate_cases",
    "random_schedule",
    "case_strategy",
    "schedule_strategy",
]

#: Cluster flavours the generator samples from.
CONFIG_NAMES = ("A", "B", "C")


@dataclass
class GeneratedCase:
    """One reproducible random pipeline instance."""

    seed: int
    profile: object
    cluster: object
    plan: ParallelPlan
    warmup_policy: str = "PA"
    meta: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"GeneratedCase(seed={self.seed}, "
            f"model={self.plan.model.name}, plan={self.plan.notation}, "
            f"M={self.plan.num_micro_batches}, policy={self.warmup_policy})"
        )


def _random_plan(rng: random.Random, model, cluster) -> ParallelPlan:
    devices = cluster.devices
    n_dev = len(devices)
    n_layers = model.num_layers
    s = rng.randint(1, min(4, n_layers, n_dev))
    # Contiguous layer cuts: S-1 distinct interior boundaries.
    cuts = sorted(rng.sample(range(1, n_layers), s - 1)) if s > 1 else []
    bounds = [0, *cuts, n_layers]
    # Device split: every stage gets >=1 device, leftovers to early stages.
    sizes = [1] * s
    for _ in range(n_dev - s):
        if rng.random() < 0.7:  # leave some devices idle sometimes
            sizes[rng.randrange(s)] += 1
    offsets = [0]
    for sz in sizes:
        offsets.append(offsets[-1] + sz)
    stages = [
        Stage(bounds[i], bounds[i + 1],
              tuple(devices[offsets[i]:offsets[i + 1]]))
        for i in range(s)
    ]
    m = rng.choice((1, 2, 3, 4, 6, 8))
    mbs = rng.choice((1, 2, 4))
    return ParallelPlan(
        model=model,
        stages=stages,
        global_batch_size=m * mbs,
        num_micro_batches=m,
    )


def random_case(seed: int) -> GeneratedCase:
    """Derive one model+cluster+plan instance from ``seed``.

    Byte sizes are kept far below device capacity so every generated case
    is memory-feasible under the default ``enforce_memory=True`` path —
    the point is schedule/graph diversity, not OOM testing.
    """
    rng = random.Random(seed)
    n_layers = rng.randint(2, 12)
    model = uniform_model(
        name=f"gen{seed}",
        num_layers=n_layers,
        flops_per_layer=rng.uniform(1e9, 5e10),
        params_per_layer=rng.randint(10_000, 2_000_000),
        activation_bytes=rng.uniform(1e5, 1e7),
        profile_batch=1,
        optimizer=rng.choice(("adam", "sgd")),
    )
    config = rng.choice(CONFIG_NAMES)
    # Config A packs 8 GPUs per server; B/C take any device count.
    n_dev = 8 if config == "A" else rng.choice((2, 4, 8))
    cluster = config_by_name(config, num_devices=n_dev)
    profile = profile_model(model, cluster.devices[0].spec)
    plan = _random_plan(rng, model, cluster)
    return GeneratedCase(
        seed=seed,
        profile=profile,
        cluster=cluster,
        plan=plan,
        warmup_policy=rng.choice(("PA", "PB")),
    )


def generate_cases(n: int, base_seed: int = 0) -> list[GeneratedCase]:
    """``n`` reproducible cases: seeds ``base_seed .. base_seed+n-1``."""
    return [random_case(base_seed + i) for i in range(n)]


def random_schedule(num_micro_batches: int, rng: random.Random) -> list[MicroBatchTask]:
    """A random *valid* single-stage schedule over ``num_micro_batches``.

    Uniformly interleaves forwards and backwards subject to the stage-local
    causality rule (``validate_schedule``): each micro-batch's B follows its
    F, forwards issue in FIFO order.  Cross-stage deadlock-freedom is NOT
    guaranteed — use per stage (memory property tests), not as a full
    executor schedule.
    """
    tasks: list[MicroBatchTask] = []
    next_f = 0
    pending_b: list[int] = []
    while next_f < num_micro_batches or pending_b:
        can_f = next_f < num_micro_batches
        if can_f and (not pending_b or rng.random() < 0.5):
            tasks.append(MicroBatchTask("F", next_f))
            pending_b.append(next_f)
            next_f += 1
        else:
            tasks.append(MicroBatchTask("B", pending_b.pop(0)))
    return tasks


# --------------------------------------------------------------------- #
# Hypothesis strategies (optional dependency, resolved at call time)
# --------------------------------------------------------------------- #
def case_strategy(max_seed: int = 10_000):
    """Hypothesis strategy over :func:`random_case` instances.

    Seeds are the search space, so hypothesis shrinks a failure to the
    smallest failing seed — directly reusable via ``random_case(seed)``.
    """
    from hypothesis import strategies as st

    return st.integers(min_value=0, max_value=max_seed).map(random_case)


def schedule_strategy(max_micro_batches: int = 12):
    """Hypothesis strategy over random valid single-stage schedules."""
    from hypothesis import strategies as st

    return st.tuples(
        st.integers(min_value=1, max_value=max_micro_batches),
        st.integers(min_value=0, max_value=2**32 - 1),
    ).map(lambda t: random_schedule(t[0], random.Random(t[1])))

"""Static conformance checks: does an execution obey DAPPLE's semantics?

Every claim the experiments rest on is restated here as a machine-checkable
invariant over a built :class:`~repro.sim.engine.TaskGraph` and the
:class:`~repro.sim.trace.Trace` / :class:`~repro.sim.trace.MemoryTimeline`
an engine produced from it:

* **Graph/trace soundness** (engine-agnostic, any DAG):
  every op executes exactly once with its declared duration, no successor
  starts before a predecessor ends, no two ops overlap on a resource, and
  the makespan is at least the analytical lower bound
  ``max(critical path, per-resource total work)``.
* **Pipeline semantics** (needs the plan/schedule context):
  the required data/control edges of the paper's graph construction
  (Fig. 10/11) are actually present, each stage's executed F/B order is a
  strict 1F1B interleave after exactly ``Ki`` warm-up forwards
  (``Ki = min(S−i, D)`` for PA, ``min(2(S−i)−1, D)`` for PB), peak device
  memory stays within the ``Ki``-derived bound (independent of ``M``), all
  activations are freed by the end (conservation), and every replicated
  stage's weight update is a synchronous barrier behind all its backwards.

Violations are collected — never raised mid-scan — into a
:class:`ConformanceReport` that names the offending op, stage, and
invariant, so one run reports every problem at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import repro.obs as obs
from repro.core.scheduler import (
    max_resident_micro_batches,
    validate_schedule,
    warmup_counts,
    warmup_prefix_length,
)

__all__ = [
    "Violation",
    "ConformanceReport",
    "ConformanceError",
    "check_simulation",
    "check_execution",
    "verify_execution",
]

#: Absolute slack for floating-point time/byte comparisons.
EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant, pinned to the op/stage/resource that broke it."""

    invariant: str
    message: str
    op: str | None = None
    stage: int | None = None
    resource: object = None

    def __str__(self) -> str:
        where = []
        if self.op is not None:
            where.append(f"op={self.op}")
        if self.stage is not None:
            where.append(f"stage={self.stage}")
        if self.resource is not None:
            where.append(f"resource={self.resource}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.invariant}: {self.message}{loc}"


@dataclass
class ConformanceReport:
    """Outcome of one conformance scan: which invariants ran, what broke."""

    subject: str
    checks: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def ran(self, invariant: str) -> None:
        if invariant not in self.checks:
            self.checks.append(invariant)

    def merge(self, other: "ConformanceReport") -> "ConformanceReport":
        for c in other.checks:
            self.ran(c)
        self.violations.extend(other.violations)
        return self

    def render(self) -> str:
        head = (
            f"{self.subject}: {len(self.checks)} invariants checked, "
            f"{len(self.violations)} violation(s)"
        )
        if self.ok:
            return head
        return head + "\n" + "\n".join(f"  - {v}" for v in self.violations)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ConformanceError(self)


class ConformanceError(RuntimeError):
    """A conformance scan found violations; ``.report`` holds the details."""

    def __init__(self, report: ConformanceReport):
        super().__init__(report.render())
        self.report = report


# --------------------------------------------------------------------- #
# Engine-agnostic graph/trace checks
# --------------------------------------------------------------------- #
def _check_completeness(graph, rows, report: ConformanceReport) -> None:
    report.ran("completeness")
    seen: dict[str, int] = {}
    for name, _s, _e, _r, _t in rows:
        seen[name] = seen.get(name, 0) + 1
    for name in graph._order:
        n = seen.pop(name, 0)
        if n != 1:
            report.add(Violation(
                "completeness", f"op executed {n} times (expected once)", op=name
            ))
    for name, n in seen.items():
        report.add(Violation(
            "completeness", f"trace has {n} event(s) for an op not in the graph",
            op=name,
        ))


def _check_durations(graph, rows, report: ConformanceReport) -> None:
    report.ran("duration-fidelity")
    for name, start, end, _r, _t in rows:
        op = graph._ops.get(name)
        if op is None:
            continue  # flagged by completeness
        if abs((end - start) - op.duration) > EPS * max(1.0, op.duration):
            report.add(Violation(
                "duration-fidelity",
                f"traced duration {end - start!r} != declared {op.duration!r}",
                op=name,
            ))


def _check_dependencies(graph, trace, rows, report: ConformanceReport) -> None:
    report.ran("dependency-order")
    ends = {name: end for name, _s, end, _r, _t in rows}
    starts = {name: start for name, start, _e, _r, _t in rows}
    for before in graph._order:
        e = ends.get(before)
        if e is None:
            continue
        for after in graph._succ[before]:
            s = starts.get(after)
            if s is None:
                continue
            if s < e - EPS:
                report.add(Violation(
                    "dependency-order",
                    f"starts at {s} before predecessor {before!r} ends at {e}",
                    op=after,
                ))


def _check_resource_exclusivity(trace, report: ConformanceReport) -> None:
    report.ran("resource-exclusivity")
    busy: dict = {}
    for name, start, end, resources, _t in trace.iter_rows():
        for r in resources:
            busy.setdefault(r, []).append((start, end, name))
    for r, events in busy.items():
        events.sort()
        for (s1, e1, n1), (s2, _e2, n2) in zip(events, events[1:]):
            if s2 < e1 - EPS:
                report.add(Violation(
                    "resource-exclusivity",
                    f"overlaps {n1!r} (which runs [{s1}, {e1}))",
                    op=n2,
                    resource=r,
                ))
                break  # one violation per resource keeps the report readable


def _check_lower_bound(graph, makespan: float, report: ConformanceReport) -> None:
    report.ran("makespan-lower-bound")
    n = len(graph)
    if n == 0:
        return
    dur = graph._dur_col
    succ = graph._succ_ids
    indeg = list(graph._pred_n)
    order = [i for i, d in enumerate(indeg) if not d]
    finish = [0.0] * n
    for i in order:
        finish[i] = dur[i]
    head = 0
    while head < len(order):
        i = order[head]
        head += 1
        fi = finish[i]
        for j in succ[i]:
            cand = fi + dur[j]
            if cand > finish[j]:
                finish[j] = cand
            indeg[j] -= 1
            if not indeg[j]:
                order.append(j)
    if len(order) != n:
        report.add(Violation(
            "makespan-lower-bound", "dependency graph contains a cycle"
        ))
        return
    critical = max(finish)
    work: dict = {}
    res_col = graph._res_col
    keys = graph._res_keys
    for i in range(n):
        slots = res_col[i]
        if slots is None:
            continue
        for s in (slots,) if isinstance(slots, int) else slots:
            work[s] = work.get(s, 0.0) + dur[i]
    bound = max(critical, max(work.values()) if work else 0.0)
    slack = EPS * max(1.0, makespan)
    if makespan < bound - slack:
        which = "critical path" if bound == critical else "per-resource work"
        report.add(Violation(
            "makespan-lower-bound",
            f"makespan {makespan} < analytical lower bound {bound} ({which})",
            resource=None if bound == critical else keys[max(work, key=work.get)],
        ))


def check_simulation(graph, result, subject: str = "simulation") -> ConformanceReport:
    """Engine-agnostic soundness checks on one simulated run.

    Verifies completeness, duration fidelity, dependency order, resource
    exclusivity, and the analytical makespan lower bound — everything that
    can be checked without knowing the graph came from a pipeline.  This is
    the scan ``Simulator.run(validate=True)`` performs.
    """
    report = ConformanceReport(subject=subject)
    rows = list(result.trace.iter_rows())
    _check_completeness(graph, rows, report)
    _check_durations(graph, rows, report)
    _check_dependencies(graph, result.trace, rows, report)
    _check_resource_exclusivity(result.trace, report)
    _check_lower_bound(graph, result.makespan, report)
    return report


# --------------------------------------------------------------------- #
# Pipeline-semantics checks (plan/schedule context required)
# --------------------------------------------------------------------- #
def _edge_set(graph) -> set:
    return {
        (before, after)
        for before in graph._order
        for after in graph._succ[before]
    }


def _require(edges: set, before: str, after: str, stage: int,
             report: ConformanceReport) -> None:
    if (before, after) not in edges:
        report.add(Violation(
            "structure",
            f"required dependency edge {before!r} -> {after!r} is missing",
            op=after,
            stage=stage,
        ))


def _split_sets(schedule) -> list[set[int]]:
    """Per stage: micro-batches whose backward is split into BI/BW."""
    return [
        {t.micro_batch for t in tasks if t.kind == "BI"} for tasks in schedule
    ]


def _check_structure(graph, plan, schedule, report: ConformanceReport,
                     prefix: str = "") -> None:
    """The executor's graph construction (paper Fig. 10/11) edge-by-edge.

    Schedule-generic: for split backwards the gradient chain runs through
    ``BI`` (F→BI, BI→BW, sendback wired to BI) and the AllReduce barrier
    through the releasing ``BW``.
    """
    report.ran("structure")
    edges = _edge_set(graph)
    m = plan.num_micro_batches
    split = _split_sets(schedule)

    def grad(i: int, mb: int) -> str:
        return "BI" if mb in split[i] else "B"

    def release(i: int, mb: int) -> str:
        return "BW" if mb in split[i] else "B"

    for i, stage in enumerate(plan.stages):
        # Control chains: consecutive schedule entries per replica.
        for r in range(stage.replicas):
            names = [
                f"{prefix}{t.kind}/s{i}/m{t.micro_batch}/r{r}" for t in schedule[i]
            ]
            for a, b in zip(names, names[1:]):
                _require(edges, a, b, i, report)
        # Stored activations: F -> backward of the same micro-batch
        # (F -> BI plus BI -> BW when the backward is split).
        for mb in range(m):
            gk = grad(i, mb)
            for r in range(stage.replicas):
                _require(
                    edges,
                    f"{prefix}F/s{i}/m{mb}/r{r}",
                    f"{prefix}{gk}/s{i}/m{mb}/r{r}",
                    i,
                    report,
                )
                if gk == "BI":
                    _require(
                        edges,
                        f"{prefix}BI/s{i}/m{mb}/r{r}",
                        f"{prefix}BW/s{i}/m{mb}/r{r}",
                        i,
                        report,
                    )
    # Cross-stage transfers: F -> send -> F_next and the mirrored gradient
    # chain grad_next -> sendback -> grad.
    for i in range(plan.num_stages - 1):
        src, dst = plan.stages[i], plan.stages[i + 1]
        for mb in range(m):
            send = f"{prefix}send/s{i}/m{mb}"
            back = f"{prefix}sendback/s{i}/m{mb}"
            for r in range(src.replicas):
                _require(edges, f"{prefix}F/s{i}/m{mb}/r{r}", send, i, report)
                _require(
                    edges, back, f"{prefix}{grad(i, mb)}/s{i}/m{mb}/r{r}", i, report
                )
            for r in range(dst.replicas):
                _require(edges, send, f"{prefix}F/s{i+1}/m{mb}/r{r}", i + 1, report)
                _require(
                    edges,
                    f"{prefix}{grad(i + 1, mb)}/s{i+1}/m{mb}/r{r}",
                    back,
                    i + 1,
                    report,
                )
    # Gradient AllReduce barrier inputs (weight gradients exist once the
    # releasing backward — B, or BW when split — has run).
    for i, stage in enumerate(plan.stages):
        if stage.replicas < 2:
            continue
        ar = f"{prefix}allreduce/s{i}"
        if ar not in graph:
            report.add(Violation(
                "weight-sync",
                f"replicated stage has no AllReduce op {ar!r}",
                stage=i,
            ))
            continue
        for mb in range(m):
            for r in range(stage.replicas):
                _require(
                    edges, f"{prefix}{release(i, mb)}/s{i}/m{mb}/r{r}", ar, i, report
                )


def _schedule_kind_name(kind: str) -> str:
    """Canonical registry name of a schedule-kind spec ("1f1b" -> "dapple")."""
    from repro.schedules.registry import parse_schedule_spec

    try:
        name, _params = parse_schedule_spec(kind)
    except ValueError:
        return kind
    return name


def _check_schedule_shape(schedule, plan, kind: str, warmup_policy: str,
                          max_in_memory: int, report: ConformanceReport) -> None:
    """Schedule-level semantics: completeness, warm-up counts, stream shape.

    ``kind`` may be any registry spec ("dapple", "gpipe", "interleaved:v=2",
    "zb2bp:w=0.4", ...); shape checks dispatch on the canonical name.
    """
    m = plan.num_micro_batches
    s_count = plan.num_stages
    report.ran("schedule-valid")
    try:
        validate_schedule(schedule, m)
    except ValueError as e:
        report.add(Violation("schedule-valid", str(e)))
        return

    name = _schedule_kind_name(kind)

    if name == "gpipe":
        report.ran("gpipe-shape")
        for i, tasks in enumerate(schedule):
            kinds = [t.kind for t in tasks]
            if kinds != ["F"] * m + ["B"] * m:
                report.add(Violation(
                    "gpipe-shape",
                    "schedule is not all-forwards-then-all-backwards",
                    stage=i,
                ))
        return

    if name == "interleaved":
        # Per-virtual-stage streams have no fixed local template (their
        # shape is induced by the device-level interleave); require FIFO
        # issue order per stream — the per-virtual-stage legality the IR
        # guarantees beyond validate_schedule.
        report.ran("interleave-fifo")
        for i, tasks in enumerate(schedule):
            fs = [t.micro_batch for t in tasks if t.kind == "F"]
            bs = [t.micro_batch for t in tasks if t.kind in ("B", "BI")]
            if fs != sorted(fs) or bs != sorted(bs):
                report.add(Violation(
                    "interleave-fifo",
                    "micro-batches are not issued in FIFO order",
                    stage=i,
                ))
        return

    if name == "zb2bp":
        report.ran("warmup-count")
        report.ran("zb2bp-shape")
        expected = warmup_counts(s_count, m, policy=warmup_policy,
                                 max_in_memory=max_in_memory)
        for i, tasks in enumerate(schedule):
            k = warmup_prefix_length(tasks)
            if k != expected[i]:
                report.add(Violation(
                    "warmup-count",
                    f"warm-up prefix has {k} forwards, policy "
                    f"{warmup_policy} expects Ki={expected[i]} "
                    f"(S={s_count}, M={m}, D={max_in_memory})",
                    stage=i,
                ))
            # Steady state runs BI,BW,F triples (inline BW keeps residency
            # at Ki); the cooldown drains all remaining BI first — they
            # alone gate the upstream gradient chain — then the deferred
            # BW fill the tail bubble.
            body = [t.kind for t in tasks[k:]]
            n_f_left = m - k
            want = (
                ["BI", "BW", "F"] * n_f_left
                + ["BI"] * (m - n_f_left)
                + ["BW"] * (m - n_f_left)
            )
            if body != want:
                report.add(Violation(
                    "zb2bp-shape",
                    f"tail after {k} warm-up forwards is not the "
                    "BI/BW/F steady state with a BI-first cooldown",
                    stage=i,
                ))
            if max_resident_micro_batches(tasks) > expected[i]:
                report.add(Violation(
                    "zb2bp-shape",
                    f"{max_resident_micro_batches(tasks)} micro-batches live "
                    f"at once exceeds the warm-up bound Ki={expected[i]}",
                    stage=i,
                ))
        return

    report.ran("warmup-count")
    report.ran("1f1b-interleave")
    expected = warmup_counts(s_count, m, policy=warmup_policy,
                             max_in_memory=max_in_memory)
    for i, tasks in enumerate(schedule):
        k = warmup_prefix_length(tasks)
        if k != expected[i]:
            report.add(Violation(
                "warmup-count",
                f"warm-up prefix has {k} forwards, policy "
                f"{warmup_policy} expects Ki={expected[i]} "
                f"(S={s_count}, M={m}, D={max_in_memory})",
                stage=i,
            ))
        # Strict 1F1B after warm-up: alternate B,F while forwards remain,
        # then drain with backwards only; F and B each issue in FIFO order.
        fs = [t.micro_batch for t in tasks if t.kind == "F"]
        bs = [t.micro_batch for t in tasks if t.kind == "B"]
        if fs != sorted(fs) or bs != sorted(bs):
            report.add(Violation(
                "1f1b-interleave",
                "micro-batches are not issued in FIFO order",
                stage=i,
            ))
        body = [t.kind for t in tasks[k:]]
        n_f_left = m - k
        want = ["B", "F"] * n_f_left + ["B"] * (m - n_f_left)
        if body != want:
            report.add(Violation(
                "1f1b-interleave",
                f"tail after {k} warm-up forwards is not a strict "
                "one-backward-one-forward interleave",
                stage=i,
            ))
        if max_resident_micro_batches(tasks) > expected[i]:
            report.add(Violation(
                "1f1b-interleave",
                f"{max_resident_micro_batches(tasks)} micro-batches live at "
                f"once exceeds the warm-up bound Ki={expected[i]}",
                stage=i,
            ))


def _replica_of(name: str) -> int:
    return int(name.rsplit("/r", 1)[1])


def _check_trace_order(trace, plan, schedule, report: ConformanceReport) -> None:
    """The executed compute-task order per stage replica equals the schedule."""
    report.ran("trace-schedule-order")
    per_replica: dict[tuple[int, int], list] = {}
    for name, start, end, _res, tags in trace.iter_rows():
        kind = tags.get("kind")
        if kind not in ("F", "B", "BI", "BW"):
            continue
        key = (tags["stage"], _replica_of(name))
        per_replica.setdefault(key, []).append((start, end, kind, tags["mb"]))
    for i, tasks in enumerate(schedule):
        want = [(t.kind, t.micro_batch) for t in tasks]
        replicas = plan.stages[i].replicas
        for r in range(replicas):
            got = sorted(per_replica.get((i, r), []))
            got_seq = [(kind, mb) for _s, _e, kind, mb in got]
            if got_seq != want:
                first_bad = next(
                    (pos for pos, (a, b) in enumerate(zip(got_seq, want)) if a != b),
                    min(len(got_seq), len(want)),
                )
                bad = got_seq[first_bad] if first_bad < len(got_seq) else None
                report.add(Violation(
                    "trace-schedule-order",
                    f"replica {r} executed {got_seq[:first_bad + 1][-3:]} "
                    f"diverging from the schedule at position {first_bad} "
                    f"(expected {want[first_bad] if first_bad < len(want) else None})",
                    op=(f"{bad[0]}/s{i}/m{bad[1]}/r{r}" if bad else None),
                    stage=i,
                ))


def _check_bw_order(trace, report: ConformanceReport) -> None:
    """Split backwards execute grad-input before grad-weight per micro-batch.

    A no-op for schedules without BI/BW tasks; for 2BP streams it pins the
    B-before-W ordering at the *trace* level (the graph-level BI→BW edge is
    checked by ``structure``).
    """
    report.ran("bw-order")
    bi_end: dict[tuple, float] = {}
    bw_start: dict[tuple, float] = {}
    for name, start, end, _res, tags in trace.iter_rows():
        kind = tags.get("kind")
        if kind not in ("BI", "BW"):
            continue
        key = (tags["stage"], tags["mb"], _replica_of(name))
        if kind == "BI":
            bi_end[key] = end
        else:
            bw_start[key] = start
    for key, start in bw_start.items():
        stage, mb, r = key
        if key not in bi_end:
            report.add(Violation(
                "bw-order",
                "grad-weight phase ran without a grad-input phase",
                op=f"BW/s{stage}/m{mb}/r{r}",
                stage=stage,
            ))
        elif start < bi_end[key] - EPS:
            report.add(Violation(
                "bw-order",
                f"BW starts at {start} before BI ends at {bi_end[key]}",
                op=f"BW/s{stage}/m{mb}/r{r}",
                stage=stage,
            ))
    for key in bi_end:
        if key not in bw_start:
            stage, mb, r = key
            report.add(Violation(
                "bw-order",
                "grad-input phase has no matching grad-weight phase",
                op=f"BI/s{stage}/m{mb}/r{r}",
                stage=stage,
            ))


def _check_ir_high_water(pipe_schedule, schedule,
                         report: ConformanceReport) -> None:
    """The IR's declared residency high-water matches the lowered schedule.

    ``memory-bound`` then ties the same number to the simulated memory
    timeline, so the IR's :meth:`memory_high_water` declaration, the task
    streams, and the runtime cannot drift apart silently.
    """
    if pipe_schedule is None:
        return
    report.ran("ir-high-water")
    declared = pipe_schedule.memory_high_water()
    for i, tasks in enumerate(schedule):
        actual = max_resident_micro_batches(tasks)
        if declared[i] != actual:
            report.add(Violation(
                "ir-high-water",
                f"IR declares {declared[i]} resident micro-batches but the "
                f"lowered stream peaks at {actual}",
                stage=i,
            ))


def _check_memory(memory, plan, stage_mem, schedule,
                  report: ConformanceReport) -> None:
    """Peak ≤ Ki-derived bound per device; all activations freed at the end.

    The bound — ``persistent + Ki·per_microbatch + transient`` summed over
    the stages a device hosts — depends only on the warm-up depth, never on
    ``M``: that is DAPPLE's §III-B memory claim, restated per device.
    """
    report.ran("memory-bound")
    report.ran("memory-conservation")
    bound: dict = {}
    persistent: dict = {}
    for i, stage in enumerate(plan.stages):
        sm = stage_mem[i]
        k = max_resident_micro_batches(schedule[i])
        contrib = sm.persistent_bytes + k * sm.per_microbatch_bytes \
            + sm.transient_backward_bytes
        for d in stage.devices:
            bound[d.resource_key] = bound.get(d.resource_key, 0.0) + contrib
            persistent[d.resource_key] = (
                persistent.get(d.resource_key, 0.0) + sm.persistent_bytes
            )
    for dev in memory.devices():
        if dev not in bound:
            report.add(Violation(
                "memory-bound",
                "memory recorded on a device no stage is placed on",
                resource=dev,
            ))
            continue
        peak = memory.peak(dev)
        limit = bound[dev]
        if peak > limit + EPS * max(1.0, limit):
            report.add(Violation(
                "memory-bound",
                f"peak {peak:.3e} B exceeds the Ki-derived bound {limit:.3e} B",
                resource=dev,
            ))
        final = memory.final(dev)
        keep = persistent[dev]
        if abs(final - keep) > EPS * max(1.0, keep):
            report.add(Violation(
                "memory-conservation",
                f"final live bytes {final:.3e} != persistent state {keep:.3e} "
                "(activations leaked or over-freed)",
                resource=dev,
            ))


def _check_weight_sync(graph, trace, plan, report: ConformanceReport,
                       prefix: str = "") -> None:
    """AllReduce of a replicated stage is a barrier behind all its backwards."""
    report.ran("weight-sync")
    b_end: dict[int, float] = {}
    ar_start: dict[int, float] = {}
    for _name, start, end, _res, tags in trace.iter_rows():
        stage = tags.get("stage")
        if stage is None:
            continue
        kind = tags.get("kind")
        if kind in ("B", "BW"):
            # BW carries the weight gradients when the backward is split.
            b_end[stage] = max(b_end.get(stage, 0.0), end)
        elif kind == "AR":
            ar_start[stage] = start
    for i, stage in enumerate(plan.stages):
        name = f"{prefix}allreduce/s{i}"
        if stage.replicas < 2:
            if name in graph:
                report.add(Violation(
                    "weight-sync",
                    "unreplicated stage has an AllReduce op",
                    op=name,
                    stage=i,
                ))
            continue
        if i not in ar_start:
            report.add(Violation(
                "weight-sync",
                "replicated stage never ran its gradient AllReduce",
                op=name,
                stage=i,
            ))
            continue
        if ar_start[i] < b_end.get(i, 0.0) - EPS:
            report.add(Violation(
                "weight-sync",
                f"AllReduce starts at {ar_start[i]} before the last backward "
                f"ends at {b_end[i]} — weight update is not synchronous",
                op=name,
                stage=i,
            ))


def check_execution(
    executor,
    graph,
    result,
    schedule_kind: str | None = "dapple",
    warmup_policy: str = "PA",
    max_in_memory: int | None = None,
    subject: str | None = None,
) -> ConformanceReport:
    """Full conformance scan of one executed pipeline iteration.

    Parameters
    ----------
    executor:
        The :class:`~repro.runtime.executor.PipelineExecutor` that built the
        iteration (provides plan, schedule, and per-stage memory model).
    graph, result:
        The task graph actually simulated and its
        :class:`~repro.runtime.executor.ExecutionResult` /
        :class:`~repro.sim.engine.SimulationResult`.
    schedule_kind:
        Any registry spec: ``"dapple"`` checks warm-up counts + 1F1B shape,
        ``"gpipe"`` the flush shape, ``"zb2bp"`` the BI/BW steady state and
        BI-first cooldown, ``"interleaved"`` per-virtual-stage FIFO order;
        ``None`` skips schedule-shape checks (custom raw schedule).
    max_in_memory:
        The memory cap ``D`` the schedule was built with; derived from the
        executor's memory model when omitted.
    """
    plan = executor.plan
    schedule = executor.schedule
    trace = result.trace
    memory = result.memory
    makespan = getattr(result, "makespan", None)
    if makespan is None:
        makespan = result.iteration_time

    report = ConformanceReport(subject=subject or f"plan {plan.notation}")
    with obs.span("check.execution", plan=plan.notation):
        rows = list(trace.iter_rows())
        _check_completeness(graph, rows, report)
        _check_durations(graph, rows, report)
        _check_dependencies(graph, trace, rows, report)
        _check_resource_exclusivity(trace, report)
        _check_lower_bound(graph, makespan, report)
        _check_structure(graph, plan, schedule, report)
        if schedule_kind is not None:
            if max_in_memory is None:
                if _schedule_kind_name(schedule_kind) in ("gpipe", "interleaved"):
                    max_in_memory = plan.num_micro_batches
                else:
                    try:
                        max_in_memory = min(executor.memory_model.max_in_flight())
                    except Exception:
                        max_in_memory = plan.num_micro_batches
            _check_schedule_shape(
                schedule, plan, schedule_kind, warmup_policy, max_in_memory, report
            )
        _check_trace_order(trace, plan, schedule, report)
        _check_bw_order(trace, report)
        _check_ir_high_water(getattr(executor, "pipe_schedule", None),
                             schedule, report)
        _check_memory(memory, plan, executor.stage_mem, schedule, report)
        _check_weight_sync(graph, trace, plan, report)
    if obs.enabled():
        obs.counter("check.invariants_run").inc(len(report.checks))
        obs.counter("check.violations").inc(len(report.violations))
    return report


def verify_execution(
    profile,
    cluster,
    plan,
    schedule: str = "dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    engine: str | None = None,
) -> ConformanceReport:
    """Build one iteration, simulate it on ``engine``, and scan it.

    One-call façade over :func:`check_execution` — the unit the ``repro
    check`` CLI and the zoo conformance suite iterate.  Raises
    :class:`~repro.runtime.memory.OutOfMemoryError` like the executor does
    when the combination does not fit device memory.
    """
    from repro.runtime.executor import PipelineExecutor
    from repro.sim.engine import Simulator

    executor = PipelineExecutor(
        profile,
        cluster,
        plan,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
        enforce_memory=enforce_memory,
        sim_engine=engine,
    )
    graph = executor.build_graph()
    result = Simulator(graph, engine=engine).run()
    kind = schedule if isinstance(schedule, str) else None
    if (
        enforce_memory
        and kind is not None
        and _schedule_kind_name(kind) in ("dapple", "zb2bp")
    ):
        # These schedules clamp their warm-up depths to the cap D.
        cap = min(executor.memory_model.max_in_flight())
    else:
        cap = plan.num_micro_batches
    return check_execution(
        executor,
        graph,
        result,
        schedule_kind=kind,
        warmup_policy=warmup_policy,
        max_in_memory=cap,
        subject=f"{plan.model.name} {plan.notation} "
        f"({schedule if isinstance(schedule, str) else 'custom'}, "
        f"{engine or 'default'})",
    )

"""Differential oracles: two independent implementations must agree.

The repo carries several redundant computations kept deliberately
bit-identical — a compiled and a reference simulator engine, a vectorized
and a scalar planner scan, a closed-form latency estimate and its
per-stage decomposition, a fault-injection path whose empty-model case is
the clean path itself.  Each pair is a free correctness oracle: when the
cheap/fast side drifts from its slow/simple twin, something broke.  This
module runs those comparisons as first-class conformance checks producing
the same :class:`~repro.check.invariants.ConformanceReport` the static
invariants do, so ``repro check`` surfaces divergence with the same exit
code and report format as a semantic violation.
"""

from __future__ import annotations

import dataclasses
import math

from repro.check.invariants import ConformanceReport, Violation
from repro.core.scheduler import warmup_counts

__all__ = [
    "oracle_engines",
    "oracle_planner",
    "oracle_plan_cache",
    "oracle_served_plan",
    "oracle_explain",
    "oracle_clean_faults",
    "oracle_batched_ensemble",
    "oracle_memory_m_independence",
    "run_oracles",
]


def _trace_rows(result) -> list:
    return sorted(
        (name, start, end, tuple(res)) for name, start, end, res, _t
        in result.trace.iter_rows()
    )


def _memory_rows(result) -> dict:
    out = {}
    for dev in result.memory.devices():
        out[dev] = (result.memory.peak(dev), result.memory.final(dev))
    return out


def oracle_engines(graph, subject: str = "engines") -> ConformanceReport:
    """All simulator engines (compiled, reference, batched) agree bit-for-bit.

    The compiled engine anchors the comparison; the reference oracle and the
    multi-scenario batched engine (run with a single scenario row) must each
    reproduce its makespan, trace rows, and memory peaks/finals exactly.
    """
    from repro.sim.engine import Simulator

    report = ConformanceReport(subject=subject)
    report.ran("oracle-engines")
    compiled = Simulator(graph, engine="compiled").run()
    rows_c = _trace_rows(compiled)
    mem_c = _memory_rows(compiled)
    for engine in ("reference", "batched"):
        other = Simulator(graph, engine=engine).run()
        if compiled.makespan != other.makespan:
            report.add(Violation(
                "oracle-engines",
                f"makespan diverges: compiled={compiled.makespan!r} "
                f"{engine}={other.makespan!r}",
            ))
        rows_o = _trace_rows(other)
        if rows_c != rows_o:
            bad = next(
                (c for c, r in zip(rows_c, rows_o) if c != r),
                rows_c[len(rows_o):][:1] or rows_o[len(rows_c):][:1],
            )
            op = bad[0] if isinstance(bad, tuple) else (bad[0][0] if bad else None)
            report.add(Violation(
                "oracle-engines",
                f"trace rows diverge vs {engine} "
                f"({len(rows_c)} vs {len(rows_o)} events)",
                op=op,
            ))
        mem_o = _memory_rows(other)
        if mem_c != mem_o:
            dev = next((d for d in mem_c if mem_c[d] != mem_o.get(d)), None)
            report.add(Violation(
                "oracle-engines",
                f"memory peaks/finals diverge between compiled and {engine}",
                resource=dev,
            ))
    return report


def oracle_batched_ensemble(
    profile, cluster, plan, seeds=(0, 1, 2, 3),
    subject: str = "batched-ensemble", **kwargs,
) -> ConformanceReport:
    """Batched and per-seed-compiled fault ensembles are bit-identical.

    Runs the same (plan, models, seeds) ensemble through one batched
    multi-scenario pass and through the per-seed compiled path, then demands
    :meth:`~repro.faults.analysis.EnsembleReport.identical` — bit-equal
    makespans, stage bubbles, and critical-path signatures for the clean row
    and every seed.
    """
    from repro.faults.analysis import run_ensemble
    from repro.faults.models import ComputeJitter, SlowDevice, TransientFailure

    report = ConformanceReport(subject=subject)
    report.ran("oracle-batched-ensemble")
    models = (
        ComputeJitter(sigma=0.05),
        SlowDevice(factor=1.5, num_devices=1),
        TransientFailure(stall=0.2),
    )
    batched = run_ensemble(
        profile, cluster, plan, models, seeds,
        sim_engine="batched", **kwargs,
    )
    per_seed = run_ensemble(
        profile, cluster, plan, models, seeds,
        sim_engine="compiled", **kwargs,
    )
    if not batched.identical(per_seed):
        detail = "report"
        if not bool((batched.makespans == per_seed.makespans).all()):
            detail = (
                f"makespans {batched.makespans!r} vs {per_seed.makespans!r}"
            )
        elif batched.clean != per_seed.clean:
            detail = "clean outcome"
        elif batched.outcomes != per_seed.outcomes:
            detail = "seed outcomes"
        report.add(Violation(
            "oracle-batched-ensemble",
            f"batched ensemble diverges from per-seed compiled path: {detail}",
        ))
    return report


def oracle_planner(profile, cluster, gbs: int,
                   config=None, subject: str = "planner") -> ConformanceReport:
    """Level-batched, per-state fast-scan, and scalar searches agree exactly."""
    from repro.core.planner import Planner, PlannerConfig

    report = ConformanceReport(subject=subject)
    report.ran("oracle-planner")
    base = config or PlannerConfig()
    arms = {
        "level-batched": dataclasses.replace(
            base, use_fast_scan=True, level_batch=True
        ),
        "per-state": dataclasses.replace(
            base, use_fast_scan=True, level_batch=False
        ),
        "scalar": dataclasses.replace(base, use_fast_scan=False),
    }
    results = {
        name: Planner(profile, cluster, gbs, cfg).search()
        for name, cfg in arms.items()
    }
    ref_name, ref = "level-batched", results["level-batched"]
    for name in ("per-state", "scalar"):
        other = results[name]
        for field, a, b in (
            ("plan", ref.plan.notation, other.plan.notation),
            ("split", ref.plan.split_notation, other.plan.split_notation),
            ("M", ref.plan.num_micro_batches, other.plan.num_micro_batches),
            ("latency", ref.estimate.latency, other.estimate.latency),
            ("plans_evaluated", ref.plans_evaluated, other.plans_evaluated),
            ("infeasible_plans", ref.infeasible_plans, other.infeasible_plans),
        ):
            if a != b:
                report.add(Violation(
                    "oracle-planner",
                    f"{ref_name} and {name} search disagree on {field}: "
                    f"{a!r} vs {b!r}",
                ))
    return report


def oracle_plan_cache(profile, cluster, gbs: int,
                      config=None, subject: str = "plan-cache") -> ConformanceReport:
    """A round-tripped cache hit is byte-identical to a fresh search.

    Runs a fresh search, stores it through a disk-backed
    :class:`~repro.core.plancache.PlanCache`, drops the in-memory tier to
    force the serialization round-trip, and demands the disk hit reproduce
    the plan signature, latency, search counters, and the full top-K beam.
    """
    import tempfile

    from repro.core.plancache import PlanCache
    from repro.core.planner import Planner, PlannerConfig, plan_best

    report = ConformanceReport(subject=subject)
    report.ran("oracle-plan-cache")
    cfg = config or PlannerConfig()
    fresh = Planner(profile, cluster, gbs, cfg).search()
    with tempfile.TemporaryDirectory(prefix="plancache-oracle-") as tmp:
        cache = PlanCache(tmp)
        cache.store(profile, cluster, gbs, cfg, fresh)
        cache.clear_memory()  # force the on-disk JSON round-trip
        hit = plan_best(profile, cluster, gbs, cfg, cache=cache)
    if cache.hits != 1 or cache.misses != 0:
        report.add(Violation(
            "oracle-plan-cache",
            f"stored entry did not hit: hits={cache.hits} misses={cache.misses}",
        ))
        return report
    checks = [
        ("plan", fresh.plan.notation, hit.plan.notation),
        ("split", fresh.plan.split_notation, hit.plan.split_notation),
        ("M", fresh.plan.num_micro_batches, hit.plan.num_micro_batches),
        ("latency", fresh.estimate.latency, hit.estimate.latency),
        ("states_explored", fresh.states_explored, hit.states_explored),
        ("plans_evaluated", fresh.plans_evaluated, hit.plans_evaluated),
        ("infeasible_plans", fresh.infeasible_plans, hit.infeasible_plans),
        ("top_plans", len(fresh.top_plans), len(hit.top_plans)),
    ]
    for (lat_a, plan_a), (lat_b, plan_b) in zip(fresh.top_plans, hit.top_plans):
        checks.append(("top_plans.latency", lat_a, lat_b))
        checks.append(("top_plans.plan", plan_a.notation, plan_b.notation))
    for field, a, b in checks:
        if a != b:
            report.add(Violation(
                "oracle-plan-cache",
                f"cached result diverges from fresh search on {field}: "
                f"{a!r} vs {b!r}",
            ))
    return report


def oracle_served_plan(profile, cluster, gbs: int,
                       config=None, subject: str = "served-plan") -> ConformanceReport:
    """A plan served over HTTP is bit-identical to a direct ``plan_best``.

    Starts an ephemeral in-process :class:`~repro.serve.PlanServer` (inline
    execution, fresh temp data dir), submits the problem as an inline
    graph + cluster request, and demands the served plan reproduce the
    direct search's stage map, latency, and search counters exactly.
    Environments that cannot bind a localhost socket report the oracle as
    skipped rather than failing.
    """
    from repro.core.planner import plan_best
    from repro.core.serialization import (
        cluster_to_dict,
        graph_to_dict,
        plan_to_dict,
        planner_config_to_dict,
    )

    report = ConformanceReport(subject=subject)
    try:
        from repro.serve import PlanClient, PlanServer
    except ImportError:  # pragma: no cover - serve is part of the package
        return report
    report.ran("oracle-served-plan")

    from repro.core.planner import PlannerConfig

    cfg = config or PlannerConfig()
    direct = plan_best(profile, cluster, gbs, cfg)
    request = {
        "graph": graph_to_dict(profile.graph),
        "cluster": cluster_to_dict(cluster),
        "gbs": gbs,
        "planner": planner_config_to_dict(cfg),
    }
    try:
        server = PlanServer(workers=1, exec_mode="inline", queue_depth=4).start()
    except OSError:  # no sockets available (sandbox): cannot test
        return report
    try:
        client = PlanClient(server.url, timeout=30.0)
        job = client.wait(client.submit(request)["job_id"], timeout=120.0)
        served = client.result(job)
    except Exception as e:
        report.add(Violation(
            "oracle-served-plan", f"service round-trip failed: {e}"
        ))
        return report
    finally:
        server.close()

    checks = [
        ("plan", plan_to_dict(direct.plan), served["plan"]),
        ("notation", direct.plan.notation, served["notation"]),
        ("split", direct.plan.split_notation, served["split"]),
        ("M", direct.plan.num_micro_batches, served["num_micro_batches"]),
        ("latency", direct.estimate.latency, served["estimate"]["latency"]),
        ("warmup", direct.estimate.warmup, served["estimate"]["warmup"]),
        ("steady", direct.estimate.steady, served["estimate"]["steady"]),
        ("ending", direct.estimate.ending, served["estimate"]["ending"]),
        ("states_explored", direct.states_explored,
         served["counters"]["states_explored"]),
        ("plans_evaluated", direct.plans_evaluated,
         served["counters"]["plans_evaluated"]),
        ("infeasible_plans", direct.infeasible_plans,
         served["counters"]["infeasible_plans"]),
    ]
    for field, a, b in checks:
        if a != b:
            report.add(Violation(
                "oracle-served-plan",
                f"served plan diverges from direct plan_best on {field}: "
                f"{a!r} vs {b!r}",
            ))
    return report


def oracle_explain(profile, cluster, plan,
                   subject: str = "explain") -> ConformanceReport:
    """``breakdown_plan`` decomposition re-sums to ``evaluate_plan`` exactly."""
    from repro.obs.explain import breakdown_plan

    report = ConformanceReport(subject=subject)
    report.ran("oracle-explain")
    try:
        breakdown_plan(profile, cluster, plan).verify()
    except AssertionError as e:
        report.add(Violation(
            "oracle-explain",
            f"explain_plan decomposition does not reproduce evaluate_plan: {e}",
        ))
    return report


def oracle_clean_faults(profile, cluster, plan, seed: int = 0,
                        subject: str = "clean-faults", **kwargs) -> ConformanceReport:
    """``models=()`` fault injection is byte-identical to the clean path."""
    from repro.faults.inject import execute_plan_faulted, perturb_graph
    from repro.runtime.executor import PipelineExecutor, execute_plan

    report = ConformanceReport(subject=subject)
    report.ran("oracle-clean-faults")
    graph = PipelineExecutor(profile, cluster, plan, **kwargs).build_graph()
    if perturb_graph(graph, (), seed) is not graph:
        report.add(Violation(
            "oracle-clean-faults",
            "perturb_graph with no models copied the graph instead of "
            "returning it unchanged",
        ))
    clean = execute_plan(profile, cluster, plan, **kwargs)
    faulted = execute_plan_faulted(
        profile, cluster, plan, models=(), seed=seed, **kwargs
    ).result
    if clean.iteration_time != faulted.iteration_time:
        report.add(Violation(
            "oracle-clean-faults",
            f"iteration time diverges: clean={clean.iteration_time!r} "
            f"faulted(models=())={faulted.iteration_time!r}",
        ))
    if _trace_rows(clean) != _trace_rows(faulted):
        report.add(Violation(
            "oracle-clean-faults",
            "trace diverges between execute_plan and "
            "execute_plan_faulted(models=())",
        ))
    return report


def oracle_memory_m_independence(
    profile, cluster, plan,
    warmup_policy: str = "PA",
    subject: str = "memory-M-independence",
) -> ConformanceReport:
    """DAPPLE peak memory does not grow with ``M`` at fixed micro-batch size.

    Scales the global batch so ``M`` doubles while the micro-batch size (and
    hence every per-op memory delta) stays fixed, then demands identical
    per-device peaks.  Both runs use an ``M`` large enough that every
    warm-up count ``Ki`` has already saturated at ``min(policy, D)`` — below
    that point the peak legitimately still grows with ``M``.
    """
    from repro.core.plan import ParallelPlan
    from repro.runtime.executor import execute_plan

    report = ConformanceReport(subject=subject)
    report.ran("oracle-memory-m-independence")
    m = plan.num_micro_batches
    s = plan.num_stages
    # f*M >= 2S-1 >= any PA/PB warm-up depth, so Ki is M-independent
    # for both compared runs.
    f = max(1, math.ceil((2 * s - 1) / m))
    plans = []
    for scale in (f, 2 * f):
        plans.append(ParallelPlan(
            model=plan.model,
            stages=list(plan.stages),
            global_batch_size=plan.global_batch_size * scale,
            num_micro_batches=m * scale,
            meta=dict(plan.meta),
        ))
    ks = [
        warmup_counts(s, p.num_micro_batches, policy=warmup_policy)
        for p in plans
    ]
    if ks[0] != ks[1]:  # defensive; the f scaling above should prevent this
        report.add(Violation(
            "oracle-memory-m-independence",
            f"warm-up counts changed with M: {ks[0]} vs {ks[1]}",
        ))
        return report
    small = execute_plan(profile, cluster, plans[0], warmup_policy=warmup_policy)
    large = execute_plan(profile, cluster, plans[1], warmup_policy=warmup_policy)
    peaks_small = small.peak_memory_per_device()
    peaks_large = large.peak_memory_per_device()
    for dev in sorted(peaks_small, key=str):
        a, b = peaks_small[dev], peaks_large.get(dev)
        if b is None or a != b:
            report.add(Violation(
                "oracle-memory-m-independence",
                f"peak grew with M at fixed micro-batch size: "
                f"{a!r} B (M={plans[0].num_micro_batches}) vs "
                f"{b!r} B (M={plans[1].num_micro_batches})",
                resource=dev,
            ))
    return report


def run_oracles(profile, cluster, plan, gbs: int | None = None,
                subject: str = "oracles") -> ConformanceReport:
    """Run every differential oracle applicable to one (model, plan) case."""
    from repro.runtime.executor import PipelineExecutor

    report = ConformanceReport(subject=subject)
    graph = PipelineExecutor(profile, cluster, plan).build_graph()
    report.merge(oracle_engines(graph))
    if gbs is not None:
        report.merge(oracle_planner(profile, cluster, gbs))
        report.merge(oracle_plan_cache(profile, cluster, gbs))
        report.merge(oracle_served_plan(profile, cluster, gbs))
    report.merge(oracle_explain(profile, cluster, plan))
    report.merge(oracle_clean_faults(profile, cluster, plan))
    report.merge(oracle_batched_ensemble(profile, cluster, plan))
    report.merge(oracle_memory_m_independence(profile, cluster, plan))
    return report

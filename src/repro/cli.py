"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``models``
    List the benchmark zoo with calibration figures.
``plan``
    Run the DAPPLE planner for a model/config/GBS; optionally save the plan
    as JSON.
``run``
    Simulate one training iteration (optionally from a saved plan), with
    Gantt chart, memory report, and Chrome-trace export.
``compare``
    DAPPLE vs PipeDream vs GPipe vs DP on one model/config.
``experiment``
    Regenerate one (or all) of the paper's tables/figures into ``results/``.
``check``
    Schedule conformance: verify executed schedules against DAPPLE's
    invariants (1F1B interleave, warm-up counts, Ki memory bound, weight
    sync) and run the differential oracles; violations exit 2.
``faults``
    Deterministic fault injection: clean vs perturbed makespans for DAPPLE,
    GPipe, and DP under seeded stragglers/jitter/link faults, with optional
    robust (quantile-based) plan re-selection.
``serve``
    Long-running planner service (``repro.serve``): async job queue, worker
    pool, content-addressed artifact store, graceful SIGTERM drain.
``submit``
    Client for ``repro serve``: POST a plan request, poll the job, print
    the served plan (stdlib urllib, no extra deps).
``cache``
    Inspect (``stats``) or empty (``clear``) an on-disk plan-cache tier.
``obs``
    Operations console: ``tail`` pretty-prints a JSONL event/access log
    with trace-aware filtering, ``summarize`` aggregates logs into
    per-span latency tables, ``top`` polls a live server's ``/metrics``
    into a refreshing dashboard.

Observability: ``plan``/``run``/``experiment``/``check``/``faults`` accept
``--trace FILE`` (``.jsonl`` = schema-validated event log, anything else =
Chrome/Perfetto JSON; for ``run`` the Perfetto file unifies wall-clock
instrumentation spans with the simulated-time op slices) and ``--metrics``
(span/metric summary tables on stdout).  Bad arguments (unknown model,
invalid config) exit with code 2; OOM during a run exits 1.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import repro.obs as obs
from repro.cluster import config_by_name
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plancache import configure_default, default_cache
from repro.core.planner import plan_best
from repro.core.serialization import load_plan, save_plan
from repro.models import PAPER_FIGURES, get_model, model_names
from repro.runtime import execute_plan
from repro.runtime.memory import OutOfMemoryError

EXPERIMENTS = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    "fig3", "fig4", "fig7", "fig8", "fig12", "fig13", "fig14", "convergence",
    "bandwidth_sweep", "straggler_sweep", "schedule_bubbles",
]

#: Fixed default for every seeded CLI path, so runs are reproducible unless
#: the user explicitly varies ``--seed``.
DEFAULT_SEED = 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", default="bert48", help=f"one of {model_names()}")
    p.add_argument("--config", default="A", choices=["A", "B", "C"],
                   help="hardware config (paper Table III)")
    p.add_argument("--devices", type=int, default=16, help="total GPUs")
    p.add_argument("--gbs", type=int, default=None, help="global batch size")


def _add_plan_cache(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--plan-cache", metavar="DIR", default=None,
        help="directory for the content-addressed plan cache (adds an "
        "on-disk tier so repeated invocations skip the planner search)",
    )
    p.add_argument(
        "--no-plan-cache", action="store_true",
        help="disable plan caching entirely (always search)",
    )


def _add_schedule(p: argparse.ArgumentParser, default: str | None = "dapple") -> None:
    """``--schedule SPEC`` resolved through the schedule registry.

    The help text lists the registered names dynamically (same pattern as
    ``config_by_name`` for hardware configs), so new schedules show up here
    without touching the CLI.
    """
    from repro.schedules import schedule_help, schedule_names

    p.add_argument(
        "--schedule", default=default, metavar="SPEC",
        help=f"schedule spec, one of {', '.join(schedule_names())} with "
        f"optional 'name:key=value' parameters ({schedule_help()})",
    )


def _add_obs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE",
        help="export an observability trace (.jsonl = event log, "
        "otherwise Chrome/Perfetto JSON)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print instrumentation span/metric summary tables",
    )


def _setup(args):
    model = get_model(args.model)
    cluster = config_by_name(args.config, args.devices)
    gbs = args.gbs
    if gbs is None:
        key = args.model.strip().lower()
        gbs = PAPER_FIGURES[key].global_batch_size if key in PAPER_FIGURES else 64
    return model, cluster, gbs, profile_model(model)


def cmd_models(_args) -> int:
    """``repro models``: print the benchmark zoo with calibration figures."""
    from repro.experiments.reporting import format_table

    rows = []
    for name in model_names():
        g = get_model(name)
        ref = PAPER_FIGURES.get(name)
        rows.append([
            name, g.name, g.num_layers, f"{g.total_params / 1e6:.0f}M",
            g.profile_batch, g.optimizer,
            f"{ref.global_batch_size}" if ref else "-",
        ])
    print(format_table(
        ["name", "model", "layers", "params", "profile batch", "optimizer", "paper GBS"],
        rows, title="Benchmark model zoo",
    ))
    return 0


def cmd_plan(args) -> int:
    """``repro plan``: search for the best hybrid plan and describe it."""
    model, cluster, gbs, prof = _setup(args)
    cfg = PlannerConfig(
        beam_width=args.beam,
        max_stages=args.max_stages,
        min_stages=2 if args.pipeline_only else 1,
        keep_top_k=4 if args.explain else 0,
    )
    result = plan_best(prof, cluster, gbs, cfg, cache=default_cache())
    plan = result.plan
    est = result.estimate
    print(f"model   : {model.name} ({model.total_params / 1e6:.0f}M params)")
    print(f"cluster : {cluster!r}")
    print(f"plan    : {plan.notation} (layers {plan.split_notation}, "
          f"M={plan.num_micro_batches})")
    for i, stage in enumerate(plan.stages):
        devs = ",".join(str(d.global_id) for d in stage.devices)
        print(f"  stage {i}: layers [{stage.layer_lo},{stage.layer_hi}) on [{devs}]")
    print(f"latency : {est.latency * 1e3:.1f} ms estimated "
          f"(Tw={est.warmup * 1e3:.1f} Ts={est.steady * 1e3:.1f} "
          f"Te={est.ending * 1e3:.1f}, pivot stage {est.pivot})")
    print(f"ACR     : {est.acr:.3f}")
    print(f"searched: {result.plans_evaluated} plans "
          f"({result.infeasible_plans} memory-infeasible)")
    if args.explain:
        from repro.obs import explain_plan

        print()
        print(explain_plan(prof, cluster, result).report())
    if args.schedule:
        # Simulate the winner under the requested schedule so the analytic
        # estimate can be read against an executed iteration.
        from repro.runtime.executor import PipelineExecutor

        try:
            ex = PipelineExecutor(prof, cluster, plan, schedule=args.schedule)
            sim = ex.run()
        except OutOfMemoryError as e:
            print(f"simulated: OOM under {args.schedule}: {e}")
        else:
            print(f"simulated: {sim.iteration_time * 1e3:.1f} ms under "
                  f"{ex.pipe_schedule.describe()}")
    if args.save:
        path = save_plan(plan, args.save)
        print(f"saved   : {path}")
    return 0


def cmd_run(args) -> int:
    """``repro run``: simulate one training iteration of a (saved) plan."""
    model, cluster, gbs, prof = _setup(args)
    if args.plan:
        plan = load_plan(args.plan, model, cluster)
    else:
        from repro.schedules import parse_schedule_spec

        # An interleaved schedule needs a round-robin virtual-stage plan,
        # which the planner's stage search never emits — synthesize one
        # (same geometry repro check uses) unless the user saved a plan.
        if parse_schedule_spec(args.schedule)[0] == "interleaved":
            plan = _schedule_arm(prof, cluster, gbs, args.schedule)[0][1]
        else:
            plan = Planner(prof, cluster, gbs).search().plan
    try:
        res = execute_plan(
            prof, cluster, plan,
            schedule=args.schedule,
            warmup_policy=args.warmup,
            recompute=args.recompute,
            sim_engine=args.sim_engine,
        )
    except OutOfMemoryError as e:
        print(f"OOM: {e}", file=sys.stderr)
        return 1
    print(f"plan       : {plan.notation} (layers {plan.split_notation}, "
          f"M={plan.num_micro_batches}, schedule={args.schedule}/{args.warmup}, "
          f"recompute={args.recompute})")
    print(f"iteration  : {res.iteration_time * 1e3:.1f} ms "
          f"({res.throughput:.1f} samples/s)")
    peaks = res.peak_memory_per_device()
    print(f"peak memory: max {max(peaks.values()) / 2**30:.2f} GiB, "
          f"avg {sum(peaks.values()) / len(peaks) / 2**30:.2f} GiB")
    if args.gantt:
        from repro.viz import render_gantt

        keys = [s.devices[0].resource_key for s in plan.stages]
        print(render_gantt(res.trace, width=100, resources=keys))
    if args.trace:
        if str(args.trace).endswith(".jsonl"):
            path = obs.export_jsonl(args.trace)
            print(f"event log  : {path}")
        else:
            # Unified export: simulated-time op slices (pid 0) alongside
            # the wall-clock instrumentation spans (pid 1).
            path = obs.export_chrome(args.trace, sim_trace=res.trace)
            print(f"chrome trace: {path} (open in https://ui.perfetto.dev)")
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: DAPPLE vs PipeDream vs GPipe vs DP on one model."""
    from repro.baselines import gpipe_plan
    from repro.baselines import pipedream_plan_hierarchical as pipedream_plan
    from repro.experiments.reporting import format_table
    from repro.runtime.dataparallel import dp_iteration_time, single_device_time

    model, cluster, gbs, prof = _setup(args)
    t_single = single_device_time(prof, gbs)
    rows = []

    dap = Planner(prof, cluster, gbs).search()
    candidates = [("DAPPLE", dap.plan)]
    try:
        pd = pipedream_plan(prof, cluster, gbs)
        candidates.append(("PipeDream plan", pd.plan))
    except RuntimeError:
        pass
    try:
        gp = gpipe_plan(prof, cluster, gbs)
        candidates.append(("GPipe straight", gp))
    except ValueError:
        pass
    for label, plan in candidates:
        sched = "gpipe" if label.startswith("GPipe") else "dapple"
        try:
            res = execute_plan(prof, cluster, plan, schedule=sched, warmup_policy="PB")
            rows.append([label, plan.notation, f"{res.iteration_time * 1e3:.1f}ms",
                         f"{t_single / res.iteration_time:.1f}x",
                         f"{res.max_peak_memory() / 2**30:.1f}GiB"])
        except OutOfMemoryError:
            rows.append([label, plan.notation, "OOM", "-", "-"])
    for overlap, label in ((False, "DP no overlap"), (True, "DP + overlap")):
        dp = dp_iteration_time(prof, cluster, cluster.devices, gbs, overlap=overlap)
        rows.append([label, "DP", f"{dp.iteration_time * 1e3:.1f}ms",
                     f"{t_single / dp.iteration_time:.1f}x", "-"])
    print(format_table(
        ["system", "plan", "iteration", "speedup", "peak mem"], rows,
        title=f"{model.name} on config {args.config}, GBS={gbs}",
    ))
    return 0


def cmd_experiment(args) -> int:
    """``repro experiment``: regenerate paper tables/figures into results/."""
    import importlib
    import inspect

    from repro.experiments.reporting import write_result

    names = EXPERIMENTS if args.name == "all" else [args.name]
    for name in names:
        mod = importlib.import_module(f"repro.experiments.{name}")
        print(f"running {name} ...", flush=True)
        # Sweep-able drivers accept a worker count, seeded ones a seed;
        # legacy ones stay serial/deterministic.
        params = inspect.signature(mod.run).parameters
        kwargs = {}
        if "jobs" in params:
            kwargs["jobs"] = args.jobs or None  # 0 → auto (all cores but one)
        if "seed" in params:
            kwargs["seed"] = args.seed
        result = mod.run(**kwargs)
        write_result(name, mod.format_results(result))
    return 0


def _fault_models_from_args(args):
    """Translate ``repro faults`` flags into perturbation models."""
    from repro.faults import (
        ComputeJitter,
        DegradedLink,
        SlowDevice,
        TransientFailure,
    )

    models = []
    if args.straggler > 1.0:
        models.append(
            SlowDevice(factor=args.straggler, num_devices=args.num_stragglers)
        )
    if args.jitter > 0.0:
        models.append(ComputeJitter(sigma=args.jitter))
    if args.link_factor > 1.0:
        models.append(
            DegradedLink(factor=args.link_factor, flaky_prob=args.flaky_prob)
        )
    if args.fail_stall > 0.0:
        models.append(TransientFailure(stall=args.fail_stall))
    return tuple(models)


def cmd_faults(args) -> int:
    """``repro faults``: robustness of DAPPLE vs GPipe vs DP on one model."""
    import math

    from repro.baselines import gpipe_plan
    from repro.core.plan import single_stage_plan
    from repro.experiments.reporting import format_table
    from repro.faults import run_ensemble, robust_plan

    model, cluster, gbs, prof = _setup(args)
    models = _fault_models_from_args(args)
    if not models:
        print("no perturbation selected (e.g. --straggler 1.5 or --jitter 0.1)",
              file=sys.stderr)
        return 1
    seeds = range(args.seed, args.seed + args.ensemble)

    rows = []

    def measure(label, plan, schedule) -> None:
        try:
            rep = run_ensemble(
                prof, cluster, plan, models, seeds,
                schedule=schedule, sim_engine=args.sim_engine, jobs=args.jobs or None,
            )
        except OutOfMemoryError:
            rows.append([label, plan.notation, "OOM", "-", "-", "-", "-"])
            return
        rows.append([
            label,
            plan.notation,
            f"{rep.clean_makespan * 1e3:.1f}ms",
            f"{rep.p50 * 1e3:.1f}ms",
            f"{rep.p95 * 1e3:.1f}ms",
            f"{rep.slowdown(0.95):.2f}x",
            f"{rep.critical_path_shift():.0%}",
        ])

    # The planner arm runs under --schedule (any registry spec); the GPipe
    # and DP arms keep their fixed schedules for comparison.
    label = "DAPPLE" if args.schedule == "dapple" else args.schedule
    measure(
        label, plan_best(prof, cluster, gbs, cache=default_cache()).plan,
        args.schedule,
    )
    try:
        measure("GPipe", gpipe_plan(prof, cluster, gbs), "gpipe")
    except ValueError as e:
        rows.append(["GPipe", "-", f"n/a ({e})", "-", "-", "-", "-"])
    planner = Planner(prof, cluster, gbs)
    m = max(1, gbs // (prof.graph.profile_batch * cluster.num_devices))
    while gbs % m:
        m -= 1
    dp = single_stage_plan(prof.graph, cluster.devices, gbs, m)
    if planner.plan_fits_memory(dp):
        measure("DP", dp, "dapple")
    else:
        rows.append(["DP", "DP", "OOM", "-", "-", "-", "-"])

    fault_desc = ", ".join(type(m).__name__ for m in models)
    print(format_table(
        ["system", "plan", "clean", "p50", "p95", "p95/clean", "crit-path shift"],
        rows,
        title=f"{model.name} on config {args.config}, GBS={gbs} — "
        f"{args.ensemble} seeds ({fault_desc}), seed base {args.seed}",
    ))

    if args.robust_k > 0:
        rob = robust_plan(
            prof, cluster, gbs, models, seeds,
            q=args.quantile, top_k=args.robust_k,
            sim_engine=args.sim_engine, jobs=args.jobs or None,
        )
        cand_rows = [
            [
                c.notation,
                f"{c.clean * 1e3:.1f}ms",
                f"{c.quantile * 1e3:.1f}ms",
                "+".join(
                    tag
                    for tag, hit in (
                        ("robust", c is rob.robust),
                        ("clean-opt", c is rob.clean_optimal),
                    )
                    if hit
                ),
            ]
            for c in rob.candidates
        ]
        print()
        print(format_table(
            ["plan", "clean", f"p{args.quantile * 100:.0f}", "pick"],
            cand_rows,
            title=f"Robust selection over planner top-{args.robust_k}: "
            + ("selection CHANGED under perturbation"
               if rob.selection_changed else "clean-optimal plan is also robust"),
        ))
    return 0


def _check_arms(prof, cluster, gbs):
    """The three system arms ``repro check`` verifies per model.

    Mirrors ``repro faults``: the planner's DAPPLE plan, the same plan under
    a GPipe flush schedule, and pure data parallelism.
    """
    from repro.core.plan import single_stage_plan

    planner = Planner(prof, cluster, gbs)
    plan = planner.search().plan
    arms = [("DAPPLE", plan, "dapple"), ("GPipe", plan, "gpipe")]
    m = max(1, gbs // (prof.graph.profile_batch * cluster.num_devices))
    while gbs % m:
        m -= 1
    dp = single_stage_plan(prof.graph, cluster.devices, gbs, m)
    if planner.plan_fits_memory(dp):
        arms.append(("DP", dp, "dapple"))
    return arms


def _schedule_arm(prof, cluster, gbs, spec: str):
    """The single arm ``repro check --schedule SPEC`` verifies per model.

    Resolves ``spec`` through the schedule registry; interleaved schedules
    get an interleaved (virtual-stage) plan built for the model, everything
    else runs on the planner's best plan.  Raises ``ValueError`` when the
    model/cluster cannot host the schedule (too few layers for the virtual
    stages, M not divisible by the device count, ...).
    """
    from repro.core.plan import interleaved_straight_plan
    from repro.schedules import parse_schedule_spec

    name, params = parse_schedule_spec(spec)
    if name == "interleaved":
        v = params.get("v", 2)
        p_devs = cluster.num_devices
        # Smallest M that is a multiple of the device count and keeps the
        # per-micro-batch slice at or below the calibrated profile batch.
        per = max(1, gbs // (prof.graph.profile_batch * p_devs))
        m = p_devs * per
        plan = interleaved_straight_plan(
            prof.graph, cluster.devices, gbs, m, virtual_per_device=v
        )
    else:
        plan = Planner(prof, cluster, gbs).search().plan
    return [(spec, plan, spec)]


def cmd_check(args) -> int:
    """``repro check``: conformance invariants + differential oracles.

    Verifies every (model, system, engine) combination's executed schedule
    against the DAPPLE semantics in :mod:`repro.check.invariants`, then runs
    the differential oracles (engine equivalence, fast-scan vs scalar
    planner, explain decomposition, clean fault path, memory
    M-independence).  Any violation prints the offending op/stage/invariant
    and exits 2; memory-infeasible combinations are skipped, not failed.
    """
    from repro.check import generate_cases, run_oracles, verify_execution
    from repro.experiments.reporting import format_table
    from repro.sim.engine import ENGINES

    engines = list(ENGINES) if args.engine is None else [args.engine]
    if args.schedule:
        from repro.schedules import parse_schedule_spec

        # Bad specs are argument errors (exit 2); only build-time geometry
        # failures (model can't host the schedule) skip rows below.
        parse_schedule_spec(args.schedule)
    names = model_names() if args.suite == "zoo" else [args.model]
    rows = []
    failed_reports = []

    def record(subject, arm, engine, report) -> None:
        if report is None:
            rows.append([subject, arm, engine, "-", "-", "skip (OOM)"])
            return
        rows.append([
            subject, arm, engine, len(report.checks), len(report.violations),
            "ok" if report.ok else "VIOLATED",
        ])
        if not report.ok:
            failed_reports.append(report)

    with obs.span("check.suite", suite=args.suite):
        for name in names:
            model = get_model(name)
            cluster = config_by_name(args.config, args.devices)
            gbs = args.gbs
            if gbs is None:
                ref = PAPER_FIGURES.get(name.strip().lower())
                gbs = ref.global_batch_size if ref else 64
            prof = profile_model(model)
            if args.schedule:
                try:
                    arms = _schedule_arm(prof, cluster, gbs, args.schedule)
                except ValueError as e:
                    rows.append([name, args.schedule, "-", "-", "-",
                                 f"skip ({e})"])
                    arms = []
            else:
                arms = _check_arms(prof, cluster, gbs)
            for arm, plan, sched in arms:
                for engine in engines:
                    try:
                        rep = verify_execution(
                            prof, cluster, plan, schedule=sched, engine=engine
                        )
                    except OutOfMemoryError:
                        rep = None
                    record(name, arm, engine, rep)
            if args.schedule:
                continue
            if not args.no_oracles:
                try:
                    plan = _check_arms(prof, cluster, gbs)[0][1]
                    rep = run_oracles(
                        prof, cluster, plan, gbs=gbs, subject=f"{name} oracles"
                    )
                except OutOfMemoryError:
                    rep = None
                record(name, "oracles", "all", rep)
        for case in generate_cases(args.generated, base_seed=args.seed):
            subject = f"gen seed={case.seed}"
            try:
                rep = verify_execution(
                    case.profile, case.cluster, case.plan,
                    warmup_policy=case.warmup_policy,
                )
            except OutOfMemoryError:
                rep = None
            record(subject, case.plan.notation, "default", rep)

    print(format_table(
        ["subject", "system", "engine", "invariants", "violations", "status"],
        rows,
        title=f"Conformance check — suite {args.suite}, config {args.config}",
    ))
    if failed_reports:
        print()
        for rep in failed_reports:
            print(rep.render(), file=sys.stderr)
        print(f"\nFAILED: {len(failed_reports)} conformance report(s) "
              "with violations", file=sys.stderr)
        return 2
    print("\nall conformance checks passed")
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: run the planner service until SIGTERM/SIGINT."""
    import signal
    import threading

    from repro.serve import PlanServer

    server = PlanServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        data_dir=args.data_dir,
        exec_mode=args.exec,
        access_log=args.access_log,
    )
    server.start()
    print(f"serving  : {server.url}", flush=True)
    print(f"data dir : {server.data_dir}")
    print(f"workers  : {server.pool.workers} ({server.pool.mode}), "
          f"queue depth {server.queue.max_depth}")
    print("endpoints: POST /v1/plans | GET /v1/jobs/<id> "
          "/v1/artifacts/<digest> /v1/cache/stats /healthz", flush=True)

    stop = threading.Event()

    def _drain(signum, _frame):
        print(f"\nsignal {signal.Signals(signum).name}: draining "
              f"({server.queue.depth} queued, {server.queue.in_flight} running)",
              flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    stop.wait()
    clean = server.drain(timeout=args.drain_timeout)
    stats = server.queue.stats()
    print(f"drained  : {stats['completed']} done, {stats['failed']} failed, "
          f"{stats['rejected']} rejected ({'clean' if clean else 'timed out'})")
    return 0 if clean else 1


def cmd_submit(args) -> int:
    """``repro submit``: send one plan request to a running service."""
    import json as _json

    from repro.serve import PlanClient, ServiceError

    request = {
        "model": args.model,
        "config": args.config,
        "devices": args.devices,
        "explain": args.explain,
        "check": args.check,
    }
    if args.gbs is not None:
        request["gbs"] = args.gbs
    if args.schedule != "dapple":
        request["schedule"] = args.schedule
    planner = {}
    if args.beam != 48:
        planner["beam_width"] = args.beam or None
    if args.max_stages is not None:
        planner["max_stages"] = args.max_stages
    if args.pipeline_only:
        planner["min_stages"] = 2
    if args.explain:
        planner["keep_top_k"] = 4
    if planner:
        request["planner"] = planner

    client = PlanClient(args.url, timeout=args.timeout)
    try:
        submitted = client.submit(request)
        job_id = submitted["job_id"]
        if not args.json:
            print(f"job      : {job_id} @ {args.url}")
        if args.no_wait:
            print(f"status   : {args.url}{submitted['status_url']}")
            return 0
        job = client.wait(job_id, timeout=args.timeout)
        result = client.result(job)
    except ServiceError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2 if e.status == 400 else 1
    if args.json:
        print(_json.dumps(result, indent=2, sort_keys=True))
        return 0
    est = result["estimate"]
    print(f"plan     : {result['notation']} (layers {result['split']}, "
          f"M={result['num_micro_batches']})")
    print(f"latency  : {est['latency'] * 1e3:.1f} ms estimated "
          f"(Tw={est['warmup'] * 1e3:.1f} Ts={est['steady'] * 1e3:.1f} "
          f"Te={est['ending'] * 1e3:.1f}, pivot stage {est['pivot']})")
    print(f"searched : {result['counters']['plans_evaluated']} plans "
          f"({'plan-cache hit' if result['cache_hit'] else 'fresh search'})")
    for name, digest in job.get("artifacts", {}).items():
        print(f"artifact : {name} = /v1/artifacts/{digest}")
    if args.explain and "explain" in result:
        print()
        print(result["explain"])
    if args.check and "check" in result:
        check = result["check"]
        print(f"check    : {'ok' if check.get('ok') else 'FAILED'} "
              f"({len(check.get('invariants', []))} invariants)")
        if not check.get("ok"):
            print(check.get("render", ""), file=sys.stderr)
            return 1
    return 0


def cmd_obs(args) -> int:
    """``repro obs``: tail/summarize JSONL telemetry, watch a live server."""
    from repro.obs import console

    if args.obs_command == "tail":
        attempted = 0
        try:
            for line in console.tail_events(
                args.path, follow=args.follow, trace=args.trace_filter,
                name=args.name, limit=args.limit,
            ):
                print(line, flush=args.follow)
                attempted += 1
        except FileNotFoundError:
            print(f"error: no such file {args.path}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            pass
        return 0

    if args.obs_command == "summarize":
        attrs = {}
        for spec in args.attr or ():
            key, sep, value = spec.partition("=")
            if not sep:
                print(f"error: --attr wants KEY=VALUE, got {spec!r}",
                      file=sys.stderr)
                return 2
            attrs[key] = value
        records = []
        for path in args.paths:
            try:
                records.extend(console.iter_events(path))
            except FileNotFoundError:
                print(f"error: no such file {path}", file=sys.stderr)
                return 2
        rows = console.summarize_spans(
            records, name=args.name, trace=args.trace_filter,
            attrs=attrs or None
        )
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            print(console.render_summary(rows))
        return 0

    # obs top
    iterations = args.iterations
    shown = 0
    try:
        while iterations is None or shown < iterations:
            try:
                text = console.fetch_metrics(args.url, timeout=args.timeout)
            except OSError as e:
                print(f"error: cannot scrape {args.url}/metrics: {e}",
                      file=sys.stderr)
                return 1
            if not args.no_clear and shown:
                print("\033[2J\033[H", end="")
            print(console.render_dashboard(text, url=args.url), flush=True)
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_cache(args) -> int:
    """``repro cache``: inspect or clear an on-disk plan-cache tier."""
    from pathlib import Path

    from repro.core.plancache import PlanCache
    from repro.experiments.reporting import format_table

    directory = Path(args.dir)
    if args.action == "clear" and not directory.exists():
        print(f"error: no such cache directory {directory}", file=sys.stderr)
        return 2
    cache = PlanCache(directory)
    if args.action == "clear":
        removed = cache.clear_disk()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {directory}")
        return 0
    stats = cache.stats()
    rows = [
        ["disk entries", stats["disk_entries"]],
        ["disk bytes", f"{stats['disk_bytes']:,}"],
        ["max disk bytes", stats["max_disk_bytes"] or "unbounded"],
        ["directory", stats["directory"]],
    ]
    print(format_table(["field", "value"], rows,
                       title=f"plan cache @ {directory}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAPPLE reproduction: hybrid pipeline/data-parallel planning "
        "and simulation",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the benchmark model zoo")

    p = sub.add_parser("plan", help="search for the best hybrid plan")
    _add_common(p)
    p.add_argument("--beam", type=int, default=48, help="beam width (0 = exhaustive)")
    p.add_argument("--max-stages", type=int, default=None)
    p.add_argument("--pipeline-only", action="store_true", help="exclude pure DP")
    p.add_argument("--save", metavar="FILE", help="write the plan as JSON")
    p.add_argument(
        "--explain", action="store_true",
        help="print the winner's Tw/Ts/Te per-stage decomposition and the "
        "runner-up comparison",
    )
    _add_schedule(p, default=None)
    _add_plan_cache(p)
    _add_obs(p)

    p = sub.add_parser("run", help="simulate one training iteration")
    _add_common(p)
    p.add_argument("--plan", metavar="FILE", help="load a saved plan instead of searching")
    _add_schedule(p)
    p.add_argument("--warmup", default="PA", choices=["PA", "PB"])
    p.add_argument("--recompute", default="none", choices=["none", "boundary", "sqrt"])
    p.add_argument(
        "--sim-engine", default=None,
        choices=["compiled", "reference", "batched"],
        help="simulator event loop (default: compiled; reference = oracle; "
        "batched = multi-scenario engine, single-scenario here)",
    )
    p.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    _add_obs(p)

    p = sub.add_parser("compare", help="DAPPLE vs PipeDream vs GPipe vs DP")
    _add_common(p)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=EXPERIMENTS + ["all"])
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep-able experiments (fig12/fig13/fig14/"
        "table7/straggler_sweep); 0 = all cores but one",
    )
    p.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="base RNG seed for seeded experiments (convergence/"
        f"straggler_sweep); default {DEFAULT_SEED} keeps runs reproducible",
    )
    _add_plan_cache(p)
    _add_obs(p)

    p = sub.add_parser(
        "check",
        help="verify schedule conformance invariants and differential oracles",
    )
    _add_common(p)
    p.add_argument(
        "--suite", default="one", choices=["one", "zoo"],
        help="'one' checks --model only; 'zoo' sweeps every benchmark model",
    )
    p.add_argument(
        "--engine", default=None,
        choices=["compiled", "reference", "batched"],
        help="restrict to one simulator engine (default: check all)",
    )
    p.add_argument(
        "--generated", type=int, default=0, metavar="N",
        help="additionally verify N seeded random pipeline instances",
    )
    p.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"base seed for --generated cases (default {DEFAULT_SEED})",
    )
    p.add_argument(
        "--no-oracles", action="store_true",
        help="skip the differential oracles (invariants only)",
    )
    _add_schedule(p, default=None)
    _add_obs(p)

    p = sub.add_parser(
        "faults", help="fault injection: robustness of DAPPLE vs GPipe vs DP"
    )
    _add_common(p)
    _add_schedule(p)
    p.add_argument(
        "--straggler", type=float, default=1.5,
        help="persistent slow-device factor (>1 enables; default 1.5)",
    )
    p.add_argument(
        "--num-stragglers", type=int, default=1,
        help="how many devices the straggler model slows (default 1)",
    )
    p.add_argument(
        "--jitter", type=float, default=0.05,
        help="lognormal compute-jitter sigma (>0 enables; default 0.05)",
    )
    p.add_argument(
        "--link-factor", type=float, default=1.0,
        help="degraded-link slowdown factor (>1 enables; default off)",
    )
    p.add_argument(
        "--flaky-prob", type=float, default=None,
        help="make the degraded link flaky: per-transfer hit probability",
    )
    p.add_argument(
        "--fail-stall", type=float, default=0.0,
        help="transient device failure: stall-and-recover seconds (>0 enables)",
    )
    p.add_argument(
        "--ensemble", type=int, default=16,
        help="Monte-Carlo ensemble size (seeds per plan; default 16)",
    )
    p.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"base RNG seed for the ensemble (default {DEFAULT_SEED})",
    )
    p.add_argument(
        "--robust-k", type=int, default=0,
        help="also re-score the planner's top-K plans by quantile makespan "
        "(0 = skip)",
    )
    p.add_argument(
        "--quantile", type=float, default=0.95,
        help="makespan quantile for robust selection (default 0.95)",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for per-seed ensemble fan-out; 0 = all cores "
        "but one (orthogonal to --sim-engine batched, which runs the whole "
        "ensemble in-process and ignores it)",
    )
    p.add_argument(
        "--sim-engine", default=None,
        choices=["compiled", "reference", "batched"],
        help="simulator event loop for ensembles (default: batched, one "
        "multi-scenario pass; compiled/reference = per-seed)",
    )
    _add_plan_cache(p)
    _add_obs(p)

    p = sub.add_parser(
        "serve", help="run the planner as a long-lived HTTP service"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = ephemeral; default 8080)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent plan workers (default 2)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="max pending jobs before 429 backpressure (default 64)")
    p.add_argument("--data-dir", metavar="DIR", default=None,
                   help="artifact store + plan-cache directory "
                   "(default: a fresh temp dir)")
    p.add_argument("--exec", default="fork", choices=["fork", "inline"],
                   help="job execution: 'fork' = process pool inheriting the "
                   "warm plan cache (falls back to inline where unavailable); "
                   "'inline' = in the worker threads")
    p.add_argument("--access-log", metavar="FILE", default=None,
                   help="append one JSONL line per HTTP request")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for in-flight jobs on SIGTERM")
    _add_obs(p)

    p = sub.add_parser(
        "submit", help="submit one plan request to a running service"
    )
    p.add_argument("--url", default="http://127.0.0.1:8080",
                   help="service base URL (default http://127.0.0.1:8080)")
    _add_common(p)
    p.add_argument("--beam", type=int, default=48, help="beam width (0 = exhaustive)")
    p.add_argument("--max-stages", type=int, default=None)
    p.add_argument("--pipeline-only", action="store_true", help="exclude pure DP")
    p.add_argument("--explain", action="store_true",
                   help="also fetch the Tw/Ts/Te breakdown report")
    p.add_argument("--check", action="store_true",
                   help="also run the conformance battery on the served plan")
    _add_schedule(p)
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and exit without polling")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="submit/poll deadline in seconds (default 120)")
    p.add_argument("--json", action="store_true",
                   help="print the raw result artifact as JSON")

    p = sub.add_parser(
        "cache", help="inspect or clear an on-disk plan-cache tier"
    )
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--plan-cache", dest="dir", metavar="DIR", required=True,
                   help="cache directory (same as --plan-cache elsewhere)")

    p = sub.add_parser(
        "obs", help="observability console: tail/summarize logs, watch /metrics"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    t = obs_sub.add_parser(
        "tail", help="pretty-print a JSONL event/access log, trace-aware"
    )
    t.add_argument("path", help="JSONL file (obs export or server access log)")
    t.add_argument("-f", "--follow", action="store_true",
                   help="keep watching for appended lines (Ctrl-C to stop)")
    # dest avoids colliding with the global `--trace FILE` export option,
    # which main() reads via getattr(args, "trace", None)
    t.add_argument("--trace", dest="trace_filter", default=None,
                   metavar="ID",
                   help="only events whose trace id starts with ID")
    t.add_argument("--name", default=None, metavar="SUBSTR",
                   help="only spans/events whose name contains SUBSTR")
    t.add_argument("--limit", type=int, default=None, metavar="N",
                   help="stop after N matching lines")

    s = obs_sub.add_parser(
        "summarize", help="per-span-name latency table from JSONL log(s)"
    )
    s.add_argument("paths", nargs="+", help="JSONL export(s) to aggregate")
    s.add_argument("--trace", dest="trace_filter", default=None,
                   metavar="ID",
                   help="only spans whose trace id starts with ID")
    s.add_argument("--name", default=None, metavar="SUBSTR",
                   help="only spans whose name contains SUBSTR")
    s.add_argument("--attr", action="append", metavar="K=V",
                   help="only spans whose attr K equals V (repeatable)")
    s.add_argument("--json", action="store_true",
                   help="print rows as JSON instead of a table")

    o = obs_sub.add_parser(
        "top", help="refreshing console dashboard over a live /metrics"
    )
    o.add_argument("--url", default="http://127.0.0.1:8080",
                   help="service base URL (default http://127.0.0.1:8080)")
    o.add_argument("--interval", type=float, default=2.0,
                   help="seconds between scrapes (default 2)")
    o.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="stop after N refreshes (default: until Ctrl-C)")
    o.add_argument("--timeout", type=float, default=5.0,
                   help="per-scrape HTTP timeout in seconds")
    o.add_argument("--no-clear", action="store_true",
                   help="append refreshes instead of clearing the screen")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success, 1 runtime failure (e.g. OOM), 2 bad arguments —
    both argparse rejections and domain lookups (unknown model, invalid
    hardware config) that surface as ``ValueError``/``KeyError``.
    """
    args = build_parser().parse_args(argv)
    if args.command == "plan" and args.beam == 0:
        args.beam = None
    if getattr(args, "no_plan_cache", False):
        configure_default(enabled=False)
    elif getattr(args, "plan_cache", None):
        configure_default(directory=args.plan_cache)
    handlers = {
        "models": cmd_models,
        "plan": cmd_plan,
        "run": cmd_run,
        "compare": cmd_compare,
        "experiment": cmd_experiment,
        "check": cmd_check,
        "faults": cmd_faults,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "cache": cmd_cache,
        "obs": cmd_obs,
    }
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    instrument = bool(trace_path or want_metrics)
    if instrument:
        obs.enable(reset_state=True)
    try:
        code = handlers[args.command](args)
    except (ValueError, KeyError) as e:
        msg = e.args[0] if e.args else e
        print(f"error: {msg}", file=sys.stderr)
        return 2
    finally:
        if instrument:
            obs.disable()
    if instrument and code == 0:
        if want_metrics:
            print()
            print(obs.summary())
        if trace_path and args.command != "run":  # run exports in-handler
            if str(trace_path).endswith(".jsonl"):
                path = obs.export_jsonl(trace_path)
            else:
                path = obs.export_chrome(trace_path)
            print(f"observability trace: {path}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``models``
    List the benchmark zoo with calibration figures.
``plan``
    Run the DAPPLE planner for a model/config/GBS; optionally save the plan
    as JSON.
``run``
    Simulate one training iteration (optionally from a saved plan), with
    Gantt chart, memory report, and Chrome-trace export.
``compare``
    DAPPLE vs PipeDream vs GPipe vs DP on one model/config.
``experiment``
    Regenerate one (or all) of the paper's tables/figures into ``results/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import config_by_name
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.serialization import load_plan, save_plan
from repro.models import PAPER_FIGURES, get_model, model_names
from repro.runtime import execute_plan
from repro.runtime.memory import OutOfMemoryError

EXPERIMENTS = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    "fig3", "fig4", "fig7", "fig8", "fig12", "fig13", "fig14", "convergence",
    "bandwidth_sweep",
]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", default="bert48", help=f"one of {model_names()}")
    p.add_argument("--config", default="A", choices=["A", "B", "C"],
                   help="hardware config (paper Table III)")
    p.add_argument("--devices", type=int, default=16, help="total GPUs")
    p.add_argument("--gbs", type=int, default=None, help="global batch size")


def _setup(args):
    model = get_model(args.model)
    cluster = config_by_name(args.config, args.devices)
    gbs = args.gbs
    if gbs is None:
        key = args.model.strip().lower()
        gbs = PAPER_FIGURES[key].global_batch_size if key in PAPER_FIGURES else 64
    return model, cluster, gbs, profile_model(model)


def cmd_models(_args) -> int:
    """``repro models``: print the benchmark zoo with calibration figures."""
    from repro.experiments.reporting import format_table

    rows = []
    for name in model_names():
        g = get_model(name)
        ref = PAPER_FIGURES.get(name)
        rows.append([
            name, g.name, g.num_layers, f"{g.total_params / 1e6:.0f}M",
            g.profile_batch, g.optimizer,
            f"{ref.global_batch_size}" if ref else "-",
        ])
    print(format_table(
        ["name", "model", "layers", "params", "profile batch", "optimizer", "paper GBS"],
        rows, title="Benchmark model zoo",
    ))
    return 0


def cmd_plan(args) -> int:
    """``repro plan``: search for the best hybrid plan and describe it."""
    model, cluster, gbs, prof = _setup(args)
    cfg = PlannerConfig(
        beam_width=args.beam,
        max_stages=args.max_stages,
        min_stages=2 if args.pipeline_only else 1,
    )
    result = Planner(prof, cluster, gbs, cfg).search()
    plan = result.plan
    est = result.estimate
    print(f"model   : {model.name} ({model.total_params / 1e6:.0f}M params)")
    print(f"cluster : {cluster!r}")
    print(f"plan    : {plan.notation} (layers {plan.split_notation}, "
          f"M={plan.num_micro_batches})")
    for i, stage in enumerate(plan.stages):
        devs = ",".join(str(d.global_id) for d in stage.devices)
        print(f"  stage {i}: layers [{stage.layer_lo},{stage.layer_hi}) on [{devs}]")
    print(f"latency : {est.latency * 1e3:.1f} ms estimated "
          f"(Tw={est.warmup * 1e3:.1f} Ts={est.steady * 1e3:.1f} "
          f"Te={est.ending * 1e3:.1f}, pivot stage {est.pivot})")
    print(f"ACR     : {est.acr:.3f}")
    print(f"searched: {result.plans_evaluated} plans "
          f"({result.infeasible_plans} memory-infeasible)")
    if args.save:
        path = save_plan(plan, args.save)
        print(f"saved   : {path}")
    return 0


def cmd_run(args) -> int:
    """``repro run``: simulate one training iteration of a (saved) plan."""
    model, cluster, gbs, prof = _setup(args)
    if args.plan:
        plan = load_plan(args.plan, model, cluster)
    else:
        plan = Planner(prof, cluster, gbs).search().plan
    try:
        res = execute_plan(
            prof, cluster, plan,
            schedule=args.schedule,
            warmup_policy=args.warmup,
            recompute=args.recompute,
            sim_engine=args.sim_engine,
        )
    except OutOfMemoryError as e:
        print(f"OOM: {e}", file=sys.stderr)
        return 1
    print(f"plan       : {plan.notation} (layers {plan.split_notation}, "
          f"M={plan.num_micro_batches}, schedule={args.schedule}/{args.warmup}, "
          f"recompute={args.recompute})")
    print(f"iteration  : {res.iteration_time * 1e3:.1f} ms "
          f"({res.throughput:.1f} samples/s)")
    peaks = res.peak_memory_per_device()
    print(f"peak memory: max {max(peaks.values()) / 2**30:.2f} GiB, "
          f"avg {sum(peaks.values()) / len(peaks) / 2**30:.2f} GiB")
    if args.gantt:
        from repro.viz import render_gantt

        keys = [s.devices[0].resource_key for s in plan.stages]
        print(render_gantt(res.trace, width=100, resources=keys))
    if args.trace:
        from repro.sim.chrome_trace import export_chrome_trace

        path = export_chrome_trace(res.trace, args.trace)
        print(f"chrome trace: {path} (open in chrome://tracing)")
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: DAPPLE vs PipeDream vs GPipe vs DP on one model."""
    from repro.baselines import gpipe_plan
    from repro.baselines import pipedream_plan_hierarchical as pipedream_plan
    from repro.experiments.reporting import format_table
    from repro.runtime.dataparallel import dp_iteration_time, single_device_time

    model, cluster, gbs, prof = _setup(args)
    t_single = single_device_time(prof, gbs)
    rows = []

    dap = Planner(prof, cluster, gbs).search()
    candidates = [("DAPPLE", dap.plan)]
    try:
        pd = pipedream_plan(prof, cluster, gbs)
        candidates.append(("PipeDream plan", pd.plan))
    except RuntimeError:
        pass
    try:
        gp = gpipe_plan(prof, cluster, gbs)
        candidates.append(("GPipe straight", gp))
    except ValueError:
        pass
    for label, plan in candidates:
        sched = "gpipe" if label.startswith("GPipe") else "dapple"
        try:
            res = execute_plan(prof, cluster, plan, schedule=sched, warmup_policy="PB")
            rows.append([label, plan.notation, f"{res.iteration_time * 1e3:.1f}ms",
                         f"{t_single / res.iteration_time:.1f}x",
                         f"{res.max_peak_memory() / 2**30:.1f}GiB"])
        except OutOfMemoryError:
            rows.append([label, plan.notation, "OOM", "-", "-"])
    for overlap, label in ((False, "DP no overlap"), (True, "DP + overlap")):
        dp = dp_iteration_time(prof, cluster, cluster.devices, gbs, overlap=overlap)
        rows.append([label, "DP", f"{dp.iteration_time * 1e3:.1f}ms",
                     f"{t_single / dp.iteration_time:.1f}x", "-"])
    print(format_table(
        ["system", "plan", "iteration", "speedup", "peak mem"], rows,
        title=f"{model.name} on config {args.config}, GBS={gbs}",
    ))
    return 0


def cmd_experiment(args) -> int:
    """``repro experiment``: regenerate paper tables/figures into results/."""
    import importlib
    import inspect

    from repro.experiments.reporting import write_result

    names = EXPERIMENTS if args.name == "all" else [args.name]
    for name in names:
        mod = importlib.import_module(f"repro.experiments.{name}")
        print(f"running {name} ...", flush=True)
        # Sweep-able drivers accept a worker count; legacy ones stay serial.
        kwargs = {}
        if "jobs" in inspect.signature(mod.run).parameters:
            kwargs["jobs"] = args.jobs or None  # 0 → auto (all cores but one)
        result = mod.run(**kwargs)
        write_result(name, mod.format_results(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAPPLE reproduction: hybrid pipeline/data-parallel planning "
        "and simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the benchmark model zoo")

    p = sub.add_parser("plan", help="search for the best hybrid plan")
    _add_common(p)
    p.add_argument("--beam", type=int, default=48, help="beam width (0 = exhaustive)")
    p.add_argument("--max-stages", type=int, default=None)
    p.add_argument("--pipeline-only", action="store_true", help="exclude pure DP")
    p.add_argument("--save", metavar="FILE", help="write the plan as JSON")

    p = sub.add_parser("run", help="simulate one training iteration")
    _add_common(p)
    p.add_argument("--plan", metavar="FILE", help="load a saved plan instead of searching")
    p.add_argument("--schedule", default="dapple", choices=["dapple", "gpipe"])
    p.add_argument("--warmup", default="PA", choices=["PA", "PB"])
    p.add_argument("--recompute", default="none", choices=["none", "boundary", "sqrt"])
    p.add_argument(
        "--sim-engine", default=None, choices=["compiled", "reference"],
        help="simulator event loop (default: compiled; reference = oracle)",
    )
    p.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p.add_argument("--trace", metavar="FILE", help="export a Chrome trace JSON")

    p = sub.add_parser("compare", help="DAPPLE vs PipeDream vs GPipe vs DP")
    _add_common(p)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=EXPERIMENTS + ["all"])
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep-able experiments (fig12/fig13/fig14/"
        "table7); 0 = all cores but one",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "plan" and args.beam == 0:
        args.beam = None
    handlers = {
        "models": cmd_models,
        "plan": cmd_plan,
        "run": cmd_run,
        "compare": cmd_compare,
        "experiment": cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())

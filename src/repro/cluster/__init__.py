"""Hardware substrate: devices, machines, interconnects, collectives.

Models the three hardware environments of the paper's Table III:

* **Config A** — servers with 8×V100 connected by NVLink, 25 Gbps Ethernet
  between servers (hierarchical).
* **Config B** — one V100 per server, 25 Gbps Ethernet (flat).
* **Config C** — one V100 per server, 10 Gbps Ethernet (flat).

All quantities use SI base units: bytes, seconds, bytes/second, FLOP/s.
"""

from repro.cluster.device import GPUSpec, Device, V100
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec
from repro.cluster.configs import (
    config_a,
    config_b,
    config_c,
    config_by_name,
    ETHERNET_25G,
    ETHERNET_10G,
    NVLINK,
)
from repro.cluster.transfer import transfer_time, split_concat_overhead
from repro.cluster.collectives import (
    allreduce_time,
    ring_allreduce_time,
    hierarchical_allreduce_time,
    broadcast_time,
)

__all__ = [
    "GPUSpec",
    "Device",
    "V100",
    "Machine",
    "Cluster",
    "LinkSpec",
    "config_a",
    "config_b",
    "config_c",
    "config_by_name",
    "ETHERNET_25G",
    "ETHERNET_10G",
    "NVLINK",
    "transfer_time",
    "split_concat_overhead",
    "allreduce_time",
    "ring_allreduce_time",
    "hierarchical_allreduce_time",
    "broadcast_time",
]

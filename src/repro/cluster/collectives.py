"""Collective-communication cost models (AllReduce, broadcast).

DAPPLE's planner needs ``AR(Ps, gs)`` — the time to AllReduce the gradients
of stage *s* (parameter bytes ``Ps``) across its replica device set ``gs``
(paper eq. 1).  We model:

* **ring AllReduce** within one link class:
  ``t = 2·(n−1)/n · D / B + 2·(n−1)·latency``;
* **hierarchical AllReduce** for groups spanning machines on hierarchical
  interconnects (Config A): intra-machine reduce over NVLink, inter-machine
  ring over Ethernet among one leader per machine, intra-machine broadcast.

The hierarchical model is what gives Config A its characteristic behaviour:
an 8-way replica group *inside* one server AllReduces multi-GB gradients in
tens of milliseconds, while the same group spread over servers would take
seconds over 25 GbE — exactly the asymmetry the paper's Fig. 2 placement
exploits.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.device import Device
from repro.cluster.topology import Cluster, LinkSpec


def ring_allreduce_time(nbytes: float, n: int, link: LinkSpec) -> float:
    """Ring AllReduce of ``nbytes`` across ``n`` peers over ``link``.

    Standard 2-phase (reduce-scatter + all-gather) ring: each peer sends
    ``2·(n−1)/n·nbytes`` and the ring makes ``2·(n−1)`` latency hops.
    """
    if n < 1:
        raise ValueError(f"allreduce needs n>=1, got {n}")
    if n == 1 or nbytes <= 0:
        return 0.0
    volume = 2.0 * (n - 1) / n * nbytes
    return volume / link.bandwidth + 2.0 * (n - 1) * link.latency


def hierarchical_allreduce_time(nbytes: float, cluster: Cluster, devs: Sequence[Device]) -> float:
    """Hierarchical AllReduce: NVLink reduce → Ethernet ring → NVLink bcast.

    Machines contribute one leader each to the inter-machine ring.  Intra
    phases use the machine's internal link.  Degenerates gracefully: a group
    on one machine is a pure intra ring; one GPU per machine is a pure inter
    ring.
    """
    devs = list(devs)
    per_machine: dict[int, int] = {}
    for d in devs:
        per_machine[d.machine_id] = per_machine.get(d.machine_id, 0) + 1
    n_machines = len(per_machine)
    max_local = max(per_machine.values())

    intra_link = LinkSpec(
        "intra",
        cluster.machines[devs[0].machine_id].intra_bw,
        cluster.machines[devs[0].machine_id].intra_lat,
    )
    t = 0.0
    if max_local > 1:
        # reduce-scatter + later all-gather inside machines ≈ one full intra
        # ring pass split into two halves around the inter phase.
        t += ring_allreduce_time(nbytes, max_local, intra_link)
    if n_machines > 1:
        t += ring_allreduce_time(nbytes, n_machines, cluster.inter)
    return t


def allreduce_time(nbytes: float, cluster: Cluster, devs: Sequence[Device]) -> float:
    """AllReduce time for ``nbytes`` across ``devs``, picking the best scheme.

    For single-machine groups this is an NVLink ring; for multi-machine
    groups we take the cheaper of a flat ring over the bottleneck link and
    the hierarchical scheme (NCCL-style auto-selection).
    """
    devs = list(devs)
    n = len(devs)
    if n <= 1 or nbytes <= 0:
        return 0.0
    if not cluster.spans_machines(devs):
        m = cluster.machines[devs[0].machine_id]
        return ring_allreduce_time(nbytes, n, LinkSpec("intra", m.intra_bw, m.intra_lat))
    flat = ring_allreduce_time(nbytes, n, cluster.inter)
    hier = hierarchical_allreduce_time(nbytes, cluster, devs)
    return min(flat, hier)


def broadcast_time(nbytes: float, cluster: Cluster, devs: Sequence[Device]) -> float:
    """Pipelined-chain broadcast of ``nbytes`` from devs[0] to the rest."""
    devs = list(devs)
    n = len(devs)
    if n <= 1 or nbytes <= 0:
        return 0.0
    if not cluster.spans_machines(devs):
        m = cluster.machines[devs[0].machine_id]
        link = LinkSpec("intra", m.intra_bw, m.intra_lat)
    else:
        link = cluster.inter
    return nbytes / link.bandwidth + (n - 1) * link.latency

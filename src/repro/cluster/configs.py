"""The three hardware configurations of the paper's Table III.

| Config | GPUs/server (Ns) | intra-server      | inter-server |
|--------|------------------|-------------------|--------------|
| A      | 8× V100          | NVLink            | 25 Gbps      |
| B      | 1× V100          | n/a               | 25 Gbps      |
| C      | 1× V100          | n/a               | 10 Gbps      |

Bandwidths are *effective payload* rates: Ethernet link-layer efficiency is
taken as 90 % of line rate (TCP/NCCL overheads), NVLink as the paper's quoted
"up to 130 GB/s" aggregate per GPU.
"""

from __future__ import annotations

from repro.cluster.device import GPUSpec, V100
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec

GBPS = 1e9 / 8  # 1 Gbps in bytes/second

#: 25 Gbps Ethernet at 90 % payload efficiency.  Per-message latency models
#: the TF-1.12 grpc send/recv path the paper's runtime uses (~300 µs per
#: cross-worker tensor), not raw wire latency.
ETHERNET_25G = LinkSpec("25GbE", bandwidth=25 * GBPS * 0.9, latency=300e-6)

#: 10 Gbps Ethernet at 90 % payload efficiency.
ETHERNET_10G = LinkSpec("10GbE", bandwidth=10 * GBPS * 0.9, latency=300e-6)

#: NVLink: 130 GB/s effective aggregate per GPU, ~5 µs launch latency.
NVLINK = LinkSpec("NVLink", bandwidth=130e9, latency=5e-6)

#: Placeholder for single-GPU servers with no intra-server peer link.
NO_INTRA = LinkSpec("none", bandwidth=130e9, latency=5e-6)


def _build(
    num_machines: int,
    gpus_per_machine: int,
    intra: LinkSpec,
    inter: LinkSpec,
    name: str,
    gpu_spec: GPUSpec,
) -> Cluster:
    machines = [
        Machine(
            machine_id=i,
            num_gpus=gpus_per_machine,
            intra_bw=intra.bandwidth,
            intra_lat=intra.latency,
            gpu_spec=gpu_spec,
        )
        for i in range(num_machines)
    ]
    return Cluster(machines, inter=inter, name=name)


def config_a(num_machines: int = 2, gpu_spec: GPUSpec = V100) -> Cluster:
    """Hierarchical: ``num_machines`` servers × 8 V100 + NVLink, 25 GbE."""
    return _build(num_machines, 8, NVLINK, ETHERNET_25G, f"A({num_machines}x8)", gpu_spec)


def config_b(num_machines: int = 16, gpu_spec: GPUSpec = V100) -> Cluster:
    """Flat: ``num_machines`` servers × 1 V100, 25 GbE."""
    return _build(num_machines, 1, NO_INTRA, ETHERNET_25G, f"B({num_machines}x1)", gpu_spec)


def config_c(num_machines: int = 16, gpu_spec: GPUSpec = V100) -> Cluster:
    """Flat: ``num_machines`` servers × 1 V100, 10 GbE."""
    return _build(num_machines, 1, NO_INTRA, ETHERNET_10G, f"C({num_machines}x1)", gpu_spec)


#: Valid ``config_by_name`` keys, in paper order (Table III).
CONFIG_NAMES = ("A", "B", "C")


def config_by_name(name: str, num_devices: int = 16, gpu_spec: GPUSpec = V100) -> Cluster:
    """Build config ``"A"``/``"B"``/``"C"`` sized to ``num_devices`` GPUs."""
    key = name.strip().upper()
    if key not in CONFIG_NAMES:
        valid = ", ".join(repr(n) for n in CONFIG_NAMES)
        raise ValueError(f"unknown hardware config {name!r} (valid names: {valid})")
    if num_devices < 1:
        raise ValueError(
            f"config {key} needs at least 1 GPU, got num_devices={num_devices}"
        )
    if key == "A":
        if num_devices % 8 != 0:
            raise ValueError(
                f"config A packs 8 GPUs per server, so num_devices must be a "
                f"multiple of 8, got {num_devices}"
            )
        return config_a(num_devices // 8, gpu_spec)
    if key == "B":
        return config_b(num_devices, gpu_spec)
    return config_c(num_devices, gpu_spec)

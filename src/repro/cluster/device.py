"""GPU device model.

A :class:`GPUSpec` captures the *effective* (sustained) characteristics that
drive the analytical profiler: fp32 throughput for compute-time estimates and
memory capacity for feasibility checks.  A :class:`Device` is one physical
GPU instance placed inside a machine, addressable globally and locally.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024**3
TFLOPS = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """Sustained performance envelope of one accelerator.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"V100"``.
    memory_bytes:
        Usable device memory.
    flops:
        Sustained fp32 throughput in FLOP/s used to convert layer FLOPs to
        time.  We use 9.0 TFLOP/s for the V100 (≈60 % of the 15.7 TFLOP/s
        peak), a standard sustained-efficiency assumption for mixed
        GEMM/elementwise training workloads.
    """

    name: str
    memory_bytes: int
    flops: float

    def compute_time(self, flop_count: float) -> float:
        """Seconds to execute ``flop_count`` floating-point operations."""
        if flop_count < 0:
            raise ValueError(f"negative flop count {flop_count}")
        return flop_count / self.flops


#: The accelerator used throughout the paper's evaluation (16 GB V100).
V100 = GPUSpec(name="V100", memory_bytes=16 * GB, flops=9.0 * TFLOPS)


@dataclass(frozen=True)
class Device:
    """One physical GPU inside a cluster.

    ``global_id`` is unique across the cluster; ``machine_id``/``local_id``
    locate it.  The resource key binds the device to the simulator.
    """

    global_id: int
    machine_id: int
    local_id: int
    spec: GPUSpec = V100

    @property
    def resource_key(self) -> str:
        """Simulator resource key for this device's compute stream."""
        return f"gpu:{self.global_id}"

    def __repr__(self) -> str:  # compact for traces / planner dumps
        return f"G{self.global_id}"

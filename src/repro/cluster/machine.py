"""Machine (server) model: a set of GPUs plus intra-server interconnect."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.device import Device, GPUSpec, V100


@dataclass
class Machine:
    """A server holding ``num_gpus`` devices joined by an intra-server link.

    ``intra_bw``/``intra_lat`` describe GPU-to-GPU transfers inside the
    machine (NVLink on Config A); they are effectively infinite-bandwidth
    compared to Ethernet but still modeled to keep all cost formulas uniform.
    """

    machine_id: int
    num_gpus: int
    intra_bw: float
    intra_lat: float
    gpu_spec: GPUSpec = V100
    devices: list[Device] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"machine needs >=1 GPU, got {self.num_gpus}")
        # global ids are assigned by the Cluster; initialize locally so a
        # standalone Machine is still usable in unit tests.
        self.devices = [
            Device(global_id=-1, machine_id=self.machine_id, local_id=i, spec=self.gpu_spec)
            for i in range(self.num_gpus)
        ]

    def assign_global_ids(self, start: int) -> int:
        """Renumber devices with consecutive global ids from ``start``."""
        self.devices = [
            Device(
                global_id=start + i,
                machine_id=self.machine_id,
                local_id=i,
                spec=self.gpu_spec,
            )
            for i in range(self.num_gpus)
        ]
        return start + self.num_gpus

    @property
    def nic_send_key(self) -> str:
        """Resource key serializing this machine's outbound Ethernet traffic."""
        return f"nic-out:{self.machine_id}"

    @property
    def nic_recv_key(self) -> str:
        """Resource key serializing this machine's inbound Ethernet traffic."""
        return f"nic-in:{self.machine_id}"

"""Cluster topology: machines wired by an inter-server network.

The :class:`Cluster` answers the questions the planner and runtime ask about
hardware:

* point-to-point bandwidth/latency between any two devices;
* whether a device group spans machines (drives AllReduce strategy choice);
* which simulator resources a transfer occupies (GPU-pair lane inside a
  machine; sender-NIC + receiver-NIC across machines, capturing Ethernet
  serialization and contention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.device import Device
from repro.cluster.machine import Machine


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth (bytes/s) and per-message latency (s) of one link class."""

    name: str
    bandwidth: float
    latency: float

    def time(self, nbytes: float) -> float:
        """Store-and-forward transfer time for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


class Cluster:
    """A set of homogeneous machines joined by a flat inter-server network."""

    def __init__(self, machines: Sequence[Machine], inter: LinkSpec, name: str = "custom"):
        if not machines:
            raise ValueError("cluster needs at least one machine")
        self.name = name
        self.machines = list(machines)
        self.inter = inter
        next_id = 0
        for m in self.machines:
            next_id = m.assign_global_ids(next_id)
        self._devices: list[Device] = [d for m in self.machines for d in m.devices]
        self._by_id = {d.global_id: d for d in self._devices}

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    @property
    def devices(self) -> list[Device]:
        return list(self._devices)

    @property
    def num_devices(self) -> int:
        return len(self._devices)

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def gpus_per_machine(self) -> int:
        """Ns of Table III (homogeneous machines assumed)."""
        return self.machines[0].num_gpus

    def device(self, global_id: int) -> Device:
        return self._by_id[global_id]

    def machine_of(self, dev: Device | int) -> Machine:
        gid = dev.global_id if isinstance(dev, Device) else dev
        return self.machines[self._by_id[gid].machine_id]

    # ------------------------------------------------------------------ #
    # Link queries
    # ------------------------------------------------------------------ #
    def same_machine(self, a: Device, b: Device) -> bool:
        return a.machine_id == b.machine_id

    def link_between(self, a: Device, b: Device) -> LinkSpec:
        """The link class used for an a→b transfer."""
        if a.global_id == b.global_id:
            return LinkSpec("loopback", float("inf"), 0.0)
        if self.same_machine(a, b):
            m = self.machines[a.machine_id]
            return LinkSpec("intra", m.intra_bw, m.intra_lat)
        return self.inter

    def p2p_time(self, nbytes: float, a: Device, b: Device) -> float:
        """Point-to-point transfer time for ``nbytes`` from a to b."""
        if a.global_id == b.global_id:
            return 0.0
        return self.link_between(a, b).time(nbytes)

    def transfer_resources(self, a: Device, b: Device) -> tuple:
        """Simulator resource keys occupied by an a→b transfer.

        Intra-machine transfers hold a dedicated per-pair NVLink lane (the
        fabric is a crossbar, so distinct pairs do not contend).  Inter-
        machine transfers hold the sender's outbound NIC and the receiver's
        inbound NIC, which is where 25/10 GbE contention actually happens.
        """
        if a.global_id == b.global_id:
            return ()
        if self.same_machine(a, b):
            lo, hi = sorted((a.global_id, b.global_id))
            return (f"nvlink:{lo}-{hi}",)
        ma = self.machines[a.machine_id]
        mb = self.machines[b.machine_id]
        return (ma.nic_send_key, mb.nic_recv_key)

    # ------------------------------------------------------------------ #
    # Group queries (used by collectives / placement)
    # ------------------------------------------------------------------ #
    def spans_machines(self, devs: Iterable[Device]) -> bool:
        ids = {d.machine_id for d in devs}
        return len(ids) > 1

    def group_min_bandwidth(self, devs: Sequence[Device]) -> float:
        """Slowest link bandwidth within a device group (ring bottleneck)."""
        devs = list(devs)
        if len(devs) < 2:
            return float("inf")
        if self.spans_machines(devs):
            return self.inter.bandwidth
        return self.machines[devs[0].machine_id].intra_bw

    def occupancy_template(self) -> list[int]:
        """All-zeros per-machine GPU-usage vector (placement bookkeeping)."""
        return [0] * self.num_machines

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name}: {self.num_machines}x{self.gpus_per_machine} "
            f"{self.machines[0].gpu_spec.name}, inter={self.inter.name})"
        )

"""Point-to-point transfer and split/concat cost models.

Cross-stage activation communication in DAPPLE goes through explicit
split/concat nodes when adjacent stages have different replication degrees
(paper Fig. 9).  We model the split/concat itself as a small device-side
copy: its cost is the tensor size divided by device memory copy bandwidth,
plus a fixed kernel-launch overhead.  The paper observes this overhead is
smaller than the round-robin "tail effect" alternative (Fig. 8), which the
Fig. 8 benchmark reproduces.

The group-to-group :func:`transfer_time` estimate accounts for the fact
that all flows leaving (or entering) one machine share that machine's NIC:
inter-machine time is driven by per-machine aggregate volumes, not by
per-GPU flows.  Intra-machine flows ride dedicated NVLink lanes in
parallel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.cluster.device import Device
from repro.cluster.topology import Cluster

#: Device-memory copy bandwidth used for split/concat (V100 HBM2 ~750 GB/s
#: effective for strided copies).
COPY_BANDWIDTH = 750e9

#: Fixed kernel-launch overhead per split/concat op.
COPY_LAUNCH_OVERHEAD = 10e-6


def split_concat_overhead(nbytes: float, fan: int) -> float:
    """Cost of splitting (or concatenating) an ``nbytes`` tensor ``fan`` ways.

    Zero when no reshaping is needed (``fan <= 1``).
    """
    if fan <= 1 or nbytes <= 0:
        return 0.0
    return COPY_LAUNCH_OVERHEAD + nbytes / COPY_BANDWIDTH


def transfer_time(
    cluster: Cluster,
    nbytes: float,
    senders: Sequence[Device],
    receivers: Sequence[Device],
) -> float:
    """Time to move an ``nbytes`` activation between two replica groups.

    The micro-batch is sliced evenly across senders and across receivers
    (paper §V-B2), producing one flow of
    ``nbytes / (len(senders)·len(receivers))`` per (sender, receiver) pair.
    Elapsed time is the maximum over:

    * each machine's aggregate inbound/outbound Ethernet volume over the
      inter-server bandwidth (flows sharing a NIC serialize), and
    * each intra-machine pairwise flow over NVLink (dedicated lanes).

    Split/concat reshaping overhead is added when fan-in/out is needed.
    This is the *analytical* estimate the planner uses; the runtime
    simulator models the same flows as explicit ops with NIC contention.
    """
    senders = list(senders)
    receivers = list(receivers)
    if not senders or not receivers:
        raise ValueError("transfer needs at least one sender and one receiver")
    if nbytes <= 0:
        return 0.0
    if {d.global_id for d in senders} == {d.global_id for d in receivers}:
        return 0.0

    # Per-machine NIC pressure is counted in *flows* and converted to bytes
    # with one multiply (``count * flow``) — a single canonical rounding that
    # the planner's vectorized completion scanner reproduces exactly.
    flow = nbytes / (len(senders) * len(receivers))
    out_flows: dict[int, int] = defaultdict(int)
    in_flows: dict[int, int] = defaultdict(int)
    intra_max = 0.0
    any_inter = False
    for s in senders:
        for r in receivers:
            if s.global_id == r.global_id:
                continue
            if cluster.same_machine(s, r):
                m = cluster.machines[s.machine_id]
                intra_max = max(intra_max, m.intra_lat + flow / m.intra_bw)
            else:
                out_flows[s.machine_id] += 1
                in_flows[r.machine_id] += 1
                any_inter = True

    inter_max = 0.0
    if any_inter:
        worst_count = max(
            max(out_flows.values(), default=0), max(in_flows.values(), default=0)
        )
        worst_volume = worst_count * flow
        inter_max = cluster.inter.latency + worst_volume / cluster.inter.bandwidth

    reshaping = split_concat_overhead(
        nbytes / len(senders), len(receivers)
    ) + split_concat_overhead(nbytes / len(receivers), len(senders))
    return max(intra_max, inter_max) + reshaping

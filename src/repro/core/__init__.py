"""DAPPLE core: profiler, latency model, placement, planner, scheduler."""

from repro.core.profiler import LayerProfile, ModelProfile, profile_model
from repro.core.plan import Stage, ParallelPlan, PlanKind
from repro.core.latency import PipelineCostModel, StageCosts, evaluate_plan
from repro.core.placement import (
    PlacementPolicy,
    allocate,
    fresh_first,
    append_first,
    scatter_first,
    POLICIES,
)
from repro.core.fast_scan import (
    CompletionScanner,
    ScanResult,
    best_two_stage_split,
    scan_two_stage,  # deprecated: the empty-prefix case of CompletionScanner
)
from repro.core.planner import Planner, PlannerConfig, plan_best
from repro.core.scheduler import (
    MicroBatchTask,
    StageSchedule,
    dapple_schedule,
    gpipe_schedule,
    warmup_counts,
)

__all__ = [
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "Stage",
    "ParallelPlan",
    "PlanKind",
    "PipelineCostModel",
    "StageCosts",
    "evaluate_plan",
    "PlacementPolicy",
    "allocate",
    "fresh_first",
    "append_first",
    "scatter_first",
    "POLICIES",
    "Planner",
    "PlannerConfig",
    "plan_best",
    "CompletionScanner",
    "ScanResult",
    "best_two_stage_split",
    "scan_two_stage",
    "MicroBatchTask",
    "StageSchedule",
    "dapple_schedule",
    "gpipe_schedule",
    "warmup_counts",
]

"""Vectorized two-stage plan scanning.

The planner's inner loop evaluates ``L(j)`` for every split point ``j`` of
a candidate device assignment.  For two-stage plans every cost term is an
affine function of prefix sums over layers, so the whole scan vectorizes:
one numpy pass evaluates all ``N−1`` splits at once — the same latencies
``evaluate_plan`` computes one by one, typically ~50× faster.

The decomposition mirrors :mod:`repro.core.latency` exactly:

* compute stages: ``F/B`` from the profile's prefix arrays;
* the communication stage: an elementwise ``max`` of two affine functions
  of the boundary bytes (intra-machine NVLink term vs per-NIC aggregate
  Ethernet term) plus affine split/concat reshaping;
* AllReduce: ``min`` of the flat-ring and hierarchical affine costs;
* pivot selection (eq. 3) and ``L = Tw + Ts + Te`` evaluated with
  ``np.where`` over the three extended stages.

``tests/core/test_fast_scan.py`` asserts bit-level agreement with
``evaluate_plan`` across models, clusters and group shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.device import Device
from repro.cluster.topology import Cluster, LinkSpec
from repro.cluster.transfer import COPY_BANDWIDTH, COPY_LAUNCH_OVERHEAD
from repro.core.profiler import ModelProfile


@dataclass(frozen=True)
class _Affine:
    """``f(bytes) = const + slope · bytes`` (with f(0) = 0 handled by callers)."""

    const: float
    slope: float

    def __call__(self, nbytes: np.ndarray) -> np.ndarray:
        return self.const + self.slope * np.asarray(nbytes, dtype=float)


def _transfer_affine(
    cluster: Cluster, senders: Sequence[Device], receivers: Sequence[Device]
) -> tuple[_Affine, _Affine, _Affine]:
    """(intra, inter, reshaping) affine components of ``transfer_time``."""
    senders = list(senders)
    receivers = list(receivers)
    n_flows = len(senders) * len(receivers)

    intra_lat = 0.0
    intra_slope = 0.0
    out_counts: dict[int, int] = {}
    in_counts: dict[int, int] = {}
    for s in senders:
        for r in receivers:
            if s.global_id == r.global_id:
                continue
            if cluster.same_machine(s, r):
                m = cluster.machines[s.machine_id]
                intra_lat = max(intra_lat, m.intra_lat)
                intra_slope = max(intra_slope, 1.0 / (n_flows * m.intra_bw))
            else:
                out_counts[s.machine_id] = out_counts.get(s.machine_id, 0) + 1
                in_counts[r.machine_id] = in_counts.get(r.machine_id, 0) + 1

    worst = max(
        max(out_counts.values(), default=0), max(in_counts.values(), default=0)
    )
    if worst:
        inter = _Affine(
            cluster.inter.latency, worst / (n_flows * cluster.inter.bandwidth)
        )
    else:
        inter = _Affine(0.0, 0.0)
    intra = _Affine(intra_lat, intra_slope) if intra_slope else _Affine(0.0, 0.0)

    reshape_const = 0.0
    reshape_slope = 0.0
    if len(receivers) > 1:
        reshape_const += COPY_LAUNCH_OVERHEAD
        reshape_slope += 1.0 / (len(senders) * COPY_BANDWIDTH)
    if len(senders) > 1:
        reshape_const += COPY_LAUNCH_OVERHEAD
        reshape_slope += 1.0 / (len(receivers) * COPY_BANDWIDTH)
    return intra, inter, _Affine(reshape_const, reshape_slope)


def _transfer_vec(
    cluster: Cluster,
    senders: Sequence[Device],
    receivers: Sequence[Device],
    nbytes: np.ndarray,
) -> np.ndarray:
    if {d.global_id for d in senders} == {d.global_id for d in receivers}:
        return np.zeros_like(np.asarray(nbytes, dtype=float))
    intra, inter, reshape = _transfer_affine(cluster, senders, receivers)
    t = np.maximum(intra(nbytes), inter(nbytes)) + reshape(nbytes)
    return np.where(np.asarray(nbytes) > 0, t, 0.0)


def _allreduce_vec(
    cluster: Cluster, devices: Sequence[Device], nbytes: np.ndarray
) -> np.ndarray:
    """Vectorized ``allreduce_time`` (exactly the scalar selection logic)."""
    devices = list(devices)
    n = len(devices)
    nbytes = np.asarray(nbytes, dtype=float)
    if n <= 1:
        return np.zeros_like(nbytes)
    if not cluster.spans_machines(devices):
        m = cluster.machines[devices[0].machine_id]
        link = LinkSpec("intra", m.intra_bw, m.intra_lat)
        t = (
            2.0 * (n - 1) / n * nbytes / link.bandwidth
            + 2.0 * (n - 1) * link.latency
        )
        return np.where(nbytes > 0, t, 0.0)
    flat = (
        2.0 * (n - 1) / n * nbytes / cluster.inter.bandwidth
        + 2.0 * (n - 1) * cluster.inter.latency
    )
    # Hierarchical: intra ring over max-local + inter ring over machines.
    per_machine: dict[int, int] = {}
    for d in devices:
        per_machine[d.machine_id] = per_machine.get(d.machine_id, 0) + 1
    n_mach = len(per_machine)
    max_local = max(per_machine.values())
    hier = np.zeros_like(nbytes)
    if max_local > 1:
        m = cluster.machines[devices[0].machine_id]
        hier += (
            2.0 * (max_local - 1) / max_local * nbytes / m.intra_bw
            + 2.0 * (max_local - 1) * m.intra_lat
        )
    if n_mach > 1:
        hier += (
            2.0 * (n_mach - 1) / n_mach * nbytes / cluster.inter.bandwidth
            + 2.0 * (n_mach - 1) * cluster.inter.latency
        )
    return np.where(nbytes > 0, np.minimum(flat, hier), 0.0)


def scan_two_stage(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    group0: Sequence[Device],
    group1: Sequence[Device],
    num_micro_batches: int,
) -> np.ndarray:
    """Latency ``L(j)`` of the two-stage plan for every split ``j=1..N−1``.

    Equivalent to building each :class:`~repro.core.plan.ParallelPlan` and
    calling :func:`~repro.core.latency.evaluate_plan`, in one numpy pass.
    """
    n = profile.num_layers
    m = num_micro_batches
    mbs = global_batch_size / m
    r0, r1 = len(group0), len(group1)
    b0, b1 = mbs / r0, mbs / r1
    ovh = profile.graph.fixed_overhead_fwd

    j = np.arange(1, n)
    fwd_pref = profile.fwd_prefix
    bwd_pref = profile.bwd_prefix
    par_pref = profile.param_bytes_prefix

    f0 = fwd_pref[j] * b0 + j * ovh
    b0_t = bwd_pref[j] * b0 + j * ovh
    f1 = (fwd_pref[n] - fwd_pref[j]) * b1 + (n - j) * ovh
    b1_t = (bwd_pref[n] - bwd_pref[j]) * b1 + (n - j) * ovh

    act = np.array([profile.graph.boundary_activation_bytes(int(x)) for x in j])
    nbytes = act * mbs
    fc = _transfer_vec(cluster, group0, group1, nbytes)
    bc = _transfer_vec(cluster, group1, group0, nbytes)

    ar0 = (
        _allreduce_vec(cluster, group0, par_pref[j])
        if r0 > 1
        else np.zeros_like(f0)
    )
    ar1 = (
        _allreduce_vec(cluster, group1, par_pref[n] - par_pref[j])
        if r1 > 1
        else np.zeros_like(f1)
    )

    # Extended stages: 0 = comp0, 1 = comm, 2 = comp1 (eq. 3 pivot walk).
    fb = np.stack([f0 + b0_t, fc + bc, f1 + b1_t])  # (3, N-1)
    m1 = max(m - 1, 0)
    ts = m1 * fb

    q = np.full(j.shape, 2)
    # s = 1 vs current pivot 2: between-sum is empty.
    q = np.where(ts[1] > ts[2], 1, q)
    # s = 0 vs current pivot: between-sum covers stages strictly inside.
    between = np.where(q == 2, fb[1], 0.0)
    ts_q = np.take_along_axis(ts, q[None, :], axis=0)[0]
    q = np.where(ts[0] > ts_q + between, 0, q)

    fwd_stack = np.stack([f0, fc, f1])
    bwd_stack = np.stack([b0_t, bc, b1_t])
    ar_stack = np.stack([ar0, np.zeros_like(fc), ar1])

    # Tw: cumulative forward through the pivot (inclusive).
    fwd_cum = np.cumsum(fwd_stack, axis=0)
    tw = np.take_along_axis(fwd_cum, q[None, :], axis=0)[0]
    ts_val = m1 * np.take_along_axis(fb, q[None, :], axis=0)[0]

    # Te: max over s of AR_s ± backward sums relative to the pivot.
    bwd_cum = np.cumsum(bwd_stack, axis=0)  # inclusive prefix over stages
    upto_q = np.take_along_axis(bwd_cum, q[None, :], axis=0)[0]
    bwd_at_q = np.take_along_axis(bwd_stack, q[None, :], axis=0)[0]
    te = np.full(j.shape, -np.inf)
    for s in range(3):
        # s <= q: AR_s + sum_{a=s}^{q} B_a.
        before_s = bwd_cum[s] - bwd_stack[s]
        le_term = ar_stack[s] + (upto_q - before_s)
        # s > q: AR_s − sum_{a=q}^{s-1} B_a
        #      = AR_s − (bwd_cum[s-1] − (bwd_cum[q] − B_q)).
        if s > 0:
            sum_q_to_sm1 = bwd_cum[s - 1] - (upto_q - bwd_at_q)
            gt_term = ar_stack[s] - sum_q_to_sm1
        else:
            gt_term = le_term  # s=0 is never > q
        term = np.where(s <= q, le_term, gt_term)
        te = np.maximum(te, term)

    return tw + ts_val + te


def best_two_stage_split(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    group0: Sequence[Device],
    group1: Sequence[Device],
    num_micro_batches: int,
) -> tuple[int, float]:
    """Argmin over splits: ``(best_j, best_latency)``."""
    lat = scan_two_stage(
        profile, cluster, global_batch_size, group0, group1, num_micro_batches
    )
    idx = int(np.argmin(lat))
    return idx + 1, float(lat[idx])

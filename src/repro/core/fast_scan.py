"""Vectorized completion scanning for the planner's DP search.

The planner's inner loop scores the *completion* of a transition
``TPL(j, used) → TPL(j2, used + alloc)``: a plan made of the state's frozen
prefix stages, one new stage covering layers ``[j, j2)`` on the allocated
group, and a tail stage covering ``[j2, N)`` on the remaining free devices.
Every cost term of that plan is affine in the profile's layer prefix sums,
so for a fixed ``(state, allocation)`` the scan over all splits ``j2``
vectorizes — and allocations only differ per-row, so the whole
``(allocation row, split)`` grid evaluates in one numpy pass.

:class:`CompletionScanner` implements that kernel with two guarantees:

* **Bit-identical latencies.**  Both :mod:`repro.core.latency` and this
  module compute every range-sum as a difference of left-to-right running
  prefix sums (``np.cumsum`` order), and :func:`repro.cluster.transfer
  .transfer_time` converts per-NIC flow counts to bytes with one canonical
  multiply — so the vectorized mirror performs the *same IEEE-754 operation
  sequence* as the scalar model and reproduces its latencies exactly, not
  just approximately.  ``tests/core/test_planner_equivalence.py`` holds the
  planner to that contract across the model zoo.
* **Memoized coefficients.**  Transfer and AllReduce costs depend on the
  device groups only through a small coefficient record (flow counts, link
  specs, ring sizes).  Those records — and per-``(layer_lo, layer_hi)``
  persistent-memory terms — are cached on the scanner, so repeated states
  stop recomputing identical terms.

The legacy two-stage entry points (:func:`scan_two_stage`,
:func:`best_two_stage_split`) remain as thin wrappers over the general
kernel; ``scan_two_stage``'s call shape is deprecated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.collectives import allreduce_time
from repro.cluster.device import Device
from repro.cluster.topology import Cluster
from repro.cluster.transfer import COPY_BANDWIDTH, COPY_LAUNCH_OVERHEAD, transfer_time
from repro.core.profiler import ModelProfile
from repro.models.graph import FP32, GRAD_BYTES_PER_PARAM, OPTIMIZER_STATE_BYTES


# --------------------------------------------------------------------------- #
# Cost coefficients (memoized per device-group identity)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _TransferCoef:
    """Group-dependent constants of ``transfer_time`` for one (src, dst) pair.

    ``transfer_time`` depends on the byte count only through a handful of
    affine terms; everything else (flow counts, link specs, fan-in/out) is a
    function of the two device groups and is captured here once.
    """

    identical: bool  # sender ids == receiver ids → zero-cost transfer
    n_flows: int
    intra_links: tuple[tuple[float, float], ...]  # distinct (lat, bw) pairs
    worst_count: int  # max per-NIC flow count; 0 → no inter-machine flow
    inter_lat: float
    inter_bw: float
    n_senders: int
    n_receivers: int


@dataclass(frozen=True)
class _AllreduceCoef:
    """Group-dependent constants of ``allreduce_time`` (ring sizes, links)."""

    n: int
    single_machine: bool
    intra_lat: float
    intra_bw: float
    inter_lat: float
    inter_bw: float
    max_local: int
    n_machines: int


def _apply_transfer(c: _TransferCoef, nbytes: np.ndarray) -> np.ndarray:
    """Vectorized ``transfer_time`` — the scalar op sequence, elementwise."""
    if c.identical:
        return np.zeros_like(nbytes)
    flow = nbytes / c.n_flows
    intra_max = 0.0
    for lat, bw in c.intra_links:
        intra_max = np.maximum(intra_max, lat + flow / bw)
    if c.worst_count:
        inter_max = c.inter_lat + (c.worst_count * flow) / c.inter_bw
    else:
        inter_max = 0.0
    reshaping = 0.0
    if c.n_receivers > 1:
        reshaping = COPY_LAUNCH_OVERHEAD + (nbytes / c.n_senders) / COPY_BANDWIDTH
    if c.n_senders > 1:
        reshaping = reshaping + (
            COPY_LAUNCH_OVERHEAD + (nbytes / c.n_receivers) / COPY_BANDWIDTH
        )
    t = np.maximum(intra_max, inter_max) + reshaping
    return np.where(nbytes > 0, t, 0.0)


def _apply_allreduce(c: _AllreduceCoef, nbytes: np.ndarray) -> np.ndarray:
    """Vectorized ``allreduce_time`` — the scalar op sequence, elementwise."""
    if c.n <= 1:
        return np.zeros_like(nbytes)

    def ring(nb: np.ndarray, n: int, bw: float, lat: float) -> np.ndarray:
        volume = 2.0 * (n - 1) / n * nb
        return volume / bw + 2.0 * (n - 1) * lat

    if c.single_machine:
        t = ring(nbytes, c.n, c.intra_bw, c.intra_lat)
        return np.where(nbytes > 0, t, 0.0)
    flat = ring(nbytes, c.n, c.inter_bw, c.inter_lat)
    hier = 0.0
    if c.max_local > 1:
        hier = hier + ring(nbytes, c.max_local, c.intra_bw, c.intra_lat)
    if c.n_machines > 1:
        hier = hier + ring(nbytes, c.n_machines, c.inter_bw, c.inter_lat)
    return np.where(nbytes > 0, np.minimum(flat, hier), 0.0)


# --------------------------------------------------------------------------- #
# Scan result
# --------------------------------------------------------------------------- #
@dataclass
class ScanResult:
    """All completions of one ``(state, allocations)`` transition batch.

    ``latency[r, k]`` is the (stage-overhead-penalized) analytical latency
    of the plan that puts layers ``[j, splits[k])`` on allocation row ``r``
    and ``[splits[k], N)`` on that row's free tail — ``inf`` where the
    candidate was filtered (memory-infeasible or below ``min_stages``).
    """

    splits: np.ndarray  # (J,) candidate j2 values
    latency: np.ndarray  # (R, J)
    feasible: np.ndarray  # (R, J) memory-feasibility mask (all-True if unchecked)
    evaluated: int
    infeasible: int


@dataclass
class LevelScanResult:
    """All completions of one frontier *level* (many states, one call).

    Rows of ``latency`` concatenate every state's allocation rows in frontier
    order; ``row_state[t]``/``row_index[t]`` map row ``t`` back to its spec
    and its allocation index within that spec.  The split axis is global —
    ``splits = arange(min_j_lo + 1, N)`` — and ``latency[t, k]`` is ``inf``
    wherever ``splits[k] <= j_lo`` of row ``t``'s state (no such completion)
    or the candidate was filtered, so finite entries are exactly the
    per-state :meth:`CompletionScanner.scan_completions` latencies.
    """

    splits: np.ndarray  # (J,) global candidate j2 values
    latency: np.ndarray  # (T, J)
    row_state: np.ndarray  # (T,) spec index of each row
    row_index: np.ndarray  # (T,) allocation index within the spec
    evaluated: int
    infeasible: int


#: Row-chunk size bound for the level kernel: cap E·T_chunk·J elements so a
#: chunk's (E, T, J) work arrays stay ~16 MB each.
_LEVEL_CHUNK_ELEMS = 2_000_000


@dataclass
class _RowCoefs:
    """Per-allocation-row constants of one occupancy signature's row set.

    Everything here depends only on the (groups, tails) row list — not on
    the state's layer split or prefix — so the level kernel memoizes it per
    caller-provided ``row_key`` and a frontier state costs zero coefficient
    lookups after its occupancy signature first appears.
    """

    acoef_new: list  # _AllreduceCoef | None per row
    acoef_tail: list
    tcoef_f: list  # _TransferCoef per row, new → tail
    tcoef_b: list
    caps_new: np.ndarray
    caps_tail: np.ndarray
    len_new: np.ndarray  # group sizes as float64
    len_tail: np.ndarray
    ids_new: list  # per-row tuple of sender global ids (p2p memo keys)


class CompletionScanner:
    """Scores all ``(allocation, split)`` completions of a planner state.

    One scanner is built per search (per ``(profile, cluster)``); its
    coefficient caches persist across states so device groups that recur —
    which is almost all of them, since placement policies draw from a small
    set of shapes — pay the group analysis once.
    """

    def __init__(self, profile: ModelProfile, cluster: Cluster):
        self.profile = profile
        self.cluster = cluster
        self._tcoef: dict[tuple, _TransferCoef] = {}
        self._acoef: dict[tuple, _AllreduceCoef] = {}
        self._caps: dict[tuple, float] = {}
        self._persistent: dict[tuple[int, int], float] = {}
        self._p2p: dict[tuple, float] = {}
        self._ar_scalar: dict[tuple, float] = {}
        self._rowcoefs: dict = {}

    # ---------------------------- coefficients ---------------------------- #
    def _transfer_coef(
        self, senders: Sequence[Device], receivers: Sequence[Device]
    ) -> _TransferCoef:
        key = (
            tuple(d.global_id for d in senders),
            tuple(d.global_id for d in receivers),
        )
        coef = self._tcoef.get(key)
        if coef is not None:
            return coef
        cluster = self.cluster
        identical = set(key[0]) == set(key[1])
        intra_links: dict[tuple[float, float], None] = {}
        out_flows: dict[int, int] = {}
        in_flows: dict[int, int] = {}
        for s in senders:
            for r in receivers:
                if s.global_id == r.global_id:
                    continue
                if cluster.same_machine(s, r):
                    m = cluster.machines[s.machine_id]
                    intra_links[(m.intra_lat, m.intra_bw)] = None
                else:
                    out_flows[s.machine_id] = out_flows.get(s.machine_id, 0) + 1
                    in_flows[r.machine_id] = in_flows.get(r.machine_id, 0) + 1
        worst = max(max(out_flows.values(), default=0), max(in_flows.values(), default=0))
        coef = _TransferCoef(
            identical=identical,
            n_flows=len(senders) * len(receivers),
            intra_links=tuple(intra_links),
            worst_count=worst,
            inter_lat=cluster.inter.latency,
            inter_bw=cluster.inter.bandwidth,
            n_senders=len(senders),
            n_receivers=len(receivers),
        )
        self._tcoef[key] = coef
        return coef

    def _allreduce_coef(self, devices: Sequence[Device]) -> _AllreduceCoef:
        key = tuple(d.global_id for d in devices)
        coef = self._acoef.get(key)
        if coef is not None:
            return coef
        cluster = self.cluster
        m = cluster.machines[devices[0].machine_id]
        per_machine: dict[int, int] = {}
        for d in devices:
            per_machine[d.machine_id] = per_machine.get(d.machine_id, 0) + 1
        coef = _AllreduceCoef(
            n=len(devices),
            single_machine=not cluster.spans_machines(devices),
            intra_lat=m.intra_lat,
            intra_bw=m.intra_bw,
            inter_lat=cluster.inter.latency,
            inter_bw=cluster.inter.bandwidth,
            max_local=max(per_machine.values()),
            n_machines=len(per_machine),
        )
        self._acoef[key] = coef
        return coef

    def _min_capacity(self, devices: Sequence[Device]) -> float:
        key = tuple(d.global_id for d in devices)
        cap = self._caps.get(key)
        if cap is None:
            cap = min(d.spec.memory_bytes for d in devices)
            self._caps[key] = cap
        return cap

    def _persistent_bytes(self, lo: int, hi: int) -> float:
        """Optimizer state + gradient buffer of layers [lo, hi), memoized."""
        val = self._persistent.get((lo, hi))
        if val is None:
            params = self.profile.param_bytes(lo, hi)
            val = self.profile.state_bytes(lo, hi) + params / FP32 * GRAD_BYTES_PER_PARAM
            self._persistent[(lo, hi)] = val
        return val

    def _p2p_time(
        self, nbytes: float, senders: Sequence[Device], receivers: Sequence[Device]
    ) -> float:
        key = (
            nbytes,
            tuple(d.global_id for d in senders),
            tuple(d.global_id for d in receivers),
        )
        t = self._p2p.get(key)
        if t is None:
            t = transfer_time(self.cluster, nbytes, senders, receivers)
            self._p2p[key] = t
        return t

    def _allreduce_scalar(self, nbytes: float, devices: Sequence[Device]) -> float:
        key = (nbytes, tuple(d.global_id for d in devices))
        t = self._ar_scalar.get(key)
        if t is None:
            t = allreduce_time(nbytes, self.cluster, devices)
            self._ar_scalar[key] = t
        return t

    def _row_coefs(self, groups: Sequence, tails: Sequence, row_key) -> _RowCoefs:
        """Memoized per-row coefficient bundle for one row set (see _RowCoefs)."""
        if row_key is not None:
            rc = self._rowcoefs.get(row_key)
            if rc is not None:
                return rc
        rc = _RowCoefs(
            acoef_new=[
                self._allreduce_coef(g) if len(g) > 1 else None for g in groups
            ],
            acoef_tail=[
                self._allreduce_coef(t) if len(t) > 1 else None for t in tails
            ],
            tcoef_f=[self._transfer_coef(g, t) for g, t in zip(groups, tails)],
            tcoef_b=[self._transfer_coef(t, g) for g, t in zip(groups, tails)],
            caps_new=np.array([self._min_capacity(g) for g in groups]),
            caps_tail=np.array([self._min_capacity(t) for t in tails]),
            len_new=np.array([float(len(g)) for g in groups]),
            len_tail=np.array([float(len(t)) for t in tails]),
            ids_new=[tuple(d.global_id for d in g) for g in groups],
        )
        if row_key is not None:
            self._rowcoefs[row_key] = rc
        return rc

    # ------------------------------- kernel -------------------------------- #
    def scan_completions(
        self,
        j_lo: int,
        prefix: Sequence,
        groups: Sequence[Sequence[Device]],
        tails: Sequence[Sequence[Device]],
        *,
        global_batch_size: int,
        num_micro_batches: int,
        enforce_memory: bool = True,
        min_stages: int = 1,
        stage_overhead_frac: float = 0.0,
    ) -> ScanResult:
        """Score every completion of a state in one numpy pass.

        ``prefix`` is the state's frozen stage tuple (layers ``[0, j_lo)``);
        row ``r`` places the new stage ``[j_lo, j2)`` on ``groups[r]`` and
        the tail ``[j2, N)`` on ``tails[r]``, for every split
        ``j2 ∈ (j_lo, N)``.  Finite entries of the returned latency matrix
        are bit-identical to ``evaluate_plan(...).latency · penalty`` on the
        corresponding :class:`~repro.core.plan.ParallelPlan`.
        """
        prof = self.profile
        n = prof.num_layers
        m = num_micro_batches
        mbs = global_batch_size / m
        P = len(prefix)
        S = P + 2  # prefix + new + tail computation stages
        E = 2 * S - 1  # extended stages: comp/comm interleaved
        R = len(groups)
        splits = np.arange(j_lo + 1, n)
        J = splits.size
        if R == 0 or J == 0:
            empty = np.empty((R, J))
            return ScanResult(splits, empty, np.ones((R, J), dtype=bool), 0, 0)

        fp, bp = prof.fwd_prefix, prof.bwd_prefix
        pp, sp = prof.param_bytes_prefix, prof.stored_prefix
        ovh = prof.graph.fixed_overhead_fwd

        # Per-split layer-range aggregates (shared by all rows).
        d_fwd = fp[splits] - fp[j_lo]
        d_bwd = bp[splits] - bp[j_lo]
        d_par = pp[splits] - pp[j_lo]
        d_sto = sp[splits] - sp[j_lo]
        span_new = splits - j_lo
        t_fwd = fp[n] - fp[splits]
        t_bwd = bp[n] - bp[splits]
        t_par = pp[n] - pp[splits]
        t_sto = sp[n] - sp[splits]
        span_tail = n - splits
        nbytes = prof.boundary_bytes_array(splits, mbs)

        FWD = np.empty((E, R, J))
        BWD = np.empty((E, R, J))
        AR = np.zeros((E, R, J))

        # Prefix stages: j2-independent scalar constants (rows share them).
        ar_nonzero: list[int] = []
        for i, st in enumerate(prefix):
            b = mbs / len(st.devices)
            k = 2 * i
            FWD[k] = prof.fwd_time(st.layer_lo, st.layer_hi, b)
            BWD[k] = prof.bwd_time(st.layer_lo, st.layer_hi, b)
            if len(st.devices) > 1:
                ar = self._allreduce_scalar(
                    prof.param_bytes(st.layer_lo, st.layer_hi), st.devices
                )
                if ar != 0.0:
                    AR[k] = ar
                    ar_nonzero.append(k)
            if i + 1 < P:
                nb = prof.boundary_bytes(st.layer_hi, mbs)
                nxt = prefix[i + 1]
                FWD[k + 1] = self._p2p_time(nb, st.devices, nxt.devices)
                BWD[k + 1] = self._p2p_time(nb, nxt.devices, st.devices)

        # Communication prefix → new stage: j2-independent but row-dependent.
        if P:
            nb_prev = prof.boundary_bytes(j_lo, mbs)
            prev = prefix[-1].devices
            FWD[2 * P - 1] = np.array(
                [self._p2p_time(nb_prev, prev, g) for g in groups]
            )[:, None]
            BWD[2 * P - 1] = np.array(
                [self._p2p_time(nb_prev, g, prev) for g in groups]
            )[:, None]

        # New stage (index E-3) and tail stage (index E-1): per-row batches.
        b_new = np.array([mbs / len(g) for g in groups])
        b_tail = np.array([mbs / len(t) for t in tails])
        FWD[E - 3] = d_fwd[None, :] * b_new[:, None] + span_new * ovh
        BWD[E - 3] = d_bwd[None, :] * b_new[:, None] + span_new * ovh
        FWD[E - 1] = t_fwd[None, :] * b_tail[:, None] + span_tail * ovh
        BWD[E - 1] = t_bwd[None, :] * b_tail[:, None] + span_tail * ovh

        # Gradient AllReduce for replicated new/tail stages; rows with the
        # same coefficient record share one evaluation.
        vec_cache: dict[tuple, np.ndarray] = {}

        def cached(coef, arr: np.ndarray, fn) -> np.ndarray:
            key = (coef, id(arr))
            out = vec_cache.get(key)
            if out is None:
                out = fn(coef, arr)
                vec_cache[key] = out
            return out

        any_new_rep = any_tail_rep = False
        for r in range(R):
            if len(groups[r]) > 1:
                AR[E - 3, r] = cached(self._allreduce_coef(groups[r]), d_par, _apply_allreduce)
                any_new_rep = True
            if len(tails[r]) > 1:
                AR[E - 1, r] = cached(self._allreduce_coef(tails[r]), t_par, _apply_allreduce)
                any_tail_rep = True

        # Communication new → tail (index E-2): depends on j2 through bytes.
        for r in range(R):
            FWD[E - 2, r] = cached(self._transfer_coef(groups[r], tails[r]), nbytes, _apply_transfer)
            BWD[E - 2, r] = cached(self._transfer_coef(tails[r], groups[r]), nbytes, _apply_transfer)

        # Pivot walk (eq. 3), vectorized over the (R, J) grid: mirror
        # find_pivot's descending scan with running prefix sums.
        m1 = max(m - 1, 0)
        FB = FWD + BWD
        TS = m1 * FB
        FBC = np.cumsum(FB, axis=0)  # inclusive; exclusive[k] = FBC[k-1]
        q = np.full((R, J), E - 1, dtype=np.int64)
        ts_q = TS[E - 1].copy()
        for s in range(E - 2, -1, -1):
            between = np.take_along_axis(FBC, (q - 1)[None], axis=0)[0] - FBC[s]
            move = TS[s] > ts_q + between
            q = np.where(move, s, q)
            ts_q = np.where(move, TS[s], ts_q)

        FWC = np.cumsum(FWD, axis=0)
        tw = np.take_along_axis(FWC, q[None], axis=0)[0]

        # Ending (eq. 1): max over stages of AR_s ± backward sums around the
        # pivot.  Stages with AR = 0 and s ≤ q are exactly dominated by the
        # s = 0 term (their sum is a sub-range of its sum minus nothing
        # positive), and zero-AR stages with s > q contribute ≤ 0, so the max
        # only needs s = 0 plus the stages that can carry a nonzero AR.
        BC = np.cumsum(BWD, axis=0)
        bc_q = np.take_along_axis(BC, q[None], axis=0)[0]  # Σ B[0..q]
        bc_qm1 = np.where(
            q > 0, np.take_along_axis(BC, np.maximum(q - 1, 0)[None], axis=0)[0], 0.0
        )
        cand = set(ar_nonzero)
        cand.add(0)
        if any_new_rep:
            cand.add(E - 3)
        if any_tail_rep:
            cand.add(E - 1)
        ending = np.zeros((R, J))
        for s in sorted(cand):
            bcs = BC[s - 1] if s > 0 else 0.0
            le_term = AR[s] + (bc_q - bcs)
            if s > 0:
                gt_term = AR[s] - (BC[s - 1] - bc_qm1)
                term = np.where(s <= q, le_term, gt_term)
            else:
                term = le_term
            ending = np.maximum(ending, term)

        lat = tw + ts_q + ending
        penalty = 1.0 + stage_overhead_frac * (S - 1)
        if penalty != 1.0:
            lat = lat * penalty

        evaluated = R * J
        infeasible = 0
        feasible = np.ones((R, J), dtype=bool)
        if S < min_stages:
            lat = np.full((R, J), np.inf)
        elif enforce_memory:
            feasible = self._memory_feasible(
                prefix, groups, tails, S, m, mbs, b_new, b_tail,
                d_par, d_sto, t_par, t_sto, splits,
            )
            infeasible = int(feasible.size - int(feasible.sum()))
            if infeasible:
                lat = np.where(feasible, lat, np.inf)
        return ScanResult(splits, lat, feasible, evaluated, infeasible)

    def _memory_feasible(
        self,
        prefix,
        groups,
        tails,
        S: int,
        m: int,
        mbs: float,
        b_new: np.ndarray,
        b_tail: np.ndarray,
        d_par: np.ndarray,
        d_sto: np.ndarray,
        t_par: np.ndarray,
        t_sto: np.ndarray,
        splits: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ``Planner.plan_fits_memory`` over the (R, J) grid.

        Planner-generated completions place disjoint device sets per stage,
        so per-device demand is just that stage's demand and the per-stage
        check reduces to ``demand ≤ min(capacity over the group)``.
        """
        prof = self.profile
        per_param = OPTIMIZER_STATE_BYTES[prof.graph.optimizer]
        for i, st in enumerate(prefix):
            demand = self._persistent_bytes(st.layer_lo, st.layer_hi) + min(
                S - i, m
            ) * prof.stored_bytes(st.layer_lo, st.layer_hi, mbs / len(st.devices))
            if demand > self._min_capacity(st.devices):
                return np.zeros((len(groups), splits.size), dtype=bool)

        pers_new = d_par / FP32 * per_param + d_par / FP32 * GRAD_BYTES_PER_PARAM
        pers_tail = t_par / FP32 * per_param + t_par / FP32 * GRAD_BYTES_PER_PARAM
        demand_new = pers_new[None, :] + min(2, m) * (d_sto[None, :] * b_new[:, None])
        demand_tail = pers_tail[None, :] + 1 * (t_sto[None, :] * b_tail[:, None])
        caps_new = np.array([self._min_capacity(g) for g in groups])
        caps_tail = np.array([self._min_capacity(t) for t in tails])
        return (demand_new <= caps_new[:, None]) & (demand_tail <= caps_tail[:, None])

    # --------------------------- level kernel ------------------------------ #
    def scan_level(
        self,
        specs: Sequence[tuple],
        *,
        global_batch_size: int,
        num_micro_batches: int,
        enforce_memory: bool = True,
        min_stages: int = 1,
        stage_overhead_frac: float = 0.0,
    ) -> LevelScanResult:
        """Score every completion of a whole frontier level in one pass.

        ``specs`` is a sequence of ``(j_lo, prefix, groups, tails)`` tuples —
        one per frontier state — whose prefixes all have the *same* length
        (every state of search generation ``g`` carries exactly ``g`` frozen
        stages, so the extended-stage count ``E`` is uniform and the level
        stacks into one padded tensor).  Split-range aggregates are computed
        once per distinct ``j_lo``, tail aggregates and boundary bytes once
        for the whole level, and per-group coefficient vectors are shared
        across *states* (the per-state kernel could only share them across
        rows of one state).  Rows are processed in chunks of at most
        ``_LEVEL_CHUNK_ELEMS / (E·J)`` to bound the working set.

        Finite entries are bit-identical to the per-state
        :meth:`scan_completions` results: all elementwise cost/pivot/ending
        arithmetic is unchanged, and the level-global ending candidate set
        only adds zero-AllReduce stages, which are exactly dominated (their
        ``s ≤ q`` term is the ``s = 0`` term minus a nonnegative backward
        sum; their ``s > q`` term is ≤ 0 against a max that starts at 0).
        """
        prof = self.profile
        n = prof.num_layers
        m = num_micro_batches
        mbs = global_batch_size / m
        P = len(specs[0][1])
        if any(len(spec[1]) != P for spec in specs):
            raise ValueError("scan_level requires a uniform prefix length per level")
        S = P + 2
        E = 2 * S - 1

        # Flatten every state's allocation rows onto one T axis.  A spec may
        # carry a fifth element — a hashable row_key identifying its
        # (groups, tails) row set — enabling the per-row coefficient bundles
        # to be memoized across states, levels, and searches.
        row_state: list[int] = []
        row_index: list[int] = []
        groups_flat: list = []
        tails_flat: list = []
        spec_rcs: list[_RowCoefs] = []
        for si, spec in enumerate(specs):
            groups, tails = spec[2], spec[3]
            row_key = spec[4] if len(spec) > 4 else None
            groups_flat.extend(groups)
            tails_flat.extend(tails)
            row_state.extend([si] * len(groups))
            row_index.extend(range(len(groups)))
            spec_rcs.append(self._row_coefs(groups, tails, row_key))
        T = len(groups_flat)
        jlo_per_spec = np.array([spec[0] for spec in specs], dtype=np.int64)
        min_jlo = int(jlo_per_spec.min()) if T else 0
        splits = np.arange(min_jlo + 1, n)
        J = splits.size
        row_state_arr = np.array(row_state, dtype=np.int64)
        row_index_arr = np.array(row_index, dtype=np.int64)
        if T == 0 or J == 0:
            return LevelScanResult(
                splits, np.empty((T, J)), row_state_arr, row_index_arr, 0, 0
            )

        fp, bp = prof.fwd_prefix, prof.bwd_prefix
        pp, sp = prof.param_bytes_prefix, prof.stored_prefix
        ovh = prof.graph.fixed_overhead_fwd
        per_param = OPTIMIZER_STATE_BYTES[prof.graph.optimizer]

        # Per-distinct-j_lo split aggregates, (D, J); rows gather by index.
        jlo_vals = np.unique(jlo_per_spec)
        jlo_pos = {int(v): i for i, v in enumerate(jlo_vals)}
        d_fwd_d = fp[splits][None, :] - fp[jlo_vals][:, None]
        d_bwd_d = bp[splits][None, :] - bp[jlo_vals][:, None]
        d_sto_d = sp[splits][None, :] - sp[jlo_vals][:, None]
        span_new_d = splits[None, :] - jlo_vals[:, None]
        # Materialized per-j_lo views with stable identity for the vec cache.
        d_par_by_jlo = [pp[splits] - pp[int(v)] for v in jlo_vals]
        pers_new_by_jlo = [
            d_par / FP32 * per_param + d_par / FP32 * GRAD_BYTES_PER_PARAM
            for d_par in d_par_by_jlo
        ]
        # Tail aggregates and boundary bytes: j_lo-independent, level-shared.
        t_fwd = fp[n] - fp[splits]
        t_bwd = bp[n] - bp[splits]
        t_par = pp[n] - pp[splits]
        t_sto = sp[n] - sp[splits]
        span_tail = n - splits
        nbytes = prof.boundary_bytes_array(splits, mbs)
        pers_tail = t_par / FP32 * per_param + t_par / FP32 * GRAD_BYTES_PER_PARAM

        # Per-row constants, concatenated from the memoized bundles.
        b_new = np.concatenate([mbs / rc.len_new for rc in spec_rcs])
        b_tail = np.concatenate([mbs / rc.len_tail for rc in spec_rcs])
        caps_new = np.concatenate([rc.caps_new for rc in spec_rcs])
        caps_tail = np.concatenate([rc.caps_tail for rc in spec_rcs])
        acoef_new: list = []
        acoef_tail: list = []
        tcoef_f: list = []
        tcoef_b: list = []
        ids_new: list = []
        for rc in spec_rcs:
            acoef_new.extend(rc.acoef_new)
            acoef_tail.extend(rc.acoef_tail)
            tcoef_f.extend(rc.tcoef_f)
            tcoef_b.extend(rc.tcoef_b)
            ids_new.extend(rc.ids_new)
        jlo_idx_row = np.array(
            [jlo_pos[int(jlo_per_spec[si])] for si in row_state], dtype=np.int64
        )

        # Per-spec prefix data: scalar stage costs, AllReduce terms, the
        # prefix-side memory check, and the prev→new boundary bytes.
        spec_fwd = np.zeros((len(specs), max(2 * P - 1, 0)))
        spec_bwd = np.zeros_like(spec_fwd)
        spec_ar = np.zeros_like(spec_fwd)
        spec_prefix_ok = np.ones(len(specs), dtype=bool)
        ar_cols: set[int] = set()
        for si, spec in enumerate(specs):
            j_lo, prefix = spec[0], spec[1]
            for i, st in enumerate(prefix):
                b = mbs / len(st.devices)
                k = 2 * i
                spec_fwd[si, k] = prof.fwd_time(st.layer_lo, st.layer_hi, b)
                spec_bwd[si, k] = prof.bwd_time(st.layer_lo, st.layer_hi, b)
                if len(st.devices) > 1:
                    ar = self._allreduce_scalar(
                        prof.param_bytes(st.layer_lo, st.layer_hi), st.devices
                    )
                    if ar != 0.0:
                        spec_ar[si, k] = ar
                        ar_cols.add(k)
                if i + 1 < P:
                    nb = prof.boundary_bytes(st.layer_hi, mbs)
                    nxt = prefix[i + 1]
                    spec_fwd[si, k + 1] = self._p2p_time(nb, st.devices, nxt.devices)
                    spec_bwd[si, k + 1] = self._p2p_time(nb, nxt.devices, st.devices)
                if enforce_memory and spec_prefix_ok[si]:
                    demand = self._persistent_bytes(st.layer_lo, st.layer_hi) + min(
                        S - i, m
                    ) * prof.stored_bytes(st.layer_lo, st.layer_hi, b)
                    if demand > self._min_capacity(st.devices):
                        spec_prefix_ok[si] = False

        # prev→new p2p per row (j2-independent; memoized on the scanner,
        # with keys built from the bundles' precomputed id tuples).
        if P:
            fwd_prev = np.empty(T)
            bwd_prev = np.empty(T)
            p2p = self._p2p
            t0 = 0
            for si, spec in enumerate(specs):
                j_lo, prefix = spec[0], spec[1]
                nb_prev = prof.boundary_bytes(j_lo, mbs)
                prev = prefix[-1].devices
                prev_ids = tuple(d.global_id for d in prev)
                start, t0 = t0, t0 + len(spec_rcs[si].ids_new)
                for t in range(start, t0):
                    gid = ids_new[t]
                    key = (nb_prev, prev_ids, gid)
                    tv = p2p.get(key)
                    if tv is None:
                        tv = transfer_time(self.cluster, nb_prev, prev, groups_flat[t])
                        p2p[key] = tv
                    fwd_prev[t] = tv
                    key = (nb_prev, gid, prev_ids)
                    tv = p2p.get(key)
                    if tv is None:
                        tv = transfer_time(self.cluster, nb_prev, groups_flat[t], prev)
                        p2p[key] = tv
                    bwd_prev[t] = tv

        valid = splits[None, :] > jlo_per_spec[row_state_arr][:, None]
        evaluated = int(valid.sum())
        infeasible = 0
        out_lat = np.empty((T, J))

        # The coefficient-vector cache spans the whole level: the arrays it
        # keys on (nbytes, t_par, d_par_by_jlo[i]) live for the full call.
        vec_cache: dict[tuple, np.ndarray] = {}

        def cached(coef, arr: np.ndarray, fn) -> np.ndarray:
            key = (coef, id(arr))
            out = vec_cache.get(key)
            if out is None:
                out = fn(coef, arr)
                vec_cache[key] = out
            return out

        chunk = max(1, _LEVEL_CHUNK_ELEMS // max(E * J, 1))
        for lo in range(0, T, chunk):
            hi = min(lo + chunk, T)
            Tc = hi - lo
            sel = slice(lo, hi)
            FWD = np.empty((E, Tc, J))
            BWD = np.empty((E, Tc, J))
            AR = np.zeros((E, Tc, J))

            # Prefix stages: per-spec scalars broadcast over that spec's rows.
            if P:
                FWD[: 2 * P - 1] = spec_fwd[row_state_arr[sel]].T[:, :, None]
                BWD[: 2 * P - 1] = spec_bwd[row_state_arr[sel]].T[:, :, None]
                for k in ar_cols:
                    AR[k] = spec_ar[row_state_arr[sel], k][:, None]
                FWD[2 * P - 1] = fwd_prev[sel][:, None]
                BWD[2 * P - 1] = bwd_prev[sel][:, None]

            # New stage and tail stage: gathered split aggregates × row batch.
            jidx = jlo_idx_row[sel]
            FWD[E - 3] = d_fwd_d[jidx] * b_new[sel][:, None] + span_new_d[jidx] * ovh
            BWD[E - 3] = d_bwd_d[jidx] * b_new[sel][:, None] + span_new_d[jidx] * ovh
            FWD[E - 1] = t_fwd[None, :] * b_tail[sel][:, None] + span_tail * ovh
            BWD[E - 1] = t_bwd[None, :] * b_tail[sel][:, None] + span_tail * ovh

            any_new_rep = any_tail_rep = False
            for r in range(lo, hi):
                if acoef_new[r] is not None:
                    AR[E - 3, r - lo] = cached(
                        acoef_new[r], d_par_by_jlo[jlo_idx_row[r]], _apply_allreduce
                    )
                    any_new_rep = True
                if acoef_tail[r] is not None:
                    AR[E - 1, r - lo] = cached(acoef_tail[r], t_par, _apply_allreduce)
                    any_tail_rep = True
                FWD[E - 2, r - lo] = cached(tcoef_f[r], nbytes, _apply_transfer)
                BWD[E - 2, r - lo] = cached(tcoef_b[r], nbytes, _apply_transfer)

            # Pivot walk (eq. 3) — identical to the per-state kernel.
            m1 = max(m - 1, 0)
            FB = FWD + BWD
            TS = m1 * FB
            FBC = np.cumsum(FB, axis=0)
            q = np.full((Tc, J), E - 1, dtype=np.int64)
            ts_q = TS[E - 1].copy()
            for s in range(E - 2, -1, -1):
                between = np.take_along_axis(FBC, (q - 1)[None], axis=0)[0] - FBC[s]
                move = TS[s] > ts_q + between
                q = np.where(move, s, q)
                ts_q = np.where(move, TS[s], ts_q)
            FWC = np.cumsum(FWD, axis=0)
            tw = np.take_along_axis(FWC, q[None], axis=0)[0]

            # Ending (eq. 1): the candidate set is the level-wide union, plus
            # s = 0 — extra zero-AR stages are dominated (see docstring).
            BC = np.cumsum(BWD, axis=0)
            bc_q = np.take_along_axis(BC, q[None], axis=0)[0]
            bc_qm1 = np.where(
                q > 0,
                np.take_along_axis(BC, np.maximum(q - 1, 0)[None], axis=0)[0],
                0.0,
            )
            cand = set(ar_cols)
            cand.add(0)
            if any_new_rep:
                cand.add(E - 3)
            if any_tail_rep:
                cand.add(E - 1)
            ending = np.zeros((Tc, J))
            for s in sorted(cand):
                bcs = BC[s - 1] if s > 0 else 0.0
                le_term = AR[s] + (bc_q - bcs)
                if s > 0:
                    gt_term = AR[s] - (BC[s - 1] - bc_qm1)
                    term = np.where(s <= q, le_term, gt_term)
                else:
                    term = le_term
                ending = np.maximum(ending, term)

            lat = tw + ts_q + ending
            penalty = 1.0 + stage_overhead_frac * (S - 1)
            if penalty != 1.0:
                lat = lat * penalty

            valid_c = valid[sel]
            if S < min_stages:
                lat = np.full((Tc, J), np.inf)
            elif enforce_memory:
                jidx = jlo_idx_row[sel]
                demand_new = np.stack([pers_new_by_jlo[i] for i in jidx]) + min(
                    2, m
                ) * (d_sto_d[jidx] * b_new[sel][:, None])
                demand_tail = pers_tail[None, :] + 1 * (
                    t_sto[None, :] * b_tail[sel][:, None]
                )
                feasible = (demand_new <= caps_new[sel][:, None]) & (
                    demand_tail <= caps_tail[sel][:, None]
                )
                feasible &= spec_prefix_ok[row_state_arr[sel]][:, None]
                infeasible += int((valid_c & ~feasible).sum())
                lat = np.where(feasible, lat, np.inf)
            out_lat[sel] = np.where(valid_c, lat, np.inf)

        return LevelScanResult(
            splits, out_lat, row_state_arr, row_index_arr, evaluated, infeasible
        )


# --------------------------------------------------------------------------- #
# Shared scanner registry
# --------------------------------------------------------------------------- #
_SCANNER_REGISTRY: dict[tuple[int, int], tuple] = {}
_SCANNER_REGISTRY_CAP = 8


def shared_scanner(profile: ModelProfile, cluster: Cluster) -> CompletionScanner:
    """Process-wide scanner reuse for one concrete (profile, cluster) pair.

    Every scanner cache is keyed by values (device global ids, byte counts,
    occupancy signatures), so sharing across searches only changes speed,
    never results.  Entries are keyed by object identity and hold strong
    references, which both keeps the ``id()`` keys valid and lets sweep
    grid points that re-plan the same problem skip coefficient derivation.
    The registry keeps the most recent :data:`_SCANNER_REGISTRY_CAP` pairs.
    """
    key = (id(profile), id(cluster))
    entry = _SCANNER_REGISTRY.get(key)
    if entry is not None and entry[0] is profile and entry[1] is cluster:
        return entry[2]
    scanner = CompletionScanner(profile, cluster)
    _SCANNER_REGISTRY[key] = (profile, cluster, scanner)
    while len(_SCANNER_REGISTRY) > _SCANNER_REGISTRY_CAP:
        _SCANNER_REGISTRY.pop(next(iter(_SCANNER_REGISTRY)))
    return scanner


# --------------------------------------------------------------------------- #
# Legacy two-stage entry points
# --------------------------------------------------------------------------- #
def scan_two_stage(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    group0: Sequence[Device],
    group1: Sequence[Device],
    num_micro_batches: int,
) -> np.ndarray:
    """Latency ``L(j)`` of the two-stage plan for every split ``j=1..N−1``.

    .. deprecated::
        ``scan_two_stage`` is the empty-prefix special case of
        :meth:`CompletionScanner.scan_completions`; call that instead.
    """
    warnings.warn(
        "scan_two_stage is deprecated; use "
        "CompletionScanner.scan_completions(0, (), [group0], [group1], ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _two_stage_latencies(
        profile, cluster, global_batch_size, group0, group1, num_micro_batches
    )


def _two_stage_latencies(profile, cluster, gbs, group0, group1, m) -> np.ndarray:
    scanner = CompletionScanner(profile, cluster)
    res = scanner.scan_completions(
        0,
        (),
        [tuple(group0)],
        [tuple(group1)],
        global_batch_size=gbs,
        num_micro_batches=m,
        enforce_memory=False,
    )
    return res.latency[0]


def best_two_stage_split(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    group0: Sequence[Device],
    group1: Sequence[Device],
    num_micro_batches: int,
) -> tuple[int, float]:
    """Argmin over splits: ``(best_j, best_latency)``."""
    lat = _two_stage_latencies(
        profile, cluster, global_batch_size, group0, group1, num_micro_batches
    )
    idx = int(np.argmin(lat))
    return idx + 1, float(lat[idx])

"""Analytical pipeline-latency model (paper §IV-A, equations 1–3).

For synchronous training the optimization metric is *pipeline latency* — the
execution time of one global batch:

``L = Tw + Ts + Te``

* ``Tw`` (warm-up): forward time of one micro-batch through stages 0..Q;
* ``Ts`` (steady): ``(M−1)·(F_Q + B_Q)`` on the *pivot stage* Q, the stage
  with the fewest bubbles (eq. 3);
* ``Te`` (ending): the final backward drain plus per-stage gradient
  AllReduce, ``max_s (AR_s ± Σ B_a)`` (eq. 1).

Inter-stage activation communication is modeled as an *extra pipeline stage*
interleaved between computation stages (paper: "we incorporate comm as a
special pipeline stage"), with ``AR = 0`` and F/B equal to the
forward/backward transfer times.

The model is an approximation — it ignores interior bubbles — and the paper
reports it "works practically very well"; our integration tests check it
against the discrete-event simulator's ground truth.

Summation convention: every range-sum over extended stages (the pivot walk's
between-stages term, the ending drain, the warm-up) is computed as a
difference of left-to-right running prefix sums.  This fixes one canonical
floating-point association, which lets the vectorized completion scanner
(:mod:`repro.core.fast_scan`) reproduce these latencies *bit-for-bit* with
``np.cumsum`` + gathers instead of per-plan Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.collectives import allreduce_time
from repro.cluster.topology import Cluster
from repro.cluster.transfer import transfer_time
from repro.core.plan import ParallelPlan
from repro.core.profiler import ModelProfile


@dataclass
class StageCosts:
    """Per-extended-stage costs of a plan.

    Extended stages interleave computation and communication:
    ``comp0, comm0, comp1, comm1, …, comp(S-1)``.  ``is_comm[k]`` marks the
    communication stages; ``comp_index[k]`` maps an extended index back to
    the plan's stage list (or ``None`` for comm stages).
    """

    fwd: list[float]
    bwd: list[float]
    allreduce: list[float]
    is_comm: list[bool]
    comp_index: list[int | None]

    @property
    def num_extended(self) -> int:
        return len(self.fwd)


@dataclass(frozen=True)
class PlanEstimate:
    """Evaluation of one plan under the analytical model."""

    latency: float
    warmup: float
    steady: float
    ending: float
    pivot: int  # extended-stage index Q
    acr: float
    costs: StageCosts

    @property
    def throughput(self) -> float:
        """Samples/second implied by the latency (set by the caller's GBS)."""
        return self._gbs / self.latency if self.latency > 0 else float("inf")

    _gbs: int = 0


def _running_prefix(vals: list[float]) -> list[float]:
    """Exclusive left-to-right prefix sums: ``out[k] = vals[0]+…+vals[k-1]``.

    The accumulation order matches ``np.cumsum`` exactly, so scalar and
    vectorized consumers see bit-identical partial sums.
    """
    out = [0.0]
    acc = 0.0
    for v in vals:
        acc = acc + v
        out.append(acc)
    return out


def find_pivot(costs: StageCosts, num_micro_batches: int) -> int:
    """Choose the pivot stage Q (paper eq. 3).

    Start from the last extended stage and walk backwards; move the pivot to
    stage ``s`` whenever ``s``'s bubble-free steady phase
    ``T_st^s = (M−1)(F_s+B_s)`` exceeds the current pivot's steady phase plus
    the forward+backward costs of the stages in between (those costs bound
    how much of ``s``'s work can hide inside the current pivot's schedule).
    """
    m1 = max(num_micro_batches - 1, 0)
    n = costs.num_extended
    q = n - 1

    fb = [f + b for f, b in zip(costs.fwd, costs.bwd)]
    fbc = _running_prefix(fb)
    ts = [m1 * x for x in fb]

    for s in range(n - 2, -1, -1):
        between = fbc[q] - fbc[s + 1]  # Σ fb[s+1 .. q-1]
        if ts[s] > ts[q] + between:
            q = s
    return q


def stage_costs(profile: ModelProfile, cluster: Cluster, plan: ParallelPlan) -> StageCosts:
    """Compute F/B/AR for every extended stage of ``plan``."""
    fwd: list[float] = []
    bwd: list[float] = []
    ar: list[float] = []
    is_comm: list[bool] = []
    comp_index: list[int | None] = []
    mbs = plan.micro_batch_size

    for i, stage in enumerate(plan.stages):
        b = plan.device_batch(i)
        fwd.append(profile.fwd_time(stage.layer_lo, stage.layer_hi, b))
        bwd.append(profile.bwd_time(stage.layer_lo, stage.layer_hi, b))
        ar.append(
            allreduce_time(
                profile.param_bytes(stage.layer_lo, stage.layer_hi),
                cluster,
                stage.devices,
            )
            if stage.replicas > 1
            else 0.0
        )
        is_comm.append(False)
        comp_index.append(i)

        if i + 1 < len(plan.stages):
            nxt = plan.stages[i + 1]
            nbytes = profile.boundary_bytes(stage.layer_hi, mbs)
            t = transfer_time(cluster, nbytes, stage.devices, nxt.devices)
            t_back = transfer_time(cluster, nbytes, nxt.devices, stage.devices)
            fwd.append(t)
            bwd.append(t_back)
            ar.append(0.0)
            is_comm.append(True)
            comp_index.append(None)

    return StageCosts(fwd=fwd, bwd=bwd, allreduce=ar, is_comm=is_comm, comp_index=comp_index)


def compute_acr(profile: ModelProfile, cluster: Cluster, plan: ParallelPlan) -> float:
    """Activation-communication ratio (paper Table V).

    Cross-stage round-trip communication time over average stage compute
    time, both taken at the model's profiling micro-batch — a descriptive
    figure of how communication-sensitive the plan's split is.
    """
    if plan.num_stages < 2:
        return 0.0
    pb = plan.model.profile_batch
    comm = 0.0
    for i in range(plan.num_stages - 1):
        nbytes = profile.boundary_bytes(plan.stages[i].layer_hi, pb)
        comm += transfer_time(cluster, nbytes, plan.stages[i].devices, plan.stages[i + 1].devices)
        comm += transfer_time(cluster, nbytes, plan.stages[i + 1].devices, plan.stages[i].devices)
    comm /= plan.num_stages - 1
    comp = sum(
        profile.fwd_time(s.layer_lo, s.layer_hi, pb) + profile.bwd_time(s.layer_lo, s.layer_hi, pb)
        for s in plan.stages
    ) / plan.num_stages
    return comm / comp if comp > 0 else 0.0


def evaluate_plan(
    profile: ModelProfile,
    cluster: Cluster,
    plan: ParallelPlan,
    dp_overlap: bool = True,
) -> PlanEstimate:
    """Estimate pipeline latency ``L`` of ``plan`` (paper eq. 1–2).

    Single-stage (pure data-parallel) plans are evaluated with
    backward/AllReduce overlap when ``dp_overlap`` is set, because that is
    how the DAPPLE runtime (and every practical DP implementation) executes
    them — without this the planner would never choose DP for compute-dense
    models like ResNet-50, contradicting Table V.
    """
    costs = stage_costs(profile, cluster, plan)
    m = plan.num_micro_batches
    q = find_pivot(costs, m)

    fc = _running_prefix(costs.fwd)
    warmup = fc[q + 1]
    steady = (m - 1) * (costs.fwd[q] + costs.bwd[q])

    if plan.meta.get("interleaved"):
        # A device hosting several virtual stages serializes their work, so
        # the steady heartbeat is the busiest *device*, not the busiest
        # stage: sum F+B over each device's stages.
        per_device: dict[int, float] = {}
        for k, stage in enumerate(plan.stages):
            ext = costs.comp_index.index(k)
            for d in stage.devices:
                per_device[d.global_id] = (
                    per_device.get(d.global_id, 0.0)
                    + costs.fwd[ext]
                    + costs.bwd[ext]
                )
        steady = max(steady, (m - 1) * max(per_device.values()))

    if plan.num_stages == 1 and dp_overlap and plan.stages[0].replicas > 1:
        from repro.runtime.dataparallel import overlapped_allreduce_exposure

        stage = plan.stages[0]
        exposed = overlapped_allreduce_exposure(
            profile, cluster, stage.devices, plan.device_batch(0)
        )
        ending = costs.bwd[0] + exposed
        latency = warmup + steady + ending
        return PlanEstimate(
            latency=latency,
            warmup=warmup,
            steady=steady,
            ending=ending,
            pivot=q,
            acr=0.0,
            costs=costs,
            _gbs=plan.global_batch_size,
        )

    bc = _running_prefix(costs.bwd)
    ending = 0.0
    for s in range(costs.num_extended):
        if s <= q:
            term = costs.allreduce[s] + (bc[q + 1] - bc[s])  # Σ B[s..q]
        else:
            term = costs.allreduce[s] - (bc[s] - bc[q])  # Σ B[q..s-1]
        ending = max(ending, term)

    latency = warmup + steady + ending
    est = PlanEstimate(
        latency=latency,
        warmup=warmup,
        steady=steady,
        ending=ending,
        pivot=q,
        acr=compute_acr(profile, cluster, plan),
        costs=costs,
        _gbs=plan.global_batch_size,
    )
    return est


class PipelineCostModel:
    """Convenience façade bundling a profile and a cluster."""

    def __init__(self, profile: ModelProfile, cluster: Cluster):
        self.profile = profile
        self.cluster = cluster

    def evaluate(self, plan: ParallelPlan) -> PlanEstimate:
        return evaluate_plan(self.profile, self.cluster, plan)

    def latency(self, plan: ParallelPlan) -> float:
        return self.evaluate(plan).latency

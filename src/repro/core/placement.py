"""Topology-aware device assignment policies (paper §IV-B, Fig. 5).

Instead of enumerating every subset of GPUs, DAPPLE composes three
allocation policies over a per-machine occupancy state:

* **Fresh First** — take GPUs from unused machines, keeping a stage inside
  one server to exploit NVLink for its intra-stage AllReduce;
* **Append First** — take GPUs from partially-used machines, minimizing
  fragmentation;
* **Scatter First** — spread GPUs evenly across machines, for stages whose
  activations dwarf their weights.

This cuts the placement search space below ``O(2^S)`` while retaining the
placements that matter (paper: "a strict superset of PipeDream's
hierarchical recursive partitioning").

The occupancy state is a tuple ``used[machine_id] -> count``; policies are
pure functions returning per-machine allocation counts, so the planner can
memoize on (layers-planned, occupancy) states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.device import Device
from repro.cluster.topology import Cluster

#: An allocation: GPUs taken from each machine, aligned with machine ids.
Allocation = tuple[int, ...]

PlacementPolicy = Callable[[Cluster, tuple[int, ...], int], Allocation | None]


def _capacity(cluster: Cluster, used: tuple[int, ...]) -> list[int]:
    return [m.num_gpus - u for m, u in zip(cluster.machines, used)]


def fresh_first(cluster: Cluster, used: tuple[int, ...], want: int) -> Allocation | None:
    """Allocate from entirely-unused machines first, filling each in turn."""
    free = _capacity(cluster, used)
    alloc = [0] * len(free)
    remaining = want
    # Pass 1: fresh machines.
    for i, u in enumerate(used):
        if remaining == 0:
            break
        if u == 0 and free[i] > 0:
            take = min(free[i], remaining)
            alloc[i] = take
            remaining -= take
    # Pass 2: fall back to partially-used machines.
    for i in range(len(free)):
        if remaining == 0:
            break
        avail = free[i] - alloc[i]
        if avail > 0:
            take = min(avail, remaining)
            alloc[i] += take
            remaining -= take
    return tuple(alloc) if remaining == 0 else None


def append_first(cluster: Cluster, used: tuple[int, ...], want: int) -> Allocation | None:
    """Allocate from partially-occupied machines first (anti-fragmentation)."""
    free = _capacity(cluster, used)
    alloc = [0] * len(free)
    remaining = want
    for i, u in enumerate(used):
        if remaining == 0:
            break
        if 0 < u and free[i] > 0:
            take = min(free[i], remaining)
            alloc[i] = take
            remaining -= take
    for i in range(len(free)):
        if remaining == 0:
            break
        avail = free[i] - alloc[i]
        if avail > 0:
            take = min(avail, remaining)
            alloc[i] += take
            remaining -= take
    return tuple(alloc) if remaining == 0 else None


def scatter_first(cluster: Cluster, used: tuple[int, ...], want: int) -> Allocation | None:
    """Spread the allocation as evenly as possible over all machines.

    Equivalent to round-robinning one GPU at a time over machines with
    remaining capacity, but computed in closed form: after ``t`` complete
    rounds machine ``i`` holds ``min(free_i, t)`` GPUs, so the water level
    ``t`` is the largest round count whose total fits in ``want`` (found by
    bisection on the monotone fill curve), and the remainder goes one GPU
    each to the lowest-indexed machines still above the level — O(M·log C)
    for M machines of capacity C instead of O(want·M).
    """
    free = _capacity(cluster, used)
    if sum(free) < want:
        return None
    # Largest t with sum(min(free_i, t)) <= want.
    lo, hi = 0, max(free)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if sum(min(f, mid) for f in free) <= want:
            lo = mid
        else:
            hi = mid - 1
    level = lo
    alloc = [min(f, level) for f in free]
    remaining = want - sum(alloc)
    for i, f in enumerate(free):
        if remaining == 0:
            break
        if f > level:
            alloc[i] += 1
            remaining -= 1
    return tuple(alloc)


POLICIES: dict[str, PlacementPolicy] = {
    "fresh_first": fresh_first,
    "append_first": append_first,
    "scatter_first": scatter_first,
}


@dataclass(frozen=True)
class PlacedGroup:
    """A concrete device group produced by applying an allocation."""

    devices: tuple[Device, ...]
    new_used: tuple[int, ...]
    policy: str


def allocate(
    cluster: Cluster,
    used: tuple[int, ...],
    want: int,
    policies: Sequence[str] = ("fresh_first", "append_first", "scatter_first"),
) -> list[PlacedGroup]:
    """Apply each policy; materialize devices; dedupe identical allocations.

    Devices within a machine are interchangeable, so an allocation is fully
    described by its per-machine counts; we take the lowest-local-id free
    devices of each machine deterministically.
    """
    if want < 1:
        raise ValueError(f"must allocate at least one GPU, got {want}")
    if sum(_capacity(cluster, used)) < want:
        return []
    seen: set[Allocation] = set()
    out: list[PlacedGroup] = []
    for name in policies:
        alloc = POLICIES[name](cluster, used, want)
        if alloc is None or alloc in seen:
            continue
        seen.add(alloc)
        devices: list[Device] = []
        new_used = list(used)
        for mid, count in enumerate(alloc):
            if count == 0:
                continue
            machine = cluster.machines[mid]
            devices.extend(machine.devices[used[mid] : used[mid] + count])
            new_used[mid] += count
        out.append(PlacedGroup(devices=tuple(devices), new_used=tuple(new_used), policy=name))
    return out

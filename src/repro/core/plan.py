"""Parallelization plan data structures.

A :class:`ParallelPlan` is the planner's output and the runtime's input: an
ordered list of :class:`Stage` objects, each covering a contiguous layer
range and replicated over a device set, plus the micro-batching decision
(``num_micro_batches`` of ``micro_batch_size`` samples each).

Notation follows the paper's Table V:

* ``"DP"`` — one stage replicated on every device (pure data parallelism);
* ``"straight"`` — one device per stage, no replication;
* ``"P:Q"`` — e.g. ``8:8``, a two-stage pipeline with P- and Q-way
  replicated stages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.device import Device
from repro.models.graph import LayerGraph


class PlanKind(enum.Enum):
    """Coarse classification of a plan (paper Table V vocabulary)."""

    DATA_PARALLEL = "DP"
    STRAIGHT = "straight"
    PIPELINE = "pipeline"  # general hybrid


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: layers [layer_lo, layer_hi) on ``devices``."""

    layer_lo: int
    layer_hi: int
    devices: tuple[Device, ...]

    def __post_init__(self) -> None:
        if self.layer_lo >= self.layer_hi:
            raise ValueError(f"empty stage layer range [{self.layer_lo}, {self.layer_hi})")
        if not self.devices:
            raise ValueError("stage needs at least one device")
        object.__setattr__(self, "devices", tuple(self.devices))

    @property
    def replicas(self) -> int:
        return len(self.devices)

    @property
    def num_layers(self) -> int:
        return self.layer_hi - self.layer_lo

    def __repr__(self) -> str:
        devs = ",".join(str(d.global_id) for d in self.devices)
        return f"Stage([{self.layer_lo}:{self.layer_hi}) @ [{devs}])"


@dataclass
class ParallelPlan:
    """A complete hybrid data/pipeline parallelization strategy."""

    model: LayerGraph
    stages: list[Stage]
    global_batch_size: int
    num_micro_batches: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check layer coverage, device disjointness and batching sanity."""
        if not self.stages:
            raise ValueError("plan has no stages")
        if self.global_batch_size < 1:
            raise ValueError(f"bad global batch size {self.global_batch_size}")
        if self.num_micro_batches < 1:
            raise ValueError(f"bad micro-batch count {self.num_micro_batches}")
        if self.global_batch_size % self.num_micro_batches != 0:
            raise ValueError(
                f"GBS {self.global_batch_size} not divisible by "
                f"M={self.num_micro_batches}"
            )
        lo = 0
        for s in self.stages:
            if s.layer_lo != lo:
                raise ValueError(
                    f"stages not contiguous: expected layer {lo}, got {s.layer_lo}"
                )
            lo = s.layer_hi
        if lo != self.model.num_layers:
            raise ValueError(
                f"stages cover layers [0,{lo}) but model has {self.model.num_layers}"
            )
        if not self.meta.get("interleaved"):
            seen: set[int] = set()
            for s in self.stages:
                for d in s.devices:
                    if d.global_id in seen:
                        raise ValueError(f"device {d.global_id} used by two stages")
                    seen.add(d.global_id)
        else:
            # Interleaved (virtual-stage) plans place several stages per
            # device; replicas of one stage must still be distinct devices.
            for s in self.stages:
                ids = [d.global_id for d in s.devices]
                if len(set(ids)) != len(ids):
                    raise ValueError("stage replicas must be distinct devices")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_devices(self) -> int:
        return sum(s.replicas for s in self.stages)

    @property
    def micro_batch_size(self) -> float:
        """Samples per micro-batch entering the pipeline."""
        return self.global_batch_size / self.num_micro_batches

    def device_batch(self, stage_idx: int) -> float:
        """Per-device sub-batch of one micro-batch at ``stage_idx``.

        Replicated stages split each micro-batch into even slices across
        replicas (paper Fig. 8a).
        """
        return self.micro_batch_size / self.stages[stage_idx].replicas

    @property
    def kind(self) -> PlanKind:
        if self.num_stages == 1:
            return PlanKind.DATA_PARALLEL
        if all(s.replicas == 1 for s in self.stages):
            return PlanKind.STRAIGHT
        return PlanKind.PIPELINE

    @property
    def notation(self) -> str:
        """Table V-style plan notation (``DP``, ``straight``, ``8:8`` …)."""
        if self.kind is PlanKind.DATA_PARALLEL:
            return "DP"
        if self.kind is PlanKind.STRAIGHT:
            return "straight"
        return ":".join(str(s.replicas) for s in self.stages)

    @property
    def split_positions(self) -> list[int]:
        """Layer indices where the model is cut (Table V "Split Position")."""
        return [s.layer_hi for s in self.stages[:-1]]

    @property
    def split_notation(self) -> str:
        """Layer counts per stage, e.g. ``"9:7"``."""
        return ":".join(str(s.num_layers) for s in self.stages)

    def __repr__(self) -> str:
        return (
            f"ParallelPlan({self.model.name}: {self.notation}, "
            f"split={self.split_notation}, GBS={self.global_batch_size}, "
            f"M={self.num_micro_batches})"
        )


def interleaved_straight_plan(
    model: LayerGraph,
    devices: Sequence[Device],
    global_batch_size: int,
    num_micro_batches: int,
    virtual_per_device: int = 2,
) -> ParallelPlan:
    """Interleaved (virtual-stage) pipeline: each device hosts several
    non-adjacent model chunks, assigned round-robin (Megatron-LM style).

    With ``V`` virtual stages per device the warm-up/drain bubble shrinks
    roughly by ``V`` at the cost of ``V×`` more cross-stage communication —
    an extension beyond the paper's single-chunk stages.
    """
    devices = list(devices)
    g = len(devices)
    total = g * virtual_per_device
    n = model.num_layers
    if total > n:
        raise ValueError(
            f"{total} virtual stages need {total} layers but model has {n}"
        )
    # Contiguous layer chunks, round-robin over devices.
    bounds = [round(k * n / total) for k in range(total + 1)]
    bounds = sorted(set(bounds))
    stages = [
        Stage(bounds[k], bounds[k + 1], (devices[k % g],))
        for k in range(len(bounds) - 1)
    ]
    return ParallelPlan(
        model=model,
        stages=stages,
        global_batch_size=global_batch_size,
        num_micro_batches=num_micro_batches,
        meta={"interleaved": True, "virtual_per_device": virtual_per_device},
    )


def single_stage_plan(
    model: LayerGraph,
    devices: Sequence[Device],
    global_batch_size: int,
    num_micro_batches: int,
) -> ParallelPlan:
    """Pure data-parallel plan: the whole model on every device."""
    return ParallelPlan(
        model=model,
        stages=[Stage(0, model.num_layers, tuple(devices))],
        global_batch_size=global_batch_size,
        num_micro_batches=num_micro_batches,
    )

"""Content-addressed plan cache: search results keyed by problem fingerprint.

The planner is deterministic: the winning plan is a pure function of the
layer statistics, the cluster topology, the global batch size, and the
:class:`~repro.core.planner.PlannerConfig`.  This module derives a SHA-256
fingerprint from exactly those inputs — canonical bytes of every float
array and scalar field, never Python ``hash()`` — so equal problems collide
onto one cache line and *any* changed field changes the key (no stale-plan
reuse, no invalidation protocol; the paper's "offline … within a few
seconds" search becomes a content-addressed lookup).

Two tiers:

* **in-memory** — a per-process dict.  ``repro.perf.sweep`` workers fork
  from the parent, so a warm parent tier is inherited by every worker for
  free and repeated grid points (fig12-style GBS sweeps re-plan the same
  (model, cluster, config) dozens of times) hit without touching disk.
* **on-disk** (optional) — one ``<digest>.json`` per entry under a cache
  directory, written atomically (temp file + rename).  Covers spawn-based
  pools, repeated CLI invocations, and CI runs.

A hit stores only the *plan* (via :mod:`repro.core.serialization`) plus the
search counters; the :class:`~repro.core.latency.PlanEstimate` is recomputed
with :func:`~repro.core.latency.evaluate_plan`, which is deterministic given
(profile, cluster, plan) — so a cached :class:`PlanResult` is bit-identical
to a fresh search, a property ``repro check``'s plan-cache oracle enforces.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import Any

import numpy as np

import repro.obs as obs

from repro.cluster.topology import Cluster
from repro.core.latency import evaluate_plan
from repro.core.profiler import ModelProfile
from repro.core.serialization import plan_from_dict, plan_to_dict

#: Payload schema version; bump to invalidate every existing cache entry.
SCHEMA = "plan-cache-v1"


# --------------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------------- #
def _feed_scalars(h, *values) -> None:
    """Hash scalars via a canonical text encoding (repr round-trips floats)."""
    for v in values:
        h.update(repr(v).encode())
        h.update(b"\x00")


def _feed_array(h, arr: np.ndarray) -> None:
    a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    h.update(struct.pack("<q", a.size))
    h.update(a.tobytes())


def fingerprint(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    config,
) -> str:
    """SHA-256 hex digest of everything the search result depends on.

    Covers the model graph scalars and per-layer stat arrays, the GPU spec,
    the full cluster topology (per-machine shape and both link classes),
    the global batch size, and every :class:`PlannerConfig` field (iterated
    via ``dataclasses.fields``, so newly added knobs automatically
    invalidate old entries).
    """
    h = hashlib.sha256()
    _feed_scalars(h, SCHEMA)

    g = profile.graph
    _feed_scalars(
        h, g.name, profile.num_layers, g.profile_batch, g.optimizer, g.fixed_overhead_fwd
    )
    _feed_scalars(h, *[l.name for l in profile.layers])
    _feed_array(h, [l.fwd_time for l in profile.layers])
    _feed_array(h, [l.bwd_time for l in profile.layers])
    _feed_array(h, [float(l.params) for l in profile.layers])
    _feed_array(h, [l.param_bytes for l in profile.layers])
    _feed_array(h, [l.activation_out_bytes for l in profile.layers])
    _feed_array(h, [l.stored_bytes for l in profile.layers])
    _feed_array(h, profile.boundary_act)
    _feed_scalars(h, profile.gpu.name, profile.gpu.memory_bytes, profile.gpu.flops)

    _feed_scalars(
        h,
        cluster.name,
        cluster.num_machines,
        cluster.inter.name,
        cluster.inter.bandwidth,
        cluster.inter.latency,
    )
    for m in cluster.machines:
        _feed_scalars(
            h,
            m.num_gpus,
            m.intra_bw,
            m.intra_lat,
            m.gpu_spec.name,
            m.gpu_spec.memory_bytes,
            m.gpu_spec.flops,
        )

    _feed_scalars(h, int(global_batch_size))
    for f in fields(config):
        _feed_scalars(h, f.name, getattr(config, f.name))
    return h.hexdigest()


# --------------------------------------------------------------------------- #
# The cache
# --------------------------------------------------------------------------- #
class PlanCache:
    """Two-tier (memory + optional disk) content-addressed result store.

    ``max_disk_bytes`` bounds the disk tier: after every store, entries are
    evicted least-recently-used first (file mtime, refreshed on every disk
    hit) until the tier fits.  ``None`` keeps the historical unbounded
    behaviour; long-running consumers (:mod:`repro.serve`) pass a bound so
    heavy traffic cannot grow the cache without limit.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_disk_bytes: int | None = None,
    ):
        self.directory = Path(directory) if directory is not None else None
        self.max_disk_bytes = max_disk_bytes
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._mem: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------ payload -------------------------------- #
    @staticmethod
    def _encode(result) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "plan": plan_to_dict(result.plan),
            "states_explored": result.states_explored,
            "plans_evaluated": result.plans_evaluated,
            "infeasible_plans": result.infeasible_plans,
            "top_plans": [[lat, plan_to_dict(p)] for lat, p in result.top_plans],
        }

    def _decode(self, payload: dict[str, Any], profile, cluster):
        from repro.core.planner import PlanResult

        plan = plan_from_dict(payload["plan"], profile.graph, cluster)
        return PlanResult(
            plan=plan,
            estimate=evaluate_plan(profile, cluster, plan),
            states_explored=payload["states_explored"],
            plans_evaluated=payload["plans_evaluated"],
            infeasible_plans=payload["infeasible_plans"],
            top_plans=[
                (lat, plan_from_dict(p, profile.graph, cluster))
                for lat, p in payload["top_plans"]
            ],
        )

    def _disk_path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    # ------------------------------- API ----------------------------------- #
    def lookup(self, profile, cluster, global_batch_size, config):
        """Return the cached :class:`PlanResult` for this problem, or None."""
        digest = fingerprint(profile, cluster, global_batch_size, config)
        payload = self._mem.get(digest)
        if payload is None and self.directory is not None:
            path = self._disk_path(digest)
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                data = None
            if data is not None and isinstance(data, dict) and data.get("schema") == SCHEMA:
                payload = data
                self._mem[digest] = payload
                try:  # refresh LRU recency for the eviction policy
                    os.utime(path)
                except OSError:
                    pass
        if payload is None:
            self.misses += 1
            obs.counter("planner.cache.miss").inc()
            return None
        try:
            result = self._decode(payload, profile, cluster)
        except (KeyError, ValueError, TypeError, IndexError):
            # Corrupt or mismatched entry: treat as a miss and drop it from
            # both tiers so a truncated/tampered file cannot re-fail forever.
            self._mem.pop(digest, None)
            if self.directory is not None:
                try:
                    os.unlink(self._disk_path(digest))
                except OSError:
                    pass
            self.misses += 1
            obs.counter("planner.cache.miss").inc()
            return None
        self.hits += 1
        obs.counter("planner.cache.hit").inc()
        return result

    def store(self, profile, cluster, global_batch_size, config, result) -> str:
        """Cache one search result; returns its fingerprint digest."""
        digest = fingerprint(profile, cluster, global_batch_size, config)
        payload = self._encode(result)
        self._mem[digest] = payload
        if self.directory is not None:
            path = self._disk_path(digest)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._evict_disk()
        return digest

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        self._mem.clear()

    # ---------------------------- disk tier -------------------------------- #
    def _disk_files(self) -> list[Path]:
        if self.directory is None:
            return []
        try:
            return [p for p in self.directory.glob("*.json") if not p.name.startswith(".tmp-")]
        except OSError:
            return []

    def _evict_disk(self) -> int:
        """Evict least-recently-used entries until the disk tier fits.

        Returns the number of entries removed.  Races with concurrent
        processes are benign: a file deleted under us is simply skipped,
        and a reader losing its entry sees an ordinary miss.
        """
        if self.directory is None or self.max_disk_bytes is None:
            return 0
        entries = []
        total = 0
        for p in self._disk_files():
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        evicted = 0
        entries.sort()  # oldest mtime first
        for _mtime, size, p in entries:
            if total <= self.max_disk_bytes:
                break
            try:
                os.unlink(p)
            except OSError:
                continue
            self._mem.pop(p.stem, None)
            total -= size
            evicted += 1
        if evicted:
            obs.counter("planner.cache.evicted").inc(evicted)
        return evicted

    def clear_disk(self) -> int:
        """Remove every disk entry; returns the number deleted."""
        removed = 0
        for p in self._disk_files():
            try:
                os.unlink(p)
            except OSError:
                continue
            self._mem.pop(p.stem, None)
            removed += 1
        return removed

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters plus per-tier occupancy (JSON-safe)."""
        disk_entries = 0
        disk_bytes = 0
        for p in self._disk_files():
            try:
                disk_bytes += p.stat().st_size
            except OSError:
                continue
            disk_entries += 1
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_entries": len(self._mem),
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "max_disk_bytes": self.max_disk_bytes,
            "directory": str(self.directory) if self.directory else None,
        }

    def __len__(self) -> int:
        return len(self._mem)


# --------------------------------------------------------------------------- #
# Process-default cache
# --------------------------------------------------------------------------- #
_default: PlanCache | None = None
_enabled = True


def default_cache() -> PlanCache | None:
    """The process-wide cache (lazily created, memory-only), or None if off.

    ``repro.perf.sweep`` uses fork workers, so warming this cache in the
    parent warms every worker.  Use :func:`configure_default` to attach a
    disk tier (spawn pools, cross-run reuse) or disable caching entirely.
    """
    global _default
    if not _enabled:
        return None
    if _default is None:
        _default = PlanCache()
    return _default


def configure_default(
    directory: str | Path | None = None,
    enabled: bool = True,
    max_disk_bytes: int | None = None,
) -> PlanCache | None:
    """(Re)configure the process-default cache; returns the active cache."""
    global _default, _enabled
    _enabled = enabled
    _default = PlanCache(directory, max_disk_bytes=max_disk_bytes) if enabled else None
    return _default


def set_default_cache(cache: PlanCache | None) -> None:
    """Install a specific cache instance as the process default."""
    global _default, _enabled
    _default = cache
    _enabled = cache is not None


def swap_default(cache: PlanCache | None, enabled: bool = True):
    """Install ``(cache, enabled)`` as process default; return prior state.

    For embedded consumers (an in-process :mod:`repro.serve` server, test
    fixtures) that must take over the default cache temporarily and hand
    the caller's configuration back afterwards::

        prev = swap_default(PlanCache(tmpdir))
        try: ...
        finally: swap_default(*prev)
    """
    global _default, _enabled
    prior = (_default, _enabled)
    _default = cache
    _enabled = enabled
    return prior

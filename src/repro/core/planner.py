"""DAPPLE planner: dynamic programming over splits, replication, placement.

Implements the paper's §IV-C formulation.  A search state ``TPL(j, used)``
means: the first ``j`` layers are partitioned into concrete stages placed on
the GPUs recorded in the per-machine occupancy vector ``used``; the
remaining layers form one last stage replicated over every free GPU.  Every
state therefore *is* a complete plan whose latency (eq. 1–2) scores it.

Transitions refine the tail: pick the next split ``j'``, a GPU count ``m'``
and one of the three placement policies for the new stage, yielding state
``TPL(j', used + alloc)``.  States are deduplicated on
``(j, sorted(used), gpus_in_use)`` — machines are homogeneous so sorted
occupancy is cost-equivalent — keeping the lowest-latency prefix
(memoized search, paper Fig. 6).  A configurable beam per layer-depth keeps
the search "offline … within a few seconds" for 50-layer models; setting
``beam_width=None`` disables pruning for exhaustive search on small models.

Micro-batching: the global micro-batch equals the model's profiling batch
``b`` (Table II), so the pipeline runs ``M = GBS / b`` micro-batches; a
stage replicated ``r``-ways splits each micro-batch into ``b/r``-sample
slices per device (paper Fig. 8a).  A pure-DP plan then degenerates to
``M`` gradient-accumulation steps with per-device slices of ``b/G`` —
exactly the DP-with-local-accumulation baseline of §II.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

import numpy as np

import repro.obs as obs

from repro.cluster.topology import Cluster
from repro.core.fast_scan import shared_scanner
from repro.core.latency import PlanEstimate, evaluate_plan
from repro.core.placement import allocate
from repro.core.plan import ParallelPlan, Stage
from repro.core.profiler import ModelProfile
from repro.models.graph import GRAD_BYTES_PER_PARAM, FP32


@dataclass(frozen=True)
class PlannerConfig:
    """Search knobs.

    Attributes
    ----------
    micro_batch_size:
        Per-device micro-batch; defaults to the model's profiling batch.
    beam_width:
        States kept per layer depth (None = exhaustive).
    policies:
        Placement policies to enumerate for each new stage.
    max_stages:
        Optional cap on computation-stage count.
    enforce_memory:
        Drop plans whose estimated per-device peak memory exceeds capacity.
    """

    micro_batch_size: int | None = None
    beam_width: int | None = 48
    policies: tuple[str, ...] = ("fresh_first", "append_first", "scatter_first")
    max_stages: int | None = None
    #: Minimum computation-stage count (2 = force a pipeline, exclude DP).
    min_stages: int = 1
    enforce_memory: bool = True
    #: Relative latency penalty per extra computation stage, modelling
    #: per-stage runtime overheads the analytical model omits (split/concat
    #: kernels, pipeline management).  0.0 = pure analytical comparison;
    #: the ablation bench sweeps this.
    stage_overhead_frac: float = 0.0
    #: Also consider Megatron-style interleaved virtual-stage candidates
    #: (an extension beyond the paper's single-chunk stages).
    consider_interleaved: bool = False
    #: Score transitions with the vectorized completion scanner
    #: (:class:`repro.core.fast_scan.CompletionScanner`) — bit-identical
    #: plans/latencies to the scalar loop, roughly an order of magnitude
    #: faster.  False keeps the reference scalar path (used by the
    #: equivalence suite and available for debugging).
    use_fast_scan: bool = True
    #: Batch each whole frontier level into one scanner kernel call
    #: (:meth:`repro.core.fast_scan.CompletionScanner.scan_level`) instead of
    #: one call per state, with memoized allocation rows / free-device tuples
    #: and a vectorized beam-dedup replay — still bit-identical.  Only
    #: meaningful with ``use_fast_scan=True``; False keeps the per-state
    #: kernel path (the previous behaviour, used as the benchmark baseline).
    level_batch: bool = True
    #: Also collect the K best distinct complete plans seen during the
    #: search into :attr:`PlanResult.top_plans` (0 = don't).  Robust
    #: planning (:mod:`repro.faults.robust`) re-scores these runners-up
    #: under perturbation ensembles.
    keep_top_k: int = 0


@dataclass
class PlanResult:
    """Planner output: the winning plan plus search metadata."""

    plan: ParallelPlan
    estimate: PlanEstimate
    states_explored: int
    plans_evaluated: int
    infeasible_plans: int
    #: ``(analytical latency, plan)`` pairs for the best distinct plans seen
    #: during the search, ascending by latency (the winner included first).
    #: Populated only with ``PlannerConfig.keep_top_k > 0``.
    top_plans: list = field(default_factory=list)


@dataclass(order=True)
class _State:
    latency: float
    j: int = field(compare=False)
    used: tuple = field(compare=False)
    stages: tuple = field(compare=False)


def _largest_divisor_leq(n: int, cap: int) -> int:
    """Largest divisor of ``n`` that is ≤ ``cap`` (≥ 1).

    Enumerates divisor *pairs* ``(d, n // d)`` up to √n — O(√n) instead of
    the naïve descending scan, which is O(n) when ``cap`` sits just below a
    large prime gap in the divisor lattice (e.g. ``n = 2·p``).
    """
    cap = max(1, min(cap, n))
    best = 1
    d = 1
    while d * d <= n:
        if n % d == 0:
            if best < d <= cap:
                best = d
            e = n // d
            if best < e <= cap:
                best = e
        d += 1
    return best


class Planner:
    """Searches for the minimum-latency hybrid plan on a cluster."""

    def __init__(
        self,
        profile: ModelProfile,
        cluster: Cluster,
        global_batch_size: int,
        config: PlannerConfig | None = None,
    ):
        self.profile = profile
        self.cluster = cluster
        self.gbs = int(global_batch_size)
        self.config = config or PlannerConfig()
        if self.gbs < 1:
            raise ValueError(f"global batch size must be >=1, got {global_batch_size}")
        self._mbs_dev = self.config.micro_batch_size or profile.graph.profile_batch
        self._plans_evaluated = 0
        self._infeasible = 0
        # M is split-independent for multi-stage plans, so the scan kernel
        # can share it across a whole state's transition batch.
        self._m_multi = _largest_divisor_leq(
            self.gbs, max(1, self.gbs // self._mbs_dev)
        )
        # Bounded worst-at-root heap of top-K candidates: entries are
        # (-latency, seq, payload) where payload is either a finished plan
        # or a (j, used, stages) state to complete lazily.  Oversized vs
        # keep_top_k so post-hoc dedupe still yields K distinct plans.
        self._topk_cap = max(4 * self.config.keep_top_k, 0)
        self._topk: list = []
        self._topk_seq = 0
        # (split j', replication m') -> number of candidate scorings, filled
        # only while observability is enabled (see _flush_obs).
        self._score_counts: dict[tuple[int, int], int] = {}
        # Per-occupancy memoization for the level-batched path: allocation
        # rows are a function of (used,) only, and the free-device tuple of
        # each resulting occupancy recurs across states and levels.
        self._rows_cache: dict[tuple, tuple] = {}
        self._free_cache: dict[tuple, tuple] = {}
        self._sig_cache: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------ #
    # Plan completion & evaluation
    # ------------------------------------------------------------------ #
    def _free_devices(self, used: tuple) -> list:
        out = []
        for mid, machine in enumerate(self.cluster.machines):
            out.extend(machine.devices[used[mid] :])
        return out

    def _free_tuple(self, used: tuple) -> tuple:
        """Memoized tuple of free devices for one occupancy signature."""
        out = self._free_cache.get(used)
        if out is None:
            out = tuple(self._free_devices(used))
            self._free_cache[used] = out
        return out

    def _alloc_rows(self, used: tuple) -> tuple:
        """Memoized ``(rows, groups, tails, row_key)`` for one occupancy.

        The per-state search loop rebuilds this row list (every replication
        count × every policy) for each frontier state; occupancy signatures
        recur heavily across states and levels, so the level-batched path
        caches the rows, their device/tail tuples, and a hashable row_key
        under which the scanner memoizes per-row coefficient bundles.
        """
        entry = self._rows_cache.get(used)
        if entry is None:
            free_total = self.cluster.num_devices - sum(used)
            rows = []
            for m2 in range(1, free_total):
                rows.extend(allocate(self.cluster, used, m2, self.config.policies))
            entry = (
                rows,
                [p.devices for p in rows],
                [self._free_tuple(p.new_used) for p in rows],
                (self.config.policies, used),
            )
            self._rows_cache[used] = entry
        return entry

    def _num_micro_batches(self, stages: list[Stage]) -> int:
        # Global micro-batch = the profiling batch (Table II); replicated
        # stages each process an even slice of it (paper Fig. 8a).  So
        # M = GBS / micro_batch for pipelines.  A single-stage (pure DP)
        # plan instead runs gradient accumulation with the *per-device*
        # micro-batch at the profiling size: M = GBS / (b · G).
        if len(stages) == 1:
            target = max(1, self.gbs // (self._mbs_dev * stages[0].replicas))
        else:
            target = max(1, self.gbs // self._mbs_dev)
        return _largest_divisor_leq(self.gbs, target)

    def complete(self, j: int, used: tuple, prefix: tuple) -> ParallelPlan | None:
        """Close a state into a full plan: layers [j, N) on all free GPUs."""
        free = self._free_devices(used)
        if not free:
            return None
        n = self.profile.num_layers
        stages = list(prefix)
        if j < n:
            stages.append(Stage(j, n, tuple(free)))
        if self.config.max_stages is not None and len(stages) > self.config.max_stages:
            return None
        m = self._num_micro_batches(stages)
        return ParallelPlan(
            model=self.profile.graph,
            stages=stages,
            global_batch_size=self.gbs,
            num_micro_batches=m,
        )

    def plan_fits_memory(self, plan: ParallelPlan) -> bool:
        """Conservative per-device peak-memory feasibility check.

        Persistent optimizer state + gradient buffer + up to
        ``min(S−i, M)`` resident micro-batch activations per stage (the
        early-backward bound, paper §V-C), without re-computation.
        Demands are aggregated per *device*, so interleaved plans placing
        several stages on one device are checked correctly.
        """
        s_count = plan.num_stages
        demand: dict[int, float] = {}
        caps: dict[int, float] = {}
        for i, stage in enumerate(plan.stages):
            params = self.profile.param_bytes(stage.layer_lo, stage.layer_hi)
            persistent = (
                self.profile.state_bytes(stage.layer_lo, stage.layer_hi)
                + params / FP32 * GRAD_BYTES_PER_PARAM
            )
            act_per_mb = self.profile.stored_bytes(
                stage.layer_lo, stage.layer_hi, plan.device_batch(i)
            )
            in_flight = min(s_count - i, plan.num_micro_batches)
            stage_demand = persistent + in_flight * act_per_mb
            for d in stage.devices:
                demand[d.global_id] = demand.get(d.global_id, 0.0) + stage_demand
                caps[d.global_id] = d.spec.memory_bytes
        return all(demand[g] <= caps[g] for g in demand)

    def _score(self, plan: ParallelPlan | None) -> tuple[float, PlanEstimate | None]:
        if plan is None:
            return float("inf"), None
        self._plans_evaluated += 1
        if plan.num_stages < self.config.min_stages:
            return float("inf"), None
        if self.config.enforce_memory and not self.plan_fits_memory(plan):
            self._infeasible += 1
            return float("inf"), None
        est = evaluate_plan(self.profile, self.cluster, plan)
        penalty = 1.0 + self.config.stage_overhead_frac * (plan.num_stages - 1)
        return est.latency * penalty, est

    # ------------------------------------------------------------------ #
    # Top-K candidate collection
    # ------------------------------------------------------------------ #
    def _note_candidate(self, latency: float, payload) -> None:
        """Offer one finite-latency candidate to the bounded top-K heap."""
        if not self._topk_cap:
            return
        heap = self._topk
        if len(heap) < self._topk_cap:
            self._topk_seq += 1
            heapq.heappush(heap, (-latency, self._topk_seq, payload))
        elif latency < -heap[0][0]:
            self._topk_seq += 1
            heapq.heapreplace(heap, (-latency, self._topk_seq, payload))

    def _topk_accepts(self, latency: float) -> bool:
        """Would :meth:`_note_candidate` keep a candidate at ``latency``?"""
        return bool(self._topk_cap) and (
            len(self._topk) < self._topk_cap or latency < -self._topk[0][0]
        )

    def _materialize_top_plans(self) -> list:
        """Resolve heap payloads into ≤ K distinct (latency, plan) pairs."""
        out: list = []
        seen: set[tuple] = set()
        k = self.config.keep_top_k
        for neg_lat, seq, payload in sorted(self._topk, key=lambda t: (-t[0], t[1])):
            if len(out) >= k:
                break
            if isinstance(payload, ParallelPlan):
                plan = payload
            else:
                j, used, stages = payload
                plan = self.complete(j, used, stages)
                if plan is None:
                    continue
            sig = (plan.notation, plan.split_notation, plan.num_micro_batches)
            if sig in seen:
                continue
            seen.add(sig)
            out.append((-neg_lat, plan))
        return out

    # ------------------------------------------------------------------ #
    # Canonical candidates
    # ------------------------------------------------------------------ #
    def straight_plan(self) -> ParallelPlan | None:
        """Balanced straight pipeline: one stage per device, no replication.

        Layers are assigned greedily so each stage's forward compute stays
        close to ``total / G`` — the paper's "straight" plan family
        (Table V), e.g. GNMT-16 with one LSTM layer per device on Config C.
        """
        n = self.profile.num_layers
        g = self.cluster.num_devices
        if g > n or g < 2:
            return None
        total = self.profile.fwd_prefix[-1]
        bounds = [0]
        for k in range(1, g):
            target = total * k / g
            idx = int(np.searchsorted(self.profile.fwd_prefix, target))
            idx = max(bounds[-1] + 1, min(idx, n - (g - k)))
            bounds.append(idx)
        bounds.append(n)
        devices = self.cluster.devices
        stages = [Stage(bounds[i], bounds[i + 1], (devices[i],)) for i in range(g)]
        m = self._num_micro_batches(stages)
        return ParallelPlan(
            model=self.profile.graph,
            stages=stages,
            global_batch_size=self.gbs,
            num_micro_batches=m,
        )

    def interleaved_plans(self, virtual_depths: tuple[int, ...] = (2, 3)) -> list:
        """Interleaved virtual-stage candidates (extension beyond the paper)."""
        from repro.core.plan import interleaved_straight_plan

        n = self.profile.num_layers
        g = self.cluster.num_devices
        out = []
        for v in virtual_depths:
            if g * v > n or g < 2:
                continue
            target = max(1, self.gbs // self._mbs_dev)
            m = _largest_divisor_leq(self.gbs, target)
            out.append(
                interleaved_straight_plan(
                    self.profile.graph, self.cluster.devices, self.gbs, m, v
                )
            )
        return out

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self) -> PlanResult:
        with obs.span(
            "planner.search",
            model=self.profile.graph.name,
            gbs=self.gbs,
            devices=self.cluster.num_devices,
        ) as sp:
            result = self._search()
            sp.set(
                plan=result.plan.notation,
                plans_evaluated=result.plans_evaluated,
            )
        if obs.enabled():
            self._flush_obs(result)
        return result

    def _flush_obs(self, result: PlanResult) -> None:
        """Publish search counters to the metrics registry (enabled only)."""
        obs.counter("planner.states_expanded").inc(result.states_explored)
        obs.counter("planner.plans_evaluated").inc(result.plans_evaluated)
        obs.counter("planner.infeasible_plans").inc(result.infeasible_plans)
        obs.counter("planner.topk_kept").inc(len(result.top_plans))
        for (split, repl), cnt in sorted(self._score_counts.items()):
            obs.counter("planner.scored", split=split, repl=repl).inc(cnt)

    def _replay_level(self, specs: list, res, next_level: dict):
        """Vectorized replay of the scalar beam loop over one level's scores.

        The scalar loop iterates candidates in (state, split, row) order and,
        per dedup key ``(j2, sorted occupancy, gpus)``: inserts the key at
        its first finite candidate, keeps the lowest-latency candidate with
        ties broken by arrival, and updates the global best on strict
        improvement.  All three reduce to lexsorts over a rank array encoding
        that iteration order, so ``next_level`` ends up with identical
        contents *and* insertion order (``heapq.nsmallest`` is stable, so
        dict order feeds beam tie-breaking).  Top-K collection depends on
        evolving heap state, so with ``keep_top_k`` it replays sequentially
        in rank order over candidates prefiltered by the entry threshold
        (which never rises while the heap is full).

        Returns ``(latency, j2, new_used, stages)`` for the level's winning
        candidate (lowest latency, earliest arrival) or ``None``.
        """
        lat = res.latency
        finite = np.isfinite(lat)
        if not finite.any():
            return None
        t_idx, k_idx = np.nonzero(finite)
        lats = lat[finite]
        n = self.profile.num_layers
        spec_of = res.row_state
        r_within = res.row_index
        j2s = res.splits[k_idx]
        J = res.splits.size
        r_max = int(r_within.max()) + 1
        # Scalar iteration order: state asc, split asc, row asc.
        rank = (spec_of[t_idx] * J + k_idx) * r_max + r_within[t_idx]

        # Dedup-key codes: occupancy signatures shared across states.
        sig_cache = self._sig_cache
        code_of: dict[tuple, int] = {}
        row_code = np.empty(lat.shape[0], dtype=np.int64)
        for t in range(lat.shape[0]):
            placed = specs[spec_of[t]][1][r_within[t]]
            sig = sig_cache.get(placed.new_used)
            if sig is None:
                sig = tuple(sorted(placed.new_used))
                sig_cache[placed.new_used] = sig
            c = code_of.get(sig)
            if c is None:
                c = len(code_of)
                code_of[sig] = c
            row_code[t] = c
        keys = row_code[t_idx] * (n + 1) + j2s

        def materialize(pos: int):
            t = t_idx[pos]
            state, rows = specs[spec_of[t]]
            placed = rows[r_within[t]]
            j2 = int(j2s[pos])
            stages = state.stages + (Stage(state.j, j2, placed.devices),)
            return state, placed, j2, stages

        # Top-K heap replay (heap state evolves with arrival order).
        if self._topk_cap:
            order = np.argsort(rank)
            if len(self._topk) >= self._topk_cap:
                order = order[lats[order] < -self._topk[0][0]]
            for pos in order:
                lat_v = float(lats[pos])
                if not self._topk_accepts(lat_v):
                    continue
                _state, placed, j2, stages = materialize(pos)
                self._note_candidate(lat_v, (j2, placed.new_used, stages))

        # Per-key winners: lowest latency, ties to the earliest candidate.
        order_win = np.lexsort((rank, lats, keys))
        kw = keys[order_win]
        first_w = np.ones(kw.size, dtype=bool)
        first_w[1:] = kw[1:] != kw[:-1]
        winners = order_win[first_w]  # one per distinct key, keys ascending
        # Insertion order: each key enters the dict at its first finite
        # candidate, so order keys by their minimum rank.
        order_ins = np.lexsort((rank, keys))
        ki = keys[order_ins]
        first_i = np.ones(ki.size, dtype=bool)
        first_i[1:] = ki[1:] != ki[:-1]
        touch_rank = rank[order_ins[first_i]]  # aligned with winners
        for pos in winners[np.argsort(touch_rank)]:
            _state, placed, j2, stages = materialize(pos)
            key = (j2, sig_cache[placed.new_used], sum(placed.new_used))
            next_level[key] = _State(float(lats[pos]), j2, placed.new_used, stages)

        best_pos = int(np.lexsort((rank, lats))[0])
        _state, placed, j2, stages = materialize(best_pos)
        return float(lats[best_pos]), j2, placed.new_used, stages

    def _search(self) -> PlanResult:
        n = self.profile.num_layers
        g_total = self.cluster.num_devices
        zeros = tuple(0 for _ in range(self.cluster.num_machines))

        best_plan: ParallelPlan | None = None
        best_est: PlanEstimate | None = None
        best_latency = float("inf")
        states_explored = 0

        def consider(plan: ParallelPlan | None) -> float:
            nonlocal best_plan, best_est, best_latency
            lat, est = self._score(plan)
            if lat < best_latency:
                best_plan, best_est, best_latency = plan, est, lat
            if est is not None:
                self._note_candidate(lat, plan)
            return lat

        # Level 0: the pure-DP completion of the empty prefix, plus the
        # canonical balanced straight pipeline (beam search would otherwise
        # prune straight prefixes, whose early completions score poorly).
        root_latency = consider(self.complete(0, zeros, ()))
        if self.config.max_stages is None or self.config.max_stages >= g_total:
            consider(self.straight_plan())
        if self.config.consider_interleaved:
            for plan in self.interleaved_plans():
                consider(plan)
        frontier: list[_State] = [_State(root_latency, 0, zeros, ())]
        scanner = (
            shared_scanner(self.profile, self.cluster)
            if self.config.use_fast_scan
            else None
        )
        # Hoisted enabled-check: scoring-count bookkeeping touches the
        # innermost loops, so the disabled path must skip it entirely.
        track = obs.enabled()

        level_batched = scanner is not None and self.config.level_batch

        # Levels advance in j; dedupe on (sorted occupancy, gpus used).
        while frontier:
            if track:
                obs.histogram(
                    "planner.frontier_size", buckets=(1, 4, 16, 64, 256, 1024)
                ).observe(len(frontier))
            next_level: dict[tuple, _State] = {}
            if level_batched:
                # Level-batched path: collect every state's allocation rows
                # (memoized per occupancy), score the whole level in one
                # kernel call, then replay the scalar insertion order over
                # the latency matrix.
                specs: list[tuple[_State, list]] = []
                spec_rows: list[tuple] = []
                for state in frontier:
                    states_explored += 1
                    if (
                        self.config.max_stages is not None
                        and len(state.stages) + 2 > self.config.max_stages
                    ):
                        continue
                    rows, groups, tails, row_key = self._alloc_rows(state.used)
                    if not rows or state.j + 1 >= n:
                        continue
                    if track:
                        per_repl: dict[int, int] = {}
                        for placed in rows:
                            r_count = len(placed.devices)
                            per_repl[r_count] = per_repl.get(r_count, 0) + 1
                        sc = self._score_counts
                        for j2 in range(state.j + 1, n):
                            for r_count, cnt in per_repl.items():
                                key = (j2, r_count)
                                sc[key] = sc.get(key, 0) + cnt
                    specs.append((state, rows))
                    spec_rows.append((groups, tails, row_key))
                if specs:
                    res = scanner.scan_level(
                        [
                            (st.j, st.stages, groups, tails, row_key)
                            for (st, _rows), (groups, tails, row_key) in zip(
                                specs, spec_rows
                            )
                        ],
                        global_batch_size=self.gbs,
                        num_micro_batches=self._m_multi,
                        enforce_memory=self.config.enforce_memory,
                        min_stages=self.config.min_stages,
                        stage_overhead_frac=self.config.stage_overhead_frac,
                    )
                    self._plans_evaluated += res.evaluated
                    self._infeasible += res.infeasible
                    if track:
                        obs.histogram(
                            "planner.level_batch", buckets=(1, 4, 16, 64, 256, 1024)
                        ).observe(res.latency.shape[0])
                    winner = self._replay_level(specs, res, next_level)
                    if winner is not None and winner[0] < best_latency:
                        lat_v, j2, new_used, stages = winner
                        best_plan = self.complete(j2, new_used, stages)
                        best_est = evaluate_plan(self.profile, self.cluster, best_plan)
                        best_latency = lat_v
                candidates = list(next_level.values())
                if (
                    self.config.beam_width is not None
                    and len(candidates) > self.config.beam_width
                ):
                    if track:
                        obs.counter("planner.beam_pruned").inc(
                            len(candidates) - self.config.beam_width
                        )
                    candidates = heapq.nsmallest(self.config.beam_width, candidates)
                frontier = candidates
                continue
            for state in frontier:
                states_explored += 1
                free_total = g_total - sum(state.used)
                if scanner is not None:
                    # Vectorized path: score the whole (allocation, split)
                    # grid of this state in one kernel call, then replay the
                    # scalar loop's insertion order over the result matrix so
                    # beam contents and tie-breaks stay identical.
                    if (
                        self.config.max_stages is not None
                        and len(state.stages) + 2 > self.config.max_stages
                    ):
                        continue
                    rows = []
                    for m2 in range(1, free_total):
                        rows.extend(
                            allocate(self.cluster, state.used, m2, self.config.policies)
                        )
                    if not rows or state.j + 1 >= n:
                        continue
                    if track:
                        per_repl: dict[int, int] = {}
                        for placed in rows:
                            r_count = len(placed.devices)
                            per_repl[r_count] = per_repl.get(r_count, 0) + 1
                        sc = self._score_counts
                        for j2 in range(state.j + 1, n):
                            for r_count, cnt in per_repl.items():
                                key = (j2, r_count)
                                sc[key] = sc.get(key, 0) + cnt
                    res = scanner.scan_completions(
                        state.j,
                        state.stages,
                        [p.devices for p in rows],
                        [tuple(self._free_devices(p.new_used)) for p in rows],
                        global_batch_size=self.gbs,
                        num_micro_batches=self._m_multi,
                        enforce_memory=self.config.enforce_memory,
                        min_stages=self.config.min_stages,
                        stage_overhead_frac=self.config.stage_overhead_frac,
                    )
                    self._plans_evaluated += res.evaluated
                    self._infeasible += res.infeasible
                    lat_rows = res.latency.tolist()
                    inf = float("inf")
                    for k in range(len(lat_rows[0])):
                        j2 = state.j + 1 + k
                        for r, placed in enumerate(rows):
                            lat = lat_rows[r][k]
                            if lat == inf:
                                continue
                            key = (
                                j2,
                                tuple(sorted(placed.new_used)),
                                sum(placed.new_used),
                            )
                            cur = next_level.get(key)
                            improves_best = lat < best_latency
                            wins_slot = cur is None or lat < cur.latency
                            keeps_topk = self._topk_accepts(lat)
                            if not (improves_best or wins_slot or keeps_topk):
                                continue
                            stages = state.stages + (
                                Stage(state.j, j2, placed.devices),
                            )
                            if keeps_topk:
                                self._note_candidate(
                                    lat, (j2, placed.new_used, stages)
                                )
                            if improves_best:
                                best_plan = self.complete(j2, placed.new_used, stages)
                                best_est = evaluate_plan(
                                    self.profile, self.cluster, best_plan
                                )
                                best_latency = lat
                            if wins_slot:
                                next_level[key] = _State(
                                    lat, j2, placed.new_used, stages
                                )
                    continue
                for j2 in range(state.j + 1, n):
                    for m2 in range(1, free_total):
                        for placed in allocate(
                            self.cluster, state.used, m2, self.config.policies
                        ):
                            stages = state.stages + (
                                Stage(state.j, j2, placed.devices),
                            )
                            if (
                                self.config.max_stages is not None
                                and len(stages) + 1 > self.config.max_stages
                            ):
                                continue
                            lat = consider(self.complete(j2, placed.new_used, stages))
                            if track:
                                sc = self._score_counts
                                sc[(j2, m2)] = sc.get((j2, m2), 0) + 1
                            if lat == float("inf"):
                                continue
                            key = (j2, tuple(sorted(placed.new_used)), sum(placed.new_used))
                            cur = next_level.get(key)
                            if cur is None or lat < cur.latency:
                                next_level[key] = _State(lat, j2, placed.new_used, stages)
            candidates = list(next_level.values())
            if self.config.beam_width is not None and len(candidates) > self.config.beam_width:
                if track:
                    obs.counter("planner.beam_pruned").inc(
                        len(candidates) - self.config.beam_width
                    )
                candidates = heapq.nsmallest(self.config.beam_width, candidates)
            frontier = candidates

        if best_plan is None or best_est is None:
            raise RuntimeError(
                f"no feasible plan found for {self.profile.graph.name} on "
                f"{self.cluster!r} at GBS={self.gbs} (all candidates exceed "
                f"device memory)"
            )
        return PlanResult(
            plan=best_plan,
            estimate=best_est,
            states_explored=states_explored,
            plans_evaluated=self._plans_evaluated,
            infeasible_plans=self._infeasible,
            top_plans=self._materialize_top_plans(),
        )


def plan_best(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    config: PlannerConfig | None = None,
    *,
    cache=None,
) -> PlanResult:
    """One-call façade: search (or recall) and return the best plan.

    ``cache`` is an optional :class:`repro.core.plancache.PlanCache`; a hit
    returns a :class:`PlanResult` bit-identical to a fresh search (the plan
    is content-addressed by the problem fingerprint and the estimate is
    recomputed deterministically), a miss searches and stores.
    """
    cfg = config or PlannerConfig()
    if cache is not None:
        cached = cache.lookup(profile, cluster, global_batch_size, cfg)
        if cached is not None:
            return cached
    result = Planner(profile, cluster, global_batch_size, cfg).search()
    if cache is not None:
        cache.store(profile, cluster, global_batch_size, cfg, result)
    return result


def plan_paper_family(
    profile: ModelProfile,
    cluster: Cluster,
    global_batch_size: int,
    config: PlannerConfig | None = None,
) -> PlanResult:
    """Best plan restricted to the families the paper's Table V reports.

    Searches only DP, all two-stage ``P:Q`` splits, and the balanced
    straight pipeline.  Useful to compare the unrestricted search against
    the published plan shapes: on our cost model the unrestricted planner
    sometimes finds a 3+-stage plan a few percent faster than the best
    paper-family plan.
    """
    cfg = replace(config or PlannerConfig(), max_stages=2)
    planner = Planner(profile, cluster, global_batch_size, cfg)
    result = planner.search()
    straight = planner.straight_plan()
    if straight is not None:
        best_penalized = result.estimate.latency * (
            1.0 + cfg.stage_overhead_frac * (result.plan.num_stages - 1)
        )
        lat, est = planner._score(straight)
        if est is not None and lat < best_penalized:
            result = PlanResult(
                plan=straight,
                estimate=est,
                states_explored=result.states_explored,
                plans_evaluated=planner._plans_evaluated,
                infeasible_plans=planner._infeasible,
            )
    return result

"""DAPPLE profiler: per-layer compute times and tensor sizes.

The paper's profiler runs each layer on a real device and records execution
time, activation size, and parameter size (Fig. 1).  Ours evaluates the same
quantities analytically from the layer graph and a GPU spec — FLOPs divided
by sustained throughput plus a fixed per-layer kernel overhead — and exposes
them through numpy prefix sums, because the planner queries O(N²·G) layer
ranges and must stay "offline … within a few seconds" (paper §II-C).

Times returned by range queries scale linearly with the requested batch
size, so the planner can evaluate replicated stages (which process
``micro_batch / replicas`` samples per device) without re-profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.device import GPUSpec, V100
from repro.models.graph import LayerGraph


@dataclass(frozen=True)
class LayerProfile:
    """Profiled statistics for one layer at batch size 1."""

    name: str
    fwd_time: float
    bwd_time: float
    params: int
    param_bytes: float
    activation_out_bytes: float
    stored_bytes: float


@dataclass
class ModelProfile:
    """Profile of a whole model, with O(1) layer-range aggregation.

    All per-sample arrays have one entry per layer; ``*_prefix`` arrays are
    length ``num_layers + 1`` cumulative sums.
    """

    graph: LayerGraph
    gpu: GPUSpec
    layers: list[LayerProfile]
    fwd_prefix: np.ndarray = field(repr=False, default=None)
    bwd_prefix: np.ndarray = field(repr=False, default=None)
    param_bytes_prefix: np.ndarray = field(repr=False, default=None)
    stored_prefix: np.ndarray = field(repr=False, default=None)
    #: Per-sample boundary activation bytes for every cut position, so the
    #: planner's split scans gather all boundaries in one indexing op.
    boundary_act: np.ndarray = field(repr=False, default=None)

    def __post_init__(self) -> None:
        def pref(vals):
            arr = np.zeros(len(self.layers) + 1)
            np.cumsum(np.asarray(vals, dtype=float), out=arr[1:])
            return arr

        self.fwd_prefix = pref([l.fwd_time for l in self.layers])
        self.bwd_prefix = pref([l.bwd_time for l in self.layers])
        self.param_bytes_prefix = pref([l.param_bytes for l in self.layers])
        self.stored_prefix = pref([l.stored_bytes for l in self.layers])
        self.boundary_act = np.array(
            [self.graph.boundary_activation_bytes(s) for s in range(len(self.layers) + 1)]
        )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def _check(self, lo: int, hi: int) -> None:
        if not (0 <= lo < hi <= self.num_layers):
            raise IndexError(f"invalid layer range [{lo}, {hi})")

    # Per-layer overhead applies once per layer per micro-batch, regardless
    # of the sub-batch size — it models kernel-launch floors.
    def fwd_time(self, lo: int, hi: int, batch: float) -> float:
        """Forward time of layers [lo, hi) at (possibly fractional) batch."""
        self._check(lo, hi)
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        span = hi - lo
        return float(
            (self.fwd_prefix[hi] - self.fwd_prefix[lo]) * batch
            + span * self.graph.fixed_overhead_fwd
        )

    def bwd_time(self, lo: int, hi: int, batch: float) -> float:
        """Backward time of layers [lo, hi) at (possibly fractional) batch."""
        self._check(lo, hi)
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        span = hi - lo
        return float(
            (self.bwd_prefix[hi] - self.bwd_prefix[lo]) * batch
            + span * self.graph.fixed_overhead_fwd
        )

    def param_bytes(self, lo: int, hi: int) -> float:
        self._check(lo, hi)
        return float(self.param_bytes_prefix[hi] - self.param_bytes_prefix[lo])

    def stored_bytes(self, lo: int, hi: int, batch: float) -> float:
        """Resident activation bytes of layers [lo, hi) for one micro-batch."""
        self._check(lo, hi)
        return float((self.stored_prefix[hi] - self.stored_prefix[lo]) * batch)

    def boundary_bytes(self, split: int, batch: float) -> float:
        """One-way cross-stage activation traffic for a cut at ``split``."""
        return self.graph.boundary_activation_bytes(split) * batch

    def boundary_bytes_array(self, splits: np.ndarray, batch: float) -> np.ndarray:
        """Vectorized :meth:`boundary_bytes` over an array of cut positions.

        Bit-identical to the scalar accessor (one gather, one multiply).
        """
        return self.boundary_act[np.asarray(splits, dtype=int)] * batch

    def state_bytes(self, lo: int, hi: int) -> float:
        """Persistent optimizer bytes (weights + states) of layers [lo, hi)."""
        self._check(lo, hi)
        from repro.models.graph import OPTIMIZER_STATE_BYTES, FP32

        per_param = OPTIMIZER_STATE_BYTES[self.graph.optimizer]
        return self.param_bytes(lo, hi) / FP32 * per_param


def profile_model(graph: LayerGraph, gpu: GPUSpec = V100) -> ModelProfile:
    """Profile ``graph`` on ``gpu``; all times are per-sample (batch 1)."""
    layers = [
        LayerProfile(
            name=l.name,
            fwd_time=gpu.compute_time(l.flops_fwd),
            bwd_time=gpu.compute_time(l.flops_bwd),
            params=l.params,
            param_bytes=l.param_bytes,
            activation_out_bytes=l.activation_out_bytes,
            stored_bytes=l.stored_bytes,
        )
        for l in graph.layers
    ]
    return ModelProfile(graph=graph, gpu=gpu, layers=layers)

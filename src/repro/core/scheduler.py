"""Micro-batch schedules: GPipe and DAPPLE early-backward (paper §III, §V-C).

A schedule is, per stage, the exact order in which forward (F) and backward
(B) tasks of each micro-batch execute on that stage's devices.  The runtime
turns consecutive schedule entries into control-dependency edges, exactly
as the paper's TF implementation does (Fig. 11).

* :func:`gpipe_schedule` — inject all ``M`` forwards, then run backwards in
  reverse micro-batch order.  Peak activation memory grows with ``M``.
* :func:`dapple_schedule` — inject ``Ki`` warm-up forwards on stage ``i``,
  then strictly alternate one backward with one forward (early backward
  scheduling), draining the tail with backwards.  Peak activation memory is
  bounded by ``Ki``, *independent of M*.

Warm-up counts implement the paper's two policies:

* **PA**: ``Ki = min(S − i, D)`` — for workloads with negligible cross-stage
  communication (low ACR);
* **PB**: ``Ki = min(2·(S − i) − 1, D)`` — twice the in-flight forwards, to
  saturate pipelines whose cross-stage communication is comparable to
  compute (high ACR).

``D`` is the device-memory cap on concurrently-resident micro-batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

#: ``F``/``B`` are the classic forward and combined backward; ``BI``/``BW``
#: are the 2BP split (grad-input / grad-weight) emitted by
#: :mod:`repro.schedules` zero-bubble schedules.
Kind = Literal["F", "B", "BI", "BW"]


@dataclass(frozen=True)
class MicroBatchTask:
    """One forward or backward (phase) of one micro-batch on one stage."""

    kind: Kind
    micro_batch: int

    def __repr__(self) -> str:
        return f"{self.kind}{self.micro_batch}"


#: A schedule: ``schedule[stage]`` is the ordered task list for that stage.
StageSchedule = list[list[MicroBatchTask]]


def warmup_counts(
    num_stages: int,
    num_micro_batches: int,
    policy: str = "PA",
    max_in_memory: int | None = None,
) -> list[int]:
    """Per-stage warm-up forward counts ``Ki`` (paper §V-C policies PA/PB)."""
    if num_stages < 1:
        raise ValueError(f"need >=1 stage, got {num_stages}")
    if num_micro_batches < 1:
        raise ValueError(f"need >=1 micro-batch, got {num_micro_batches}")
    d = max_in_memory if max_in_memory is not None else num_micro_batches
    if d < 1:
        raise ValueError(f"memory cap D must be >=1, got {d}")
    out = []
    for i in range(num_stages):
        if policy == "PA":
            k = num_stages - i
        elif policy == "PB":
            k = 2 * (num_stages - i) - 1
        else:
            raise ValueError(f"unknown warm-up policy {policy!r} (PA or PB)")
        out.append(max(1, min(k, d, num_micro_batches)))
    return out


def _one_f_one_b(num_micro_batches: int, k: int) -> list[MicroBatchTask]:
    """K warm-up forwards, strict 1F1B interleave, backward tail."""
    tasks = [MicroBatchTask("F", mb) for mb in range(k)]
    for mb in range(num_micro_batches - k):
        tasks.append(MicroBatchTask("B", mb))
        tasks.append(MicroBatchTask("F", mb + k))
    tasks.extend(
        MicroBatchTask("B", mb) for mb in range(num_micro_batches - k, num_micro_batches)
    )
    return tasks


def dapple_schedule(
    num_stages: int,
    num_micro_batches: int,
    policy: str = "PA",
    max_in_memory: int | None = None,
) -> StageSchedule:
    """DAPPLE early-backward schedule for every stage (paper Fig. 3b)."""
    ks = warmup_counts(num_stages, num_micro_batches, policy, max_in_memory)
    return [_one_f_one_b(num_micro_batches, k) for k in ks]


def gpipe_schedule(num_stages: int, num_micro_batches: int) -> StageSchedule:
    """GPipe schedule: all forwards, then backwards in reverse (Fig. 3a)."""
    if num_stages < 1:
        raise ValueError(f"need >=1 stage, got {num_stages}")
    if num_micro_batches < 1:
        raise ValueError(f"need >=1 micro-batch, got {num_micro_batches}")
    per_stage = [MicroBatchTask("F", mb) for mb in range(num_micro_batches)]
    per_stage += [MicroBatchTask("B", mb) for mb in reversed(range(num_micro_batches))]
    return [list(per_stage) for _ in range(num_stages)]


def validate_schedule(schedule: StageSchedule, num_micro_batches: int) -> None:
    """Check a schedule is complete and stage-locally causal.

    Every stage must run F of every micro-batch exactly once, plus either
    one combined backward B or a split BI→BW pair; a micro-batch's
    backward (phase) may not precede its forward on the same stage, nor
    its BW precede its BI, and a stage may not mix B with BI/BW for the
    same micro-batch.

    Raises
    ------
    ValueError
        On any violation.
    """
    for sid, tasks in enumerate(schedule):
        seen_f: set[int] = set()
        seen_b: set[int] = set()
        seen_bi: set[int] = set()
        seen_bw: set[int] = set()
        for t in tasks:
            mb = t.micro_batch
            if t.kind == "F":
                if mb in seen_f:
                    raise ValueError(f"stage {sid}: duplicate F{mb}")
                seen_f.add(mb)
            elif t.kind == "B":
                if mb in seen_b:
                    raise ValueError(f"stage {sid}: duplicate B{mb}")
                if mb in seen_bi or mb in seen_bw:
                    raise ValueError(
                        f"stage {sid}: B{mb} mixes combined and split backward"
                    )
                if mb not in seen_f:
                    raise ValueError(
                        f"stage {sid}: B{mb} before its forward"
                    )
                seen_b.add(mb)
            elif t.kind == "BI":
                if mb in seen_bi:
                    raise ValueError(f"stage {sid}: duplicate BI{mb}")
                if mb in seen_b:
                    raise ValueError(
                        f"stage {sid}: BI{mb} mixes combined and split backward"
                    )
                if mb not in seen_f:
                    raise ValueError(
                        f"stage {sid}: BI{mb} before its forward"
                    )
                seen_bi.add(mb)
            elif t.kind == "BW":
                if mb in seen_bw:
                    raise ValueError(f"stage {sid}: duplicate BW{mb}")
                if mb in seen_b:
                    raise ValueError(
                        f"stage {sid}: BW{mb} mixes combined and split backward"
                    )
                if mb not in seen_bi:
                    raise ValueError(
                        f"stage {sid}: BW{mb} before its grad-input phase BI{mb}"
                    )
                seen_bw.add(mb)
            else:
                raise ValueError(
                    f"stage {sid}: unknown task kind {t.kind!r}"
                )
        if seen_bi != seen_bw:
            raise ValueError(
                f"stage {sid}: split backward incomplete "
                f"(BI={sorted(seen_bi)}, BW={sorted(seen_bw)})"
            )
        want = set(range(num_micro_batches))
        done_b = seen_b | (seen_bi & seen_bw)
        if seen_f != want or done_b != want:
            raise ValueError(
                f"stage {sid}: incomplete schedule "
                f"(F={sorted(seen_f)}, B={sorted(done_b)}, expected {num_micro_batches})"
            )


def warmup_prefix_length(tasks: Sequence[MicroBatchTask]) -> int:
    """Number of forwards injected before the first backward.

    For a 1F1B schedule this is the stage's warm-up depth ``Ki``; the
    conformance checker (:mod:`repro.check.invariants`) compares it against
    the policy formula ``min(S−i, D)`` / ``min(2(S−i)−1, D)``.
    """
    k = 0
    for t in tasks:
        if t.kind != "F":
            break
        k += 1
    return k


def max_resident_micro_batches(tasks: Sequence[MicroBatchTask]) -> int:
    """Peak number of micro-batches whose activations are live at once.

    A micro-batch's activations go live at its F and are released at its
    releasing backward — the combined B, or the grad-weight phase BW when
    the backward is split (2BP): BI still *reads* the activations, so only
    BW frees them.  This is the quantity DAPPLE's early-backward
    scheduling bounds by ``Ki``.
    """
    live = 0
    peak = 0
    for t in tasks:
        if t.kind == "F":
            live += 1
            peak = max(peak, live)
        elif t.kind in ("B", "BW"):
            live -= 1
    return peak

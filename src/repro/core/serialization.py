"""Plan (de)serialization to plain dictionaries / JSON.

A serialized plan is portable across processes: it references devices by
global id and the model by registry name (or carries layer counts for
custom graphs), so a plan searched once can be cached, shipped to a
runner, or inspected by the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.cluster.topology import Cluster
from repro.core.plan import ParallelPlan, Stage
from repro.models.graph import LayerGraph


def plan_to_dict(plan: ParallelPlan) -> dict[str, Any]:
    """Serialize a plan into a JSON-safe dictionary."""
    return {
        "model": plan.model.name,
        "num_layers": plan.model.num_layers,
        "global_batch_size": plan.global_batch_size,
        "num_micro_batches": plan.num_micro_batches,
        "stages": [
            {
                "layer_lo": s.layer_lo,
                "layer_hi": s.layer_hi,
                "devices": [d.global_id for d in s.devices],
            }
            for s in plan.stages
        ],
        "meta": dict(plan.meta),
    }


def plan_from_dict(
    data: dict[str, Any], model: LayerGraph, cluster: Cluster
) -> ParallelPlan:
    """Rebuild a plan against a concrete model and cluster.

    Raises
    ------
    ValueError
        If the payload does not match the model's depth or references
        devices the cluster does not have.
    """
    if data["num_layers"] != model.num_layers:
        raise ValueError(
            f"plan was made for a {data['num_layers']}-layer model but "
            f"{model.name} has {model.num_layers}"
        )
    max_id = cluster.num_devices - 1
    stages = []
    for s in data["stages"]:
        for gid in s["devices"]:
            if not (0 <= gid <= max_id):
                raise ValueError(f"plan references device {gid}, cluster has 0..{max_id}")
        stages.append(
            Stage(
                s["layer_lo"],
                s["layer_hi"],
                tuple(cluster.device(g) for g in s["devices"]),
            )
        )
    plan = ParallelPlan(
        model=model,
        stages=stages,
        global_batch_size=data["global_batch_size"],
        num_micro_batches=data["num_micro_batches"],
        meta=dict(data.get("meta", {})),
    )
    return plan


def save_plan(plan: ParallelPlan, path: str | Path) -> Path:
    """Write a plan as JSON."""
    path = Path(path)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2) + "\n")
    return path


def load_plan(path: str | Path, model: LayerGraph, cluster: Cluster) -> ParallelPlan:
    """Read a JSON plan back against ``model`` and ``cluster``."""
    data = json.loads(Path(path).read_text())
    return plan_from_dict(data, model, cluster)

"""Plan / problem (de)serialization to plain dictionaries / JSON.

A serialized plan is portable across processes: it references devices by
global id and the model by registry name (or carries layer counts for
custom graphs), so a plan searched once can be cached, shipped to a
runner, or inspected by the CLI.

Beyond plans, this module round-trips every *input* of a planner problem —
:class:`~repro.core.planner.PlannerConfig`, :class:`~repro.models.graph.LayerGraph`,
:class:`~repro.cluster.device.GPUSpec`, and :class:`~repro.cluster.topology.Cluster`
— so a complete plan request can cross a process or HTTP boundary
(:mod:`repro.serve`) and be rebuilt bit-identically on the other side.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any

from repro.cluster.device import GPUSpec
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec
from repro.core.plan import ParallelPlan, Stage
from repro.models.graph import LayerGraph, LayerSpec


def plan_to_dict(plan: ParallelPlan) -> dict[str, Any]:
    """Serialize a plan into a JSON-safe dictionary."""
    return {
        "model": plan.model.name,
        "num_layers": plan.model.num_layers,
        "global_batch_size": plan.global_batch_size,
        "num_micro_batches": plan.num_micro_batches,
        "stages": [
            {
                "layer_lo": s.layer_lo,
                "layer_hi": s.layer_hi,
                "devices": [d.global_id for d in s.devices],
            }
            for s in plan.stages
        ],
        "meta": dict(plan.meta),
    }


def plan_from_dict(
    data: dict[str, Any], model: LayerGraph, cluster: Cluster
) -> ParallelPlan:
    """Rebuild a plan against a concrete model and cluster.

    Raises
    ------
    ValueError
        If the payload does not match the model's depth or references
        devices the cluster does not have.
    """
    if data["num_layers"] != model.num_layers:
        raise ValueError(
            f"plan was made for a {data['num_layers']}-layer model but "
            f"{model.name} has {model.num_layers}"
        )
    max_id = cluster.num_devices - 1
    stages = []
    for s in data["stages"]:
        for gid in s["devices"]:
            if not (0 <= gid <= max_id):
                raise ValueError(f"plan references device {gid}, cluster has 0..{max_id}")
        stages.append(
            Stage(
                s["layer_lo"],
                s["layer_hi"],
                tuple(cluster.device(g) for g in s["devices"]),
            )
        )
    plan = ParallelPlan(
        model=model,
        stages=stages,
        global_batch_size=data["global_batch_size"],
        num_micro_batches=data["num_micro_batches"],
        meta=dict(data.get("meta", {})),
    )
    return plan


def save_plan(plan: ParallelPlan, path: str | Path) -> Path:
    """Write a plan as JSON."""
    path = Path(path)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2) + "\n")
    return path


def load_plan(path: str | Path, model: LayerGraph, cluster: Cluster) -> ParallelPlan:
    """Read a JSON plan back against ``model`` and ``cluster``."""
    data = json.loads(Path(path).read_text())
    return plan_from_dict(data, model, cluster)


# --------------------------------------------------------------------------- #
# Planner configuration
# --------------------------------------------------------------------------- #
def planner_config_to_dict(config) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.planner.PlannerConfig` field-by-field."""
    out: dict[str, Any] = {}
    for f in dataclass_fields(config):
        v = getattr(config, f.name)
        out[f.name] = list(v) if isinstance(v, tuple) else v
    return out


def planner_config_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.core.planner.PlannerConfig` from a dict.

    Only known fields are accepted — an unknown key raises ``ValueError``
    rather than being silently dropped, so a client typo cannot produce a
    plan searched under different knobs than requested.  Omitted fields
    take their defaults; JSON lists are coerced back to tuples where the
    dataclass default is a tuple (``policies``).
    """
    from repro.core.planner import PlannerConfig

    valid = {f.name: f for f in dataclass_fields(PlannerConfig)}
    unknown = sorted(set(data) - set(valid))
    if unknown:
        raise ValueError(
            f"unknown PlannerConfig field(s) {unknown}; "
            f"valid fields: {sorted(valid)}"
        )
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        if isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return PlannerConfig(**kwargs)


# --------------------------------------------------------------------------- #
# Model graphs and GPU specs
# --------------------------------------------------------------------------- #
def graph_to_dict(graph: LayerGraph) -> dict[str, Any]:
    """Serialize a :class:`LayerGraph` (inline custom-model requests)."""
    return {
        "name": graph.name,
        "profile_batch": graph.profile_batch,
        "optimizer": graph.optimizer,
        "fixed_overhead_fwd": graph.fixed_overhead_fwd,
        "layers": [
            {
                "name": l.name,
                "flops_fwd": l.flops_fwd,
                "params": l.params,
                "activation_out_bytes": l.activation_out_bytes,
                "stored_bytes": l.stored_bytes,
                "bwd_flops_ratio": l.bwd_flops_ratio,
            }
            for l in graph.layers
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> LayerGraph:
    """Rebuild a :class:`LayerGraph`; malformed payloads raise ``ValueError``."""
    try:
        layers = [LayerSpec(**l) for l in data["layers"]]
        return LayerGraph(
            name=str(data["name"]),
            layers=layers,
            profile_batch=int(data["profile_batch"]),
            optimizer=data.get("optimizer", "adam"),
            fixed_overhead_fwd=float(data.get("fixed_overhead_fwd", 20e-6)),
        )
    except (KeyError, TypeError) as e:
        raise ValueError(f"malformed layer-graph payload: {e}") from e


def gpu_spec_to_dict(spec: GPUSpec) -> dict[str, Any]:
    return {"name": spec.name, "memory_bytes": spec.memory_bytes, "flops": spec.flops}


def gpu_spec_from_dict(data: dict[str, Any]) -> GPUSpec:
    try:
        return GPUSpec(
            name=str(data["name"]),
            memory_bytes=int(data["memory_bytes"]),
            flops=float(data["flops"]),
        )
    except (KeyError, TypeError) as e:
        raise ValueError(f"malformed GPU-spec payload: {e}") from e


# --------------------------------------------------------------------------- #
# Clusters
# --------------------------------------------------------------------------- #
def cluster_to_dict(cluster: Cluster) -> dict[str, Any]:
    """Serialize a :class:`Cluster` topology (per-machine shape + links)."""
    return {
        "name": cluster.name,
        "inter": {
            "name": cluster.inter.name,
            "bandwidth": cluster.inter.bandwidth,
            "latency": cluster.inter.latency,
        },
        "machines": [
            {
                "num_gpus": m.num_gpus,
                "intra_bw": m.intra_bw,
                "intra_lat": m.intra_lat,
                "gpu_spec": gpu_spec_to_dict(m.gpu_spec),
            }
            for m in cluster.machines
        ],
    }


def cluster_from_dict(data: dict[str, Any]) -> Cluster:
    """Rebuild a :class:`Cluster`; malformed payloads raise ``ValueError``."""
    try:
        inter = LinkSpec(
            name=str(data["inter"]["name"]),
            bandwidth=float(data["inter"]["bandwidth"]),
            latency=float(data["inter"]["latency"]),
        )
        machines = [
            Machine(
                machine_id=i,
                num_gpus=int(m["num_gpus"]),
                intra_bw=float(m["intra_bw"]),
                intra_lat=float(m["intra_lat"]),
                gpu_spec=gpu_spec_from_dict(m["gpu_spec"]),
            )
            for i, m in enumerate(data["machines"])
        ]
        return Cluster(machines, inter, name=str(data.get("name", "custom")))
    except (KeyError, TypeError) as e:
        raise ValueError(f"malformed cluster payload: {e}") from e

"""One module per table/figure of the paper's evaluation (§VI).

Each module exposes a ``run()`` (or similarly named) function returning
structured rows plus a ``format_*`` helper rendering the paper-style table.
The ``benchmarks/`` directory drives these under pytest-benchmark; the
``examples/`` scripts reuse them interactively.
"""

from repro.experiments.reporting import format_table, write_result

__all__ = ["format_table", "write_result"]

"""Interconnect-sensitivity sweep: where does DP stop winning?

The paper's Config B → C contrast (25 → 10 Gbps) shows plans flipping from
DP toward pipelines as the network slows.  This experiment generalizes it:
sweep the inter-server bandwidth over 1–100 Gbps on a flat 16-server
cluster and record, per model, the planner's chosen family and the
hybrid-vs-DP speedup — mapping each model's crossover point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec
from repro.cluster.configs import GBPS, NO_INTRA
from repro.core import Planner
from repro.experiments.common import profile
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES
from repro.runtime.dataparallel import dp_iteration_time


def flat_cluster(gbps: float, num_machines: int = 16) -> Cluster:
    """A Config-B/C-style flat cluster at an arbitrary Ethernet speed."""
    link = LinkSpec(f"{gbps:g}GbE", bandwidth=gbps * GBPS * 0.9, latency=300e-6)
    machines = [
        Machine(machine_id=i, num_gpus=1, intra_bw=NO_INTRA.bandwidth,
                intra_lat=NO_INTRA.latency)
        for i in range(num_machines)
    ]
    return Cluster(machines, inter=link, name=f"flat-{gbps:g}G")


@dataclass(frozen=True)
class SweepPoint:
    model: str
    gbps: float
    plan: str
    kind: str
    hybrid_latency: float
    dp_latency: float | None

    @property
    def hybrid_advantage(self) -> float | None:
        if self.dp_latency is None:
            return None
        return self.dp_latency / self.hybrid_latency


DEFAULT_BANDWIDTHS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0)


def run(
    models: tuple[str, ...] = ("resnet50", "vgg19", "gnmt16", "bert48"),
    bandwidths: tuple[float, ...] = DEFAULT_BANDWIDTHS,
) -> list[SweepPoint]:
    points = []
    for name in models:
        prof = profile(name)
        gbs = PAPER_FIGURES[name].global_batch_size
        for gbps in bandwidths:
            clu = flat_cluster(gbps)
            result = Planner(prof, clu, gbs).search()
            try:
                dp = dp_iteration_time(prof, clu, clu.devices, gbs, overlap=True)
                dp_latency = dp.iteration_time
            except ValueError:
                dp_latency = None
            points.append(
                SweepPoint(
                    model=prof.graph.name,
                    gbps=gbps,
                    plan=result.plan.notation,
                    kind=result.plan.kind.value,
                    hybrid_latency=result.estimate.latency,
                    dp_latency=dp_latency,
                )
            )
    return points


def crossover_bandwidth(points: list[SweepPoint], model: str) -> float | None:
    """Lowest bandwidth at which the planner still picks pure DP."""
    dp_points = [p.gbps for p in points if p.model == model and p.kind == "DP"]
    return min(dp_points) if dp_points else None


def format_results(points: list[SweepPoint]) -> str:
    table = format_table(
        ["Model", "Gbps", "plan", "hybrid L", "DP+ovl L", "hybrid adv"],
        [
            [
                p.model,
                f"{p.gbps:g}",
                p.plan if len(p.plan) <= 10 else p.kind,
                f"{p.hybrid_latency * 1e3:.0f}ms",
                f"{p.dp_latency * 1e3:.0f}ms" if p.dp_latency else "-",
                f"{p.hybrid_advantage:.2f}x" if p.hybrid_advantage else "-",
            ]
            for p in points
        ],
        title="Interconnect sweep: planner choice vs inter-server bandwidth "
        "(flat 16x1 cluster)",
    )
    notes = []
    for model in sorted({p.model for p in points}):
        cross = crossover_bandwidth(points, model)
        notes.append(
            f"{model}: DP optimal down to {cross:g} Gbps"
            if cross is not None
            else f"{model}: pipeline optimal at every tested bandwidth"
        )
    return table + "\n" + "\n".join(notes)

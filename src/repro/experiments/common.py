"""Shared plumbing for experiment modules: cached profiles and speedup arms."""

from __future__ import annotations

from functools import lru_cache

from repro.cluster import Cluster, config_by_name
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plancache import default_cache
from repro.core.planner import PlanResult, plan_best, plan_paper_family
from repro.core.profiler import ModelProfile
from repro.models import PAPER_FIGURES, get_model
from repro.runtime import execute_plan
from repro.runtime.dataparallel import dp_iteration_time, single_device_time


@lru_cache(maxsize=None)
def profile(model_name: str) -> ModelProfile:
    return profile_model(get_model(model_name))


@lru_cache(maxsize=None)
def cluster(config_letter: str, num_devices: int = 16) -> Cluster:
    return config_by_name(config_letter, num_devices)


@lru_cache(maxsize=None)
def best_plan(model_name: str, config_letter: str, gbs: int | None = None,
              num_devices: int = 16) -> PlanResult:
    """Unrestricted planner search (lru-cached per argument tuple, plus the
    process-wide content-addressed plan cache for cross-experiment reuse —
    fork-based sweep workers inherit both tiers warm)."""
    gbs = gbs or PAPER_FIGURES[model_name].global_batch_size
    return plan_best(
        profile(model_name),
        cluster(config_letter, num_devices),
        gbs,
        cache=default_cache(),
    )


@lru_cache(maxsize=None)
def paper_family_plan(model_name: str, config_letter: str, gbs: int | None = None,
                      num_devices: int = 16) -> PlanResult:
    """Search restricted to the paper's plan families (DP / P:Q / straight)."""
    gbs = gbs or PAPER_FIGURES[model_name].global_batch_size
    return plan_paper_family(
        profile(model_name), cluster(config_letter, num_devices), gbs
    )


_SIM_CACHE: dict = {}


def best_simulated_plan(model_name: str, clu: Cluster, gbs: int):
    """Plan candidates from the planner, winner picked by the *simulator*.

    The analytical objective occasionally mis-ranks plans whose boundaries
    share NICs; like the real system (plan offline, measure online), we
    simulate the unrestricted winner and the paper-family winner and keep
    the faster one.  Returns ``(PlanResult, ExecutionResult)``.
    """
    key = (model_name, clu.name, clu.num_devices, gbs)
    if key in _SIM_CACHE:
        return _SIM_CACHE[key]
    prof = profile(model_name)
    planner = Planner(prof, clu, gbs)
    candidates = [plan_best(prof, clu, gbs, cache=default_cache())]
    fam = plan_paper_family(prof, clu, gbs)
    if fam.plan.notation != candidates[0].plan.notation:
        candidates.append(fam)
    try:
        two_stage = plan_best(
            prof, clu, gbs, PlannerConfig(min_stages=2, max_stages=2),
            cache=default_cache(),
        )
        if all(two_stage.plan.notation != c.plan.notation for c in candidates):
            candidates.append(two_stage)
    except RuntimeError:
        pass
    straight = planner.straight_plan()
    if straight is not None and planner.plan_fits_memory(straight):
        est = __import__("repro.core.latency", fromlist=["evaluate_plan"]).evaluate_plan(
            prof, clu, straight
        )
        candidates.append(
            PlanResult(plan=straight, estimate=est, states_explored=0,
                       plans_evaluated=0, infeasible_plans=0)
        )
    best = None
    seen: set[str] = set()
    for cand in candidates:
        sig = f"{cand.plan.notation}|{cand.plan.split_notation}"
        if sig in seen:
            continue
        seen.add(sig)
        ex = execute_plan(prof, clu, cand.plan, warmup_policy="PB")
        if best is None or ex.iteration_time < best[1].iteration_time:
            best = (cand, ex)
    _SIM_CACHE[key] = best
    return best


def speedup_arms(model_name: str, clu: Cluster, gbs: int) -> dict[str, float]:
    """The three arms of Fig. 12/14: DP-no-overlap, DP-overlap, best hybrid.

    Speedup follows the paper's §VI-C definition: single-device sequential
    time over parallel time at the same global batch size.  Hybrid plans
    are measured on the discrete-event simulator; DP arms use the
    analytical DP model (with/without backward-AllReduce overlap).
    """
    prof = profile(model_name)
    t_single = single_device_time(prof, gbs)

    arms: dict[str, float] = {}
    for name, overlap in (("dp_no_overlap", False), ("dp_overlap", True)):
        try:
            res = dp_iteration_time(prof, clu, clu.devices, gbs, overlap=overlap)
            # DP is infeasible when one device cannot hold the whole model.
            from repro.core.plan import single_stage_plan
            from repro.core.planner import Planner as _P

            planner = _P(prof, clu, gbs)
            m = max(1, gbs // (prof.graph.profile_batch * clu.num_devices))
            while gbs % m:
                m -= 1
            dp_plan = single_stage_plan(prof.graph, clu.devices, gbs, m)
            if not planner.plan_fits_memory(dp_plan):
                arms[name] = float("nan")
            else:
                arms[name] = t_single / res.iteration_time
        except ValueError:
            arms[name] = float("nan")

    plan_result, execution = best_simulated_plan(model_name, clu, gbs)
    arms["best_hybrid"] = t_single / execution.iteration_time
    arms["_hybrid_notation"] = plan_result.plan.notation  # type: ignore[assignment]
    return arms

"""Convergence-equivalence experiment (paper §VI-A claim, made executable).

Trains three instances of the same model from identical initialization:

1. single-device full-batch (the reference);
2. DAPPLE pipeline — 3 stages, one 2-way replicated, early-backward
   schedule, gradient accumulation + AllReduce;
3. synchronous data parallelism — 4 workers with local accumulation.

All three must produce *identical* loss trajectories and parameters: the
paper's "equivalent gradients … convergence is safely preserved".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.training import (
    SGD,
    DataParallelTrainer,
    Linear,
    PipelineTrainer,
    Sequential,
    Tanh,
    Tensor,
    mse_loss,
    sequential_step_gradients,
)


@dataclass
class ConvergenceResult:
    steps: int
    losses_sequential: list[float]
    losses_pipeline: list[float]
    losses_dp: list[float]
    max_param_deviation: float


def _model(seed: int) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(16, 48, rng), Tanh(), Linear(48, 48, rng), Tanh(), Linear(48, 4, rng)
    )


def _loss(pred, target, normalizer):
    return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)


def run(steps: int = 25, seed: int = 0) -> ConvergenceResult:
    rng = np.random.default_rng(seed + 100)
    x = rng.standard_normal((32, 16))
    w_true = rng.standard_normal((16, 4))
    y = np.tanh(x @ w_true) + 0.05 * rng.standard_normal((32, 4))

    seq_model = _model(seed)
    pipe_model = _model(seed)
    dp_model = _model(seed)
    seq_opt = SGD(seq_model.parameters(), lr=0.1, momentum=0.9)
    pipe_opt = SGD(pipe_model.parameters(), lr=0.1, momentum=0.9)
    dp_opt = SGD(dp_model.parameters(), lr=0.1, momentum=0.9)

    pipe = PipelineTrainer(pipe_model, [1, 3], num_micro_batches=4, replicas=[1, 2, 1])
    dp = DataParallelTrainer(dp_model, num_workers=4, micro_batches_per_worker=2)

    ls, lp, ld = [], [], []
    for _ in range(steps):
        loss, grads = sequential_step_gradients(seq_model, x, y, _loss)
        seq_opt.step(grads)
        ls.append(loss)
        lp.append(pipe.train_step(x, y, _loss, pipe_opt))
        ld.append(dp.train_step(x, y, _loss, dp_opt))

    deviation = 0.0
    for a, b, c in zip(
        seq_model.parameters(), pipe_model.parameters(), dp_model.parameters()
    ):
        deviation = max(
            deviation,
            float(np.abs(a.data - b.data).max()),
            float(np.abs(a.data - c.data).max()),
        )
    return ConvergenceResult(
        steps=steps,
        losses_sequential=ls,
        losses_pipeline=lp,
        losses_dp=ld,
        max_param_deviation=deviation,
    )


def format_results(r: ConvergenceResult) -> str:
    lines = [
        "Convergence equivalence: sequential vs DAPPLE pipeline vs sync DP",
        f"{'step':>4s} {'sequential':>12s} {'pipeline':>12s} {'data-parallel':>14s}",
    ]
    for i in range(0, r.steps, max(1, r.steps // 8)):
        lines.append(
            f"{i:>4d} {r.losses_sequential[i]:>12.8f} "
            f"{r.losses_pipeline[i]:>12.8f} {r.losses_dp[i]:>14.8f}"
        )
    lines.append(
        f"max parameter deviation after {r.steps} steps: "
        f"{r.max_param_deviation:.2e} (float64 epsilon scale)"
    )
    return "\n".join(lines)

"""Fig. 12 reproduction: training speedup vs global batch size.

For five models × three hardware configs, three arms:

* DP No Overlap — gradient accumulation, exposed AllReduce;
* DP + Normal Overlap — AllReduce overlapped with the last backward;
* Best Hybrid — the DAPPLE planner's plan executed on the simulator.

Speedup is relative to one device processing the same global batch
sequentially (§VI-C).  Expected shapes: hybrid ≥ DP everywhere it matters,
with the gap widening from config A to C (slower interconnects), up to
~2.3× over the best DP for GNMT-16 on config C; DP is NaN for
AmoebaNet-36 (does not fit one device).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.common import cluster, speedup_arms
from repro.experiments.reporting import format_table
from repro.perf import sweep

#: Fig. 12 models and their GBS sweeps.
FIG12_SWEEPS: dict[str, list[int]] = {
    "vgg19": [1024, 2048, 4096],
    "gnmt16": [1024, 2048, 4096],
    "bert48": [64, 128, 256],
    "xlnet36": [64, 128, 256],
    "amoebanet36": [256, 512, 1024],
}

CONFIGS = ["A", "B", "C"]


@dataclass(frozen=True)
class Fig12Point:
    model: str
    config: str
    gbs: int
    dp_no_overlap: float
    dp_overlap: float
    best_hybrid: float
    hybrid_plan: str


def point(model: str, config: str, gbs: int) -> Fig12Point:
    """One Fig. 12 grid point — module-level so ``sweep`` can fork it."""
    arms = speedup_arms(model, cluster(config), gbs)
    return Fig12Point(
        model=model,
        config=config,
        gbs=gbs,
        dp_no_overlap=arms["dp_no_overlap"],
        dp_overlap=arms["dp_overlap"],
        best_hybrid=arms["best_hybrid"],
        hybrid_plan=str(arms["_hybrid_notation"]),
    )


def run(
    models: list[str] | None = None,
    configs: list[str] | None = None,
    sweeps: dict[str, list[int]] | None = None,
    jobs: int | None = 1,
) -> list[Fig12Point]:
    sweeps = sweeps or FIG12_SWEEPS
    grid = [
        (name, cfg, gbs)
        for name in (models or list(sweeps))
        for cfg in (configs or CONFIGS)
        for gbs in sweeps[name]
    ]
    return sweep(point, grid, jobs=jobs)


def format_results(points: list[Fig12Point]) -> str:
    def fmt(x):
        return "OOM" if (isinstance(x, float) and math.isnan(x)) else f"{x:.1f}"

    table = format_table(
        ["Model", "cfg", "GBS", "DP no-ovl", "DP ovl", "Best hybrid", "plan",
         "hybrid/bestDP"],
        [
            [
                p.model,
                p.config,
                p.gbs,
                fmt(p.dp_no_overlap),
                fmt(p.dp_overlap),
                fmt(p.best_hybrid),
                p.hybrid_plan,
                fmt(
                    p.best_hybrid
                    / max(
                        x
                        for x in (p.dp_no_overlap, p.dp_overlap)
                        if not math.isnan(x)
                    )
                )
                if not (math.isnan(p.dp_no_overlap) and math.isnan(p.dp_overlap))
                else "inf",
            ]
            for p in points
        ],
        title="Fig. 12: training speedup vs GBS (16 devices; speedup vs 1 device)",
    )
    ratios = [
        p.best_hybrid / max(x for x in (p.dp_no_overlap, p.dp_overlap) if not math.isnan(x))
        for p in points
        if not (math.isnan(p.dp_no_overlap) and math.isnan(p.dp_overlap))
    ]
    import numpy as np

    return table + (
        f"\nhybrid vs best-DP: mean {np.mean(ratios):.2f}x, max {np.max(ratios):.2f}x"
        if ratios
        else ""
    )

"""Fig. 13 reproduction: DAPPLE planner vs PipeDream planner, normalized.

Fig. 13 charts the same experiment as Table VII (§VI-F) but normalizes each
strategy's throughput to the *PipeDream plan executed on the DAPPLE
runtime*, making the planner advantage directly readable.  The grid points
are shared with :mod:`repro.experiments.table7` (same rows, same numbers);
this driver fans them through :func:`repro.perf.sweep` and renders the
normalized view.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table
from repro.experiments.table7 import TABLE7_MODELS, Table7Row, row
from repro.perf import sweep


def run(
    machine_counts: tuple[int, ...] = (2, 4), jobs: int | None = 1
) -> list[Table7Row]:
    grid = [
        (name, gbs, n_machines)
        for name, gbs in TABLE7_MODELS.items()
        for n_machines in machine_counts
    ]
    return sweep(row, grid, jobs=jobs)


def format_results(rows: list[Table7Row]) -> str:
    return format_table(
        ["Model", "cluster", "DAPPLE plan", "PipeDream plan",
         "PipeDream (norm)", "DAPPLE (norm)"],
        [
            [
                r.model,
                f"{r.machines}x8",
                f"{r.dapple_plan} ({r.dapple_split})",
                r.pipedream_plan,
                "1.00",
                f"{r.advantage:.2f}",
            ]
            for r in rows
        ],
        title="Fig. 13: planner comparison, throughput normalized to the "
        "PipeDream plan under the DAPPLE runtime",
    )

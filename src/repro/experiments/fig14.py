"""Fig. 14 reproduction: strong scaling on Config-A, 2 → 16 GPUs, fixed GBS.

Expected shapes (paper §VI-G): DP scales well up to 8 GPUs (one NVLink
machine) then kinks when gradient sync starts crossing the 25 GbE link,
while DAPPLE's hybrid plans keep scaling because only small activations
cross machines.  AmoebaNet's DP arms are absent (model does not fit one
device).  For GNMT-16 the figure also charts the straight pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.configs import NVLINK, ETHERNET_25G
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster
from repro.core import Planner
from repro.experiments.common import best_simulated_plan, profile
from repro.experiments.reporting import format_table
from repro.perf import sweep
from repro.runtime import execute_plan
from repro.runtime.dataparallel import dp_iteration_time, single_device_time

#: Fig. 14 models and their fixed GBS.
FIG14_MODELS = {"gnmt16": 2048, "bert48": 128, "xlnet36": 128, "amoebanet36": 256}


def config_a_scaled(num_gpus: int) -> Cluster:
    """Config-A-style cluster with ``num_gpus`` total V100s.

    Machines hold up to 8 NVLink-connected GPUs; extra GPUs spill into a
    second machine across 25 GbE — exactly how the paper's strong-scaling
    sweep crosses the machine boundary at 8 GPUs.
    """
    if num_gpus < 1:
        raise ValueError(f"need >=1 GPU, got {num_gpus}")
    sizes = []
    left = num_gpus
    while left > 0:
        take = min(8, left)
        sizes.append(take)
        left -= take
    machines = [
        Machine(machine_id=i, num_gpus=s, intra_bw=NVLINK.bandwidth,
                intra_lat=NVLINK.latency)
        for i, s in enumerate(sizes)
    ]
    return Cluster(machines, inter=ETHERNET_25G, name=f"A-scaled({num_gpus})")


@dataclass(frozen=True)
class Fig14Point:
    model: str
    num_gpus: int
    dp_no_overlap: float
    dp_overlap: float
    best_hybrid: float
    straight: float | None
    hybrid_plan: str


def point(model: str, gbs: int, num_gpus: int) -> Fig14Point:
    """One Fig. 14 grid point — module-level so ``sweep`` can fork it."""
    prof = profile(model)
    t_single = single_device_time(prof, gbs)
    clu = config_a_scaled(num_gpus)
    planner = Planner(prof, clu, gbs)

    def dp_speedup(overlap: bool) -> float:
        from repro.core.plan import single_stage_plan

        m = max(1, gbs // (prof.graph.profile_batch * num_gpus))
        while gbs % m:
            m -= 1
        plan = single_stage_plan(prof.graph, clu.devices, gbs, m)
        if not planner.plan_fits_memory(plan):
            return float("nan")
        res = dp_iteration_time(prof, clu, clu.devices, gbs, overlap=overlap)
        return t_single / res.iteration_time

    best, ex = best_simulated_plan(model, clu, gbs)

    straight_speedup = None
    sp = planner.straight_plan()
    if sp is not None and planner.plan_fits_memory(sp):
        straight_speedup = t_single / execute_plan(prof, clu, sp).iteration_time

    return Fig14Point(
        model=model,
        num_gpus=num_gpus,
        dp_no_overlap=dp_speedup(False),
        dp_overlap=dp_speedup(True),
        best_hybrid=t_single / ex.iteration_time,
        straight=straight_speedup,
        hybrid_plan=best.plan.notation,
    )


def run(
    models: dict[str, int] | None = None,
    gpu_counts: tuple[int, ...] = (2, 4, 8, 12, 16),
    jobs: int | None = 1,
) -> list[Fig14Point]:
    grid = [
        (name, gbs, n)
        for name, gbs in (models or FIG14_MODELS).items()
        for n in gpu_counts
    ]
    return sweep(point, grid, jobs=jobs)


def format_results(points: list[Fig14Point]) -> str:
    def fmt(x):
        if x is None:
            return "-"
        return "OOM" if math.isnan(x) else f"{x:.1f}"

    return format_table(
        ["Model", "#GPUs", "DP no-ovl", "DP ovl", "Best hybrid", "Straight", "plan"],
        [
            [p.model, p.num_gpus, fmt(p.dp_no_overlap), fmt(p.dp_overlap),
             fmt(p.best_hybrid), fmt(p.straight), p.hybrid_plan]
            for p in points
        ],
        title="Fig. 14: strong scaling on Config-A (fixed GBS)",
    )

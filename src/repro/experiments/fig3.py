"""Fig. 3 reproduction: GPipe vs DAPPLE schedules and memory over time.

Recreates the paper's 3-stage, 7-micro-batch example: the Gantt charts show
GPipe running all forwards before any backward while DAPPLE interleaves
early backwards; the memory curves show GPipe's peak growing to M resident
micro-batches while DAPPLE's plateaus at the warm-up count and then
oscillates as each backward frees its forward's activations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import ExecutionResult, execute_plan
from repro.viz import render_gantt, render_memory_curve


@dataclass
class Fig3Result:
    gpipe: ExecutionResult
    dapple: ExecutionResult

    @property
    def memory_saving(self) -> float:
        """DAPPLE peak as a fraction of GPipe peak on the first stage."""
        dev = "gpu:0"
        return self.dapple.memory.peak(dev) / self.gpipe.memory.peak(dev)


def run(num_stages: int = 3, num_micro_batches: int = 7) -> Fig3Result:
    # Uniform toy model: one layer per stage, visible activation footprint.
    # Small boundary activations (comm « compute) so both schedules see the
    # same bubbles, as the paper asserts; large *stored* activations so the
    # memory curves are the interesting part.
    model = uniform_model(
        "fig3-toy",
        num_stages,
        flops_per_layer=90e9,
        params_per_layer=1_000_000,
        activation_bytes=4 * 2**20,
        stored_bytes=256 * 2**20,
        profile_batch=1,
    )
    clu = config_b(num_stages)
    prof = profile_model(model)
    stages = [Stage(i, i + 1, (clu.device(i),)) for i in range(num_stages)]
    plan = ParallelPlan(model, stages, num_micro_batches, num_micro_batches)
    # PB warm-up gives DAPPLE the exact same bubble time as GPipe here
    # (backward = 2x forward needs the deeper warm-up); PA would trade ~5 %
    # time for an even lower plateau.
    return Fig3Result(
        gpipe=execute_plan(prof, clu, plan, schedule="gpipe"),
        dapple=execute_plan(prof, clu, plan, schedule="dapple", warmup_policy="PB"),
    )


def format_results(res: Fig3Result) -> str:
    parts = [
        "Fig. 3: GPipe (a) vs DAPPLE (b) schedules, and (c) memory on GPU0",
        "",
        "(a) GPipe schedule:",
        render_gantt(res.gpipe.trace, width=96),
        "",
        "(b) DAPPLE schedule (early backward):",
        render_gantt(res.dapple.trace, width=96),
        "",
        "(c) GPU0 memory over time:",
        render_memory_curve(res.gpipe.memory, "gpu:0", label="GPipe ", height=8),
        render_memory_curve(res.dapple.memory, "gpu:0", label="DAPPLE", height=8),
        "",
        f"peak memory GPU0: GPipe {res.gpipe.memory.peak('gpu:0') / 2**30:.2f} GiB, "
        f"DAPPLE {res.dapple.memory.peak('gpu:0') / 2**30:.2f} GiB "
        f"({res.memory_saving:.2f}x)",
        f"iteration time: GPipe {res.gpipe.iteration_time * 1e3:.1f} ms, "
        f"DAPPLE {res.dapple.iteration_time * 1e3:.1f} ms "
        "(same bubbles, same makespan - paper §III-B)",
    ]
    return "\n".join(parts)

"""Fig. 4 reproduction: warm-up / steady / ending phases of a DAPPLE pipeline.

The paper's Fig. 4 decomposes a pipelined training iteration into the three
phases of eq. 1 — warm-up ``Tw`` (until the pivot stage's first
micro-batch), steady ``Ts`` (the pivot's (M−1)·(F+B) heartbeat), and ending
``Te`` (drain + AllReduce).  We execute a 4-stage GNMT pipeline with
explicit network-transmission stages, measure the phase boundaries on the
simulated trace, and compare them with the analytical model's Tw/Ts/Te.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import gpipe_plan
from repro.core.latency import evaluate_plan
from repro.experiments.common import cluster, profile
from repro.runtime import execute_plan
from repro.viz import render_gantt


@dataclass
class Fig4Result:
    analytic_warmup: float
    analytic_steady: float
    analytic_ending: float
    measured_warmup: float
    measured_steady: float
    measured_ending: float
    pivot_stage: int
    gantt: str

    @property
    def analytic_total(self) -> float:
        return self.analytic_warmup + self.analytic_steady + self.analytic_ending

    @property
    def measured_total(self) -> float:
        return self.measured_warmup + self.measured_steady + self.measured_ending


def run(model_name: str = "gnmt16", num_stages: int = 4, gbs: int = 512) -> Fig4Result:
    prof = profile(model_name)
    clu = cluster("B", num_stages)
    plan = gpipe_plan(prof, clu, gbs, num_stages=num_stages)
    est = evaluate_plan(prof, clu, plan)
    res = execute_plan(prof, clu, plan, warmup_policy="PB")

    # Map the analytic pivot (extended-stage index) back to a plan stage.
    pivot_comp = est.costs.comp_index[est.pivot]
    if pivot_comp is None:  # pivot is a comm stage: attribute to downstream
        pivot_comp = min(
            (c for c in est.costs.comp_index[est.pivot :] if c is not None),
            default=plan.num_stages - 1,
        )

    m = plan.num_micro_batches
    pivot_events = [
        e
        for e in res.trace.events
        if e.tags.get("stage") == pivot_comp and e.tags.get("kind") in ("F", "B")
    ]
    first_f = min(e.start for e in pivot_events if e.tags["kind"] == "F")
    last_b = max(e.end for e in pivot_events if e.tags["kind"] == "B")
    measured_warmup = first_f
    measured_steady = last_b - first_f
    measured_ending = res.iteration_time - last_b

    return Fig4Result(
        analytic_warmup=est.warmup,
        analytic_steady=est.steady + (est.costs.fwd[est.pivot] + est.costs.bwd[est.pivot]),
        analytic_ending=est.ending
        - (est.costs.fwd[est.pivot] + est.costs.bwd[est.pivot]),
        measured_warmup=measured_warmup,
        measured_steady=measured_steady,
        measured_ending=measured_ending,
        pivot_stage=pivot_comp,
        gantt=render_gantt(res.trace, width=100),
    )


def format_results(r: Fig4Result) -> str:
    def ms(x):
        return f"{x * 1e3:8.1f} ms"

    return "\n".join(
        [
            "Fig. 4: pipeline phases (4-stage GNMT, network stages included)",
            f"pivot stage Q = {r.pivot_stage}",
            f"{'phase':<10s} {'analytic (eq. 1)':>18s} {'measured (sim)':>16s}",
            f"{'warm-up':<10s} {ms(r.analytic_warmup):>18s} {ms(r.measured_warmup):>16s}",
            f"{'steady':<10s} {ms(r.analytic_steady):>18s} {ms(r.measured_steady):>16s}",
            f"{'ending':<10s} {ms(r.analytic_ending):>18s} {ms(r.measured_ending):>16s}",
            f"{'total L':<10s} {ms(r.analytic_total):>18s} {ms(r.measured_total):>16s}",
            "",
            r.gantt,
        ]
    )

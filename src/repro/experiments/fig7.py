"""Fig. 7 reproduction: slightly uneven partitions beat perfectly even ones.

The paper's minimum example: a 2-GPU synchronous pipeline where shifting
the split one layer off the balance point reduces pipeline latency — the
even split leaves the second stage waiting on the first stage's forward,
while a front-heavy first stage lets backwards start earlier.

We sweep every split of a uniform model on 2 devices and report the
simulated latency; the winner should not be the even split when the
micro-batch count is small (where warm-up/drain dominates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan


@dataclass(frozen=True)
class Fig7Row:
    split: int
    layers_stage0: int
    layers_stage1: int
    latency: float


def run(num_layers: int = 8, num_micro_batches: int = 2) -> list[Fig7Row]:
    # Two micro-batches, like the paper's Fig. 7: with so little steady
    # phase, warm-up/drain dominates and a front-heavy split fills the
    # first GPU's wait for the returning backward.
    model = uniform_model(
        "fig7-toy",
        num_layers,
        flops_per_layer=9e9,
        params_per_layer=100_000,
        activation_bytes=1 * 2**20,
        profile_batch=1,
    )
    clu = config_b(2)
    prof = profile_model(model)
    rows = []
    for split in range(1, num_layers):
        stages = [
            Stage(0, split, (clu.device(0),)),
            Stage(split, num_layers, (clu.device(1),)),
        ]
        plan = ParallelPlan(model, stages, num_micro_batches, num_micro_batches)
        res = execute_plan(prof, clu, plan)
        rows.append(Fig7Row(split, split, num_layers - split, res.iteration_time))
    return rows


def best_split(rows: list[Fig7Row]) -> Fig7Row:
    return min(rows, key=lambda r: r.latency)


def format_results(rows: list[Fig7Row]) -> str:
    from repro.experiments.reporting import format_table

    even = min(rows, key=lambda r: abs(r.layers_stage0 - r.layers_stage1))
    best = best_split(rows)
    table = format_table(
        ["split", "stage0:stage1", "latency", ""],
        [
            [
                r.split,
                f"{r.layers_stage0}:{r.layers_stage1}",
                f"{r.latency * 1e3:.2f}ms",
                ("<- best" if r is best else "") + (" (even)" if r is even else ""),
            ]
            for r in rows
        ],
        title="Fig. 7: uneven pipeline partitioning (2 GPUs, uniform layers)",
    )
    gain = even.latency / best.latency
    return table + f"\nuneven best beats even split by {100 * (gain - 1):.1f}%"

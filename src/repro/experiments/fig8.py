"""Fig. 8 reproduction: how to replicate a stage — split vs round-robin.

The paper's example: a 2-stage pipeline whose first stage costs twice the
second per micro-batch, so stage 0 is replicated on two devices.  Two ways
to feed the replicas:

* **(a) split** — each micro-batch is sliced in half across the replicas
  (DAPPLE's choice; costs a split/concat but keeps both replicas busy);
* **(b) round-robin** — alternate whole micro-batches between replicas
  (PipeDream's choice; no reshaping, but the pipeline's downstream stage
  sees bursty arrivals and the tail effect wastes the last odd micro-batch
  slots).

DAPPLE's split approach should win despite its split/concat overhead
(paper §V-B2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.transfer import split_concat_overhead
from repro.sim import Op, Simulator, TaskGraph


@dataclass(frozen=True)
class Fig8Result:
    split_makespan: float
    round_robin_makespan: float

    @property
    def split_advantage(self) -> float:
        return self.round_robin_makespan / self.split_makespan


def _build(round_robin: bool, num_micro_batches: int, t1: float, comm: float,
           act_bytes: float) -> TaskGraph:
    """Stage0 = 2·t1 per micro-batch on 2 replicas; stage1 = t1 on 1 device."""
    g = TaskGraph()
    t0 = 2.0 * t1
    for mb in range(num_micro_batches):
        if round_robin:
            dev = f"gpu:{mb % 2}"
            g.add(Op(f"F0/{mb}", t0, resources=(dev,), priority=mb,
                     tags={"kind": "F", "stage": 0, "mb": mb}))
            g.add(Op(f"B0/{mb}", 2 * t0, resources=(dev,), priority=mb,
                     tags={"kind": "B", "stage": 0, "mb": mb}))
        else:
            over = split_concat_overhead(act_bytes, 2)
            for r in range(2):
                g.add(Op(f"F0/{mb}/r{r}", t0 / 2 + over, resources=(f"gpu:{r}",),
                         priority=mb, tags={"kind": "F", "stage": 0, "mb": mb}))
                g.add(Op(f"B0/{mb}/r{r}", t0 + over, resources=(f"gpu:{r}",),
                         priority=mb, tags={"kind": "B", "stage": 0, "mb": mb}))
        g.add(Op(f"send/{mb}", comm, priority=mb, tags={"kind": "send", "mb": mb}))
        g.add(Op(f"F1/{mb}", t1, resources=("gpu:2",), priority=mb,
                 tags={"kind": "F", "stage": 1, "mb": mb}))
        g.add(Op(f"B1/{mb}", 2 * t1, resources=("gpu:2",), priority=mb,
                 tags={"kind": "B", "stage": 1, "mb": mb}))
        g.add(Op(f"sendback/{mb}", comm, priority=mb, tags={"kind": "sendback", "mb": mb}))

        f0s = [f"F0/{mb}"] if round_robin else [f"F0/{mb}/r0", f"F0/{mb}/r1"]
        b0s = [f"B0/{mb}"] if round_robin else [f"B0/{mb}/r0", f"B0/{mb}/r1"]
        for f in f0s:
            g.add_dep(f, f"send/{mb}")
        g.add_dep(f"send/{mb}", f"F1/{mb}")
        g.add_dep(f"F1/{mb}", f"B1/{mb}")
        g.add_dep(f"B1/{mb}", f"sendback/{mb}")
        for b in b0s:
            g.add_dep(f"sendback/{mb}", b)
    return g


def run(num_micro_batches: int = 5, t1: float = 10e-3, comm: float = 0.2e-3,
        act_bytes: float = 32 * 2**20, sim_engine: str | None = None) -> Fig8Result:
    split = Simulator(
        _build(False, num_micro_batches, t1, comm, act_bytes), engine=sim_engine
    ).run()
    rr = Simulator(
        _build(True, num_micro_batches, t1, comm, act_bytes), engine=sim_engine
    ).run()
    return Fig8Result(split_makespan=split.makespan, round_robin_makespan=rr.makespan)


def format_results(res: Fig8Result) -> str:
    return "\n".join(
        [
            "Fig. 8: stage replication — micro-batch splitting vs round-robin",
            f"(a) split each micro-batch across replicas : {res.split_makespan * 1e3:.2f} ms",
            f"(b) round-robin whole micro-batches        : {res.round_robin_makespan * 1e3:.2f} ms",
            f"splitting wins by {100 * (res.split_advantage - 1):.1f}% "
            "(tail effect outweighs split/concat overhead, paper §V-B2)",
        ]
    )

"""Result formatting and persistence for experiment reproductions.

Every benchmark writes its reproduced table/figure to ``results/<id>.txt``
at the repository root (or ``$REPRO_RESULTS_DIR``), so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
paper artifacts on disk.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence


def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        path = Path(env)
    else:
        # repo root = parents[3] of this file (src/repro/experiments/..).
        path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def write_result(experiment_id: str, text: str, echo: bool = True) -> Path:
    """Persist ``text`` under ``results/<experiment_id>.txt`` and echo it."""
    path = results_dir() / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    if echo:
        print(f"\n=== {experiment_id} ===\n{text}\n(written to {path})")
    return path

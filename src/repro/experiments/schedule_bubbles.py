"""Bubble ratios across the schedule library on the Table-III configs.

One balanced straight pipeline per hardware config, executed under every
registered schedule with the same micro-batch count: GPipe's flush, the
paper's early-backward 1F1B, Megatron-style interleaved 1F1B (v=2 virtual
stages per device), and zero-bubble 2BP.  The bubble ratio is the mean
idle fraction of the pipeline's devices over the iteration — the quantity
the paper's ``(S-1)/(M+S-1)`` analysis (§III-A) approximates for GPipe —
so lower is better and 0 is a perfectly dense pipeline.

The table is the deliverable behind the schedule IR: it shows interleaving
shrinking the fill/drain bubble at the cost of more cross-stage traffic,
and ZB-2BP strictly below 1F1B wherever the cooldown bubble has room for
the deferred grad-weight work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import config_by_name
from repro.core.plan import interleaved_straight_plan
from repro.core.profiler import profile_model
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES, get_model
from repro.runtime import execute_plan
from repro.runtime.memory import OutOfMemoryError

#: The schedule matrix, in presentation order.
SCHEDULES = ("gpipe", "dapple", "interleaved:v=2", "zb2bp")


@dataclass(frozen=True)
class BubblePoint:
    """One (config, schedule) cell of the bubble table."""

    config: str
    schedule: str
    num_micro_batches: int
    iteration_time: float | None  # None = OOM
    bubble_ratio: float | None
    peak_memory: float | None

    @property
    def oom(self) -> bool:
        return self.iteration_time is None


def _bubble_ratio(res) -> float:
    """Mean idle fraction of the plan's devices over the iteration."""
    keys = sorted({d.resource_key for s in res.plan.stages for d in s.devices})
    util = [res.trace.utilization(k) for k in keys]
    return 1.0 - sum(util) / len(util)


def point(
    model_name: str,
    config: str,
    schedule: str,
    devices: int = 8,
    gbs: int | None = None,
) -> BubblePoint:
    """Execute one schedule on a balanced ``devices``-stage straight pipeline.

    All schedules run with the same micro-batch count ``M`` (a multiple of
    the device count, as interleaved 1F1B requires) so the bubble ratios
    are directly comparable.
    """
    from repro.baselines import gpipe_plan

    model = get_model(model_name)
    cluster = config_by_name(config, devices)
    prof = profile_model(model)
    if gbs is None:
        ref = PAPER_FIGURES.get(model_name.strip().lower())
        gbs = ref.global_batch_size if ref else 64
    m = devices * max(1, gbs // (model.profile_batch * devices))
    if schedule.startswith("interleaved"):
        plan = interleaved_straight_plan(
            model, cluster.devices, gbs, m, virtual_per_device=2
        )
    else:
        plan = gpipe_plan(prof, cluster, gbs, num_stages=devices)
        plan = type(plan)(
            model=plan.model, stages=plan.stages,
            global_batch_size=gbs, num_micro_batches=m,
        )
    try:
        res = execute_plan(prof, cluster, plan, schedule=schedule)
    except OutOfMemoryError:
        return BubblePoint(config, schedule, m, None, None, None)
    return BubblePoint(
        config, schedule, m,
        res.iteration_time, _bubble_ratio(res), res.max_peak_memory(),
    )


def run(
    model_name: str = "bert48", devices: int = 8, gbs: int | None = None
) -> list[BubblePoint]:
    """The full grid: every Table-III config under every schedule."""
    return [
        point(model_name, config, schedule, devices=devices, gbs=gbs)
        for config in ("A", "B", "C")
        for schedule in SCHEDULES
    ]


def format_results(points: list[BubblePoint]) -> str:
    base = {
        p.config: p.bubble_ratio
        for p in points
        if p.schedule == "dapple" and not p.oom
    }
    rows = []
    for p in points:
        if p.oom:
            rows.append([p.config, p.schedule, p.num_micro_batches,
                         "OOM", "-", "-", "-"])
            continue
        ref = base.get(p.config)
        delta = (
            f"{p.bubble_ratio - ref:+.3f}" if ref is not None else "-"
        )
        rows.append([
            p.config,
            p.schedule,
            p.num_micro_batches,
            f"{p.iteration_time * 1e3:.1f}ms",
            f"{p.bubble_ratio:.3f}",
            delta,
            f"{p.peak_memory / 2**30:.1f}GiB",
        ])
    return format_table(
        ["config", "schedule", "M", "iteration", "bubble", "vs 1f1b", "peak mem"],
        rows,
        title="Bubble ratios: GPipe vs 1F1B vs interleaved vs ZB-2BP "
        "(straight pipeline, Table III configs)",
    )

"""Straggler-sensitivity sweep: DAPPLE vs GPipe vs DP under perturbation.

An experiment beyond the paper: how do the three system archetypes degrade
when one device persistently slows down (plus light compute jitter)?  For
each (model, config, straggler-factor) grid point the clean and p95-perturbed
makespans of

* **DAPPLE** — the planner's best hybrid plan, early-backward schedule;
* **GPipe**  — the balanced straight partition, synchronous flush schedule;
* **DP**    — pure data parallelism (one replicated stage),

are measured over a seeded Monte-Carlo ensemble
(:func:`repro.faults.analysis.run_ensemble`).  A second table re-scores the
planner's top-K plans by p95 makespan (:func:`repro.faults.robust.robust_plan`)
and flags the regimes where the *robust* selection differs from the
clean-optimal plan — the planner's on-paper winner is not always the plan
you want on noisy hardware.

Grid points are independent and fan out via :func:`repro.perf.sweep`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines import gpipe_plan
from repro.core.plan import single_stage_plan
from repro.core.planner import Planner
from repro.experiments.common import best_plan, cluster, profile
from repro.experiments.reporting import format_table
from repro.faults.analysis import run_ensemble
from repro.faults.models import ComputeJitter, SlowDevice
from repro.faults.robust import robust_plan
from repro.models import PAPER_FIGURES
from repro.perf import sweep
from repro.runtime.memory import OutOfMemoryError

#: Default sweep grid: two pipeline-friendly models, all three hardware
#: configs, straggler slowdown factors from mild to severe.
SWEEP_MODELS = ("bert48", "gnmt16")
SWEEP_CONFIGS = ("A", "B", "C")
SWEEP_FACTORS = (1.25, 2.0)

#: Light multiplicative compute noise layered under every straggler factor.
JITTER_SIGMA = 0.05

#: Robust selection: candidates re-scored and the makespan quantile used.
ROBUST_TOP_K = 4
ROBUST_QUANTILE = 0.95


@dataclass(frozen=True)
class SystemRobustness:
    """Clean vs perturbed makespan of one system at one grid point."""

    system: str
    plan: str
    clean_ms: float
    p95_ms: float

    @property
    def slowdown(self) -> float:
        return self.p95_ms / self.clean_ms if self.clean_ms > 0 else math.nan


@dataclass(frozen=True)
class StragglerPoint:
    """One grid point: per-system robustness plus the robust plan choice."""

    model: str
    config: str
    factor: float
    systems: tuple
    robust_plan: str
    clean_optimal_plan: str
    selection_changed: bool


def _fault_models(factor: float):
    return (SlowDevice(factor=factor), ComputeJitter(sigma=JITTER_SIGMA))


def point(
    model: str,
    config: str,
    factor: float,
    num_seeds: int = 8,
    base_seed: int = 0,
    sim_engine: str | None = None,
) -> StragglerPoint:
    """One grid point — module-level so ``sweep`` can fork it."""
    prof = profile(model)
    clu = cluster(config)
    gbs = PAPER_FIGURES[model].global_batch_size
    models = _fault_models(factor)
    seeds = range(base_seed, base_seed + num_seeds)

    systems: list[SystemRobustness] = []

    def measure(system: str, plan, schedule: str) -> None:
        try:
            rep = run_ensemble(
                prof, clu, plan, models, seeds,
                schedule=schedule, sim_engine=sim_engine,
            )
        except OutOfMemoryError:
            systems.append(SystemRobustness(system, plan.notation, math.nan, math.nan))
            return
        systems.append(
            SystemRobustness(
                system,
                plan.notation,
                clean_ms=rep.clean_makespan * 1e3,
                p95_ms=rep.p95 * 1e3,
            )
        )

    measure("DAPPLE", best_plan(model, config, gbs).plan, "dapple")
    try:
        measure("GPipe", gpipe_plan(prof, clu, gbs), "gpipe")
    except ValueError:
        pass
    planner = Planner(prof, clu, gbs)
    m = max(1, gbs // (prof.graph.profile_batch * clu.num_devices))
    while gbs % m:
        m -= 1
    dp = single_stage_plan(prof.graph, clu.devices, gbs, m)
    if planner.plan_fits_memory(dp):
        measure("DP", dp, "dapple")
    else:
        systems.append(SystemRobustness("DP", "DP", math.nan, math.nan))

    rob = robust_plan(
        prof, clu, gbs, models, seeds,
        q=ROBUST_QUANTILE, top_k=ROBUST_TOP_K, sim_engine=sim_engine,
    )
    return StragglerPoint(
        model=model,
        config=config,
        factor=factor,
        systems=tuple(systems),
        robust_plan=rob.robust.notation,
        clean_optimal_plan=rob.clean_optimal.notation,
        selection_changed=rob.selection_changed,
    )


def run(
    models: tuple = SWEEP_MODELS,
    configs: tuple = SWEEP_CONFIGS,
    factors: tuple = SWEEP_FACTORS,
    num_seeds: int = 8,
    seed: int = 0,
    jobs: int | None = 1,
    sim_engine: str | None = None,
) -> list[StragglerPoint]:
    grid = [
        (name, cfg, factor, num_seeds, seed, sim_engine)
        for name in models
        for cfg in configs
        for factor in factors
    ]
    return sweep(point, grid, jobs=jobs)


def format_results(points: list[StragglerPoint]) -> str:
    def fmt(x: float) -> str:
        return "OOM" if math.isnan(x) else f"{x:.1f}"

    sys_rows = []
    for p in points:
        for s in p.systems:
            sys_rows.append([
                p.model, p.config, f"{p.factor:.2f}", s.system, s.plan,
                fmt(s.clean_ms), fmt(s.p95_ms),
                "-" if math.isnan(s.clean_ms) else f"{s.slowdown:.2f}x",
            ])
    table1 = format_table(
        ["Model", "cfg", "straggler", "system", "plan", "clean ms", "p95 ms",
         "p95/clean"],
        sys_rows,
        title="Straggler sweep: clean vs p95-perturbed iteration time "
        f"(1 slow device + {JITTER_SIGMA:.0%} jitter)",
    )

    rob_rows = [
        [
            p.model, p.config, f"{p.factor:.2f}",
            p.clean_optimal_plan, p.robust_plan,
            "*" if p.selection_changed else "",
        ]
        for p in points
    ]
    table2 = format_table(
        ["Model", "cfg", "straggler", "clean-optimal", "robust (p95)", "shift"],
        rob_rows,
        title=f"Robust plan selection over planner top-{ROBUST_TOP_K} "
        f"(q={ROBUST_QUANTILE}); '*' = robustness changes the chosen plan",
    )
    shifts = sum(p.selection_changed for p in points)
    return (
        table1 + "\n\n" + table2
        + f"\nselection shifted in {shifts}/{len(points)} regimes"
    )

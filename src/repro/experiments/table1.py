"""Table I reproduction: cross-stage activation vs gradient traffic volume.

The paper's Table I contrasts, per benchmark, the activation size at the
pipeline partition boundary (small, MBs) against the gradient size that
data parallelism must AllReduce (large, GBs) — the asymmetry motivating
hybrid parallelism on hierarchical interconnects (Fig. 2).

Boundary traffic is the one-way activation tensor at the model's profiling
batch (Table I's convention for GNMT/XLNet/AmoebaNet; for BERT and VGG the
paper's figures appear to fold in extra tensors — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import paper_family_plan, profile
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES

#: Models in the paper's Table I.
TABLE1_MODELS = ["gnmt16", "bert48", "xlnet36", "amoebanet36", "vgg19"]


@dataclass(frozen=True)
class Table1Row:
    model: str
    activation_bytes: float  # round trip at the profile batch
    gradient_bytes: float
    paper_activation_bytes: float | None
    paper_gradient_bytes: float | None


def run() -> list[Table1Row]:
    rows = []
    for name in TABLE1_MODELS:
        prof = profile(name)
        ref = PAPER_FIGURES[name]
        plan = paper_family_plan(name, "A").plan
        if plan.num_stages >= 2:
            split = plan.stages[0].layer_hi
        else:
            # DP winner (e.g. VGG on config A): report the best 2-stage cut
            # on the slow config, like the paper's Table I narrative.
            plan_c = paper_family_plan(name, "C").plan
            split = (
                plan_c.stages[0].layer_hi
                if plan_c.num_stages >= 2
                else prof.num_layers // 2
            )
        act = prof.boundary_bytes(split, prof.graph.profile_batch)
        rows.append(
            Table1Row(
                model=prof.graph.name,
                activation_bytes=act,
                gradient_bytes=prof.graph.total_param_bytes,
                paper_activation_bytes=ref.boundary_activation_bytes,
                paper_gradient_bytes=ref.gradient_bytes,
            )
        )
    return rows


def format_results(rows: list[Table1Row]) -> str:
    def mb(x):
        return f"{x / 1e6:.1f}MB" if x is not None else "-"

    def gb(x):
        return f"{x / 1e9:.2f}GB" if x is not None else "-"

    return format_table(
        ["Benchmark", "Activation @boundary", "paper", "Gradient size", "paper"],
        [
            [r.model, mb(r.activation_bytes), mb(r.paper_activation_bytes),
             gb(r.gradient_bytes), gb(r.paper_gradient_bytes)]
            for r in rows
        ],
        title="Table I: traffic volume (activations vs gradients)",
    )

"""Table II reproduction: benchmark models (#params, profiling memory cost).

Memory cost at the profiling batch = persistent optimizer state (weights +
optimizer slots) + resident activations of one batch, matching how a
profiling forward/backward occupies a device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import profile
from repro.experiments.reporting import format_table
from repro.models import BENCHMARK_MODELS, PAPER_FIGURES
from repro.models.graph import OPTIMIZER_STATE_BYTES


@dataclass(frozen=True)
class Table2Row:
    model: str
    params: int
    profile_batch: int
    memory_bytes: float
    paper_params: float
    paper_memory_bytes: float
    optimizer: str


def run() -> list[Table2Row]:
    rows = []
    for name in BENCHMARK_MODELS:
        prof = profile(name)
        g = prof.graph
        ref = PAPER_FIGURES[name]
        state = g.total_params * OPTIMIZER_STATE_BYTES[g.optimizer]
        act = prof.stored_bytes(0, g.num_layers, g.profile_batch)
        rows.append(
            Table2Row(
                model=g.name,
                params=g.total_params,
                profile_batch=g.profile_batch,
                memory_bytes=state + act,
                paper_params=ref.params,
                paper_memory_bytes=ref.profile_memory_bytes,
                optimizer=g.optimizer,
            )
        )
    return rows


def format_results(rows: list[Table2Row]) -> str:
    return format_table(
        ["Model", "#Params", "paper", "batch", "Memory", "paper", "optimizer"],
        [
            [
                r.model,
                f"{r.params / 1e6:.1f}M",
                f"{r.paper_params / 1e6:.0f}M",
                r.profile_batch,
                f"{r.memory_bytes / 2**30:.1f}GB",
                f"{r.paper_memory_bytes / 2**30:.1f}GB",
                r.optimizer,
            ]
            for r in rows
        ],
        title="Table II: benchmark models",
    )

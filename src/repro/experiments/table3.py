"""Table III reproduction: the three hardware configurations.

Table III is an input of the evaluation rather than a result; this module
emits our calibrated rendition of it (device counts, interconnects, and
the derived effective bandwidths/latencies the cost models use), so the
artifact set under ``results/`` documents the exact hardware model behind
every other table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import config_by_name
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class Table3Row:
    config: str
    machines: int
    gpus_per_machine: int
    gpu: str
    gpu_memory_bytes: float
    gpu_flops: float
    intra_bandwidth: float
    inter_name: str
    inter_bandwidth: float
    inter_latency: float


def run(num_devices: int = 16) -> list[Table3Row]:
    rows = []
    for letter in ("A", "B", "C"):
        c = config_by_name(letter, num_devices)
        m = c.machines[0]
        rows.append(
            Table3Row(
                config=letter,
                machines=c.num_machines,
                gpus_per_machine=c.gpus_per_machine,
                gpu=m.gpu_spec.name,
                gpu_memory_bytes=m.gpu_spec.memory_bytes,
                gpu_flops=m.gpu_spec.flops,
                intra_bandwidth=m.intra_bw,
                inter_name=c.inter.name,
                inter_bandwidth=c.inter.bandwidth,
                inter_latency=c.inter.latency,
            )
        )
    return rows


def format_results(rows: list[Table3Row]) -> str:
    return format_table(
        ["Config", "Servers", "GPUs/server", "GPU", "mem", "sustained",
         "intra-server", "inter-server", "latency"],
        [
            [
                r.config,
                r.machines,
                r.gpus_per_machine,
                r.gpu,
                f"{r.gpu_memory_bytes / 2**30:.0f} GiB",
                f"{r.gpu_flops / 1e12:.0f} TFLOP/s",
                f"{r.intra_bandwidth / 1e9:.0f} GB/s",
                f"{r.inter_name} ({r.inter_bandwidth / 1e9:.2f} GB/s eff.)",
                f"{r.inter_latency * 1e6:.0f} µs",
            ]
            for r in rows
        ],
        title="Table III: hardware configurations (as calibrated)",
    )

"""Table IV reproduction: warm-up policy PB vs PA throughput.

The paper reports normalized speedups of scheduling policy PB over PA on
Config-A (2×8): BERT-48 1.0, XLNet-36 1.02, VGG-19 1.1, GNMT-16 1.31 —
PB only pays off when cross-stage communication is comparable to compute
(high ACR).  We execute each model's Config-A 2-stage plan on the
simulator under both warm-up policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import cluster, paper_family_plan, profile
from repro.experiments.reporting import format_table
from repro.models import PAPER_FIGURES
from repro.runtime import execute_plan

#: Paper-reported PB/PA speedups (Table IV).
PAPER_SPEEDUPS = {"bert48": 1.0, "xlnet36": 1.02, "vgg19": 1.1, "gnmt16": 1.31}


@dataclass(frozen=True)
class Table4Row:
    model: str
    acr: float
    pa_time: float
    pb_time: float
    paper_speedup: float

    @property
    def speedup(self) -> float:
        return self.pa_time / self.pb_time


def run() -> list[Table4Row]:
    rows = []
    for name, paper in PAPER_SPEEDUPS.items():
        prof = profile(name)
        clu = cluster("A")
        result = paper_family_plan(name, "A")
        plan = result.plan
        if plan.num_stages < 2:
            # Models whose config-A winner is DP (e.g. VGG-19): evaluate the
            # best two-stage pipeline instead, as the paper's Table IV uses
            # each model's *pipelined* configuration.
            from repro.core import Planner, PlannerConfig

            gbs = PAPER_FIGURES[name].global_batch_size
            plan = Planner(
                prof, clu, gbs, PlannerConfig(max_stages=2, min_stages=2)
            ).search().plan
        pa = execute_plan(prof, clu, plan, warmup_policy="PA")
        pb = execute_plan(prof, clu, plan, warmup_policy="PB")
        rows.append(
            Table4Row(
                model=prof.graph.name,
                acr=result.estimate.acr,
                pa_time=pa.iteration_time,
                pb_time=pb.iteration_time,
                paper_speedup=paper,
            )
        )
    return rows


def format_results(rows: list[Table4Row]) -> str:
    return format_table(
        ["Model", "ACR", "PA iter", "PB iter", "PB/PA speedup", "paper"],
        [
            [
                r.model,
                f"{r.acr:.2f}",
                f"{r.pa_time * 1e3:.1f}ms",
                f"{r.pb_time * 1e3:.1f}ms",
                f"{r.speedup:.3f}",
                f"{r.paper_speedup:.2f}",
            ]
            for r in rows
        ],
        title="Table IV: scheduling policy PB vs PA (Config-A)",
    )

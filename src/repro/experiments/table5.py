"""Table V reproduction: DAPPLE planning results on 16 devices, configs A/B/C.

For each benchmark model and hardware config we report both:

* the **unrestricted** planner's best plan (our cost model occasionally
  finds a 3+-stage hybrid a few percent faster than any 2-stage plan), and
* the **paper-family** plan (best among DP / two-stage / straight — the
  shapes Table V reports), with its latency gap to the unrestricted best.

The paper's published plan is listed for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import best_plan, paper_family_plan
from repro.experiments.reporting import format_table
from repro.models import BENCHMARK_MODELS, PAPER_FIGURES

#: The paper's Table V output plans, keyed by (model, config).
PAPER_PLANS: dict[tuple[str, str], str] = {
    ("resnet50", "A"): "DP",
    ("resnet50", "B"): "DP",
    ("resnet50", "C"): "DP",
    ("vgg19", "A"): "DP",
    ("vgg19", "B"): "DP",
    ("vgg19", "C"): "15:1",
    ("gnmt16", "A"): "8:8",
    ("gnmt16", "B"): "8:8",
    ("gnmt16", "C"): "straight",
    ("bert48", "A"): "8:8",
    ("bert48", "B"): "straight",
    ("bert48", "C"): "straight",
    ("xlnet36", "A"): "8:8",
    ("xlnet36", "B"): "8:8",
    ("xlnet36", "C"): "straight",
    ("amoebanet36", "A"): "8:8",
    ("amoebanet36", "B"): "11:5",
    ("amoebanet36", "C"): "11:5",
}

CONFIGS = ["A", "B", "C"]


@dataclass(frozen=True)
class Table5Row:
    model: str
    config: str
    gbs: int
    free_plan: str
    free_split: str
    free_latency: float
    family_plan: str
    family_split: str
    family_latency: float
    family_acr: float
    paper_plan: str

    @property
    def matches_paper(self) -> bool:
        return self.paper_plan in (self.free_plan, self.family_plan)


def run(models: list[str] | None = None) -> list[Table5Row]:
    rows = []
    for name in models or BENCHMARK_MODELS:
        gbs = PAPER_FIGURES[name].global_batch_size
        for cfg in CONFIGS:
            free = best_plan(name, cfg)
            fam = paper_family_plan(name, cfg)
            rows.append(
                Table5Row(
                    model=free.plan.model.name,
                    config=cfg,
                    gbs=gbs,
                    free_plan=free.plan.notation,
                    free_split=free.plan.split_notation,
                    free_latency=free.estimate.latency,
                    family_plan=fam.plan.notation,
                    family_split=fam.plan.split_notation,
                    family_latency=fam.estimate.latency,
                    family_acr=fam.estimate.acr,
                    paper_plan=PAPER_PLANS[(name, cfg)],
                )
            )
    return rows


def format_results(rows: list[Table5Row]) -> str:
    def split_or_dash(plan, split):
        return split if plan not in ("DP", "straight") else "-"

    table = format_table(
        ["Model", "cfg", "GBS", "Plan", "Split", "ACR", "Paper plan", "match",
         "free-search plan", "gap"],
        [
            [
                r.model,
                r.config,
                r.gbs,
                r.family_plan if len(r.family_plan) < 12 else "straight",
                split_or_dash(r.family_plan, r.family_split),
                f"{r.family_acr:.2f}",
                r.paper_plan,
                "yes" if r.matches_paper else "NO",
                r.free_plan,
                f"{(r.family_latency / r.free_latency - 1) * 100:+.1f}%",
            ]
            for r in rows
        ],
        title="Table V: DAPPLE planning results (16 devices)",
    )
    matches = sum(r.matches_paper for r in rows)
    return table + f"\n\nplan matches paper: {matches}/{len(rows)}"

"""Table VI reproduction: DAPPLE vs GPipe on BERT-48 (throughput & memory).

Setup follows the paper: a 2-stage pipeline on Config-B with micro-batch
size fixed at 2, sweeping the number of micro-batches M, with and without
re-computation (RC).  The balanced split comes from the GPipe partitioner
so both schedules execute the *same* plan; only the micro-batch schedule
(and RC) differs.

Expected shapes (paper §VI-E):

* GPipe's peak memory grows with M and eventually OOMs; DAPPLE's is flat.
* DAPPLE at large M wins throughput (more micro-batches, fewer bubbles).
* RC trades ~20 % throughput for a large activation-memory cut, on either
  schedule; DAPPLE+RC is the smallest footprint of all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import gpipe_plan
from repro.cluster import config_b
from repro.experiments.common import profile
from repro.experiments.reporting import format_table
from repro.runtime import execute_plan
from repro.runtime.memory import OutOfMemoryError


@dataclass(frozen=True)
class Table6Row:
    system: str  # "GPipe", "GPipe+RC", "DAPPLE", "DAPPLE+RC"
    num_micro_batches: int
    throughput: float | None  # samples/s, None on OOM
    avg_peak_memory: float | None

    @property
    def oom(self) -> bool:
        return self.throughput is None


SWEEP = {
    "GPipe": ("gpipe", False, (2, 5, 8)),
    "GPipe+RC": ("gpipe", True, (2, 5, 8)),
    "DAPPLE": ("dapple", False, (2, 8, 16)),
    "DAPPLE+RC": ("dapple", True, (2, 8, 16)),
}


def run(micro_batch_size: int = 2) -> list[Table6Row]:
    prof = profile("bert48")
    clu = config_b(2)
    rows = []
    for system, (schedule, rc, ms) in SWEEP.items():
        for m in ms:
            plan = gpipe_plan(
                prof, clu, m * micro_batch_size, num_stages=2,
                micro_batch_size=micro_batch_size,
            )
            try:
                res = execute_plan(prof, clu, plan, schedule=schedule, recompute=rc)
                rows.append(
                    Table6Row(system, m, res.throughput, res.average_peak_memory())
                )
            except OutOfMemoryError:
                rows.append(Table6Row(system, m, None, None))
    return rows


def format_results(rows: list[Table6Row]) -> str:
    table = format_table(
        ["Config", "M", "Throughput (samples/s)", "Avg peak memory"],
        [
            [
                r.system,
                r.num_micro_batches,
                "OOM" if r.oom else f"{r.throughput:.2f}",
                "OOM" if r.oom else f"{r.avg_peak_memory / 2**30:.2f} GB",
            ]
            for r in rows
        ],
        title="Table VI: DAPPLE vs GPipe, BERT-48 2-stage on Config-B (micro-batch 2)",
    )
    da = {r.num_micro_batches: r for r in rows if r.system == "DAPPLE"}
    gp = {r.num_micro_batches: r for r in rows if r.system == "GPipe"}
    notes = []
    if 16 in da and not da[16].oom:
        base = next((r for r in gp.values() if not r.oom), None)
        if base:
            notes.append(
                f"DAPPLE M=16 vs best non-OOM GPipe: "
                f"{da[16].throughput / base.throughput:.2f}x throughput, "
                f"{da[16].avg_peak_memory / base.avg_peak_memory:.2f}x memory"
            )
    return table + ("\n" + "\n".join(notes) if notes else "")

"""Table VII & Fig. 13 reproduction: DAPPLE planner vs PipeDream planner.

Methodology follows §VI-F: both planners see identical profiles, device
topology and interconnects, and *both strategies execute under the DAPPLE
runtime* (our discrete-event simulator).  Speedups are relative to the
single-device sequential time (the paper's Fig. 13 normalizes to data
parallelism; we report both normalizations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import pipedream_plan_hierarchical as pipedream_plan
from repro.core import Planner, PlannerConfig
from repro.experiments.common import cluster, profile
from repro.experiments.reporting import format_table
from repro.perf import sweep
from repro.runtime import execute_plan
from repro.runtime.dataparallel import single_device_time
from repro.runtime.memory import OutOfMemoryError

#: Models in Table VII / Fig. 13, with the GBS the paper uses there.
TABLE7_MODELS = {
    "vgg19": 1024,
    "amoebanet36": 128,
    "bert-large": 128,
    "xlnet36": 128,
}


@dataclass(frozen=True)
class Table7Row:
    model: str
    machines: int
    dapple_plan: str
    dapple_split: str
    pipedream_plan: str
    pipedream_bounds: tuple
    dapple_speedup: float
    pipedream_speedup: float

    @property
    def advantage(self) -> float:
        """DAPPLE-plan throughput over PipeDream-plan throughput."""
        return self.dapple_speedup / self.pipedream_speedup


def row(name: str, gbs: int, n_machines: int) -> Table7Row:
    """One Table VII / Fig. 13 grid point — module-level so ``sweep`` can fork it."""
    prof = profile(name)
    clu = cluster("A", 8 * n_machines)
    t_single = single_device_time(prof, gbs)

    # The DAPPLE arm considers both the unrestricted winner and the
    # pipeline-only winner, keeping whichever *measures* faster —
    # the paper's Table VII strategies are pipelines even where
    # Table V picks DP (e.g. VGG-19 on Config-A).
    candidates = [Planner(prof, clu, gbs).search()]
    try:
        candidates.append(
            Planner(prof, clu, gbs, PlannerConfig(min_stages=2)).search()
        )
    except RuntimeError:
        pass
    best = None
    for cand in candidates:
        ex = execute_plan(prof, clu, cand.plan, warmup_policy="PB")
        if best is None or ex.iteration_time < best[1].iteration_time:
            best = (cand, ex)
    dap, dap_exec = best

    pd = pipedream_plan(prof, clu, gbs)
    try:
        pd_exec = execute_plan(prof, clu, pd.plan, warmup_policy="PB")
        pd_speedup = t_single / pd_exec.iteration_time
    except OutOfMemoryError:
        # PipeDream ignores sync-training memory; fall back to the
        # analytical estimate to still chart the comparison.
        from repro.core.latency import evaluate_plan

        pd_speedup = t_single / evaluate_plan(prof, clu, pd.plan).latency

    return Table7Row(
        model=prof.graph.name,
        machines=n_machines,
        dapple_plan=dap.plan.notation,
        dapple_split=dap.plan.split_notation,
        pipedream_plan=pd.plan.notation,
        pipedream_bounds=tuple(pd.stage_layer_bounds),
        dapple_speedup=t_single / dap_exec.iteration_time,
        pipedream_speedup=pd_speedup,
    )


def run(
    machine_counts: tuple[int, ...] = (2, 4), jobs: int | None = 1
) -> list[Table7Row]:
    grid = [
        (name, gbs, n_machines)
        for name, gbs in TABLE7_MODELS.items()
        for n_machines in machine_counts
    ]
    return sweep(row, grid, jobs=jobs)


def format_results(rows: list[Table7Row]) -> str:
    return format_table(
        ["Model", "cluster", "DAPPLE plan", "PipeDream plan", "DAPPLE x",
         "PipeDream x", "advantage"],
        [
            [
                r.model,
                f"{r.machines}x8",
                f"{r.dapple_plan} ({r.dapple_split})",
                r.pipedream_plan,
                f"{r.dapple_speedup:.1f}",
                f"{r.pipedream_speedup:.1f}",
                f"{r.advantage:.2f}x",
            ]
            for r in rows
        ],
        title="Table VII / Fig. 13: DAPPLE vs PipeDream planner (sync eval)",
    )

"""Table VIII reproduction: weak scaling — maximum BERT depth per pipeline.

The paper scales BERT by adding encoder layers until the pipeline no longer
fits, with re-computation enabled, on Config-A V100s (16 GB): BERT-48 on
one GPU, up to BERT-428 (5.5 B params) on an 8-GPU pipeline, with ~linear
growth because BERT's parameters distribute evenly over layers.  Each
parameter costs 16 bytes (Adam: fp32 weight + m + v + gradient buffer).

We binary-search the maximum depth whose balanced straight pipeline passes
the memory model, then simulate one iteration for the utilization column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import gpipe_plan
from repro.core import profile_model
from repro.experiments.common import cluster
from repro.experiments.reporting import format_table
from repro.models import bert_layers
from repro.runtime import execute_plan
from repro.runtime.memory import MemoryModel, OutOfMemoryError

#: Paper's Table VIII reference points: pipeline size -> max layers.
PAPER_MAX_LAYERS = {1: 48, 2: 106, 4: 215, 8: 428}


@dataclass(frozen=True)
class Table8Row:
    pipeline_devices: int
    max_layers: int
    params: int
    total_state_bytes: float
    avg_gpu_utilization: float
    paper_max_layers: int


def _fits(num_layers: int, devices: int, micro_batch: int) -> bool:
    model = bert_layers(num_layers)
    prof = profile_model(model)
    clu = cluster("A", 8)
    plan = gpipe_plan(
        prof, clu, micro_batch * 4, num_stages=devices, micro_batch_size=micro_batch
    )
    try:
        MemoryModel(prof, plan, recompute=True).max_in_flight()
        return True
    except OutOfMemoryError:
        return False


def max_depth(devices: int, micro_batch: int = 2, hi: int = 1024) -> int:
    """Largest encoder depth fitting a ``devices``-stage pipeline."""
    lo = devices  # at least one layer per stage
    assert _fits(lo, devices, micro_batch), "even one layer per stage must fit"
    while _fits(hi, devices, micro_batch):
        hi *= 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if _fits(mid, devices, micro_batch):
            lo = mid
        else:
            hi = mid
    return lo


def run(pipeline_sizes: tuple[int, ...] = (1, 2, 4, 8), micro_batch: int = 2) -> list[Table8Row]:
    rows = []
    for p in pipeline_sizes:
        layers = max_depth(p, micro_batch)
        # Measure utilization slightly below the absolute memory ceiling
        # (as the paper does: BERT-428 is ~88 % of what 8x16GB can hold),
        # so the warm-up count K is not memory-starved.
        util_layers = max(p, int(layers * 0.88))
        model = bert_layers(util_layers)
        prof = profile_model(model)
        clu = cluster("A", 8)
        # Enough micro-batches (8 per stage) to fill the deeper pipelines,
        # like the paper's "reasonable input size".
        plan = gpipe_plan(
            prof, clu, micro_batch * 8 * p, num_stages=p, micro_batch_size=micro_batch
        )
        res = execute_plan(prof, clu, plan, recompute=True)
        model = bert_layers(layers)
        utils = [u for u in res.device_utilization().values()]
        rows.append(
            Table8Row(
                pipeline_devices=p,
                max_layers=layers,
                params=model.total_params,
                total_state_bytes=model.total_params * 16.0,
                avg_gpu_utilization=float(np.mean(utils)),
                paper_max_layers=PAPER_MAX_LAYERS.get(p, -1),
            )
        )
    return rows


def format_results(rows: list[Table8Row]) -> str:
    table = format_table(
        ["Config", "BERT-L", "paper", "#Params", "Params mem (16B/p)", "Avg util"],
        [
            [
                f"Pipeline-{r.pipeline_devices}" if r.pipeline_devices > 1 else "Native-1",
                r.max_layers,
                r.paper_max_layers,
                f"{r.params / 1e9:.2f}B" if r.params >= 1e9 else f"{r.params / 1e6:.0f}M",
                f"{r.total_state_bytes / 2**30:.1f}GB",
                f"{r.avg_gpu_utilization * 100:.0f}%",
            ]
            for r in rows
        ],
        title="Table VIII: max BERT size with DAPPLE + re-computation (16GB V100)",
    )
    if len(rows) >= 2:
        ratio = rows[-1].max_layers / rows[0].max_layers / (
            rows[-1].pipeline_devices / rows[0].pipeline_devices
        )
        table += f"\nscaling linearity (layers per device, last/first): {ratio:.2f}"
    return table

"""Deterministic fault injection and robustness analysis.

DAPPLE's synchronous latency model assumes perfectly uniform devices and
links; this subsystem measures what happens when they are not:

* :mod:`repro.faults.models` — seeded perturbation models (compute jitter,
  persistent stragglers, degraded/flaky links, transient stall-and-recover
  failures), each a pure duration transform over a built task graph;
* :mod:`repro.faults.inject` — composes models into the executor pipeline
  without touching the bit-identical clean path;
* :mod:`repro.faults.analysis` — Monte-Carlo ensembles: makespan quantiles,
  per-stage bubble-inflation attribution, critical-path shift detection;
* :mod:`repro.faults.robust` — re-scores the planner's top-K plans under an
  ensemble and selects by quantile makespan instead of the clean score.

CLI: ``repro faults --model bert48 --config A`` compares DAPPLE, GPipe, and
DP robustness on one model; the ``straggler_sweep`` experiment sweeps
straggler severity across hardware configs.
"""

from repro.faults.analysis import (
    EnsembleReport,
    SeedOutcome,
    critical_path,
    critical_path_stages,
    evaluate_seed,
    run_ensemble,
    run_ensembles,
    stage_bubble_fractions,
)
from repro.faults.inject import (
    FaultedExecution,
    execute_plan_faulted,
    perturb_graph,
    rebuild_with_durations,
)
from repro.faults.models import (
    ComputeJitter,
    DegradedLink,
    PerturbationModel,
    SlowDevice,
    TransientFailure,
    perturb_durations,
)
from repro.faults.robust import CandidateRobustness, RobustPlanResult, robust_plan

__all__ = [
    "PerturbationModel",
    "ComputeJitter",
    "SlowDevice",
    "DegradedLink",
    "TransientFailure",
    "perturb_graph",
    "perturb_durations",
    "rebuild_with_durations",
    "execute_plan_faulted",
    "FaultedExecution",
    "evaluate_seed",
    "run_ensemble",
    "run_ensembles",
    "EnsembleReport",
    "SeedOutcome",
    "critical_path",
    "critical_path_stages",
    "stage_bubble_fractions",
    "robust_plan",
    "RobustPlanResult",
    "CandidateRobustness",
]

"""Robustness analysis: Monte-Carlo ensembles over perturbation seeds.

Answers three questions about a plan under a perturbation model set:

* **How much slower does it get?** — :func:`run_ensemble` simulates the plan
  under ``N`` seeds and summarizes the makespan distribution (p50/p95/p99,
  slowdown vs. the clean run).
* **Where does the lost time go?** — per-stage *bubble inflation*: how much
  each stage's idle fraction grows under perturbation, attributing the
  slowdown to the stage that absorbs it.
* **Does the bottleneck move?** — *critical-path shift*: the chain of ops
  whose completion times gate the makespan is extracted from each perturbed
  trace and compared (as a stage signature) against the clean run's.

Two execution strategies sit behind :func:`run_ensemble`:

* ``sim_engine="batched"`` (the default) builds and compiles the plan's
  graph **once**, turns the model set into an ``(S, ops)`` duration matrix
  (:func:`repro.faults.models.perturb_durations`), and hands the whole
  ensemble — clean row included — to the multi-scenario engine
  (:func:`repro.sim.batched.run_batched`) in a single pass.  Outcomes are
  summarized from vectorized scenario views, bit-identical to the per-seed
  path.
* ``sim_engine="compiled"`` / ``"reference"`` fall back to one independent
  simulation per seed, fanned out across worker processes via
  :func:`repro.perf.sweep.sweep` when ``jobs`` allows.  ``jobs`` is
  orthogonal to in-process batching: the batched engine runs the ensemble
  in one process and ignores it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

import repro.obs as obs
from repro.faults.inject import FaultedExecution, execute_plan_faulted
from repro.faults.models import perturb_durations
from repro.perf.sweep import sweep
from repro.sim.batched import run_batched
from repro.sim.compiled import compile_graph
from repro.sim.engine import ENGINES

__all__ = [
    "SeedOutcome",
    "EnsembleReport",
    "BubbleRow",
    "evaluate_seed",
    "run_ensemble",
    "run_ensembles",
    "critical_path",
    "critical_path_stages",
    "stage_bubble_fractions",
]

#: Engine used by :func:`run_ensemble` when ``sim_engine`` is not given and
#: ``REPRO_SIM_ENGINE`` is unset.
DEFAULT_ENSEMBLE_ENGINE = "batched"


def _resolve_ensemble_engine(sim_engine: str | None) -> str:
    """``sim_engine`` > ``REPRO_SIM_ENGINE`` > :data:`DEFAULT_ENSEMBLE_ENGINE`."""
    engine = (
        sim_engine
        or os.environ.get("REPRO_SIM_ENGINE")
        or DEFAULT_ENSEMBLE_ENGINE
    )
    if engine not in ENGINES:
        raise ValueError(f"unknown sim engine {engine!r} (one of {ENGINES})")
    return engine


# --------------------------------------------------------------------- #
# Critical-path extraction
# --------------------------------------------------------------------- #
def critical_path(graph, trace) -> list:
    """The chain of trace events that gates the makespan, in time order.

    Walks backward from the last-finishing op.  At each step the *binding
    constraint* of the current op is the event that ends exactly when it
    starts: either one of its dependency predecessors or the previous holder
    of one of its resources (the simulator only dispatches at completion
    instants, so except at time zero such an event always exists).  Ties are
    broken toward the latest-ending candidate, then dependency predecessors
    over resource predecessors, so the walk is deterministic.
    """
    events = list(trace.events)
    if not events:
        return []
    preds: dict[str, list[str]] = {}
    for name in graph._order:
        for succ in graph._succ[name]:
            preds.setdefault(succ, []).append(name)
    ev_by_name = {e.name: e for e in events}
    res_pos: dict = {}

    cur = events[0]
    for e in events:
        if e.end >= cur.end:
            cur = e
    path = [cur]
    while cur.start > 0:
        best = None
        for p in preds.get(cur.name, ()):
            pe = ev_by_name[p]
            if best is None or pe.end > best.end:
                best = pe
        for r in cur.resources:
            pos = res_pos.get(r)
            if pos is None:
                lst = trace.by_resource(r)
                pos = res_pos[r] = ({e.name: k for k, e in enumerate(lst)}, lst)
            idx_of, lst = pos
            k = idx_of[cur.name]
            if k > 0:
                prev = lst[k - 1]
                if best is None or prev.end > best.end:
                    best = prev
        if best is None:
            break
        path.append(best)
        cur = best
    path.reverse()
    return path


def critical_path_stages(path) -> tuple:
    """Collapse a critical path to its stage signature.

    Consecutive ops of the same stage merge into one entry; ops without a
    ``stage`` tag (init barriers) are dropped.  Two runs whose makespan is
    gated by different stages produce different signatures — the shift
    detector's comparison key.
    """
    sig: list[int] = []
    for e in path:
        stage = e.tags.get("stage")
        if stage is None:
            continue
        if not sig or sig[-1] != stage:
            sig.append(stage)
    return tuple(sig)


def stage_bubble_fractions(result) -> dict[int, float]:
    """Per-stage idle fraction: 1 − mean device busy time / makespan."""
    makespan = result.iteration_time
    out: dict[int, float] = {}
    if makespan <= 0:
        return {i: 0.0 for i in range(result.plan.num_stages)}
    for i, stage in enumerate(result.plan.stages):
        busy = [result.trace.busy_time(d.resource_key) for d in stage.devices]
        out[i] = 1.0 - (sum(busy) / len(busy)) / makespan
    return out


# --------------------------------------------------------------------- #
# Batched-scenario summarization (vectorized views, no trace events)
# --------------------------------------------------------------------- #
def _critical_ids(view, cg, ops) -> list:
    """:func:`critical_path`'s backward walk over one batched scenario.

    Operates on the scenario view's per-op start/end arrays and resource
    sequences instead of trace events, visiting candidates in exactly the
    same order with the same strict-``>`` tie-breaks, so the returned op-id
    chain matches the event chain :func:`critical_path` extracts from the
    equivalent per-seed trace.  (The completion column is end-sorted, so its
    last entry is the latest max-end event — the walk's anchor.)
    """
    if not len(view.order):
        return []
    end = view.end_by_op
    start = view.start_by_op
    cur = int(view.order[-1])
    path = [cur]
    while start[cur] > 0:
        best = -1
        best_end = 0.0
        for p in cg.pred_lists[cur]:
            if best < 0 or end[p] > best_end:
                best = p
                best_end = float(end[p])
        for r in ops[cur].resources:
            idx_of = view.resource_index(cg.slot_of[r])
            k = idx_of[cur]
            if k > 0:
                prev = int(view.resource_sequence(cg.slot_of[r])[k - 1])
                if best < 0 or end[prev] > best_end:
                    best = prev
                    best_end = float(end[prev])
        if best < 0:
            break
        path.append(best)
        cur = best
    path.reverse()
    return path


def _stage_signature(ops, ids) -> tuple:
    """:func:`critical_path_stages` over op ids instead of trace events."""
    sig: list = []
    for i in ids:
        stage = ops[i].tags.get("stage")
        if stage is None:
            continue
        if not sig or sig[-1] != stage:
            sig.append(stage)
    return tuple(sig)


def _stage_bubbles(view, plan, makespan: float) -> tuple:
    """:func:`stage_bubble_fractions` from a scenario view's busy totals."""
    if makespan <= 0:
        return tuple(0.0 for _ in range(plan.num_stages))
    out = []
    for stage in plan.stages:
        busy = [view.busy_time(d.resource_key) for d in stage.devices]
        out.append(1.0 - (sum(busy) / len(busy)) / makespan)
    return tuple(out)


# --------------------------------------------------------------------- #
# Per-seed evaluation (module-level so ``sweep`` can fork it)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SeedOutcome:
    """Small summary of one (possibly perturbed) simulated iteration."""

    seed: int
    makespan: float
    #: Per-stage idle fraction of the makespan (mean over replicas).
    stage_bubbles: tuple
    #: Stage signature of the makespan-gating op chain.
    critical_stages: tuple


def evaluate_seed(
    profile,
    cluster,
    plan,
    models,
    seed: int,
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    sim_engine: str | None = None,
) -> SeedOutcome:
    """Simulate ``plan`` under ``models`` at ``seed`` and summarize."""
    models = tuple(models)
    with obs.span("faults.seed", seed=seed, models=len(models)) as sp:
        run: FaultedExecution = execute_plan_faulted(
            profile,
            cluster,
            plan,
            models=models,
            seed=seed,
            schedule=schedule,
            warmup_policy=warmup_policy,
            recompute=recompute,
            enforce_memory=enforce_memory,
            sim_engine=sim_engine,
        )
        sp.set(makespan=run.result.iteration_time)
    bubbles = stage_bubble_fractions(run.result)
    sig = critical_path_stages(critical_path(run.graph, run.result.trace))
    return SeedOutcome(
        seed=seed,
        makespan=run.result.iteration_time,
        stage_bubbles=tuple(bubbles[i] for i in range(plan.num_stages)),
        critical_stages=sig,
    )


# --------------------------------------------------------------------- #
# Ensemble report
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BubbleRow:
    """Bubble attribution for one stage: clean vs. perturbed idle fraction."""

    stage: int
    clean_fraction: float
    perturbed_fraction: float

    @property
    def inflation(self) -> float:
        """Absolute idle-fraction growth under perturbation."""
        return self.perturbed_fraction - self.clean_fraction


@dataclass(frozen=True)
class EnsembleReport:
    """Makespan distribution of a plan under a perturbation ensemble."""

    plan_notation: str
    clean: SeedOutcome
    outcomes: tuple
    makespans: np.ndarray = field(repr=False)
    #: Memo for derived statistics (quantiles, convergence curves, bubble
    #: rows) — computed on first access, excluded from equality/repr.
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def clean_makespan(self) -> float:
        return self.clean.makespan

    def quantile(self, q: float) -> float:
        got = self._cache.get(("quantile", q))
        if got is None:
            got = self._cache[("quantile", q)] = float(
                np.quantile(self.makespans, q)
            )
        return got

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return float(self.makespans.mean())

    @property
    def worst(self) -> float:
        return float(self.makespans.max())

    def slowdown(self, q: float = 0.95) -> float:
        """Quantile makespan over the clean makespan (≥ 1 in practice)."""
        return self.quantile(q) / self.clean_makespan

    def quantile_convergence(self, q: float = 0.95) -> np.ndarray:
        """Running ``quantile(q)`` estimate over the first ``k`` seeds.

        Entry ``k-1`` is the quantile of the first ``k`` makespans in seed
        submission order; the final entry equals :meth:`quantile`.  The gap
        between the last two entries says whether the ensemble was large
        enough for the tail estimate to settle (exported as the
        ``faults.quantile_convergence_delta`` gauge when observability is
        on).

        The curve is computed once per ``q`` and cached; treat the returned
        array as read-only.
        """
        got = self._cache.get(("convergence", q))
        if got is None:
            ms = self.makespans
            got = self._cache[("convergence", q)] = np.array(
                [np.quantile(ms[: k + 1], q) for k in range(len(ms))],
                dtype=np.float64,
            )
        return got

    def bubble_attribution(self) -> list[BubbleRow]:
        """Per-stage idle-fraction inflation, mean over the ensemble.

        Rows are computed once and cached (:class:`BubbleRow` is frozen);
        each call returns a fresh list over the shared rows.
        """
        rows = self._cache.get("bubbles")
        if rows is None:
            num_stages = len(self.clean.stage_bubbles)
            rows = []
            for i in range(num_stages):
                perturbed = float(
                    np.mean([o.stage_bubbles[i] for o in self.outcomes])
                )
                rows.append(
                    BubbleRow(
                        stage=i,
                        clean_fraction=self.clean.stage_bubbles[i],
                        perturbed_fraction=perturbed,
                    )
                )
            rows = self._cache["bubbles"] = tuple(rows)
        return list(rows)

    def identical(self, other: "EnsembleReport") -> bool:
        """Bit-exact equality with another report.

        The dataclass-generated ``__eq__`` is unusable here (the
        ``makespans`` ndarray compares elementwise), so determinism tests —
        same ``(plan, models, seeds)`` must yield the same report across
        ``jobs`` counts and sim engines — use this instead.
        """
        return (
            self.plan_notation == other.plan_notation
            and self.clean == other.clean
            and self.outcomes == other.outcomes
            and self.makespans.shape == other.makespans.shape
            and bool((self.makespans == other.makespans).all())
        )

    def critical_path_shift(self) -> float:
        """Fraction of seeds whose makespan-gating stage chain differs from
        the clean run's."""
        if not self.outcomes:
            return 0.0
        shifted = sum(
            1 for o in self.outcomes if o.critical_stages != self.clean.critical_stages
        )
        return shifted / len(self.outcomes)


def _run_ensemble_batched(
    profile, cluster, plan, models, seeds, schedule, warmup_policy,
    recompute, enforce_memory, clean,
):
    """One batched pass over the clean row plus every perturbed seed.

    Builds and compiles the plan's graph once, stacks the clean duration
    column (skipped when the caller supplied ``clean``) on top of the
    ``(S, ops)`` perturbation matrix, and summarizes each scenario from its
    vectorized view.  Deduplicated scenarios (identical duration rows) share
    one view, and the bubble/critical-path summary is memoized per view so
    repeated seeds cost nothing beyond the dict hit.
    """
    from repro.runtime.executor import PipelineExecutor

    executor = PipelineExecutor(
        profile,
        cluster,
        plan,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
        enforce_memory=enforce_memory,
    )
    graph = executor.build_graph()
    cg = compile_graph(graph)
    ops = graph.ops()
    matrix = perturb_durations(graph, models, seeds)
    if clean is None:
        rows = np.vstack([cg.durations[None, :], matrix])
        offset = 1
    else:
        rows = matrix
        offset = 0
    batch = run_batched(cg, rows, record_memory=False)
    memo: dict[int, tuple] = {}

    def outcome(s: int, seed: int) -> SeedOutcome:
        view = batch.view(s)
        got = memo.get(id(view))
        if got is None:
            makespan = batch.makespan(s)
            got = memo[id(view)] = (
                _stage_bubbles(view, plan, makespan),
                _stage_signature(ops, _critical_ids(view, cg, ops)),
            )
        return SeedOutcome(
            seed=seed,
            makespan=batch.makespan(s),
            stage_bubbles=got[0],
            critical_stages=got[1],
        )

    if clean is None:
        clean = outcome(0, 0)
    outcomes = [outcome(offset + j, seed) for j, seed in enumerate(seeds)]
    return clean, outcomes


def run_ensemble(
    profile,
    cluster,
    plan,
    models,
    seeds: Sequence[int],
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    sim_engine: str | None = None,
    jobs: int | None = 1,
    clean: SeedOutcome | None = None,
) -> EnsembleReport:
    """Monte-Carlo ensemble of ``plan`` under ``models`` over ``seeds``.

    With the default ``sim_engine`` (``"batched"``), the whole ensemble —
    clean run included — is one compiled pass over an ``(S, ops)`` duration
    matrix; ``jobs`` is ignored.  With ``"compiled"``/``"reference"`` the
    clean (model-free) run anchors the slowdown figures and perturbed seeds
    fan out over :func:`repro.perf.sweep.sweep` when ``jobs`` allows.  Both
    paths produce bit-identical reports (:meth:`EnsembleReport.identical`).

    ``clean`` short-circuits the clean baseline: callers re-scoring the same
    plan under different model sets (straggler sweeps, robust selection)
    pass a previous report's ``.clean`` so the baseline trace and its
    critical-path walk are not recomputed per call.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("ensemble needs at least one seed")
    models = tuple(models)
    engine = _resolve_ensemble_engine(sim_engine)
    track = obs.enabled()
    t_start = time.perf_counter() if track else 0.0
    with obs.span(
        "faults.run_ensemble",
        plan=plan.notation,
        seeds=len(seeds),
        engine=engine,
    ):
        if engine == "batched":
            clean, outcomes = _run_ensemble_batched(
                profile, cluster, plan, models, seeds, schedule,
                warmup_policy, recompute, enforce_memory, clean,
            )
        else:
            if clean is None:
                clean = evaluate_seed(
                    profile, cluster, plan, (), 0,
                    schedule=schedule, warmup_policy=warmup_policy,
                    recompute=recompute,
                    enforce_memory=enforce_memory, sim_engine=engine,
                )
            tasks = [
                (
                    profile, cluster, plan, models, s,
                    schedule, warmup_policy, recompute, enforce_memory, engine,
                )
                for s in seeds
            ]
            outcomes = sweep(evaluate_seed, tasks, jobs=jobs)
    report = EnsembleReport(
        plan_notation=plan.notation,
        clean=clean,
        outcomes=tuple(outcomes),
        makespans=np.array([o.makespan for o in outcomes], dtype=np.float64),
    )
    if track:
        _record_ensemble_metrics(report, time.perf_counter() - t_start)
    return report


def run_ensembles(
    profile,
    cluster,
    plans: Sequence,
    models,
    seeds: Sequence[int],
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    sim_engine: str | None = None,
    jobs: int | None = 1,
) -> list:
    """Ensemble every plan in ``plans`` over the same ``models`` × ``seeds``.

    The S seeds × K plans grid behind robust top-K re-scoring
    (:func:`repro.faults.robust.robust_plan`): each plan's graph is compiled
    once and its whole seed ensemble runs as a single batched pass (engine
    permitting), so the grid costs K batched calls instead of K × (S + 1)
    independent simulations.  Reports are index-aligned with ``plans``.
    """
    plans = list(plans)
    with obs.span(
        "faults.run_ensembles", plans=len(plans), seeds=len(seeds)
    ):
        return [
            run_ensemble(
                profile, cluster, plan, models, seeds,
                schedule=schedule, warmup_policy=warmup_policy,
                recompute=recompute, enforce_memory=enforce_memory,
                sim_engine=sim_engine, jobs=jobs,
            )
            for plan in plans
        ]


def _record_ensemble_metrics(report: EnsembleReport, elapsed: float) -> None:
    """Publish ensemble timing, slowdown spread, and tail convergence."""
    plan = report.plan_notation
    obs.gauge("faults.ensemble_seconds", plan=plan).set(elapsed)
    obs.counter("faults.seeds_evaluated").inc(len(report.outcomes))
    hist = obs.histogram(
        "faults.seed_slowdown",
        buckets=(1.0, 1.02, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0),
    )
    clean_ms = report.clean_makespan
    if clean_ms > 0:
        for o in report.outcomes:
            hist.observe(o.makespan / clean_ms)
    conv = report.quantile_convergence(0.95)
    delta = abs(float(conv[-1]) - float(conv[-2])) if len(conv) >= 2 else 0.0
    obs.gauge("faults.quantile_convergence_delta", plan=plan).set(delta)

"""Robustness analysis: Monte-Carlo ensembles over perturbation seeds.

Answers three questions about a plan under a perturbation model set:

* **How much slower does it get?** — :func:`run_ensemble` simulates the plan
  under ``N`` seeds and summarizes the makespan distribution (p50/p95/p99,
  slowdown vs. the clean run).
* **Where does the lost time go?** — per-stage *bubble inflation*: how much
  each stage's idle fraction grows under perturbation, attributing the
  slowdown to the stage that absorbs it.
* **Does the bottleneck move?** — *critical-path shift*: the chain of ops
  whose completion times gate the makespan is extracted from each perturbed
  trace and compared (as a stage signature) against the clean run's.

Each seed is an independent simulation, so ensembles fan out across worker
processes via :func:`repro.perf.sweep.sweep`; per-seed payloads are small
summaries (makespan, per-stage busy time, critical-path signature), not full
traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

import repro.obs as obs
from repro.faults.inject import FaultedExecution, execute_plan_faulted
from repro.perf.sweep import sweep

__all__ = [
    "SeedOutcome",
    "EnsembleReport",
    "BubbleRow",
    "evaluate_seed",
    "run_ensemble",
    "critical_path",
    "critical_path_stages",
    "stage_bubble_fractions",
]


# --------------------------------------------------------------------- #
# Critical-path extraction
# --------------------------------------------------------------------- #
def critical_path(graph, trace) -> list:
    """The chain of trace events that gates the makespan, in time order.

    Walks backward from the last-finishing op.  At each step the *binding
    constraint* of the current op is the event that ends exactly when it
    starts: either one of its dependency predecessors or the previous holder
    of one of its resources (the simulator only dispatches at completion
    instants, so except at time zero such an event always exists).  Ties are
    broken toward the latest-ending candidate, then dependency predecessors
    over resource predecessors, so the walk is deterministic.
    """
    events = list(trace.events)
    if not events:
        return []
    preds: dict[str, list[str]] = {}
    for name in graph._order:
        for succ in graph._succ[name]:
            preds.setdefault(succ, []).append(name)
    ev_by_name = {e.name: e for e in events}
    res_pos: dict = {}

    cur = events[0]
    for e in events:
        if e.end >= cur.end:
            cur = e
    path = [cur]
    while cur.start > 0:
        best = None
        for p in preds.get(cur.name, ()):
            pe = ev_by_name[p]
            if best is None or pe.end > best.end:
                best = pe
        for r in cur.resources:
            pos = res_pos.get(r)
            if pos is None:
                lst = trace.by_resource(r)
                pos = res_pos[r] = ({e.name: k for k, e in enumerate(lst)}, lst)
            idx_of, lst = pos
            k = idx_of[cur.name]
            if k > 0:
                prev = lst[k - 1]
                if best is None or prev.end > best.end:
                    best = prev
        if best is None:
            break
        path.append(best)
        cur = best
    path.reverse()
    return path


def critical_path_stages(path) -> tuple:
    """Collapse a critical path to its stage signature.

    Consecutive ops of the same stage merge into one entry; ops without a
    ``stage`` tag (init barriers) are dropped.  Two runs whose makespan is
    gated by different stages produce different signatures — the shift
    detector's comparison key.
    """
    sig: list[int] = []
    for e in path:
        stage = e.tags.get("stage")
        if stage is None:
            continue
        if not sig or sig[-1] != stage:
            sig.append(stage)
    return tuple(sig)


def stage_bubble_fractions(result) -> dict[int, float]:
    """Per-stage idle fraction: 1 − mean device busy time / makespan."""
    makespan = result.iteration_time
    out: dict[int, float] = {}
    if makespan <= 0:
        return {i: 0.0 for i in range(result.plan.num_stages)}
    for i, stage in enumerate(result.plan.stages):
        busy = [result.trace.busy_time(d.resource_key) for d in stage.devices]
        out[i] = 1.0 - (sum(busy) / len(busy)) / makespan
    return out


# --------------------------------------------------------------------- #
# Per-seed evaluation (module-level so ``sweep`` can fork it)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SeedOutcome:
    """Small summary of one (possibly perturbed) simulated iteration."""

    seed: int
    makespan: float
    #: Per-stage idle fraction of the makespan (mean over replicas).
    stage_bubbles: tuple
    #: Stage signature of the makespan-gating op chain.
    critical_stages: tuple


def evaluate_seed(
    profile,
    cluster,
    plan,
    models,
    seed: int,
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    sim_engine: str | None = None,
) -> SeedOutcome:
    """Simulate ``plan`` under ``models`` at ``seed`` and summarize."""
    models = tuple(models)
    with obs.span("faults.seed", seed=seed, models=len(models)) as sp:
        run: FaultedExecution = execute_plan_faulted(
            profile,
            cluster,
            plan,
            models=models,
            seed=seed,
            schedule=schedule,
            warmup_policy=warmup_policy,
            recompute=recompute,
            enforce_memory=enforce_memory,
            sim_engine=sim_engine,
        )
        sp.set(makespan=run.result.iteration_time)
    bubbles = stage_bubble_fractions(run.result)
    sig = critical_path_stages(critical_path(run.graph, run.result.trace))
    return SeedOutcome(
        seed=seed,
        makespan=run.result.iteration_time,
        stage_bubbles=tuple(bubbles[i] for i in range(plan.num_stages)),
        critical_stages=sig,
    )


# --------------------------------------------------------------------- #
# Ensemble report
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BubbleRow:
    """Bubble attribution for one stage: clean vs. perturbed idle fraction."""

    stage: int
    clean_fraction: float
    perturbed_fraction: float

    @property
    def inflation(self) -> float:
        """Absolute idle-fraction growth under perturbation."""
        return self.perturbed_fraction - self.clean_fraction


@dataclass(frozen=True)
class EnsembleReport:
    """Makespan distribution of a plan under a perturbation ensemble."""

    plan_notation: str
    clean: SeedOutcome
    outcomes: tuple
    makespans: np.ndarray = field(repr=False)

    @property
    def clean_makespan(self) -> float:
        return self.clean.makespan

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.makespans, q))

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return float(self.makespans.mean())

    @property
    def worst(self) -> float:
        return float(self.makespans.max())

    def slowdown(self, q: float = 0.95) -> float:
        """Quantile makespan over the clean makespan (≥ 1 in practice)."""
        return self.quantile(q) / self.clean_makespan

    def quantile_convergence(self, q: float = 0.95) -> np.ndarray:
        """Running ``quantile(q)`` estimate over the first ``k`` seeds.

        Entry ``k-1`` is the quantile of the first ``k`` makespans in seed
        submission order; the final entry equals :meth:`quantile`.  The gap
        between the last two entries says whether the ensemble was large
        enough for the tail estimate to settle (exported as the
        ``faults.quantile_convergence_delta`` gauge when observability is
        on).
        """
        ms = self.makespans
        return np.array(
            [np.quantile(ms[: k + 1], q) for k in range(len(ms))],
            dtype=np.float64,
        )

    def bubble_attribution(self) -> list[BubbleRow]:
        """Per-stage idle-fraction inflation, mean over the ensemble."""
        rows = []
        num_stages = len(self.clean.stage_bubbles)
        for i in range(num_stages):
            perturbed = float(
                np.mean([o.stage_bubbles[i] for o in self.outcomes])
            )
            rows.append(
                BubbleRow(
                    stage=i,
                    clean_fraction=self.clean.stage_bubbles[i],
                    perturbed_fraction=perturbed,
                )
            )
        return rows

    def identical(self, other: "EnsembleReport") -> bool:
        """Bit-exact equality with another report.

        The dataclass-generated ``__eq__`` is unusable here (the
        ``makespans`` ndarray compares elementwise), so determinism tests —
        same ``(plan, models, seeds)`` must yield the same report across
        ``jobs`` counts and sim engines — use this instead.
        """
        return (
            self.plan_notation == other.plan_notation
            and self.clean == other.clean
            and self.outcomes == other.outcomes
            and self.makespans.shape == other.makespans.shape
            and bool((self.makespans == other.makespans).all())
        )

    def critical_path_shift(self) -> float:
        """Fraction of seeds whose makespan-gating stage chain differs from
        the clean run's."""
        if not self.outcomes:
            return 0.0
        shifted = sum(
            1 for o in self.outcomes if o.critical_stages != self.clean.critical_stages
        )
        return shifted / len(self.outcomes)


def run_ensemble(
    profile,
    cluster,
    plan,
    models,
    seeds: Sequence[int],
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    sim_engine: str | None = None,
    jobs: int | None = 1,
) -> EnsembleReport:
    """Monte-Carlo ensemble of ``plan`` under ``models`` over ``seeds``.

    The clean (model-free) run anchors the slowdown figures; perturbed seeds
    fan out over :func:`repro.perf.sweep.sweep` when ``jobs`` allows.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("ensemble needs at least one seed")
    models = tuple(models)
    track = obs.enabled()
    t_start = time.perf_counter() if track else 0.0
    with obs.span(
        "faults.run_ensemble", plan=plan.notation, seeds=len(seeds)
    ):
        clean = evaluate_seed(
            profile, cluster, plan, (), 0,
            schedule=schedule, warmup_policy=warmup_policy, recompute=recompute,
            enforce_memory=enforce_memory, sim_engine=sim_engine,
        )
        tasks = [
            (
                profile, cluster, plan, models, s,
                schedule, warmup_policy, recompute, enforce_memory, sim_engine,
            )
            for s in seeds
        ]
        outcomes = sweep(evaluate_seed, tasks, jobs=jobs)
    report = EnsembleReport(
        plan_notation=plan.notation,
        clean=clean,
        outcomes=tuple(outcomes),
        makespans=np.array([o.makespan for o in outcomes], dtype=np.float64),
    )
    if track:
        _record_ensemble_metrics(report, time.perf_counter() - t_start)
    return report


def _record_ensemble_metrics(report: EnsembleReport, elapsed: float) -> None:
    """Publish ensemble timing, slowdown spread, and tail convergence."""
    plan = report.plan_notation
    obs.gauge("faults.ensemble_seconds", plan=plan).set(elapsed)
    obs.counter("faults.seeds_evaluated").inc(len(report.outcomes))
    hist = obs.histogram(
        "faults.seed_slowdown",
        buckets=(1.0, 1.02, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0),
    )
    clean_ms = report.clean_makespan
    if clean_ms > 0:
        for o in report.outcomes:
            hist.observe(o.makespan / clean_ms)
    conv = report.quantile_convergence(0.95)
    delta = abs(float(conv[-1]) - float(conv[-2])) if len(conv) >= 2 else 0.0
    obs.gauge("faults.quantile_convergence_delta", plan=plan).set(delta)

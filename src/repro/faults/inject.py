"""Fault injection: compose perturbation models into simulated executions.

The clean path is untouched by design: :func:`perturb_graph` with no models
returns the input graph object itself, and :func:`execute_plan_faulted`
delegates to the exact unperturbed executor pipeline in that case — so every
existing experiment and trace stays byte-identical when injection is off.

With models, a fresh :class:`~repro.sim.engine.TaskGraph` is rebuilt with the
perturbed duration column (same ops, dependencies, resources, priorities,
tags, and memory effects, in the same submission order), then simulated
normally.  Because perturbation is a graph-to-graph transform keyed by one
explicit seed, both simulator engines replay the same perturbed graph and
produce bit-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.models import PerturbationModel
from repro.sim.engine import Op, Simulator, TaskGraph

__all__ = ["perturb_graph", "rebuild_with_durations", "execute_plan_faulted", "FaultedExecution"]


def rebuild_with_durations(graph: TaskGraph, durations: Sequence[float]) -> TaskGraph:
    """Clone ``graph`` with a replaced duration column.

    Ops are re-added in submission order and each op's successor list is
    re-added in its original order, so the clone dispatches identically to
    the original under both engines (the simulators' tie-breaks depend only
    on submission order and per-op successor order).
    """
    if len(durations) != len(graph):
        raise ValueError(
            f"duration column has {len(durations)} entries for "
            f"{len(graph)} ops"
        )
    g = TaskGraph()
    for op, dur in zip(graph.ops(), durations):
        if dur < 0:
            raise ValueError(
                f"perturbed duration for op {op.name!r} is negative ({dur})"
            )
        clone = Op(
            op.name,
            dur,
            resources=op.resources,
            priority=op.priority,
            tags=op.tags,
        )
        clone.mem_effects = list(op.mem_effects)
        g.add(clone)
    for name in graph._order:
        for succ in graph._succ[name]:
            g.add_dep(name, succ)
    return g


def perturb_graph(
    graph: TaskGraph,
    models: Sequence[PerturbationModel],
    seed: int,
) -> TaskGraph:
    """Apply ``models`` in order to ``graph``'s durations, keyed by ``seed``.

    Each model receives its own child generator spawned from one
    :class:`numpy.random.SeedSequence`, so adding a model to the end of the
    list does not shift the draws of the models before it, and the whole
    transform is reproducible from ``(graph, models, seed)`` alone.

    With an empty model list the input graph is returned *unchanged and
    un-copied* — the clean path stays bit-identical.
    """
    models = list(models)
    if not models:
        return graph
    ops = graph.ops()
    durations = [op.duration for op in ops]
    children = np.random.SeedSequence(seed).spawn(len(models))
    for model, child in zip(models, children):
        durations = model.perturb(ops, durations, np.random.default_rng(child))
        if len(durations) != len(ops):
            raise ValueError(
                f"{type(model).__name__}.perturb returned {len(durations)} "
                f"durations for {len(ops)} ops"
            )
    return rebuild_with_durations(graph, durations)


@dataclass
class FaultedExecution:
    """One perturbed simulated iteration plus its provenance."""

    seed: int
    result: "ExecutionResult"
    #: The graph actually simulated (perturbed unless no models were given);
    #: robustness analysis walks it for critical-path extraction.
    graph: TaskGraph

    @property
    def makespan(self) -> float:
        return self.result.iteration_time


def execute_plan_faulted(
    profile,
    cluster,
    plan,
    models: Sequence[PerturbationModel] = (),
    seed: int = 0,
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    enforce_memory: bool = True,
    device_slowdown: dict | None = None,
    sim_engine: str | None = None,
) -> FaultedExecution:
    """Build one iteration's task graph, perturb it, and simulate.

    Mirrors :func:`repro.runtime.execute_plan` exactly, with
    :func:`perturb_graph` interposed between graph construction and
    simulation.  ``models=()`` runs the untouched clean graph.
    """
    from repro.runtime.executor import ExecutionResult, PipelineExecutor

    executor = PipelineExecutor(
        profile,
        cluster,
        plan,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
        enforce_memory=enforce_memory,
        device_slowdown=device_slowdown,
        sim_engine=sim_engine,
    )
    graph = perturb_graph(executor.build_graph(), models, seed)
    res = Simulator(graph, engine=sim_engine).run()
    result = ExecutionResult(
        plan=plan,
        iteration_time=res.makespan,
        trace=res.trace,
        memory=res.memory,
        schedule=executor.schedule,
        recompute=executor.recompute,
    )
    return FaultedExecution(seed=seed, result=result, graph=graph)

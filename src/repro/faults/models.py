"""Deterministic perturbation models for simulated executions.

DAPPLE's synchronous hybrid scheme has latency ``L = Tw + Ts + Te`` that is
hostage to the slowest replica and the slowest stage: one delayed micro-batch
delays every micro-batch behind it, and a persistent straggler gates its whole
stage on every tick.  The models here quantify that sensitivity by perturbing
the *durations* of an already-built :class:`~repro.sim.engine.TaskGraph`
before simulation — the graph's structure (dependencies, resources,
priorities, memory effects) is never touched, only how long each op holds its
resources.

Determinism contract
--------------------
Every model is a pure function of ``(ops, durations, rng)``:

* ops are visited in **submission order**, and random draws are consumed in
  that order, so the perturbed duration column is a deterministic function of
  the graph and the generator state;
* models never construct their own generators — the injection layer
  (:mod:`repro.faults.inject`) derives one child generator per model from a
  single explicit seed via :class:`numpy.random.SeedSequence`;
* because perturbation happens *before* the simulator runs, the reference and
  compiled engines see the same graph and therefore produce bit-identical
  perturbed traces (enforced by ``tests/sim/test_compiled_equivalence.py``).

Four failure modes from the pipeline-parallel literature are modelled:
per-op compute jitter (OS/clock noise), persistent slow devices (PipeDream's
straggler motivation), degraded or flaky links, and transient device failures
with stall-and-recover semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PerturbationModel",
    "ComputeJitter",
    "SlowDevice",
    "DegradedLink",
    "TransientFailure",
    "perturb_durations",
    "COMPUTE_KINDS",
    "COMM_KINDS",
]

#: Tag values marking compute ops in executor-built graphs.
COMPUTE_KINDS = ("F", "B")

#: Tag values marking communication ops in executor-built graphs.
COMM_KINDS = ("send", "sendback")


def _compute_resource_keys(ops) -> list:
    """Device-like resource keys: held by ops tagged as compute.

    Executor-built graphs tag forwards/backwards with ``kind`` in
    :data:`COMPUTE_KINDS`; their (single) resource is the GPU.  Graphs
    without tags fall back to every resource key, so the models stay usable
    on synthetic test DAGs.  Keys are sorted for seed-stable selection.
    """
    keys = {
        r
        for op in ops
        if op.tags.get("kind") in COMPUTE_KINDS
        for r in op.resources
    }
    if not keys:
        keys = {r for op in ops for r in op.resources}
    return sorted(keys, key=str)


def _comm_resource_keys(ops) -> list:
    """Link-like resource keys: held by ops tagged as transfers."""
    keys = {
        r
        for op in ops
        if op.tags.get("kind") in COMM_KINDS
        for r in op.resources
    }
    return sorted(keys, key=str)


class _GraphIndex:
    """Graph-derived selection caches shared across seeds and models.

    :func:`perturb_durations` applies the same models to the same op list
    once per seed; everything that depends only on the graph — kind masks,
    per-resource-key membership, the sorted candidate key lists the victim
    draws index into — is computed once here instead of S times.  All
    arrays preserve submission order, so vectorized draws consume the rng
    in exactly the order the scalar :meth:`PerturbationModel.perturb` loops
    do.
    """

    def __init__(self, ops):
        self.ops = ops
        self._kind_idx: dict = {}
        self._key_mask: dict = {}
        self._key_ops: dict = {}
        self._ops_by_key: dict | None = None
        self._compute_keys: list | None = None
        self._comm_keys: list | None = None
        self._comm_ids: np.ndarray | None = None
        self._comm_key_mask: dict = {}

    def compute_keys(self) -> list:
        if self._compute_keys is None:
            self._compute_keys = _compute_resource_keys(self.ops)
        return self._compute_keys

    def comm_keys(self) -> list:
        if self._comm_keys is None:
            self._comm_keys = _comm_resource_keys(self.ops)
        return self._comm_keys

    def jitter_indices(self, kinds) -> np.ndarray:
        """Indices of ops a :class:`ComputeJitter` with ``kinds`` matches."""
        got = self._kind_idx.get(kinds)
        if got is None:
            if kinds is None:
                hit = [i for i, op in enumerate(self.ops) if op.duration > 0]
            else:
                hit = [
                    i for i, op in enumerate(self.ops)
                    if op.tags.get("kind") in kinds
                ]
            got = self._kind_idx[kinds] = np.array(hit, dtype=np.int64)
        return got

    def _incidence(self) -> dict:
        """resource key -> op indices holding it, submission order.

        Built in ONE pass over the op list; per-key masks and membership
        lists derive from it, so an ensemble whose seeds each draw a fresh
        victim (e.g. 32 stragglers over 128 devices) pays O(incidence)
        once instead of an O(ops) scan per distinct victim."""
        by = self._ops_by_key
        if by is None:
            by = {}
            for i, op in enumerate(self.ops):
                for r in op.resources:
                    lst = by.get(r)
                    if lst is None:
                        by[r] = [i]
                    elif lst[-1] != i:  # once per op, even if a key repeats
                        lst.append(i)
            self._ops_by_key = by
        return by

    def _mask_for(self, key) -> np.ndarray:
        m = self._key_mask.get(key)
        if m is None:
            m = np.zeros(len(self.ops), dtype=bool)
            m[self._incidence().get(key, ())] = True
            self._key_mask[key] = m
        return m

    def holding_any(self, keys) -> np.ndarray:
        """Boolean mask of ops holding any of ``keys``."""
        out = np.zeros(len(self.ops), dtype=bool)
        for key in keys:
            out |= self._mask_for(key)
        return out

    def ops_holding(self, key) -> list:
        """Op indices holding ``key``, submission order."""
        got = self._key_ops.get(key)
        if got is None:
            got = self._key_ops[key] = list(self._incidence().get(key, ()))
        return got

    def comm_ids(self) -> np.ndarray:
        if self._comm_ids is None:
            self._comm_ids = np.array(
                [
                    i for i, op in enumerate(self.ops)
                    if op.tags.get("kind") in COMM_KINDS
                ],
                dtype=np.int64,
            )
        return self._comm_ids

    def comm_indices_on(self, keys) -> np.ndarray:
        """Comm-kind op indices holding any of ``keys``, submission order."""
        ids = self.comm_ids()
        if ids.size == 0:
            return ids
        hit = np.zeros(ids.size, dtype=bool)
        for key in keys:
            m = self._comm_key_mask.get(key)
            if m is None:
                ops = self.ops
                m = np.fromiter(
                    (key in ops[i].resources for i in ids),
                    dtype=bool, count=ids.size,
                )
                self._comm_key_mask[key] = m
            hit |= m
        return ids[hit]


def _draw_victims(candidates, k: int, rng) -> tuple:
    """The shared victim draw: ``rng.choice`` without replacement over the
    sorted candidate list, victims in candidate order.  Must consume the rng
    exactly like the scalar ``pick_victims`` implementations."""
    if not candidates:
        return ()
    k = min(k, len(candidates))
    idx = rng.choice(len(candidates), size=k, replace=False)
    return tuple(candidates[int(i)] for i in sorted(idx))


class PerturbationModel:
    """Base class: a seeded duration transform over a task graph.

    Subclasses implement :meth:`perturb`, mapping the op list (submission
    order) and the current duration column to a new duration column,
    consuming ``rng`` deterministically.  Models must not mutate ``ops`` or
    the input list.

    :meth:`perturb_row` is the batched equivalent — same transform over a
    numpy row, **consuming the rng stream identically** (numpy's sized
    draws produce the same values as the equivalent sequence of scalar
    draws), so ``perturb_durations`` rows are bit-equal to per-seed
    :meth:`perturb` output.  The base implementation round-trips through
    :meth:`perturb`, so third-party models stay correct without a
    vectorized override.
    """

    def perturb(self, ops, durations: list[float], rng: np.random.Generator) -> list[float]:
        raise NotImplementedError

    def perturb_row(self, ops, row: np.ndarray, rng: np.random.Generator,
                    index: _GraphIndex) -> np.ndarray:
        out = np.asarray(
            self.perturb(ops, row.tolist(), rng), dtype=np.float64
        )
        if out.shape != row.shape:
            raise ValueError(
                f"{type(self).__name__}.perturb returned {out.size} "
                f"durations for {row.size} ops"
            )
        return out


@dataclass(frozen=True)
class ComputeJitter(PerturbationModel):
    """Per-op multiplicative compute jitter.

    Each matching op's duration is scaled by an i.i.d. draw:

    * ``distribution="lognormal"`` — factor ``exp(sigma·Z)``, median 1.0;
      right-skewed, matching observed kernel-time noise;
    * ``distribution="uniform"`` — factor uniform in
      ``[1 - sigma, 1 + sigma]`` (``sigma < 1``), symmetric noise.

    ``kinds`` selects ops by their ``kind`` tag (default: compute ops);
    ``kinds=None`` jitters every op with positive duration, which makes the
    model applicable to untagged synthetic DAGs.
    """

    sigma: float = 0.1
    distribution: str = "lognormal"
    kinds: tuple | None = COMPUTE_KINDS

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {self.sigma}")
        if self.distribution not in ("lognormal", "uniform"):
            raise ValueError(
                f"unknown jitter distribution {self.distribution!r} "
                "(lognormal or uniform)"
            )
        if self.distribution == "uniform" and self.sigma >= 1.0:
            raise ValueError(
                f"uniform jitter needs sigma < 1 (factor stays positive), "
                f"got {self.sigma}"
            )

    def _matches(self, op) -> bool:
        if self.kinds is None:
            return op.duration > 0
        return op.tags.get("kind") in self.kinds

    def perturb(self, ops, durations, rng):
        out = list(durations)
        sigma = self.sigma
        lognormal = self.distribution == "lognormal"
        for i, op in enumerate(ops):
            if not self._matches(op):
                continue
            if lognormal:
                factor = float(np.exp(sigma * rng.standard_normal()))
            else:
                factor = float(rng.uniform(1.0 - sigma, 1.0 + sigma))
            out[i] = durations[i] * factor
        return out

    def perturb_row(self, ops, row, rng, index):
        idx = index.jitter_indices(self.kinds)
        out = row.copy()
        if idx.size:
            # Sized draws consume the generator exactly like one scalar
            # draw per matching op, in submission order.
            if self.distribution == "lognormal":
                factors = np.exp(self.sigma * rng.standard_normal(idx.size))
            else:
                factors = rng.uniform(
                    1.0 - self.sigma, 1.0 + self.sigma, idx.size
                )
            out[idx] = row[idx] * factors
        return out


@dataclass(frozen=True)
class SlowDevice(PerturbationModel):
    """Persistent straggler: every op on the victim device(s) runs slower.

    ``num_devices`` victims are drawn (without replacement, seed-stable)
    from the graph's compute resource keys, unless ``devices`` pins them
    explicitly.  Models a thermally-throttled or contended GPU; under
    synchronous micro-batch slicing one slow replica gates its entire
    stage — the paper's tail-effect sensitivity.
    """

    factor: float = 1.5
    num_devices: int = 1
    devices: tuple = ()

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor}")
        if self.num_devices < 1 and not self.devices:
            raise ValueError("need num_devices >= 1 or explicit devices")

    def pick_victims(self, ops, rng) -> tuple:
        if self.devices:
            return tuple(self.devices)
        candidates = _compute_resource_keys(ops)
        if not candidates:
            return ()
        k = min(self.num_devices, len(candidates))
        idx = rng.choice(len(candidates), size=k, replace=False)
        return tuple(candidates[int(i)] for i in sorted(idx))

    def perturb(self, ops, durations, rng):
        victims = set(self.pick_victims(ops, rng))
        if not victims:
            return list(durations)
        out = list(durations)
        for i, op in enumerate(ops):
            if any(r in victims for r in op.resources):
                out[i] = durations[i] * self.factor
        return out

    def perturb_row(self, ops, row, rng, index):
        if self.devices:
            victims = tuple(self.devices)
        else:
            victims = _draw_victims(index.compute_keys(), self.num_devices, rng)
        out = row.copy()
        if victims:
            mask = index.holding_any(victims)
            out[mask] = row[mask] * self.factor
        return out


@dataclass(frozen=True)
class DegradedLink(PerturbationModel):
    """Degraded or flaky communication links.

    ``num_links`` victim links are drawn from the resource keys held by
    transfer ops (``send``/``sendback`` tags), unless pinned via ``links``.
    With ``flaky_prob=None`` every transfer over a victim link is slowed by
    ``factor`` (persistent congestion); with ``flaky_prob=p`` each transfer
    independently hits the slow path with probability ``p`` (intermittent
    packet loss / retransmits).  Draws are consumed for every transfer op on
    a victim link, in submission order.
    """

    factor: float = 2.0
    num_links: int = 1
    flaky_prob: float | None = None
    links: tuple = ()

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"link degradation factor must be >= 1, got {self.factor}")
        if self.flaky_prob is not None and not 0.0 <= self.flaky_prob <= 1.0:
            raise ValueError(f"flaky_prob must be in [0, 1], got {self.flaky_prob}")

    def pick_victims(self, ops, rng) -> tuple:
        if self.links:
            return tuple(self.links)
        candidates = _comm_resource_keys(ops)
        if not candidates:
            return ()
        k = min(self.num_links, len(candidates))
        idx = rng.choice(len(candidates), size=k, replace=False)
        return tuple(candidates[int(i)] for i in sorted(idx))

    def perturb(self, ops, durations, rng):
        victims = set(self.pick_victims(ops, rng))
        if not victims:
            return list(durations)
        out = list(durations)
        for i, op in enumerate(ops):
            if op.tags.get("kind") not in COMM_KINDS:
                continue
            if not any(r in victims for r in op.resources):
                continue
            if self.flaky_prob is None or rng.random() < self.flaky_prob:
                out[i] = durations[i] * self.factor
        return out

    def perturb_row(self, ops, row, rng, index):
        if self.links:
            victims = tuple(self.links)
        else:
            victims = _draw_victims(index.comm_keys(), self.num_links, rng)
        out = row.copy()
        if not victims:
            return out
        idx = index.comm_indices_on(victims)
        if idx.size == 0:
            return out
        if self.flaky_prob is None:
            out[idx] = row[idx] * self.factor
        else:
            # One uniform draw per candidate transfer, submission order —
            # the same stream the scalar loop consumes.
            hit = idx[rng.random(idx.size) < self.flaky_prob]
            out[hit] = row[hit] * self.factor
        return out


@dataclass(frozen=True)
class TransientFailure(PerturbationModel):
    """Transient device failure with stall-and-recover semantics.

    The victim device freezes for ``stall`` seconds at some point during the
    iteration and then resumes: the op running when the failure strikes
    holds its resources for its own duration *plus* the stall (checkpoint
    reload / NCCL re-establish / driver reset), and everything scheduled
    behind it waits — exactly how a synchronous pipeline experiences a
    recoverable fault.

    ``position=None`` picks the stalled op uniformly among the victim
    device's ops; ``position=q`` (in ``[0, 1]``) pins it at that quantile of
    the device's submission-ordered op list (0 = first op, 1 = last), which
    makes "failure during warm-up" vs "failure during drain" scriptable.
    """

    stall: float = 1.0
    num_failures: int = 1
    devices: tuple = ()
    position: float | None = None

    def __post_init__(self) -> None:
        if self.stall < 0:
            raise ValueError(f"stall must be >= 0, got {self.stall}")
        if self.position is not None and not 0.0 <= self.position <= 1.0:
            raise ValueError(f"position must be in [0, 1], got {self.position}")
        if self.num_failures < 1 and not self.devices:
            raise ValueError("need num_failures >= 1 or explicit devices")

    def pick_victims(self, ops, rng) -> tuple:
        if self.devices:
            return tuple(self.devices)
        candidates = _compute_resource_keys(ops)
        if not candidates:
            return ()
        k = min(self.num_failures, len(candidates))
        idx = rng.choice(len(candidates), size=k, replace=False)
        return tuple(candidates[int(i)] for i in sorted(idx))

    def perturb(self, ops, durations, rng):
        victims = self.pick_victims(ops, rng)
        if not victims or self.stall == 0.0:
            return list(durations)
        out = list(durations)
        for victim in victims:
            device_ops = [
                i for i, op in enumerate(ops) if victim in op.resources
            ]
            if not device_ops:
                continue
            if self.position is None:
                k = int(rng.integers(len(device_ops)))
            else:
                k = min(
                    int(self.position * len(device_ops)), len(device_ops) - 1
                )
            out[device_ops[k]] += self.stall
        return out

    def perturb_row(self, ops, row, rng, index):
        if self.devices:
            victims = tuple(self.devices)
        else:
            victims = _draw_victims(
                index.compute_keys(), self.num_failures, rng
            )
        out = row.copy()
        if not victims or self.stall == 0.0:
            return out
        for victim in victims:
            device_ops = index.ops_holding(victim)
            if not device_ops:
                continue
            if self.position is None:
                k = int(rng.integers(len(device_ops)))
            else:
                k = min(
                    int(self.position * len(device_ops)), len(device_ops) - 1
                )
            out[device_ops[k]] += self.stall
        return out


def perturb_durations(graph, models, seeds) -> np.ndarray:
    """Perturbed duration matrix: one row per seed, one column per op.

    Row ``s`` is bit-identical to the duration column that
    :func:`repro.faults.inject.perturb_graph` would bake into its rebuilt
    graph for ``seeds[s]`` — same ``SeedSequence(seed).spawn(len(models))``
    child-generator layout, same draw order within each model — but without
    rebuilding ``len(seeds)`` graphs.  The batched simulation engine
    (:func:`repro.sim.batched.run_batched`) consumes this matrix directly.

    One :class:`_GraphIndex` is built up front and shared across all rows,
    so per-seed cost is just the random draws plus a few vectorized
    multiplies rather than repeated O(ops) python scans.
    """
    ops = graph.ops()
    models = list(models)
    seeds = [int(s) for s in seeds]
    base = np.array([op.duration for op in ops], dtype=np.float64)
    out = np.empty((len(seeds), base.size), dtype=np.float64)
    if not models or not ops:
        out[:] = base
        return out
    index = _GraphIndex(ops)
    for s, seed in enumerate(seeds):
        row = base
        children = np.random.SeedSequence(seed).spawn(len(models))
        for model, child in zip(models, children):
            row = model.perturb_row(
                ops, row, np.random.default_rng(child), index
            )
            if row.shape != base.shape:
                raise ValueError(
                    f"{type(model).__name__}.perturb_row returned "
                    f"{row.shape[0]} durations for {len(ops)} ops"
                )
        out[s] = row
    return out

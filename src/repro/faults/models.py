"""Deterministic perturbation models for simulated executions.

DAPPLE's synchronous hybrid scheme has latency ``L = Tw + Ts + Te`` that is
hostage to the slowest replica and the slowest stage: one delayed micro-batch
delays every micro-batch behind it, and a persistent straggler gates its whole
stage on every tick.  The models here quantify that sensitivity by perturbing
the *durations* of an already-built :class:`~repro.sim.engine.TaskGraph`
before simulation — the graph's structure (dependencies, resources,
priorities, memory effects) is never touched, only how long each op holds its
resources.

Determinism contract
--------------------
Every model is a pure function of ``(ops, durations, rng)``:

* ops are visited in **submission order**, and random draws are consumed in
  that order, so the perturbed duration column is a deterministic function of
  the graph and the generator state;
* models never construct their own generators — the injection layer
  (:mod:`repro.faults.inject`) derives one child generator per model from a
  single explicit seed via :class:`numpy.random.SeedSequence`;
* because perturbation happens *before* the simulator runs, the reference and
  compiled engines see the same graph and therefore produce bit-identical
  perturbed traces (enforced by ``tests/sim/test_compiled_equivalence.py``).

Four failure modes from the pipeline-parallel literature are modelled:
per-op compute jitter (OS/clock noise), persistent slow devices (PipeDream's
straggler motivation), degraded or flaky links, and transient device failures
with stall-and-recover semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PerturbationModel",
    "ComputeJitter",
    "SlowDevice",
    "DegradedLink",
    "TransientFailure",
    "COMPUTE_KINDS",
    "COMM_KINDS",
]

#: Tag values marking compute ops in executor-built graphs.
COMPUTE_KINDS = ("F", "B")

#: Tag values marking communication ops in executor-built graphs.
COMM_KINDS = ("send", "sendback")


def _compute_resource_keys(ops) -> list:
    """Device-like resource keys: held by ops tagged as compute.

    Executor-built graphs tag forwards/backwards with ``kind`` in
    :data:`COMPUTE_KINDS`; their (single) resource is the GPU.  Graphs
    without tags fall back to every resource key, so the models stay usable
    on synthetic test DAGs.  Keys are sorted for seed-stable selection.
    """
    keys = {
        r
        for op in ops
        if op.tags.get("kind") in COMPUTE_KINDS
        for r in op.resources
    }
    if not keys:
        keys = {r for op in ops for r in op.resources}
    return sorted(keys, key=str)


def _comm_resource_keys(ops) -> list:
    """Link-like resource keys: held by ops tagged as transfers."""
    keys = {
        r
        for op in ops
        if op.tags.get("kind") in COMM_KINDS
        for r in op.resources
    }
    return sorted(keys, key=str)


class PerturbationModel:
    """Base class: a seeded duration transform over a task graph.

    Subclasses implement :meth:`perturb`, mapping the op list (submission
    order) and the current duration column to a new duration column,
    consuming ``rng`` deterministically.  Models must not mutate ``ops`` or
    the input list.
    """

    def perturb(self, ops, durations: list[float], rng: np.random.Generator) -> list[float]:
        raise NotImplementedError


@dataclass(frozen=True)
class ComputeJitter(PerturbationModel):
    """Per-op multiplicative compute jitter.

    Each matching op's duration is scaled by an i.i.d. draw:

    * ``distribution="lognormal"`` — factor ``exp(sigma·Z)``, median 1.0;
      right-skewed, matching observed kernel-time noise;
    * ``distribution="uniform"`` — factor uniform in
      ``[1 - sigma, 1 + sigma]`` (``sigma < 1``), symmetric noise.

    ``kinds`` selects ops by their ``kind`` tag (default: compute ops);
    ``kinds=None`` jitters every op with positive duration, which makes the
    model applicable to untagged synthetic DAGs.
    """

    sigma: float = 0.1
    distribution: str = "lognormal"
    kinds: tuple | None = COMPUTE_KINDS

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {self.sigma}")
        if self.distribution not in ("lognormal", "uniform"):
            raise ValueError(
                f"unknown jitter distribution {self.distribution!r} "
                "(lognormal or uniform)"
            )
        if self.distribution == "uniform" and self.sigma >= 1.0:
            raise ValueError(
                f"uniform jitter needs sigma < 1 (factor stays positive), "
                f"got {self.sigma}"
            )

    def _matches(self, op) -> bool:
        if self.kinds is None:
            return op.duration > 0
        return op.tags.get("kind") in self.kinds

    def perturb(self, ops, durations, rng):
        out = list(durations)
        sigma = self.sigma
        lognormal = self.distribution == "lognormal"
        for i, op in enumerate(ops):
            if not self._matches(op):
                continue
            if lognormal:
                factor = float(np.exp(sigma * rng.standard_normal()))
            else:
                factor = float(rng.uniform(1.0 - sigma, 1.0 + sigma))
            out[i] = durations[i] * factor
        return out


@dataclass(frozen=True)
class SlowDevice(PerturbationModel):
    """Persistent straggler: every op on the victim device(s) runs slower.

    ``num_devices`` victims are drawn (without replacement, seed-stable)
    from the graph's compute resource keys, unless ``devices`` pins them
    explicitly.  Models a thermally-throttled or contended GPU; under
    synchronous micro-batch slicing one slow replica gates its entire
    stage — the paper's tail-effect sensitivity.
    """

    factor: float = 1.5
    num_devices: int = 1
    devices: tuple = ()

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor}")
        if self.num_devices < 1 and not self.devices:
            raise ValueError("need num_devices >= 1 or explicit devices")

    def pick_victims(self, ops, rng) -> tuple:
        if self.devices:
            return tuple(self.devices)
        candidates = _compute_resource_keys(ops)
        if not candidates:
            return ()
        k = min(self.num_devices, len(candidates))
        idx = rng.choice(len(candidates), size=k, replace=False)
        return tuple(candidates[int(i)] for i in sorted(idx))

    def perturb(self, ops, durations, rng):
        victims = set(self.pick_victims(ops, rng))
        if not victims:
            return list(durations)
        out = list(durations)
        for i, op in enumerate(ops):
            if any(r in victims for r in op.resources):
                out[i] = durations[i] * self.factor
        return out


@dataclass(frozen=True)
class DegradedLink(PerturbationModel):
    """Degraded or flaky communication links.

    ``num_links`` victim links are drawn from the resource keys held by
    transfer ops (``send``/``sendback`` tags), unless pinned via ``links``.
    With ``flaky_prob=None`` every transfer over a victim link is slowed by
    ``factor`` (persistent congestion); with ``flaky_prob=p`` each transfer
    independently hits the slow path with probability ``p`` (intermittent
    packet loss / retransmits).  Draws are consumed for every transfer op on
    a victim link, in submission order.
    """

    factor: float = 2.0
    num_links: int = 1
    flaky_prob: float | None = None
    links: tuple = ()

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"link degradation factor must be >= 1, got {self.factor}")
        if self.flaky_prob is not None and not 0.0 <= self.flaky_prob <= 1.0:
            raise ValueError(f"flaky_prob must be in [0, 1], got {self.flaky_prob}")

    def pick_victims(self, ops, rng) -> tuple:
        if self.links:
            return tuple(self.links)
        candidates = _comm_resource_keys(ops)
        if not candidates:
            return ()
        k = min(self.num_links, len(candidates))
        idx = rng.choice(len(candidates), size=k, replace=False)
        return tuple(candidates[int(i)] for i in sorted(idx))

    def perturb(self, ops, durations, rng):
        victims = set(self.pick_victims(ops, rng))
        if not victims:
            return list(durations)
        out = list(durations)
        for i, op in enumerate(ops):
            if op.tags.get("kind") not in COMM_KINDS:
                continue
            if not any(r in victims for r in op.resources):
                continue
            if self.flaky_prob is None or rng.random() < self.flaky_prob:
                out[i] = durations[i] * self.factor
        return out


@dataclass(frozen=True)
class TransientFailure(PerturbationModel):
    """Transient device failure with stall-and-recover semantics.

    The victim device freezes for ``stall`` seconds at some point during the
    iteration and then resumes: the op running when the failure strikes
    holds its resources for its own duration *plus* the stall (checkpoint
    reload / NCCL re-establish / driver reset), and everything scheduled
    behind it waits — exactly how a synchronous pipeline experiences a
    recoverable fault.

    ``position=None`` picks the stalled op uniformly among the victim
    device's ops; ``position=q`` (in ``[0, 1]``) pins it at that quantile of
    the device's submission-ordered op list (0 = first op, 1 = last), which
    makes "failure during warm-up" vs "failure during drain" scriptable.
    """

    stall: float = 1.0
    num_failures: int = 1
    devices: tuple = ()
    position: float | None = None

    def __post_init__(self) -> None:
        if self.stall < 0:
            raise ValueError(f"stall must be >= 0, got {self.stall}")
        if self.position is not None and not 0.0 <= self.position <= 1.0:
            raise ValueError(f"position must be in [0, 1], got {self.position}")
        if self.num_failures < 1 and not self.devices:
            raise ValueError("need num_failures >= 1 or explicit devices")

    def pick_victims(self, ops, rng) -> tuple:
        if self.devices:
            return tuple(self.devices)
        candidates = _compute_resource_keys(ops)
        if not candidates:
            return ()
        k = min(self.num_failures, len(candidates))
        idx = rng.choice(len(candidates), size=k, replace=False)
        return tuple(candidates[int(i)] for i in sorted(idx))

    def perturb(self, ops, durations, rng):
        victims = self.pick_victims(ops, rng)
        if not victims or self.stall == 0.0:
            return list(durations)
        out = list(durations)
        for victim in victims:
            device_ops = [
                i for i, op in enumerate(ops) if victim in op.resources
            ]
            if not device_ops:
                continue
            if self.position is None:
                k = int(rng.integers(len(device_ops)))
            else:
                k = min(
                    int(self.position * len(device_ops)), len(device_ops) - 1
                )
            out[device_ops[k]] += self.stall
        return out

"""Robust planning: pick plans by quantile makespan under perturbation.

The planner's objective is the *clean* analytical latency — the fastest plan
on paper.  Under compute jitter, stragglers, or degraded links, that ranking
can flip: a deeper pipeline with small stages on few replicas is more exposed
to a single slow device than a replication-heavy plan whose work is averaged
across devices.  :func:`robust_plan` quantifies this by re-scoring the
planner's top-K plans (``PlannerConfig.keep_top_k``) under a Monte-Carlo
perturbation ensemble and selecting by a makespan *quantile* (default p95)
instead of the clean score — the classic risk-averse objective.

The result reports every candidate's clean and quantile makespans, so
callers can see both the robust choice and whether it differs from the
clean-optimal plan (the interesting regime).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.planner import Planner, PlannerConfig
from repro.faults.analysis import EnsembleReport, run_ensembles

__all__ = ["CandidateRobustness", "RobustPlanResult", "robust_plan"]


@dataclass(frozen=True)
class CandidateRobustness:
    """One candidate plan's clean and perturbed scores."""

    plan: "ParallelPlan"
    #: Clean simulated makespan (no perturbation).
    clean: float
    #: Ensemble quantile makespan (the robust objective).
    quantile: float
    report: EnsembleReport

    @property
    def notation(self) -> str:
        return f"{self.plan.notation}|{self.plan.split_notation}"


@dataclass(frozen=True)
class RobustPlanResult:
    """Outcome of a robust plan selection."""

    #: Quantile used as the robust objective (e.g. 0.95).
    q: float
    #: Candidates ascending by quantile makespan (first = robust choice).
    candidates: tuple

    @property
    def robust(self) -> CandidateRobustness:
        """The quantile-optimal candidate."""
        return self.candidates[0]

    @property
    def clean_optimal(self) -> CandidateRobustness:
        """The candidate with the best clean simulated makespan."""
        return min(self.candidates, key=lambda c: c.clean)

    @property
    def selection_changed(self) -> bool:
        """True when robustness flips the winner away from clean-optimal."""
        return self.robust.notation != self.clean_optimal.notation


def robust_plan(
    profile,
    cluster,
    global_batch_size: int,
    models,
    seeds: Sequence[int],
    q: float = 0.95,
    top_k: int = 5,
    config: PlannerConfig | None = None,
    schedule="dapple",
    warmup_policy: str = "PA",
    recompute=False,
    sim_engine: str | None = None,
    jobs: int | None = 1,
) -> RobustPlanResult:
    """Search top-K plans, re-score each under the ensemble, pick by ``q``.

    The whole S seeds × K plans re-scoring grid is one
    :func:`~repro.faults.analysis.run_ensembles` call — with the default
    batched engine each candidate costs a single multi-scenario pass rather
    than S + 1 independent simulations.  Ties on the quantile break toward
    the better clean makespan, then planner order, so the selection is
    deterministic.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    cfg = replace(config or PlannerConfig(), keep_top_k=top_k)
    result = Planner(profile, cluster, global_batch_size, cfg).search()
    plans = [plan for _, plan in result.top_plans]
    if not any(
        p.notation == result.plan.notation
        and p.split_notation == result.plan.split_notation
        for p in plans
    ):
        plans.insert(0, result.plan)

    reports = run_ensembles(
        profile,
        cluster,
        plans,
        models,
        seeds,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
        sim_engine=sim_engine,
        jobs=jobs,
    )
    scored = [
        CandidateRobustness(
            plan=plan,
            clean=report.clean_makespan,
            quantile=report.quantile(q),
            report=report,
        )
        for plan, report in zip(plans, reports)
    ]
    order = sorted(
        range(len(scored)), key=lambda i: (scored[i].quantile, scored[i].clean, i)
    )
    return RobustPlanResult(q=q, candidates=tuple(scored[i] for i in order))

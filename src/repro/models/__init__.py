"""Benchmark model zoo: layer graphs calibrated to the paper's Tables I & II."""

from repro.models.graph import (
    FP32,
    GRAD_BYTES_PER_PARAM,
    OPTIMIZER_STATE_BYTES,
    LayerGraph,
    LayerSpec,
    uniform_model,
)
from repro.models.amoebanet import amoebanet36, amoebanet_layers
from repro.models.bert import bert48, bert_large, bert_layers
from repro.models.gnmt import gnmt16, gnmt_layers
from repro.models.gpt import gpt2_medium, gpt2_xl, gpt_layers
from repro.models.resnet import resnet50
from repro.models.vgg import vgg19
from repro.models.xlnet import xlnet36, xlnet_layers
from repro.models.zoo import (
    BENCHMARK_MODELS,
    PAPER_FIGURES,
    PaperFigures,
    get_model,
    model_names,
)

__all__ = [
    "FP32",
    "GRAD_BYTES_PER_PARAM",
    "OPTIMIZER_STATE_BYTES",
    "LayerGraph",
    "LayerSpec",
    "uniform_model",
    "amoebanet36",
    "amoebanet_layers",
    "bert48",
    "bert_large",
    "bert_layers",
    "gnmt16",
    "gnmt_layers",
    "gpt2_medium",
    "gpt2_xl",
    "gpt_layers",
    "resnet50",
    "vgg19",
    "xlnet36",
    "xlnet_layers",
    "BENCHMARK_MODELS",
    "PAPER_FIGURES",
    "PaperFigures",
    "get_model",
    "model_names",
]

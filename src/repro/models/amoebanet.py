"""AmoebaNet-36 layer graph (evolved NASNet-style cells).

The paper's largest benchmark: 933 M parameters across 36 normal cells with
two strongly *non-uniform* distributions (§VI-C):

* the last third of the cells holds ~73 % of all parameters;
* per-cell compute grows with depth, by up to ~40 % overall.

Both gradients (3.7 GB) and per-sample activations are huge; batch size 1
already OOMs a single 16 GB V100, so data parallelism is infeasible and the
planner must pipeline.  We synthesize the cell sequence with a geometric
parameter ramp and a linear compute ramp matching those two facts.
"""

from __future__ import annotations

import numpy as np

from repro.models.graph import FP32, LayerGraph, LayerSpec

#: Geometric ratio of the per-cell parameter ramp; chosen so the last 12 of
#: 36 cells hold ≈73 % of parameters (paper §VI-C).
PARAM_RAMP = 1.115

#: Per-cell compute grows linearly to 1.4× the first cell (paper: "overall
#: maximum increase is within 40%").
COMPUTE_RAMP = 1.4


def amoebanet_layers(
    num_cells: int = 36,
    total_params: float = 933e6,
    total_fwd_flops: float = 80e9,
    # NASNet-style cells consume the two previous cells' outputs, so the
    # boundary carries both (11.2 MB/sample, Table I).
    boundary_act_bytes: float = 11.2e6,
    stored_per_cell_bytes: float = 330e6,
    name: str | None = None,
) -> LayerGraph:
    """Build an AmoebaNet-style graph of ``num_cells`` normal cells.

    ``total_fwd_flops`` is per sample; defaults reproduce the paper's
    AmoebaNet-36 profile (Table II: 933 M params, 20 GB at batch 1).
    """
    weights = PARAM_RAMP ** np.arange(num_cells)
    cell_params = total_params * 0.97 * weights / weights.sum()
    flop_ramp = np.linspace(1.0, COMPUTE_RAMP, num_cells)
    cell_flops = total_fwd_flops * 0.97 * flop_ramp / flop_ramp.sum()

    layers: list[LayerSpec] = [
        LayerSpec(
            name="stem",
            flops_fwd=total_fwd_flops * 0.02,
            params=int(total_params * 0.01),
            activation_out_bytes=boundary_act_bytes,
            stored_bytes=stored_per_cell_bytes / 2,
        )
    ]
    for i in range(num_cells):
        layers.append(
            LayerSpec(
                name=f"cell{i}",
                flops_fwd=float(cell_flops[i]),
                params=int(cell_params[i]),
                activation_out_bytes=boundary_act_bytes,
                stored_bytes=stored_per_cell_bytes,
            )
        )
    layers.append(
        LayerSpec(
            name="classifier",
            flops_fwd=total_fwd_flops * 0.01,
            params=int(total_params * 0.02),
            activation_out_bytes=1000 * FP32,
            stored_bytes=stored_per_cell_bytes / 4,
        )
    )
    return LayerGraph(
        name=name or f"AmoebaNet-{num_cells}",
        layers=layers,
        profile_batch=1,
        optimizer="rmsprop",
    )


def amoebanet36() -> LayerGraph:
    """The paper's AmoebaNet-36 benchmark (933 M parameters)."""
    return amoebanet_layers(36)

"""BERT layer graphs (Devlin et al.), scalable in depth.

``bert48()`` is the paper's 640 M-parameter language-model benchmark
(48 encoder layers, hidden 1024, SQuAD-style sequence length 384).
``bert_large()`` (24 layers) is used by the Table VII planner comparison,
and ``bert_layers(L)`` scales depth for the Table VIII weak-scaling study —
the paper trains up to BERT-428 (5.5 B parameters) on an 8-GPU pipeline.
"""

from __future__ import annotations

from repro.models.blocks import embedding_layer, fc_layer, transformer_encoder_layer
from repro.models.graph import LayerGraph


def bert_layers(
    num_layers: int,
    hidden: int = 1024,
    heads: int = 16,
    seq_len: int = 384,
    vocab: int = 30522,
    profile_batch: int = 2,
    name: str | None = None,
) -> LayerGraph:
    """Build a BERT-style graph with ``num_layers`` encoder layers."""
    layers = [
        embedding_layer(
            "embedding",
            vocab=vocab,
            hidden=hidden,
            seq_len=seq_len,
            extra_params=(512 + 2) * hidden,  # position + segment tables
        )
    ]
    layers.extend(
        transformer_encoder_layer(f"encoder{i}", hidden=hidden, seq_len=seq_len, heads=heads)
        for i in range(num_layers)
    )
    layers.append(fc_layer("head", hidden, hidden))
    return LayerGraph(
        name=name or f"BERT-{num_layers}",
        layers=layers,
        profile_batch=profile_batch,
        optimizer="adam",
    )


def bert48() -> LayerGraph:
    """The paper's BERT-48 benchmark (~640 M parameters)."""
    return bert_layers(48)


def bert_large() -> LayerGraph:
    """BERT-Large (24 encoder layers, ~340 M parameters) for Table VII."""
    return bert_layers(24, name="BERT-Large")

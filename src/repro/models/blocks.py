"""Reusable layer constructors: conv, transformer encoder, LSTM.

Each helper computes FLOPs (multiply-accumulate counted as 2 FLOPs),
parameter counts, boundary activation sizes, and stored-activation sizes
from first principles, so model builders read like architecture definitions
rather than tables of magic numbers.
"""

from __future__ import annotations

from repro.models.graph import FP32, LayerSpec


def conv_layer(
    name: str,
    in_ch: int,
    out_ch: int,
    spatial: int,
    kernel: int = 3,
    out_spatial: int | None = None,
    store_factor: float = 2.0,
) -> LayerSpec:
    """3×3 (or k×k) convolution producing an ``out_spatial²×out_ch`` map.

    ``store_factor`` accounts for pre-activation + post-activation copies
    retained for backward.
    """
    out_spatial = out_spatial if out_spatial is not None else spatial
    flops = 2.0 * kernel * kernel * in_ch * out_ch * out_spatial * out_spatial
    params = kernel * kernel * in_ch * out_ch + out_ch
    act = out_spatial * out_spatial * out_ch * FP32
    return LayerSpec(
        name=name,
        flops_fwd=flops,
        params=params,
        activation_out_bytes=act,
        stored_bytes=store_factor * act,
    )


def pool_layer(name: str, channels: int, out_spatial: int) -> LayerSpec:
    """2×2 max-pool; negligible FLOPs, halves the activation map."""
    act = out_spatial * out_spatial * channels * FP32
    return LayerSpec(
        name=name,
        flops_fwd=channels * out_spatial * out_spatial * 4.0,
        params=0,
        activation_out_bytes=act,
        stored_bytes=act,  # argmax indices / input reference
        bwd_flops_ratio=1.0,
    )


def fc_layer(name: str, in_dim: int, out_dim: int, store_factor: float = 1.0) -> LayerSpec:
    """Fully-connected layer."""
    return LayerSpec(
        name=name,
        flops_fwd=2.0 * in_dim * out_dim,
        params=in_dim * out_dim + out_dim,
        activation_out_bytes=out_dim * FP32,
        stored_bytes=store_factor * (in_dim + out_dim) * FP32,
    )


def embedding_layer(
    name: str, vocab: int, hidden: int, seq_len: int, extra_params: int = 0
) -> LayerSpec:
    """Token embedding lookup: parameter-heavy, compute-light."""
    return LayerSpec(
        name=name,
        flops_fwd=2.0 * seq_len * hidden,  # lookup + scale/add position
        params=vocab * hidden + extra_params,
        activation_out_bytes=seq_len * hidden * FP32,
        stored_bytes=seq_len * hidden * FP32,
        bwd_flops_ratio=1.0,
    )


def transformer_encoder_layer(
    name: str,
    hidden: int,
    seq_len: int,
    heads: int,
    ff_mult: int = 4,
    flops_scale: float = 1.0,
    param_scale: float = 1.0,
    streams: int = 1,
    stored_scale: float = 1.0,
) -> LayerSpec:
    """Standard post-LN transformer encoder layer.

    FLOPs: QKV+output projections ``8·s·h²`` + attention ``4·s²·h`` +
    feed-forward ``2·s·h·(ff·h)·2 = 4·ff·s·h²``; with ff=4 the projection
    total is the familiar ``24·s·h²``.  ``streams`` > 1 models XLNet's
    two-stream attention (doubles activations and FLOPs, shares weights).
    """
    proj_flops = 8.0 * seq_len * hidden * hidden
    attn_flops = 4.0 * seq_len * seq_len * hidden
    ff_flops = 4.0 * ff_mult * seq_len * hidden * hidden
    flops = (proj_flops + attn_flops + ff_flops) * flops_scale * streams

    params = int((4 * hidden * hidden + 2 * ff_mult * hidden * hidden + 9 * hidden) * param_scale)

    act = streams * seq_len * hidden * FP32
    # Resident tensors for backward: attention scores + probabilities +
    # dropout mask (1.5·heads·s² after mask packing), QKV/attn-out/LN
    # copies and FF intermediates (~(ff+10)·s·h in fp32).
    stored = (
        (1.5 * heads * seq_len * seq_len + (ff_mult + 10) * seq_len * hidden)
        * FP32
        * streams
        * stored_scale
    )
    return LayerSpec(
        name=name,
        flops_fwd=flops,
        params=params,
        activation_out_bytes=act,
        stored_bytes=stored,
    )


def lstm_layer(
    name: str,
    hidden: int,
    seq_len: int,
    directions: int = 1,
    attention: bool = False,
) -> LayerSpec:
    """(Bi)LSTM layer, optionally with a Luong-style attention block.

    FLOPs per step: 8·h² MACs for the four gates → ``2·8·s·h²``; attention
    adds roughly ``4·s·h²`` projections + ``4·s²·h`` scores.
    """
    flops = 2.0 * 8.0 * seq_len * hidden * hidden * directions
    params = directions * (8 * hidden * hidden + 8 * hidden)
    if attention:
        flops += 4.0 * seq_len * hidden * hidden + 4.0 * seq_len * seq_len * hidden
        params += 4 * hidden * hidden
    # Boundary: hidden states for all steps (plus cell state snapshot).
    act = 2.0 * seq_len * hidden * FP32 * directions
    stored = (4 + 2) * seq_len * hidden * FP32 * directions  # gates + h/c
    if attention:
        stored += seq_len * seq_len * FP32
    return LayerSpec(
        name=name,
        flops_fwd=flops,
        params=params,
        activation_out_bytes=act,
        stored_bytes=stored,
    )

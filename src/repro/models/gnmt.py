"""GNMT-16 layer graph (Wu et al.): 8 encoder + 8 decoder LSTM layers.

The paper's key observation for GNMT (§VI-C): encoder and decoder layers are
*unbalanced* — a decoder layer (with attention) costs about 1.45× an encoder
layer — so the planner's best 2-stage split is 9:7, one layer past the even
midpoint, rather than 8:8.  Embeddings fold into the first encoder/decoder
units and the softmax projection into the last decoder unit, matching the
paper's 16-layer planning granularity.
"""

from __future__ import annotations

import dataclasses

from repro.models.blocks import lstm_layer
from repro.models.graph import FP32, LayerGraph, LayerSpec

#: Decoder/encoder per-layer compute ratio reported in the paper (§VI-C).
DECODER_COMPUTE_RATIO = 1.45

#: GNMT trains with sampled softmax (Wu et al. §5), so the projection's
#: training-time compute uses a sampled vocabulary, keeping the last
#: decoder unit's cost near the other decoder layers — the paper describes
#: GNMT's layers as having "roughly the same scale of computations".
SOFTMAX_SAMPLE_VOCAB = 4096


def gnmt_layers(
    num_layers: int = 16,
    hidden: int = 1024,
    seq_len: int = 50,
    vocab: int = 32000,
    name: str | None = None,
) -> LayerGraph:
    """Build a GNMT-style graph: first half encoder, second half decoder."""
    if num_layers % 2 != 0:
        raise ValueError(f"GNMT needs an even layer count, got {num_layers}")
    half = num_layers // 2
    embed_params = vocab * hidden
    softmax_params = vocab * hidden + vocab

    layers: list[LayerSpec] = []
    for i in range(half):
        spec = lstm_layer(f"encoder{i}", hidden, seq_len, directions=2 if i == 0 else 1)
        if i == 0:  # fold source embedding into the first encoder unit
            spec = dataclasses.replace(spec, params=spec.params + embed_params)
        layers.append(spec)
    for i in range(half):
        spec = lstm_layer(f"decoder{i}", hidden, seq_len, attention=True)
        # Calibrate decoder compute to the paper's measured 1.45× ratio.
        enc_flops = layers[1].flops_fwd
        spec = dataclasses.replace(spec, flops_fwd=enc_flops * DECODER_COMPUTE_RATIO)
        extra = 0
        if i == 0:  # target embedding
            extra += embed_params
        if i == half - 1:  # sampled-softmax projection + loss outputs
            extra += softmax_params
            spec = dataclasses.replace(
                spec,
                params=spec.params + extra,
                flops_fwd=spec.flops_fwd + 2.0 * seq_len * SOFTMAX_SAMPLE_VOCAB * hidden,
                activation_out_bytes=seq_len * SOFTMAX_SAMPLE_VOCAB * FP32,
            )
            layers.append(spec)
            continue
        spec = dataclasses.replace(spec, params=spec.params + extra)
        layers.append(spec)
    return LayerGraph(
        name=name or f"GNMT-{num_layers}",
        layers=layers,
        profile_batch=64,
        optimizer="adam",
    )


def gnmt16() -> LayerGraph:
    """The paper's GNMT-16 benchmark (~290 M parameters)."""
    return gnmt_layers(16)

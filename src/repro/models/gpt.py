"""GPT-style decoder stacks (not in the paper; zoo extension).

Decoder-only language models are the workload that made pipeline
parallelism mainstream after the paper's publication; adding them to the
zoo lets users plan modern LLM shapes with the same machinery.  Layer
structure reuses the calibrated transformer block (causal attention has
the same cost profile at this granularity).
"""

from __future__ import annotations

from repro.models.blocks import embedding_layer, fc_layer, transformer_encoder_layer
from repro.models.graph import LayerGraph


def gpt_layers(
    num_layers: int,
    hidden: int,
    heads: int,
    seq_len: int = 1024,
    vocab: int = 50257,
    profile_batch: int = 1,
    name: str | None = None,
) -> LayerGraph:
    """Build a GPT-style decoder stack at planner granularity."""
    layers = [
        embedding_layer(
            "embedding", vocab=vocab, hidden=hidden, seq_len=seq_len,
            extra_params=seq_len * hidden,
        )
    ]
    layers.extend(
        transformer_encoder_layer(f"block{i}", hidden=hidden, seq_len=seq_len,
                                  heads=heads)
        for i in range(num_layers)
    )
    layers.append(fc_layer("ln_f", hidden, hidden))
    return LayerGraph(
        name=name or f"GPT-{num_layers}x{hidden}",
        layers=layers,
        profile_batch=profile_batch,
        optimizer="adam",
    )


def gpt2_medium() -> LayerGraph:
    """GPT-2 Medium: 24 layers, hidden 1024 (~350M params)."""
    return gpt_layers(24, 1024, 16, name="GPT2-Medium")


def gpt2_xl() -> LayerGraph:
    """GPT-2 XL: 48 layers, hidden 1600 (~1.5B params)."""
    return gpt_layers(48, 1600, 25, name="GPT2-XL")

"""Layer-graph representation of benchmark models.

The DAPPLE planner treats a DNN as a *sequence of layers*, each with
per-sample forward FLOPs, a parameter count, an output-activation size (what
crosses a stage boundary if the model is split after this layer), and a
stored-activation size (what must stay resident between forward and backward
of one micro-batch).  This is exactly the granularity of the paper's
profiler output ("compute times, activation sizes, parameter sizes" per
layer, Fig. 1).

All aggregate queries are backed by numpy prefix sums so the planner's inner
loop (which evaluates tens of thousands of layer ranges) costs O(1) per
query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

FP32 = 4  # bytes per parameter / activation element

#: Persistent optimizer bytes per parameter (weight + optimizer states,
#: excluding the gradient-accumulation buffer which the runtime adds during
#: training).  Adam: w + m + v; RMSProp: w + accumulator; SGD+momentum: w + u.
OPTIMIZER_STATE_BYTES = {
    "adam": 12,
    "rmsprop": 8,
    "sgd": 8,
}

#: Gradient accumulation buffer added while training (fp32 gradients).
GRAD_BYTES_PER_PARAM = 4


@dataclass(frozen=True)
class LayerSpec:
    """One planner-granularity layer.

    Attributes
    ----------
    name:
        Human-readable identifier (``"encoder12"``, ``"conv3_2"``).
    flops_fwd:
        Forward FLOPs *per sample*.
    params:
        Number of trainable parameters.
    activation_out_bytes:
        Per-sample size of the tensor handed to the next layer — the
        cross-stage traffic if the model is cut after this layer (Table I).
    stored_bytes:
        Per-sample activation bytes that must stay resident from forward
        until the corresponding backward of a micro-batch (checkpointing
        discards these, keeping only the stage input).
    bwd_flops_ratio:
        Backward/forward FLOP ratio; 2.0 is the standard for dense layers
        (grad wrt inputs + grad wrt weights).
    """

    name: str
    flops_fwd: float
    params: int
    activation_out_bytes: float
    stored_bytes: float
    bwd_flops_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.flops_fwd < 0 or self.params < 0:
            raise ValueError(f"layer {self.name!r} has negative flops/params")
        if self.activation_out_bytes < 0 or self.stored_bytes < 0:
            raise ValueError(f"layer {self.name!r} has negative activation sizes")

    @property
    def param_bytes(self) -> float:
        return self.params * FP32

    @property
    def flops_bwd(self) -> float:
        return self.flops_fwd * self.bwd_flops_ratio


@dataclass
class LayerGraph:
    """A model as an ordered sequence of :class:`LayerSpec`.

    ``profile_batch`` is the per-device micro-batch size the paper profiles
    with (Table II, "batch size" column); ``optimizer`` selects persistent
    state accounting.  ``fixed_overhead_fwd`` models per-layer kernel-launch
    cost so very small sub-batches do not look artificially free.
    """

    name: str
    layers: list[LayerSpec]
    profile_batch: int
    optimizer: str = "adam"
    fixed_overhead_fwd: float = 20e-6
    _prefix: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")
        if self.profile_batch < 1:
            raise ValueError(f"profile batch must be >=1, got {self.profile_batch}")
        if self.optimizer not in OPTIMIZER_STATE_BYTES:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"expected one of {sorted(OPTIMIZER_STATE_BYTES)}"
            )
        self._rebuild_prefix()

    def _rebuild_prefix(self) -> None:
        def pref(values):
            arr = np.zeros(len(self.layers) + 1)
            np.cumsum(np.asarray(values, dtype=float), out=arr[1:])
            return arr

        self._prefix = {
            "flops_fwd": pref([l.flops_fwd for l in self.layers]),
            "flops_bwd": pref([l.flops_bwd for l in self.layers]),
            "params": pref([l.params for l in self.layers]),
            "stored": pref([l.stored_bytes for l in self.layers]),
        }

    # ------------------------------------------------------------------ #
    # Whole-model aggregates
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_params(self) -> int:
        return int(self._prefix["params"][-1])

    @property
    def total_param_bytes(self) -> float:
        """Gradient traffic volume of pure data parallelism (Table I)."""
        return self.total_params * FP32

    @property
    def total_flops_fwd(self) -> float:
        return float(self._prefix["flops_fwd"][-1])

    @property
    def optimizer_state_bytes(self) -> float:
        """Persistent weight+state bytes for the whole model."""
        return self.total_params * OPTIMIZER_STATE_BYTES[self.optimizer]

    # ------------------------------------------------------------------ #
    # Range queries (layer index ranges are half-open [lo, hi))
    # ------------------------------------------------------------------ #
    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo < hi <= self.num_layers):
            raise IndexError(
                f"invalid layer range [{lo}, {hi}) for {self.num_layers}-layer model"
            )

    def range_flops_fwd(self, lo: int, hi: int) -> float:
        self._check_range(lo, hi)
        return float(self._prefix["flops_fwd"][hi] - self._prefix["flops_fwd"][lo])

    def range_flops_bwd(self, lo: int, hi: int) -> float:
        self._check_range(lo, hi)
        return float(self._prefix["flops_bwd"][hi] - self._prefix["flops_bwd"][lo])

    def range_params(self, lo: int, hi: int) -> int:
        self._check_range(lo, hi)
        return int(self._prefix["params"][hi] - self._prefix["params"][lo])

    def range_param_bytes(self, lo: int, hi: int) -> float:
        return self.range_params(lo, hi) * FP32

    def range_stored_bytes(self, lo: int, hi: int) -> float:
        """Per-sample resident activation bytes of layers [lo, hi)."""
        self._check_range(lo, hi)
        return float(self._prefix["stored"][hi] - self._prefix["stored"][lo])

    def range_state_bytes(self, lo: int, hi: int) -> float:
        """Persistent optimizer bytes of a stage covering layers [lo, hi)."""
        return self.range_params(lo, hi) * OPTIMIZER_STATE_BYTES[self.optimizer]

    def boundary_activation_bytes(self, split: int) -> float:
        """Per-sample bytes crossing a cut placed *after* layer ``split-1``.

        ``split == 0`` or ``split == num_layers`` are the trivial cuts with
        no traffic.
        """
        if not (0 <= split <= self.num_layers):
            raise IndexError(f"invalid split {split}")
        if split in (0, self.num_layers):
            return 0.0
        return self.layers[split - 1].activation_out_bytes

    # ------------------------------------------------------------------ #
    # Derived model variants
    # ------------------------------------------------------------------ #
    def scaled(self, layer_lo: int, layer_hi: int, name: str | None = None) -> "LayerGraph":
        """A sub-model made of layers [lo, hi) — used for weak scaling."""
        self._check_range(layer_lo, layer_hi)
        return LayerGraph(
            name=name or f"{self.name}[{layer_lo}:{layer_hi}]",
            layers=self.layers[layer_lo:layer_hi],
            profile_batch=self.profile_batch,
            optimizer=self.optimizer,
            fixed_overhead_fwd=self.fixed_overhead_fwd,
        )

    def __repr__(self) -> str:
        return (
            f"LayerGraph({self.name}: {self.num_layers} layers, "
            f"{self.total_params / 1e6:.0f}M params)"
        )


def uniform_model(
    name: str,
    num_layers: int,
    flops_per_layer: float,
    params_per_layer: int,
    activation_bytes: float,
    stored_bytes: float | None = None,
    profile_batch: int = 1,
    optimizer: str = "adam",
) -> LayerGraph:
    """Convenience constructor for synthetic uniform-layer models (tests)."""
    stored = stored_bytes if stored_bytes is not None else 2.0 * activation_bytes
    layers = [
        LayerSpec(
            name=f"layer{i}",
            flops_fwd=flops_per_layer,
            params=params_per_layer,
            activation_out_bytes=activation_bytes,
            stored_bytes=stored,
        )
        for i in range(num_layers)
    ]
    return LayerGraph(name=name, layers=layers, profile_batch=profile_batch, optimizer=optimizer)

"""ResNet-50 layer graph (He et al.).

ResNet-50 is the paper's "data parallelism wins everywhere" benchmark: tiny
parameters (~25 M → 100 MB gradients) against heavy convolution compute and
*large* inter-block activations, so splitting it into pipeline stages buys
nothing on any of the three hardware configs (Table V).
"""

from __future__ import annotations

from repro.models.blocks import conv_layer, fc_layer
from repro.models.graph import FP32, LayerGraph, LayerSpec

#: (stage, bottleneck width, blocks, output spatial size @224 input).
_RESNET50_STAGES = [
    (2, 64, 3, 56),
    (3, 128, 4, 28),
    (4, 256, 6, 14),
    (5, 512, 3, 7),
]


def _bottleneck(name: str, in_ch: int, width: int, spatial: int) -> LayerSpec:
    """A 1×1 → 3×3 → 1×1 bottleneck block collapsed into one planner unit."""
    out_ch = width * 4
    flops = (
        2.0 * in_ch * width * spatial * spatial  # 1x1 reduce
        + 2.0 * 9 * width * width * spatial * spatial  # 3x3
        + 2.0 * width * out_ch * spatial * spatial  # 1x1 expand
    )
    params = in_ch * width + 9 * width * width + width * out_ch
    if in_ch != out_ch:  # projection shortcut
        flops += 2.0 * in_ch * out_ch * spatial * spatial
        params += in_ch * out_ch
    act = spatial * spatial * out_ch * FP32
    # Fused conv-bn-relu keeps only block inputs/outputs for backward
    # (in-place ReLU, recomputed BN stats), matching the paper's modest
    # 1 GB profile cost at batch 128 (Table II).
    return LayerSpec(
        name=name,
        flops_fwd=flops,
        params=params,
        activation_out_bytes=act,
        stored_bytes=0.3 * act,
    )


def resnet50(num_classes: int = 1000) -> LayerGraph:
    """Build the 18-unit ResNet-50 planner graph (stem + 16 blocks + head)."""
    layers: list[LayerSpec] = [
        conv_layer("stem", 3, 64, 224, kernel=7, out_spatial=56, store_factor=0.5)
    ]
    in_ch = 64
    for stage, width, blocks, spatial in _RESNET50_STAGES:
        for b in range(blocks):
            layers.append(_bottleneck(f"res{stage}_{b+1}", in_ch, width, spatial))
            in_ch = width * 4
    layers.append(fc_layer("fc", in_ch, num_classes))
    return LayerGraph(name="ResNet-50", layers=layers, profile_batch=128, optimizer="sgd")

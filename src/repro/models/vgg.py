"""VGG-19 layer graph (Simonyan & Zisserman, config E).

The characteristic shape the paper exploits (§VI-C): ~70 % of the weights
sit in the first fully-connected layer at the very end, while nearly all
FLOPs are in the convolutions at the front, and activations shrink from
12 MB/sample after conv1 to ~0.1 MB/sample entering the classifier.  This is
why a 15:1 pipeline that cuts before the classifier beats data parallelism
on slow interconnects.
"""

from __future__ import annotations

from repro.models.blocks import conv_layer, fc_layer, pool_layer
from repro.models.graph import FP32, LayerGraph, LayerSpec

#: (block, channels, convs-in-block); input is 224×224×3.
_VGG19_BLOCKS = [
    (1, 64, 2),
    (2, 128, 2),
    (3, 256, 4),
    (4, 512, 4),
    (5, 512, 4),
]


def vgg19(num_classes: int = 1000, image_size: int = 224) -> LayerGraph:
    """Build the 25-unit VGG-19 planner graph (16 conv + 5 pool + 3 fc + loss)."""
    layers: list[LayerSpec] = []
    spatial = image_size
    in_ch = 3
    for block, ch, n_convs in _VGG19_BLOCKS:
        for i in range(n_convs):
            layers.append(conv_layer(f"conv{block}_{i+1}", in_ch, ch, spatial))
            in_ch = ch
        spatial //= 2
        layers.append(pool_layer(f"pool{block}", ch, spatial))

    flat = spatial * spatial * in_ch  # 7*7*512 = 25088
    layers.append(fc_layer("fc6", flat, 4096))
    layers.append(fc_layer("fc7", 4096, 4096))
    layers.append(fc_layer("fc8", 4096, num_classes))
    layers.append(
        LayerSpec(
            name="softmax",
            flops_fwd=5.0 * num_classes,
            params=0,
            activation_out_bytes=num_classes * FP32,
            stored_bytes=num_classes * FP32,
            bwd_flops_ratio=1.0,
        )
    )
    return LayerGraph(name="VGG-19", layers=layers, profile_batch=32, optimizer="sgd")

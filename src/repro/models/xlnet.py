"""XLNet-36 layer graph (Yang et al.).

XLNet's two-stream attention doubles per-layer activations and FLOPs
relative to BERT at equal width while sharing weights, which is why the
paper's XLNet-36 (500 M params) has a *smaller* cross-stage activation per
FLOP and the lowest ACR of the language models (0.03 on Config A, Table V).
"""

from __future__ import annotations

from repro.models.blocks import embedding_layer, fc_layer, transformer_encoder_layer
from repro.models.graph import LayerGraph


def xlnet_layers(
    num_layers: int,
    hidden: int = 1024,
    heads: int = 16,
    seq_len: int = 512,
    vocab: int = 32000,
    name: str | None = None,
) -> LayerGraph:
    """Build an XLNet-style graph with two-stream encoder layers."""
    layers = [
        embedding_layer(
            "embedding",
            vocab=vocab,
            hidden=hidden,
            seq_len=seq_len,
            extra_params=seq_len * hidden,  # relative position encodings
        )
    ]
    layers.extend(
        transformer_encoder_layer(
            f"encoder{i}",
            hidden=hidden,
            seq_len=seq_len,
            heads=heads,
            streams=2,
            # Relative-position attention keeps extra score slabs per
            # stream; calibrated to Table II's 12 GB at batch 1.
            stored_scale=1.65,
        )
        for i in range(num_layers)
    )
    layers.append(fc_layer("head", hidden, hidden))
    return LayerGraph(
        name=name or f"XLNet-{num_layers}",
        layers=layers,
        profile_batch=1,
        optimizer="adam",
    )


def xlnet36() -> LayerGraph:
    """The paper's XLNet-36 benchmark (~500 M parameters)."""
    return xlnet_layers(36)

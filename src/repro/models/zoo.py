"""Benchmark-model registry with paper-reported reference figures.

``get_model(name)`` builds the layer graph; ``PAPER_FIGURES`` carries the
numbers from the paper's Tables I/II/V used by calibration tests and the
table-reproduction benchmarks (parameter count, gradient size, profile batch
size, default global batch size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.models.amoebanet import amoebanet36
from repro.models.bert import bert48, bert_large
from repro.models.gnmt import gnmt16
from repro.models.gpt import gpt2_medium, gpt2_xl
from repro.models.graph import LayerGraph
from repro.models.resnet import resnet50
from repro.models.vgg import vgg19
from repro.models.xlnet import xlnet36

# Traffic volumes in the paper (Table I) read as decimal units; device
# memory (Table II) as binary.
MB = 1e6
GB = 1024**3


@dataclass(frozen=True)
class PaperFigures:
    """Reference values from the paper for one benchmark model."""

    params: float  # Table II "# of Params"
    profile_batch: int  # Table II profiling batch size
    profile_memory_bytes: float  # Table II memory cost at that batch
    global_batch_size: int  # Table V GBS column
    gradient_bytes: float | None = None  # Table I
    boundary_activation_bytes: float | None = None  # Table I (round trip)


_BUILDERS: dict[str, Callable[[], LayerGraph]] = {
    "gnmt16": gnmt16,
    "bert48": bert48,
    "bert-large": bert_large,
    "xlnet36": xlnet36,
    "gpt2-medium": gpt2_medium,
    "gpt2-xl": gpt2_xl,
    "resnet50": resnet50,
    "vgg19": vgg19,
    "amoebanet36": amoebanet36,
}

PAPER_FIGURES: dict[str, PaperFigures] = {
    "gnmt16": PaperFigures(
        params=291e6,
        profile_batch=64,
        profile_memory_bytes=3.9 * GB,
        global_batch_size=1024,
        gradient_bytes=1.1e9,
        boundary_activation_bytes=26 * MB,
    ),
    "bert48": PaperFigures(
        params=640e6,
        profile_batch=2,
        profile_memory_bytes=11.4 * GB,
        global_batch_size=64,
        gradient_bytes=2.8e9,
        boundary_activation_bytes=8.8 * MB,
    ),
    "xlnet36": PaperFigures(
        params=500e6,
        profile_batch=1,
        profile_memory_bytes=12 * GB,
        global_batch_size=128,
        gradient_bytes=2.1e9,
        boundary_activation_bytes=4.2 * MB,
    ),
    "resnet50": PaperFigures(
        params=24.5e6,
        profile_batch=128,
        profile_memory_bytes=1 * GB,
        global_batch_size=2048,
    ),
    "vgg19": PaperFigures(
        params=137e6,
        profile_batch=32,
        profile_memory_bytes=5.6 * GB,
        global_batch_size=2048,
        gradient_bytes=550e6,
        boundary_activation_bytes=6 * MB,
    ),
    "amoebanet36": PaperFigures(
        params=933e6,
        profile_batch=1,
        profile_memory_bytes=20 * GB,
        global_batch_size=128,
        gradient_bytes=3.7e9,
        boundary_activation_bytes=11.2 * MB,
    ),
}

#: Models evaluated in the paper's main tables (Table V order).
BENCHMARK_MODELS = ["resnet50", "vgg19", "gnmt16", "bert48", "xlnet36", "amoebanet36"]


def model_names() -> list[str]:
    """All registered model names."""
    return sorted(_BUILDERS)


def get_model(name: str) -> LayerGraph:
    """Build a benchmark model by registry name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {model_names()}")
    return _BUILDERS[key]()

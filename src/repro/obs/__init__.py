"""Unified observability layer: span tracing, metrics, explainability.

One switchboard for the repo's three heavy layers (planner, simulator,
faults), all zero-dependency:

* **Spans** (:mod:`repro.obs.tracer`) — nested wall-clock intervals with
  attributes and a deterministic monotonic counter;
* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges, fixed-bucket
  histograms with percentile estimates;
* **Sinks** (:mod:`repro.obs.sinks`) — JSONL event log (schema in
  :mod:`repro.obs.schema`), console summary tables, and a Chrome/Perfetto
  exporter that unifies wall-clock spans with simulated-time op slices;
* **Explainability** (:mod:`repro.obs.explain`) — ``explain_plan()``
  decomposes a winning plan's ``Tw/Ts/Te`` per stage vs. its runners-up.

Usage::

    import repro.obs as obs

    obs.enable()
    with obs.span("my.phase", model="bert48"):
        ...
    obs.counter("my.events").inc()
    print(obs.summary())          # console tables
    obs.export_jsonl("run.jsonl") # machine-readable log

**Disabled is the default and costs ~nothing**: :func:`span` returns a
shared no-op context manager and :func:`counter`/:func:`gauge`/
:func:`histogram` return shared no-op metrics, so instrumentation points
stay in place permanently without taxing the hot paths
(``tests/perf/test_obs_overhead.py`` enforces the <2% budget on the
simulator benchmark).  Hot loops may additionally hoist one
:func:`enabled` check to skip even the no-op calls.

State is process-global (one tracer + one registry), matching the CLI's
"one command = one instrumented run" model; :func:`reset` wipes it for
in-process reuse (tests, notebooks).
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NOOP_SPAN, SpanRecord, Tracer
from repro.obs import context

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "span",
    "counter",
    "gauge",
    "histogram",
    "metric",
    "tracer",
    "registry",
    "swap_registry",
    "context",
    "start_trace",
    "summary",
    "export_jsonl",
    "export_chrome",
    "explain_plan",
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "NOOP_SPAN",
]

_enabled: bool = False
_tracer: Tracer = Tracer()
_registry: MetricsRegistry = MetricsRegistry()


def enabled() -> bool:
    """Is observability collection on?"""
    return _enabled


def enable(reset_state: bool = False) -> None:
    """Turn span/metric collection on (optionally from a clean slate)."""
    global _enabled
    if reset_state:
        reset()
    _enabled = True


def disable() -> None:
    """Turn collection off; recorded data stays readable until reset()."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Discard all recorded spans and metrics (fresh tracer + registry)."""
    global _tracer, _registry
    _tracer = Tracer()
    _registry = MetricsRegistry()


def tracer() -> Tracer:
    """The process-global tracer."""
    return _tracer


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def swap_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Install ``new`` as the global registry, returning the old one.

    Used by :func:`repro.obs.context.run_captured` to collect a pool
    worker's metrics into a scratch registry that can be shipped back to
    the parent without double-counting anything the child inherited.
    """
    global _registry
    old = _registry
    _registry = new
    return old


#: Re-exported for the common ``with obs.start_trace("client.request"):``
#: entry point; see :mod:`repro.obs.context` for the full propagation API.
start_trace = context.start_trace


def span(name: str, **attrs):
    """Open a wall-clock span (no-op singleton while disabled)."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def counter(name: str, **labels):
    """Get-or-create a counter (no-op while disabled)."""
    if not _enabled:
        return NOOP_COUNTER
    return _registry.counter(name, **labels)


def gauge(name: str, **labels):
    """Get-or-create a gauge (no-op while disabled)."""
    if not _enabled:
        return NOOP_GAUGE
    return _registry.gauge(name, **labels)


def histogram(name: str, buckets=DEFAULT_BUCKETS, **labels):
    """Get-or-create a histogram (no-op while disabled)."""
    if not _enabled:
        return NOOP_HISTOGRAM
    return _registry.histogram(name, buckets=buckets, **labels)


def metric(name: str, kind: str = "counter", **labels):
    """Generic accessor: ``kind`` in {"counter", "gauge", "histogram"}."""
    if kind == "counter":
        return counter(name, **labels)
    if kind == "gauge":
        return gauge(name, **labels)
    if kind == "histogram":
        return histogram(name, **labels)
    raise ValueError(f"unknown metric kind {kind!r}")


def summary() -> str:
    """Console rollup of recorded spans and metrics."""
    from repro.obs.sinks import console_summary

    return console_summary(_tracer, _registry)


def export_jsonl(path, include_wall: bool = True):
    """Write the JSONL event log; see :func:`repro.obs.sinks.write_jsonl`."""
    from repro.obs.sinks import write_jsonl

    return write_jsonl(path, _tracer, _registry, include_wall=include_wall)


def export_chrome(path, sim_trace=None):
    """Write a Perfetto trace; see :func:`repro.obs.sinks.export_chrome`."""
    from repro.obs.sinks import export_chrome as _export

    return _export(path, _tracer, sim_trace=sim_trace)


def __getattr__(name: str):
    # explain_plan pulls in repro.core; loaded lazily so that importing
    # repro.obs from inside repro.core (planner instrumentation) can never
    # form an import cycle.
    if name in ("explain_plan", "PlanExplanation", "PlanBreakdown",
                "StageRow", "breakdown_plan"):
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

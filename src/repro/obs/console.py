"""Operator console tools behind the ``repro obs`` CLI family.

Three views over the telemetry the rest of :mod:`repro.obs` produces:

* :func:`tail_events` / ``repro obs tail`` — follow a JSONL event log
  (:func:`repro.obs.sinks.write_jsonl` exports or a server access log),
  pretty-printing spans with their trace ids and durations, filterable by
  trace id prefix and span-name substring;
* :func:`summarize_spans` / ``repro obs summarize`` — aggregate one or
  more JSONL logs into a per-span-name latency table.  Percentiles use
  :func:`repro.obs.export.percentile_sorted` on the logged durations — the
  same definition the server's SLO windows use on the same span clock
  reads, so summarizing a captured log reproduces the server's reported
  p50/p95 bit-exactly;
* :func:`render_dashboard` / ``repro obs top`` — poll a live server's
  ``GET /metrics`` and render a refreshing one-screen health dashboard
  (queue, workers, cache, per-route SLO).

Everything is pure-stdlib and separable: the iterate/aggregate/render
functions take plain records and return plain strings, the CLI handlers
just loop them.
"""

from __future__ import annotations

import json
import time
import urllib.request
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.obs.export import parse_prometheus, percentile_sorted

__all__ = [
    "iter_events",
    "format_event",
    "tail_events",
    "summarize_spans",
    "render_summary",
    "render_dashboard",
    "fetch_metrics",
]


# --------------------------------------------------------------------- #
# tail
# --------------------------------------------------------------------- #
def iter_events(path) -> Iterator[dict[str, Any]]:
    """Parsed records of one JSONL file, skipping blank/garbled lines."""
    with open(Path(path)) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict):
                yield obj


def _short_trace(trace_id: str | None) -> str:
    return trace_id[:8] if trace_id else "-" * 8


def format_event(rec: dict[str, Any]) -> str | None:
    """One pretty console line for a JSONL record; None = not displayable."""
    rtype = rec.get("type") or rec.get("event")
    if rtype == "span":
        dur = rec.get("dur")
        dur_s = f"{dur * 1e3:9.3f}ms" if dur is not None else "      -  "
        attrs = rec.get("attrs") or {}
        attr_s = " ".join(f"{k}={v}" for k, v in attrs.items())
        return (f"[{_short_trace(rec.get('trace_id'))}] {dur_s}  "
                f"{rec.get('name', '?'):<24s} seq={rec.get('seq', '?'):<6} "
                f"{attr_s}").rstrip()
    if rtype == "meta":
        return (f"# event log v{rec.get('version')} "
                f"(tool {rec.get('tool')}, epoch {rec.get('epoch')})")
    if rtype in ("counter", "gauge"):
        labels = rec.get("labels") or {}
        label_s = ",".join(f"{k}={v}" for k, v in labels.items())
        return (f"[{'-' * 8}] {rtype:>11s}  {rec.get('name', '?')}"
                f"{{{label_s}}} = {rec.get('value')}")
    if rtype == "histogram":
        return (f"[{'-' * 8}]   histogram  {rec.get('name', '?')} "
                f"n={rec.get('count')} p50={rec.get('p50')} "
                f"p95={rec.get('p95')}")
    if rtype == "request":  # server access-log line
        return (f"[{_short_trace(rec.get('trace_id'))}] "
                f"{rec.get('ms', 0):9.3f}ms  {rec.get('method', '?')} "
                f"{rec.get('path', '?')} -> {rec.get('status')}")
    if rtype == "job":  # server per-job timing event
        seg = " ".join(
            f"{k}={rec[k]}" for k in
            ("queue_wait_ms", "exec_ms", "dispatch_ms", "serialize_ms",
             "total_ms") if k in rec
        )
        return (f"[{_short_trace(rec.get('trace_id'))}]        job  "
                f"{rec.get('job_id', '?')} {rec.get('outcome', '?')} {seg}")
    return None


def _match(rec: dict[str, Any], trace: str | None, name: str | None) -> bool:
    if trace is not None:
        tid = rec.get("trace_id")
        if not (isinstance(tid, str) and tid.startswith(trace)):
            return False
    if name is not None:
        n = rec.get("name")
        if not (isinstance(n, str) and name in n):
            return False
    return True


def tail_events(
    path,
    *,
    follow: bool = False,
    trace: str | None = None,
    name: str | None = None,
    limit: int | None = None,
    poll_interval: float = 0.2,
    should_stop: Callable[[], bool] | None = None,
) -> Iterator[str]:
    """Yield formatted lines from a JSONL log, optionally following it.

    ``trace`` filters to trace ids with that prefix; ``name`` to span/event
    names containing that substring; ``limit`` stops after N yielded lines
    (handy in tests and scripts).  In follow mode the file is re-polled for
    appended lines until ``should_stop()`` turns true (or forever).
    """
    emitted = 0
    path = Path(path)
    with open(path) as fh:
        while True:
            for line in iter(fh.readline, ""):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(rec, dict) or not _match(rec, trace, name):
                    continue
                formatted = format_event(rec)
                if formatted is None:
                    continue
                yield formatted
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
            if not follow or (should_stop is not None and should_stop()):
                return
            time.sleep(poll_interval)


# --------------------------------------------------------------------- #
# summarize
# --------------------------------------------------------------------- #
def summarize_spans(
    records: Iterable[dict[str, Any]],
    *,
    name: str | None = None,
    trace: str | None = None,
    attrs: dict[str, str] | None = None,
) -> list[dict[str, Any]]:
    """Per-span-name latency rollup of JSONL span records.

    Filters mirror :func:`tail_events` (name substring, trace-id prefix)
    plus exact-match ``attrs`` (compared as strings, so ``route=POST
    /v1/plans`` matches the span attribute).  Durations come straight from
    the logged ``dur`` field (seconds) and percentiles from
    :func:`percentile_sorted`, making the numbers bit-exact equals of the
    server-side SLO summary over the same spans.
    """
    groups: dict[str, list[float]] = {}
    for rec in records:
        if rec.get("type") != "span" or rec.get("dur") is None:
            continue
        if not _match(rec, trace, name):
            continue
        if attrs:
            rattrs = rec.get("attrs") or {}
            if any(str(rattrs.get(k)) != str(v) for k, v in attrs.items()):
                continue
        groups.setdefault(rec["name"], []).append(rec["dur"] * 1e3)
    rows = []
    for span_name in sorted(groups):
        durs = sorted(groups[span_name])
        rows.append({
            "name": span_name,
            "count": len(durs),
            "total_ms": sum(durs),
            "mean_ms": sum(durs) / len(durs),
            "p50_ms": percentile_sorted(durs, 0.50),
            "p95_ms": percentile_sorted(durs, 0.95),
            "p99_ms": percentile_sorted(durs, 0.99),
            "max_ms": durs[-1],
        })
    rows.sort(key=lambda r: (-r["total_ms"], r["name"]))
    return rows


def render_summary(rows: list[dict[str, Any]]) -> str:
    """ASCII table for :func:`summarize_spans` output."""
    from repro.experiments.reporting import format_table

    if not rows:
        return "no matching spans"
    table_rows = [
        [r["name"], r["count"], f"{r['total_ms']:.1f}",
         f"{r['mean_ms']:.3f}", f"{r['p50_ms']:.3f}", f"{r['p95_ms']:.3f}",
         f"{r['p99_ms']:.3f}", f"{r['max_ms']:.3f}"]
        for r in rows
    ]
    return format_table(
        ["span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms",
         "p99_ms", "max_ms"],
        table_rows, title="Span latency summary",
    )


# --------------------------------------------------------------------- #
# top
# --------------------------------------------------------------------- #
def fetch_metrics(url: str, timeout: float = 5.0) -> str:
    """GET ``<url>/metrics`` and return the exposition text."""
    base = url.rstrip("/")
    with urllib.request.urlopen(f"{base}/metrics", timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def _series(metrics: dict[tuple, float], name: str,
            **labels: str) -> float | None:
    want = tuple(sorted(labels.items()))
    for (n, lbls), v in metrics.items():
        if n == name and tuple(sorted(lbls)) == want:
            return v
    return None


def _routes(metrics: dict[tuple, float], name: str) -> list[str]:
    routes = set()
    for (n, lbls), _v in metrics.items():
        if n == name:
            routes.update(v for k, v in lbls if k == "route")
    return sorted(routes)


def render_dashboard(metrics_text: str, url: str = "") -> str:
    """One-screen service dashboard from Prometheus exposition text."""
    from repro.experiments.reporting import format_table

    m = parse_prometheus(metrics_text)

    def fmt(v, pattern="{:.0f}"):
        return pattern.format(v) if v is not None else "-"

    header = [
        f"repro obs top{f' — {url}' if url else ''} "
        f"({time.strftime('%H:%M:%S')})",
        f"queue   : depth {fmt(_series(m, 'repro_serve_queue_depth'))}"
        f"/{fmt(_series(m, 'repro_serve_queue_capacity'))}"
        f"   in-flight {fmt(_series(m, 'repro_serve_in_flight'))}"
        f"   ready {fmt(_series(m, 'repro_serve_ready'))}",
        f"workers : busy {fmt(_series(m, 'repro_serve_workers_busy'))}"
        f"   utilization "
        f"{fmt(_series(m, 'repro_serve_worker_utilization'), '{:.0%}')}"
        f"   cache hit-rate "
        f"{fmt(_series(m, 'repro_serve_cache_hit_rate'), '{:.0%}')}",
    ]
    rows = []
    for route in _routes(m, "repro_serve_slo_requests"):
        rows.append([
            route,
            fmt(_series(m, "repro_serve_slo_requests", route=route)),
            fmt(_series(m, "repro_serve_slo_error_rate", route=route),
                "{:.1%}"),
            fmt(_series(m, "repro_serve_slo_p50_ms", route=route), "{:.2f}"),
            fmt(_series(m, "repro_serve_slo_p95_ms", route=route), "{:.2f}"),
            fmt(_series(m, "repro_serve_slo_p99_ms", route=route), "{:.2f}"),
        ])
    body = "\n".join(header)
    if rows:
        body += "\n\n" + format_table(
            ["route", "reqs", "err%", "p50_ms", "p95_ms", "p99_ms"], rows,
            title="Rolling SLO (recent-request window)",
        )
    return body

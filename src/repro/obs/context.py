"""Request-scoped trace context: one identity across threads and processes.

A :class:`TraceContext` carries the identity of one logical request — a
``trace_id``, the uid of the span that is the current parent, and a small
string ``baggage`` dict — so every span opened while the context is
installed is stamped with the same ``trace_id`` and linked into one tree,
no matter which thread or (forked) process emits it.  This is what turns
the serve path's separate per-process span logs into a single connected
flame graph: ``PlanClient`` puts the context into HTTP headers,
``PlanServer`` re-installs it per request, the job queue carries it to the
worker threads, and :class:`~repro.perf.sweep.ForkPool` ships it into the
fork workers (and ships the spans/metrics they emit back — see
:func:`run_captured`/:func:`ingest_payload`).

Span uids are strings unique *across processes*: ``"<prefix><seq>"`` where
``seq`` is the process-local monotonic span counter and ``prefix`` is empty
in the root process and ``"<pid-hex>."`` in any forked child (installed by
an :func:`os.register_at_fork` hook, which also clears the inherited
thread-local context so children never start with a stale parent).

Everything is thread-local and cheap: :func:`current` is one
``getattr`` on a ``threading.local``; spans only pay for uid minting while
a context is actually installed.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from contextlib import contextmanager
from typing import Any

__all__ = [
    "TraceContext",
    "current",
    "use",
    "start_trace",
    "snapshot",
    "new_trace_id",
    "make_uid",
    "to_headers",
    "from_headers",
    "run_captured",
    "ingest_payload",
]

#: HTTP header names for context propagation (internal wire format; a
#: W3C ``traceparent`` bridge would go here if uids were 16-hex).
TRACE_HEADER = "X-Repro-Trace"
PARENT_HEADER = "X-Repro-Parent"
BAGGAGE_HEADER = "X-Repro-Baggage"

_MAX_HEADER_LEN = 256

_local = threading.local()

#: Uid prefix for spans minted in this process: "" in the root process,
#: "<pid-hex>." in forked children (set by the at-fork hook below), so
#: span uids never collide across the processes of one trace.
_process_prefix = ""


def _after_fork_in_child() -> None:
    global _process_prefix
    _process_prefix = f"{os.getpid():x}."
    # The forking thread's context (and any other inherited thread state)
    # is stale in the child: clear it so child spans are only trace-stamped
    # once a context is explicitly re-installed (run_captured below).
    _local.__dict__.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython everywhere
    os.register_at_fork(after_in_child=_after_fork_in_child)


def new_trace_id() -> str:
    """A fresh 32-hex trace id."""
    return uuid.uuid4().hex


def make_uid(seq: int) -> str:
    """Process-unique span uid for a local span counter value."""
    return f"{_process_prefix}{seq}"


class TraceContext:
    """Identity of one logical request: trace id, parent span uid, baggage."""

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(self, trace_id: str, span_id: str | None = None,
                 baggage: dict[str, str] | None = None):
        self.trace_id = str(trace_id)
        #: Uid of the parent span for spans opened under this context when
        #: no local open span provides a nearer parent; None = trace root.
        self.span_id = span_id
        self.baggage = dict(baggage or {})

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "baggage": dict(self.baggage)}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "TraceContext | None":
        if not data or "trace_id" not in data:
            return None
        return cls(data["trace_id"], data.get("span_id"), data.get("baggage"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext({self.trace_id[:8]}…, parent={self.span_id}, "
                f"baggage={self.baggage})")


# --------------------------------------------------------------------- #
# Thread-local installation
# --------------------------------------------------------------------- #
def current() -> TraceContext | None:
    """The context installed on this thread, or None."""
    return getattr(_local, "ctx", None)


@contextmanager
def use(ctx: TraceContext | None):
    """Install ``ctx`` for the duration of the block (None = no-op)."""
    if ctx is None:
        yield None
        return
    prev = getattr(_local, "ctx", None)
    _local.ctx = ctx
    try:
        yield ctx
    finally:
        _local.ctx = prev


@contextmanager
def start_trace(name: str, trace_id: str | None = None,
                baggage: dict[str, str] | None = None, **attrs):
    """Mint a fresh trace, install it, and open its root span.

    ``with context.start_trace("client.request") as sp:`` — every span
    opened inside (on this thread, on threads/processes the context is
    propagated to) shares the minted trace id and parents into ``sp``.
    """
    import repro.obs as obs

    ctx = TraceContext(trace_id or new_trace_id(), baggage=baggage)
    with use(ctx):
        with obs.span(name, **attrs) as sp:
            yield sp


def snapshot() -> dict[str, Any] | None:
    """Serializable copy of the current context, parented at the innermost
    open span — what crosses a thread, queue, process, or HTTP boundary."""
    ctx = current()
    if ctx is None:
        return None
    import repro.obs as obs

    parent_uid = ctx.span_id
    stack = obs.tracer()._stack()
    for sp in reversed(stack):
        uid = getattr(sp, "uid", None)
        if uid and getattr(sp, "trace_id", None) == ctx.trace_id:
            parent_uid = uid
            break
    return {
        "trace_id": ctx.trace_id,
        "span_id": parent_uid,
        "baggage": dict(ctx.baggage),
        "obs_enabled": obs.enabled(),
    }


# --------------------------------------------------------------------- #
# HTTP propagation
# --------------------------------------------------------------------- #
def to_headers(snap: dict[str, Any] | None) -> dict[str, str]:
    """Headers for a :func:`snapshot` dict (empty when no context)."""
    if not snap:
        return {}
    headers = {TRACE_HEADER: snap["trace_id"]}
    if snap.get("span_id"):
        headers[PARENT_HEADER] = str(snap["span_id"])
    if snap.get("baggage"):
        headers[BAGGAGE_HEADER] = json.dumps(snap["baggage"], sort_keys=True)
    return headers


def from_headers(headers) -> TraceContext | None:
    """Rebuild a context from request headers (None when absent/garbled)."""
    trace_id = headers.get(TRACE_HEADER)
    if not trace_id or len(trace_id) > _MAX_HEADER_LEN:
        return None
    span_id = headers.get(PARENT_HEADER)
    if span_id is not None and len(span_id) > _MAX_HEADER_LEN:
        span_id = None
    baggage: dict[str, str] = {}
    raw = headers.get(BAGGAGE_HEADER)
    if raw:
        try:
            parsed = json.loads(raw)
            if isinstance(parsed, dict):
                baggage = {str(k): str(v) for k, v in parsed.items()}
        except (json.JSONDecodeError, UnicodeDecodeError):
            pass
    return TraceContext(trace_id, span_id, baggage)


# --------------------------------------------------------------------- #
# Cross-process capture: run in a pool worker, ship telemetry back
# --------------------------------------------------------------------- #
def _export_spans(records, epoch: float) -> list[dict[str, Any]]:
    """Spans as wire dicts with absolute (epoch-anchored) timestamps."""
    return [
        {
            "name": r.name,
            "uid": r.uid,
            "parent_uid": r.parent_uid,
            "trace_id": r.trace_id,
            "t0": epoch + r.t0,
            "t1": epoch + r.t1,
            "pid": r.pid,
            "tid": r.tid,
            "attrs": dict(r.attrs),
        }
        for r in records
    ]


_PAYLOAD_KEY = "__repro_obs_payload__"


def run_captured(ctx_dict: dict[str, Any], fn, *args):
    """Execute ``fn(*args)`` under a re-installed context, capturing the
    spans and metrics it emits.

    This is the function :meth:`ForkPool.run` ships across the process
    boundary when the submitting thread has an active context: the child
    re-installs the context (so uids chain to the parent's spans), swaps
    in a scratch metrics registry, runs ``fn``, then returns
    ``{result, telemetry}`` for :func:`ingest_payload` to merge back into
    the parent's tracer/registry.  Exceptions from ``fn`` propagate
    unchanged (telemetry for failed calls is dropped).
    """
    import repro.obs as obs
    from repro.obs.metrics import MetricsRegistry

    enable = bool(ctx_dict.get("obs_enabled"))
    was_enabled = obs.enabled()
    if enable and not was_enabled:
        obs.enable()
    tracer = obs.tracer()
    base = tracer.mark()
    prev_registry = obs.swap_registry(MetricsRegistry()) if enable else None
    try:
        with use(TraceContext.from_dict(ctx_dict)):
            result = fn(*args)
    finally:
        telemetry = None
        if enable:
            spans = tracer.drain(base)
            scratch = obs.swap_registry(prev_registry)
            telemetry = {
                "spans": _export_spans(spans, tracer.epoch),
                "metrics": _export_metrics(scratch),
            }
            if not was_enabled:
                obs.disable()
    return {_PAYLOAD_KEY: True, "result": result, "telemetry": telemetry}


def _export_metrics(registry) -> list[dict[str, Any]]:
    from repro.obs.sinks import _metric_record

    return [_metric_record(m) for m in registry.snapshot()]


def ingest_payload(payload):
    """Unwrap a :func:`run_captured` payload, merging its telemetry into
    the calling process's tracer and registry; pass anything else through."""
    if not (isinstance(payload, dict) and payload.get(_PAYLOAD_KEY)):
        return payload
    telemetry = payload.get("telemetry")
    if telemetry:
        import repro.obs as obs

        obs.tracer().ingest(telemetry.get("spans", ()))
        obs.registry().merge_records(telemetry.get("metrics", ()))
    return payload["result"]

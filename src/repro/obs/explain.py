"""Plan explainability: decompose *why* a plan won the planner search.

The planner reports one scalar per candidate — the analytical latency
``L = Tw + Ts + Te`` (paper eq. 1–2).  :func:`explain_plan` re-derives that
scalar as an auditable per-stage table over the plan's *extended stages*
(computation stages interleaved with communication pseudo-stages, exactly
the structure :func:`repro.core.latency.stage_costs` scores):

* ``Tw`` (warm-up) is attributed to every extended stage up to and
  including the pivot ``Q`` — one forward traversal, so stage ``s``
  contributes ``F_s``;
* ``Ts`` (steady) belongs to the pivot alone: ``(M−1)(F_Q + B_Q)``;
* ``Te`` (ending) is a max over per-stage drain terms
  ``AR_s ± Σ B`` — each stage's term is reported, and the argmax is the
  stage that gates the tail.

Because the decomposition reuses the same prefix sums (and the same
summation order) as :func:`repro.core.latency.evaluate_plan`, the column
sums reproduce the winner's ``Tw``/``Ts``/``Te`` bit-for-bit —
:meth:`PlanBreakdown.verify` asserts exactly that, and the tier-1 test
``tests/obs/test_explain.py`` runs it against live planner output.

Runner-up plans (``PlannerConfig.keep_top_k``) get the same breakdown, so
"why did the winner beat plan #2" reads directly off the two tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.latency import (
    PlanEstimate,
    _running_prefix,
    evaluate_plan,
    stage_costs,
)

__all__ = ["StageRow", "PlanBreakdown", "PlanExplanation", "explain_plan"]


@dataclass(frozen=True)
class StageRow:
    """One extended stage's contribution to ``L = Tw + Ts + Te``."""

    ext_index: int
    #: ``"comp"`` for a computation stage, ``"comm"`` for the transfer
    #: pseudo-stage between two computation stages.
    kind: str
    #: Plan stage index for comp rows, ``None`` for comm rows.
    stage: int | None
    #: ``(layer_lo, layer_hi)`` for comp rows.
    layers: tuple | None
    replicas: int | None
    fwd: float
    bwd: float
    allreduce: float
    #: This stage's share of the warm-up phase (``F_s`` for ``s <= Q``).
    warmup_contrib: float
    #: ``(M−1)(F_Q+B_Q)`` on the pivot row, 0 elsewhere.
    steady_contrib: float
    #: This stage's ending-drain term ``AR_s ± Σ B``; ``Te`` is the max.
    ending_term: float
    is_pivot: bool
    #: True on the row whose ending term equals ``Te``.
    gates_ending: bool


@dataclass(frozen=True)
class PlanBreakdown:
    """Per-stage decomposition of one plan's analytical latency."""

    notation: str
    split_notation: str
    num_micro_batches: int
    estimate: PlanEstimate
    rows: tuple
    #: ``"pipeline"``, ``"dp-overlap"`` (single replicated stage with
    #: backward/AllReduce overlap), or ``"interleaved"``.
    mode: str

    @property
    def latency(self) -> float:
        return self.estimate.latency

    @property
    def warmup(self) -> float:
        return self.estimate.warmup

    @property
    def steady(self) -> float:
        return self.estimate.steady

    @property
    def ending(self) -> float:
        return self.estimate.ending

    @property
    def pivot(self) -> int:
        return self.estimate.pivot

    def verify(self) -> None:
        """Assert the rows reproduce ``Tw``/``Ts``/``Te`` exactly.

        Warm-up is re-summed with the same left-to-right prefix order the
        latency model uses, so the comparison is bit-exact, not approximate.
        """
        warmup = _running_prefix([r.warmup_contrib for r in self.rows])[-1]
        assert warmup == self.estimate.warmup, (
            f"warmup decomposition {warmup} != estimate {self.estimate.warmup}"
        )
        steady = sum(r.steady_contrib for r in self.rows)
        assert steady == self.estimate.steady, (
            f"steady decomposition {steady} != estimate {self.estimate.steady}"
        )
        ending = max(r.ending_term for r in self.rows)
        assert ending == self.estimate.ending, (
            f"ending decomposition {ending} != estimate {self.estimate.ending}"
        )
        total = self.estimate.warmup + self.estimate.steady + self.estimate.ending
        assert total == self.estimate.latency, (
            f"Tw+Ts+Te {total} != latency {self.estimate.latency}"
        )


def breakdown_plan(profile, cluster, plan) -> PlanBreakdown:
    """Decompose one plan; see module docstring for the attribution rules."""
    est = evaluate_plan(profile, cluster, plan)
    costs = stage_costs(profile, cluster, plan)
    q = est.pivot
    m1 = max(plan.num_micro_batches - 1, 0)
    bc = _running_prefix(costs.bwd)

    # Mirrors the evaluate_plan() dispatch: a single replicated stage is
    # scored with backward/AllReduce overlap (dp_overlap defaults True).
    dp_overlap = plan.num_stages == 1 and plan.stages[0].replicas > 1
    mode = "pipeline"
    if plan.meta.get("interleaved"):
        mode = "interleaved"
    elif dp_overlap:
        mode = "dp-overlap"

    rows = []
    for s in range(costs.num_extended):
        if mode == "dp-overlap":
            # Single-stage DP with backward/AllReduce overlap: the ending
            # term is B + exposed-AR (one term, no max over stages).
            ending_term = est.ending
        elif s <= q:
            ending_term = costs.allreduce[s] + (bc[q + 1] - bc[s])
        else:
            ending_term = costs.allreduce[s] - (bc[s] - bc[q])
        i = costs.comp_index[s]
        stage = plan.stages[i] if i is not None else None
        rows.append(StageRow(
            ext_index=s,
            kind="comp" if i is not None else "comm",
            stage=i,
            layers=(stage.layer_lo, stage.layer_hi) if stage else None,
            replicas=stage.replicas if stage else None,
            fwd=costs.fwd[s],
            bwd=costs.bwd[s],
            allreduce=costs.allreduce[s],
            warmup_contrib=costs.fwd[s] if s <= q else 0.0,
            steady_contrib=est.steady if s == q else 0.0,
            ending_term=ending_term,
            is_pivot=s == q,
            gates_ending=ending_term == est.ending,
        ))
    bd = PlanBreakdown(
        notation=plan.notation,
        split_notation=plan.split_notation,
        num_micro_batches=plan.num_micro_batches,
        estimate=est,
        rows=tuple(rows),
        mode=mode,
    )
    bd.verify()
    return bd


@dataclass(frozen=True)
class PlanExplanation:
    """Winner breakdown plus runner-up breakdowns for comparison."""

    winner: PlanBreakdown
    runners_up: tuple = field(default=())

    def report(self) -> str:
        """Render the explanation as aligned ASCII tables."""
        from repro.experiments.reporting import format_table

        w = self.winner
        est = w.estimate
        blocks = [
            f"winner: {w.notation} (layers {w.split_notation}, "
            f"M={w.num_micro_batches}, mode={w.mode})\n"
            f"L = Tw + Ts + Te = {est.warmup * 1e3:.2f} + "
            f"{est.steady * 1e3:.2f} + {est.ending * 1e3:.2f} "
            f"= {est.latency * 1e3:.2f} ms (pivot: extended stage {est.pivot})"
        ]
        rows = []
        for r in w.rows:
            label = f"s{r.stage}" if r.kind == "comp" else "comm"
            layers = f"[{r.layers[0]},{r.layers[1]})" if r.layers else "-"
            rows.append([
                r.ext_index, label, layers,
                r.replicas if r.replicas is not None else "-",
                f"{r.fwd * 1e3:.2f}", f"{r.bwd * 1e3:.2f}",
                f"{r.allreduce * 1e3:.2f}",
                f"{r.warmup_contrib * 1e3:.2f}",
                f"{r.steady_contrib * 1e3:.2f}",
                f"{r.ending_term * 1e3:.2f}",
                ("Q" if r.is_pivot else "") + ("E" if r.gates_ending else ""),
            ])
        blocks.append(format_table(
            ["ext", "stage", "layers", "repl", "F(ms)", "B(ms)", "AR(ms)",
             "Tw part", "Ts part", "Te term", "gates"],
            rows,
            title="per-extended-stage decomposition "
            "(Q = pivot, E = gates the ending phase)",
        ))
        if self.runners_up:
            rows = []
            for ru in self.runners_up:
                e = ru.estimate
                rows.append([
                    ru.notation, ru.split_notation, ru.num_micro_batches,
                    f"{e.latency * 1e3:.2f}",
                    f"{(e.latency - est.latency) / est.latency * 100:+.1f}%",
                    f"{e.warmup * 1e3:.2f}", f"{e.steady * 1e3:.2f}",
                    f"{e.ending * 1e3:.2f}",
                ])
            blocks.append(format_table(
                ["plan", "layers", "M", "L(ms)", "vs winner",
                 "Tw(ms)", "Ts(ms)", "Te(ms)"],
                rows, title="runners-up",
            ))
        return "\n\n".join(blocks)


def explain_plan(profile, cluster, result) -> PlanExplanation:
    """Explain a planner outcome.

    ``result`` is a :class:`~repro.core.planner.PlanResult` (runner-up
    breakdowns come from its ``top_plans``, populated with
    ``PlannerConfig.keep_top_k > 0``) or a bare
    :class:`~repro.core.plan.ParallelPlan` (winner breakdown only).
    """
    plan = getattr(result, "plan", result)
    winner = breakdown_plan(profile, cluster, plan)
    runners = []
    for _lat, cand in getattr(result, "top_plans", ()) or ():
        if (
            cand.notation == plan.notation
            and cand.split_notation == plan.split_notation
            and cand.num_micro_batches == plan.num_micro_batches
        ):
            continue
        runners.append(breakdown_plan(profile, cluster, cand))
    return PlanExplanation(winner=winner, runners_up=tuple(runners))

"""Metrics exposition and rolling SLO windows.

Two consumers of the in-process :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_prometheus` — the registry in Prometheus text exposition
  format (``text/plain; version=0.0.4``), served by ``GET /metrics`` on
  :class:`repro.serve.server.PlanServer`.  Counters become ``_total``
  series, histograms expand into cumulative ``_bucket{le=...}`` series
  plus ``_sum``/``_count``, and metric/label names are sanitized from the
  repo's ``component.metric`` dotted convention to Prometheus'
  ``repro_component_metric`` underscore convention.
* :class:`SloTracker` — per-route ring buffers of recent request outcomes
  yielding rolling p50/p95/p99 latency, error rate, and saturation — the
  "current health" numbers in ``/healthz`` and the console dashboard,
  computed over a bounded window rather than process lifetime.

:func:`percentile_sorted` is the single shared quantile definition
(linear interpolation at rank ``q*(n-1)``): the server's SLO summaries and
``repro obs summarize`` over the captured JSONL both call it, which is
what makes their percentiles bit-exact equals of each other.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any

__all__ = [
    "PROM_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus",
    "percentile_sorted",
    "RollingWindow",
    "SloTracker",
]

#: Content type of the Prometheus text exposition format, version 0.0.4.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, namespace: str) -> str:
    """``serve.request_ms`` -> ``repro_serve_request_ms``."""
    out = _SANITIZE.sub("_", name)
    if namespace and not out.startswith(namespace + "_"):
        out = f"{namespace}_{out}"
    if not _NAME_OK.match(out):  # leading digit etc.
        out = "_" + out
    return out


def _label_key(key: str) -> str:
    out = _LABEL_SANITIZE.sub("_", str(key))
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(v: Any) -> str:
    return (str(v).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels, extra: str = "") -> str:
    parts = [f'{_label_key(k)}="{_escape_label_value(v)}"'
             for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(v: float) -> str:
    """Prometheus float formatting: integers without the trailing ``.0``."""
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_prometheus(registry=None, namespace: str = "repro") -> str:
    """Render a metrics registry in Prometheus text exposition format.

    Series are grouped per metric name with one ``# HELP``/``# TYPE``
    header (labeled variants share the group), in the registry's sorted
    snapshot order, so output is deterministic for a given state.
    """
    if registry is None:
        import repro.obs as obs

        registry = obs.registry()
    # Group label variants under one exposition family, keeping order.
    groups: dict[str, list] = {}
    kinds: dict[str, str] = {}
    for m in registry.snapshot():
        fam = _metric_name(m.name, namespace)
        if m.kind == "counter" and not fam.endswith("_total"):
            fam += "_total"
        prev = kinds.setdefault(fam, m.kind)
        if prev != m.kind:  # name collision across kinds after sanitizing
            fam = f"{fam}_{m.kind}"
            kinds.setdefault(fam, m.kind)
        groups.setdefault(fam, []).append(m)
    lines: list[str] = []
    for fam, metrics in groups.items():
        kind = metrics[0].kind
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}[kind]
        lines.append(f"# HELP {fam} {metrics[0].name}")
        lines.append(f"# TYPE {fam} {prom_type}")
        for m in metrics:
            if kind in ("counter", "gauge"):
                lines.append(f"{fam}{_label_str(m.labels)} {_fmt(m.value)}")
                continue
            cum = 0
            for bound, c in zip(m.bounds, m.counts):
                cum += c
                le = _label_str(m.labels, f'le="{_fmt(bound)}"')
                lines.append(f"{fam}_bucket{le} {cum}")
            cum += m.counts[-1]
            le = _label_str(m.labels, 'le="+Inf"')
            lines.append(f"{fam}_bucket{le} {cum}")
            lines.append(f"{fam}_sum{_label_str(m.labels)} {_fmt(m.sum)}")
            lines.append(f"{fam}_count{_label_str(m.labels)} {m.count}")
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$'
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[tuple, float]:
    """Parse exposition text into ``{(name, ((label, value), ...)): value}``.

    A deliberately small parser — enough for tests and ``repro obs top``
    to read back what :func:`render_prometheus` (or any conformant
    exporter) wrote.  Unparseable sample lines raise ``ValueError``.
    """
    out: dict[tuple, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels = tuple(
            (k, v.replace('\\"', '"').replace("\\n", "\n")
                 .replace("\\\\", "\\"))
            for k, v in _LABEL.findall(m.group("labels") or "")
        )
        out[(m.group("name"), labels)] = float(m.group("value"))
    return out


def percentile_sorted(xs, q: float) -> float:
    """Exact ``q``-quantile of a *sorted* sequence, linear interpolation.

    Rank is ``q * (n - 1)`` (numpy's default / Excel's PERCENTILE.INC).
    This one definition is shared by the server's SLO summaries and the
    ``repro obs summarize`` CLI so the two agree bit-exactly.
    """
    n = len(xs)
    if n == 0:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile wants 0..1, got {q}")
    rank = q * (n - 1)
    lo = int(rank)
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


class RollingWindow:
    """Bounded ring of recent ``(duration_ms, status)`` request outcomes.

    Keeps at most ``capacity`` samples; :meth:`summary` computes count,
    error rate (status >= 500), and interpolated latency percentiles over
    whatever is currently in the ring.  O(capacity log capacity) per
    summary, O(1) per record — summaries happen on scrape/health cadence,
    records on every request.
    """

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)

    def record(self, dur_ms: float, status: int = 200) -> None:
        self._ring.append((float(dur_ms), int(status)))

    def __len__(self) -> int:
        return len(self._ring)

    def summary(self) -> dict[str, Any]:
        items = list(self._ring)
        n = len(items)
        if n == 0:
            return {"count": 0, "error_count": 0, "error_rate": 0.0,
                    "p50_ms": None, "p95_ms": None, "p99_ms": None,
                    "mean_ms": None, "max_ms": None}
        durs = sorted(d for d, _ in items)
        errors = sum(1 for _, s in items if s >= 500)
        return {
            "count": n,
            "error_count": errors,
            "error_rate": errors / n,
            "p50_ms": percentile_sorted(durs, 0.50),
            "p95_ms": percentile_sorted(durs, 0.95),
            "p99_ms": percentile_sorted(durs, 0.99),
            "mean_ms": sum(durs) / n,
            "max_ms": durs[-1],
        }


class SloTracker:
    """Rolling SLO summaries, overall and per route.

    ``record(route, status, dur_ms)`` feeds both the route's window and
    the aggregate ``"all"`` window; :meth:`summary` returns the nested
    dict embedded in ``/healthz`` and rendered by ``repro obs top``.
    Thread-safe: the serve path records from many handler threads.
    """

    ALL = "all"

    def __init__(self, capacity: int = 512):
        import threading

        self.capacity = capacity
        self._windows: dict[str, RollingWindow] = {}
        self._lock = threading.Lock()

    def _window(self, route: str) -> RollingWindow:
        w = self._windows.get(route)
        if w is None:
            with self._lock:
                w = self._windows.setdefault(route,
                                             RollingWindow(self.capacity))
        return w

    def record(self, route: str, status: int, dur_ms: float) -> None:
        self._window(self.ALL).record(dur_ms, status)
        if route != self.ALL:
            self._window(route).record(dur_ms, status)

    def summary(self, route: str | None = None) -> dict[str, Any]:
        if route is not None:
            return self._window(route).summary()
        with self._lock:
            routes = sorted(self._windows)
        out = {r: self._windows[r].summary() for r in routes}
        out.setdefault(self.ALL, RollingWindow(1).summary())
        return out

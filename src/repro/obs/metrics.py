"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Prometheus-flavoured but dependency-free.  A metric is identified by a name
plus a frozen label set (``counter("planner.scored", split=12, repl=4)``);
the registry interns one instance per identity, so repeated lookups are one
dict hit.  Histograms use *fixed bucket bounds* and estimate percentiles by
linear interpolation inside the winning bucket — O(buckets) per query, O(1)
per observation, bounded memory regardless of sample count.

When observability is disabled, :func:`repro.obs.counter` & friends return
the shared no-op instances below, so instrumented code never needs its own
enabled-check for correctness (only hot loops should hoist one for speed).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
]

#: Default histogram bounds: a 1-2-5 ladder from 1 µs to 1000 s.  Wide
#: enough for wall-clock seconds and for dimensionless counts alike.
DEFAULT_BUCKETS = tuple(
    m * 10.0 ** e for e in range(-6, 4) for m in (1.0, 2.0, 5.0)
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n=1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value.

    A gauge can also carry a *collect-time provider* (:meth:`set_fn`, the
    Prometheus ``set_function`` idiom): instead of paying to compute an
    expensive value at record time, the producer hands over a zero-argument
    callable and :attr:`value` evaluates it — once, memoized — when the
    gauge is actually read (directly or via a registry snapshot).  A later
    :meth:`set`/:meth:`set_fn` overwrites the pending provider, preserving
    last-write-wins semantics.
    """

    __slots__ = ("name", "labels", "_value", "_fn")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = None

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            self._fn = None
            self._value = float(fn())
        return self._value

    def set(self, v) -> None:
        self._fn = None
        self._value = float(v)

    def set_fn(self, fn) -> None:
        """Defer this gauge's value to ``fn()``, evaluated lazily on read."""
        self._fn = fn

    def add(self, v) -> None:
        self._value = self.value + float(v)


class Histogram:
    """Fixed-bucket distribution with interpolated percentile estimates.

    ``bounds`` are upper bucket edges; observations fall in the first bucket
    whose edge is >= the value, with one implicit overflow bucket at the
    end.  :meth:`percentile` walks the cumulative counts to the target rank
    and interpolates linearly between the bucket's edges (clamped to the
    observed min/max, so estimates never leave the data's range).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (), buckets=DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, v) -> None:
        v = float(v)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def observe_many(self, values) -> None:
        """Record a whole sample vector in one vectorized pass.

        Bucket counts, count, min, and max land exactly as if
        :meth:`observe` had been called per value (``np.searchsorted``'s
        ``side="left"`` is ``bisect_left``); only ``sum`` may differ in the
        last float bits, since numpy's pairwise summation re-associates the
        additions.  Hot loops (the simulators) pre-aggregate samples into
        plain lists and flush through here so instrumentation stays off
        their per-event path.
        """
        import numpy as np

        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.bounds), arr, side="left")
        counts = self.counts
        for b, c in zip(*np.unique(idx, return_counts=True)):
            counts[int(b)] += int(c)
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        mn = float(arr.min())
        mx = float(arr.max())
        if self.min is None or mn < self.min:
            self.min = mn
        if self.max is None or mx > self.max:
            self.max = mx

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-quantile (``0 <= p <= 1``); 0.0 when empty."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile wants 0..1, got {p}")
        if not self.count:
            return 0.0
        target = p * self.count
        cum = 0.0
        for i, c in enumerate(self.counts):
            if not c:
                continue
            lo = self.bounds[i - 1] if i > 0 else self.min
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            if cum + c >= target:
                frac = (target - cum) / c
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            cum += c
        return self.max  # pragma: no cover - unreachable (cum == count)


class _NoopMetric:
    """Shared sink for metric calls while observability is disabled."""

    __slots__ = ()
    kind = "noop"
    name = "<noop>"
    labels = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, n=1) -> None:
        pass

    def set(self, v) -> None:
        pass

    def set_fn(self, fn) -> None:
        pass

    def add(self, v) -> None:
        pass

    def observe(self, v) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0


NOOP_COUNTER = NOOP_GAUGE = NOOP_HISTOGRAM = _NoopMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Interns metrics by ``(kind, name, labels)``; thread-safe creation."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return name, tuple(sorted(labels.items()))

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = self._key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            with self._lock:
                m = self._metrics.get(key)
                if m is None:
                    m = cls(name, key[1], **kwargs)
                    self._metrics[key] = m
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{m.kind}, not {cls.kind}"
            )
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> list:
        """All metrics, sorted by (name, labels) for deterministic output."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def merge_records(self, records) -> int:
        """Merge wire-format metric records (``sinks._metric_record`` dicts,
        e.g. shipped from a pool worker) into this registry.

        Counters and histogram bucket counts/sums *add*; gauges are
        last-write-wins; histogram min/max widen.  Returns the number of
        records merged.
        """
        n = 0
        for rec in records:
            kind = rec.get("type")
            labels = rec.get("labels") or {}
            if kind == "counter":
                self.counter(rec["name"], **labels).inc(rec["value"])
            elif kind == "gauge":
                self.gauge(rec["name"], **labels).set(rec["value"])
            elif kind == "histogram":
                pairs = rec["buckets"]
                bounds = [p[0] for p in pairs if p[0] is not None]
                h = self.histogram(rec["name"], buckets=bounds, **labels)
                if len(h.counts) != len(pairs):
                    raise ValueError(
                        f"histogram {rec['name']!r} bucket mismatch: "
                        f"have {len(h.counts)}, record has {len(pairs)}"
                    )
                for i, (_, c) in enumerate(pairs):
                    h.counts[i] += c
                h.count += rec["count"]
                h.sum += rec["sum"]
                if rec["min"] is not None and (h.min is None or rec["min"] < h.min):
                    h.min = rec["min"]
                if rec["max"] is not None and (h.max is None or rec["max"] > h.max):
                    h.max = rec["max"]
            else:
                raise ValueError(f"cannot merge record of type {kind!r}")
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._metrics)

"""Schema for the JSONL observability event log (and its validator).

One JSON object per line.  Line 1 is a ``meta`` header; every following
line is a ``span``, ``counter``, ``gauge``, or ``histogram`` record.  The
schema is expressed as a field table (name → allowed types, required?) and
validated by :func:`validate_event` — dependency-free on purpose, but the
table mirrors what a JSON-Schema ``properties``/``required`` pair would
say, so external consumers can transcribe it mechanically.

Wall-clock fields (``t0``/``t1``/``dur``/``pid``/``tid``, ``epoch``) are
nullable: deterministic exports (``include_wall=False``) null them out so
repeated runs diff cleanly while still validating.

Version 2 adds *optional* trace-correlation fields to span records
(``trace_id``/``uid``/``parent_uid``, written only for spans emitted under
a :mod:`repro.obs.context` trace context), plus the :data:`SPAN_NAMES`
registry of every span name the codebase may emit.  v1 logs (and v2 spans
without a trace context) remain valid.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Schema version written into the ``meta`` header of new exports.
SCHEMA_VERSION = 2

#: Versions :func:`validate_event` accepts (v1 logs lack trace fields).
ACCEPTED_VERSIONS = frozenset({1, 2})

_NUM = (int, float)
_OPT_NUM = (int, float, type(None))
_OPT_INT = (int, type(None))
_OPT_STR = (str, type(None))

#: record type -> {field: (allowed python types, required)}
FIELDS: dict[str, dict[str, tuple[tuple, bool]]] = {
    "meta": {
        "type": ((str,), True),
        "version": ((int,), True),
        "tool": ((str,), True),
        "epoch": (_OPT_NUM, True),
    },
    "span": {
        "type": ((str,), True),
        "name": ((str,), True),
        "seq": ((int,), True),
        "span_id": ((int,), True),
        "parent_id": (_OPT_INT, True),
        "t0": (_OPT_NUM, True),
        "t1": (_OPT_NUM, True),
        "dur": (_OPT_NUM, True),
        "pid": (_OPT_INT, True),
        "tid": (_OPT_INT, True),
        "attrs": ((dict,), True),
        # v2 trace correlation (present only on trace-stamped spans).
        "trace_id": (_OPT_STR, False),
        "uid": (_OPT_STR, False),
        "parent_uid": (_OPT_STR, False),
    },
    "counter": {
        "type": ((str,), True),
        "name": ((str,), True),
        "labels": ((dict,), True),
        "value": (_NUM, True),
    },
    "gauge": {
        "type": ((str,), True),
        "name": ((str,), True),
        "labels": ((dict,), True),
        "value": (_NUM, True),
    },
    "histogram": {
        "type": ((str,), True),
        "name": ((str,), True),
        "labels": ((dict,), True),
        "count": ((int,), True),
        "sum": (_NUM, True),
        "min": (_OPT_NUM, True),
        "max": (_OPT_NUM, True),
        "buckets": ((list,), True),
        "p50": (_OPT_NUM, True),
        "p95": (_OPT_NUM, True),
        "p99": (_OPT_NUM, True),
    },
}


#: Every span name the codebase may emit, grouped by component.  Names
#: follow the ``component.operation`` convention; ``scripts/trace_lint.py``
#: statically checks that each ``span("...")`` literal in ``src/`` appears
#: here (and that nothing here has gone stale).  Add new names as you add
#: instrumentation — the registry doubles as the sink consumers' contract.
SPAN_NAMES: dict[str, tuple[str, ...]] = {
    "planner": ("planner.search",),
    "sim": ("sim.run", "sim.run_batched"),
    "runtime": ("runtime.build_graph", "runtime.execute"),
    "faults": ("faults.seed", "faults.run_ensemble", "faults.run_ensembles"),
    "perf": ("perf.sweep",),
    "check": ("check.suite", "check.execution"),
    "serve": ("serve.request", "serve.job", "serve.drain",
              "serve.queue_wait", "serve.execute"),
    "client": ("client.submit", "client.wait", "client.fetch"),
}


def span_names() -> frozenset:
    """Flat set of every registered span name."""
    return frozenset(n for names in SPAN_NAMES.values() for n in names)


class SchemaError(ValueError):
    """A JSONL record does not conform to the observability schema."""


def validate_event(obj) -> None:
    """Raise :class:`SchemaError` unless ``obj`` is a valid record."""
    if not isinstance(obj, dict):
        raise SchemaError(f"record must be an object, got {type(obj).__name__}")
    rtype = obj.get("type")
    spec = FIELDS.get(rtype)
    if spec is None:
        raise SchemaError(
            f"unknown record type {rtype!r} (one of {sorted(FIELDS)})"
        )
    for field, (types, required) in spec.items():
        if field not in obj:
            if required:
                raise SchemaError(f"{rtype} record missing field {field!r}")
            continue
        v = obj[field]
        # bool is an int subclass; never a valid numeric field here.
        if isinstance(v, bool) or not isinstance(v, types):
            raise SchemaError(
                f"{rtype}.{field} has type {type(v).__name__}, "
                f"expected one of {tuple(t.__name__ for t in types)}"
            )
    extra = set(obj) - set(spec)
    if extra:
        raise SchemaError(f"{rtype} record has unknown fields {sorted(extra)}")
    if rtype == "meta" and obj["version"] not in ACCEPTED_VERSIONS:
        raise SchemaError(
            f"schema version {obj['version']} not in supported "
            f"{sorted(ACCEPTED_VERSIONS)}"
        )
    if rtype == "span" and obj["t0"] is not None and obj["t1"] is not None:
        if obj["t1"] < obj["t0"]:
            raise SchemaError(f"span {obj['name']!r} ends before it starts")
    if rtype == "histogram":
        for pair in obj["buckets"]:
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not isinstance(pair[0], (*_NUM, type(None)))
                or not isinstance(pair[1], int)
            ):
                raise SchemaError(
                    "histogram buckets must be [upper_bound|null, count] pairs"
                )


def validate_jsonl(path) -> int:
    """Validate every line of a JSONL export; returns the record count.

    The first record must be the ``meta`` header.
    """
    count = 0
    with open(Path(path)) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise SchemaError(f"{path}:{lineno}: not JSON ({e})") from e
            try:
                validate_event(obj)
            except SchemaError as e:
                raise SchemaError(f"{path}:{lineno}: {e}") from e
            if count == 0 and obj.get("type") != "meta":
                raise SchemaError(f"{path}:1: first record must be 'meta'")
            count += 1
    if count == 0:
        raise SchemaError(f"{path}: empty event log")
    return count

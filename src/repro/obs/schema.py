"""Schema for the JSONL observability event log (and its validator).

One JSON object per line.  Line 1 is a ``meta`` header; every following
line is a ``span``, ``counter``, ``gauge``, or ``histogram`` record.  The
schema is expressed as a field table (name → allowed types, required?) and
validated by :func:`validate_event` — dependency-free on purpose, but the
table mirrors what a JSON-Schema ``properties``/``required`` pair would
say, so external consumers can transcribe it mechanically.

Wall-clock fields (``t0``/``t1``/``dur``/``pid``/``tid``, ``epoch``) are
nullable: deterministic exports (``include_wall=False``) null them out so
repeated runs diff cleanly while still validating.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Schema version written into (and expected from) the ``meta`` header.
SCHEMA_VERSION = 1

_NUM = (int, float)
_OPT_NUM = (int, float, type(None))
_OPT_INT = (int, type(None))

#: record type -> {field: (allowed python types, required)}
FIELDS: dict[str, dict[str, tuple[tuple, bool]]] = {
    "meta": {
        "type": ((str,), True),
        "version": ((int,), True),
        "tool": ((str,), True),
        "epoch": (_OPT_NUM, True),
    },
    "span": {
        "type": ((str,), True),
        "name": ((str,), True),
        "seq": ((int,), True),
        "span_id": ((int,), True),
        "parent_id": (_OPT_INT, True),
        "t0": (_OPT_NUM, True),
        "t1": (_OPT_NUM, True),
        "dur": (_OPT_NUM, True),
        "pid": (_OPT_INT, True),
        "tid": (_OPT_INT, True),
        "attrs": ((dict,), True),
    },
    "counter": {
        "type": ((str,), True),
        "name": ((str,), True),
        "labels": ((dict,), True),
        "value": (_NUM, True),
    },
    "gauge": {
        "type": ((str,), True),
        "name": ((str,), True),
        "labels": ((dict,), True),
        "value": (_NUM, True),
    },
    "histogram": {
        "type": ((str,), True),
        "name": ((str,), True),
        "labels": ((dict,), True),
        "count": ((int,), True),
        "sum": (_NUM, True),
        "min": (_OPT_NUM, True),
        "max": (_OPT_NUM, True),
        "buckets": ((list,), True),
        "p50": (_OPT_NUM, True),
        "p95": (_OPT_NUM, True),
        "p99": (_OPT_NUM, True),
    },
}


class SchemaError(ValueError):
    """A JSONL record does not conform to the observability schema."""


def validate_event(obj) -> None:
    """Raise :class:`SchemaError` unless ``obj`` is a valid record."""
    if not isinstance(obj, dict):
        raise SchemaError(f"record must be an object, got {type(obj).__name__}")
    rtype = obj.get("type")
    spec = FIELDS.get(rtype)
    if spec is None:
        raise SchemaError(
            f"unknown record type {rtype!r} (one of {sorted(FIELDS)})"
        )
    for field, (types, required) in spec.items():
        if field not in obj:
            if required:
                raise SchemaError(f"{rtype} record missing field {field!r}")
            continue
        v = obj[field]
        # bool is an int subclass; never a valid numeric field here.
        if isinstance(v, bool) or not isinstance(v, types):
            raise SchemaError(
                f"{rtype}.{field} has type {type(v).__name__}, "
                f"expected one of {tuple(t.__name__ for t in types)}"
            )
    extra = set(obj) - set(spec)
    if extra:
        raise SchemaError(f"{rtype} record has unknown fields {sorted(extra)}")
    if rtype == "meta" and obj["version"] != SCHEMA_VERSION:
        raise SchemaError(
            f"schema version {obj['version']} != supported {SCHEMA_VERSION}"
        )
    if rtype == "span" and obj["t0"] is not None and obj["t1"] is not None:
        if obj["t1"] < obj["t0"]:
            raise SchemaError(f"span {obj['name']!r} ends before it starts")
    if rtype == "histogram":
        for pair in obj["buckets"]:
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not isinstance(pair[0], (*_NUM, type(None)))
                or not isinstance(pair[1], int)
            ):
                raise SchemaError(
                    "histogram buckets must be [upper_bound|null, count] pairs"
                )


def validate_jsonl(path) -> int:
    """Validate every line of a JSONL export; returns the record count.

    The first record must be the ``meta`` header.
    """
    count = 0
    with open(Path(path)) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise SchemaError(f"{path}:{lineno}: not JSON ({e})") from e
            try:
                validate_event(obj)
            except SchemaError as e:
                raise SchemaError(f"{path}:{lineno}: {e}") from e
            if count == 0 and obj.get("type") != "meta":
                raise SchemaError(f"{path}:1: first record must be 'meta'")
            count += 1
    if count == 0:
        raise SchemaError(f"{path}: empty event log")
    return count

"""Observability sinks: JSONL event log, console summary, Perfetto export.

Three ways to get data out of the tracer/metrics registry:

* :func:`write_jsonl` — one self-describing JSON object per line (schema in
  :mod:`repro.obs.schema`), machine-readable, suitable for diffing across
  runs with ``include_wall=False``;
* :func:`console_summary` — two aligned ASCII tables (span rollup by total
  wall time, then metrics) for ``repro <cmd> --metrics``;
* :func:`export_chrome` — a Chrome/Perfetto trace-event JSON that can
  *unify* wall-clock instrumentation spans with a simulated-time op trace:
  pid 0 carries the simulated slices (via
  :func:`repro.sim.chrome_trace.trace_to_events`), pid 1 carries the
  instrumentation spans, so one file shows both time domains side by side
  in https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.schema import SCHEMA_VERSION

__all__ = [
    "write_jsonl",
    "console_summary",
    "spans_to_chrome_events",
    "export_chrome",
]


def _defaults(tracer, registry):
    import repro.obs as obs

    return tracer if tracer is not None else obs.tracer(), (
        registry if registry is not None else obs.registry()
    )


# --------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------- #
def _span_record(rec, include_wall: bool) -> dict:
    out = {
        "type": "span",
        "name": rec.name,
        "seq": rec.seq,
        "span_id": rec.span_id,
        "parent_id": rec.parent_id,
        "t0": rec.t0 if include_wall else None,
        "t1": rec.t1 if include_wall else None,
        "dur": rec.t1 - rec.t0 if include_wall else None,
        "pid": rec.pid if include_wall else None,
        "tid": rec.tid if include_wall else None,
        "attrs": dict(rec.attrs),
    }
    # Trace correlation fields are only present for trace-stamped spans, so
    # context-free (and pre-v2) logs stay byte-identical to before.
    if rec.trace_id is not None:
        out["trace_id"] = rec.trace_id
        out["uid"] = rec.uid
        out["parent_uid"] = rec.parent_uid
    return out


def _metric_record(m) -> dict:
    labels = dict(m.labels)
    if m.kind in ("counter", "gauge"):
        return {"type": m.kind, "name": m.name, "labels": labels,
                "value": m.value}
    buckets = [[b, c] for b, c in zip(m.bounds, m.counts)]
    buckets.append([None, m.counts[-1]])  # +inf overflow bucket
    return {
        "type": "histogram",
        "name": m.name,
        "labels": labels,
        "count": m.count,
        "sum": m.sum,
        "min": m.min,
        "max": m.max,
        "buckets": buckets,
        "p50": m.percentile(0.50) if m.count else None,
        "p95": m.percentile(0.95) if m.count else None,
        "p99": m.percentile(0.99) if m.count else None,
    }


def write_jsonl(
    path,
    tracer=None,
    registry=None,
    include_wall: bool = True,
) -> Path:
    """Write spans then metrics as JSONL; returns the path written.

    Spans are emitted in ``seq`` (start) order and metrics in sorted
    ``(name, labels)`` order, so with ``include_wall=False`` the output of
    two identical runs is byte-identical.
    """
    tracer, registry = _defaults(tracer, registry)
    path = Path(path)
    with open(path, "w") as fh:
        header = {
            "type": "meta",
            "version": SCHEMA_VERSION,
            "tool": "repro.obs",
            "epoch": tracer.epoch if include_wall else None,
        }
        fh.write(json.dumps(header) + "\n")
        for rec in sorted(tracer.spans(), key=lambda r: r.seq):
            fh.write(json.dumps(_span_record(rec, include_wall)) + "\n")
        for m in registry.snapshot():
            fh.write(json.dumps(_metric_record(m)) + "\n")
    return path


# --------------------------------------------------------------------- #
# Console summary
# --------------------------------------------------------------------- #
def _fmt_value(m) -> str:
    if m.kind == "counter":
        return str(m.value)
    if m.kind == "gauge":
        return f"{m.value:.6g}"
    if not m.count:
        return "n=0"
    return (f"n={m.count} mean={m.mean:.4g} "
            f"p50={m.percentile(0.5):.4g} p95={m.percentile(0.95):.4g} "
            f"max={m.max:.4g}")


def console_summary(tracer=None, registry=None) -> str:
    """Human-readable rollup of spans and metrics as two ASCII tables."""
    from repro.experiments.reporting import format_table

    tracer, registry = _defaults(tracer, registry)
    blocks = []
    agg = tracer.aggregate()
    if agg:
        rows = [
            [r["name"], r["count"], f"{r['total'] * 1e3:.1f}ms",
             f"{r['mean'] * 1e3:.2f}ms", f"{r['max'] * 1e3:.2f}ms"]
            for r in agg
        ]
        blocks.append(format_table(
            ["span", "count", "total", "mean", "max"], rows,
            title="Instrumentation spans (wall clock)",
        ))
    metrics = registry.snapshot()
    if metrics:
        rows = [
            [m.name,
             ",".join(f"{k}={v}" for k, v in m.labels) or "-",
             m.kind, _fmt_value(m)]
            for m in metrics
        ]
        blocks.append(format_table(
            ["metric", "labels", "kind", "value"], rows, title="Metrics",
        ))
    if not blocks:
        return "observability: no spans or metrics recorded"
    return "\n\n".join(blocks)


# --------------------------------------------------------------------- #
# Chrome / Perfetto
# --------------------------------------------------------------------- #
#: Process ids in the unified export: simulated-time op slices vs
#: wall-clock instrumentation spans.
SIM_PID = 0
OBS_PID = 1


def spans_to_chrome_events(tracer=None, pid: int = OBS_PID,
                           time_scale: float = 1e6) -> list[dict]:
    """Finished spans as Chrome 'X' events (one row per OS thread)."""
    tracer, _ = _defaults(tracer, None)
    spans = sorted(tracer.spans(), key=lambda r: r.seq)
    tid_of: dict[tuple, int] = {}
    events: list[dict] = []
    for rec in spans:
        # Ingested worker spans keep their original pid; key lanes on
        # (pid, tid) so a child's thread never aliases a parent thread.
        lane_key = (rec.pid, rec.tid)
        tid = tid_of.get(lane_key)
        if tid is None:
            tid = tid_of[lane_key] = len(tid_of)
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": f"thread-{tid} (os {rec.pid}:{rec.tid})"},
            })
        attrs = {k: str(v) for k, v in rec.attrs.items()}
        attrs["seq"] = str(rec.seq)
        if rec.trace_id is not None:
            attrs["trace_id"] = rec.trace_id
            attrs["uid"] = str(rec.uid)
            if rec.parent_uid is not None:
                attrs["parent_uid"] = str(rec.parent_uid)
        events.append({
            "name": rec.name,
            "cat": "obs",
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": rec.t0 * time_scale,
            "dur": max((rec.t1 - rec.t0) * time_scale, 0.01),
            "args": attrs,
        })
    return events


def export_chrome(path, tracer=None, sim_trace=None,
                  time_scale: float = 1e6) -> Path:
    """Write a Perfetto-loadable trace of spans (and, optionally, sim ops).

    With ``sim_trace`` given, the file unifies both time domains: pid
    ``SIM_PID`` shows the simulated iteration (identical rows to
    :func:`repro.sim.chrome_trace.export_chrome_trace`), pid ``OBS_PID``
    the wall-clock instrumentation spans.  The two axes share the viewer's
    microsecond timeline but measure different clocks — the point is
    side-by-side structure, not alignment.
    """
    events: list[dict] = []
    if sim_trace is not None:
        from repro.sim.chrome_trace import trace_to_events

        events.append({
            "name": "process_name", "ph": "M", "pid": SIM_PID,
            "args": {"name": "simulated time (op slices)"},
        })
        events.extend(trace_to_events(sim_trace, time_scale=time_scale))
    events.append({
        "name": "process_name", "ph": "M", "pid": OBS_PID,
        "args": {"name": "instrumentation (wall clock)"},
    })
    events.extend(spans_to_chrome_events(tracer, time_scale=time_scale))
    path = Path(path)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path

"""Span-based wall-clock tracer with a no-op fast path.

A *span* is a named, attributed interval of real (wall-clock) time — "this
planner search took 120 ms", "this simulator run took 40 ms" — as opposed to
the *simulated* time recorded in :class:`repro.sim.trace.Trace`.  Spans nest:
each span remembers its parent (the innermost open span on the same thread),
so exports reconstruct the call tree of an instrumented run.

Determinism: every span carries a **monotonic counter** (``seq``, assigned at
span *start* from a process-wide counter) alongside its wall-clock
timestamps.  Exports keyed on ``seq`` (see
:func:`repro.obs.sinks.write_jsonl` with ``include_wall=False``) are
byte-identical across repeated runs of a deterministic program, which lets
tests diff trace files directly.

Overhead: when tracing is disabled (the default), :func:`repro.obs.span`
returns one shared :data:`NOOP_SPAN` object whose ``__enter__``/``__exit__``
do nothing — a single global-flag check plus one attribute lookup, so
instrumented hot paths pay ~nothing (guarded by
``tests/perf/test_obs_overhead.py``).

Thread/process safety: span ids come from :class:`itertools.count` (atomic
under CPython's GIL); the per-thread open-span stack lives in
``threading.local``; finished spans are appended under a lock.  Spans opened
in forked worker processes land in the *child's* tracer copy; with a
:class:`~repro.obs.context.TraceContext` installed they can be shipped back
and merged via :meth:`Tracer.ingest` (fresh local seq ids, original
trace-scoped uids — see :func:`repro.obs.context.run_captured`), which is
how :class:`~repro.perf.sweep.ForkPool` reassembles one request's spans
across processes.

Trace correlation: while a :mod:`repro.obs.context` context is installed on
the opening thread, each span additionally carries a ``trace_id``, a
process-unique string ``uid``, and a ``parent_uid`` linking it into the
request's cross-process span tree; without a context those fields stay
``None`` and nothing changes (including byte-identical deterministic
exports).
"""

from __future__ import annotations

import itertools
import os
import threading
import time

from repro.obs import context as _trace_context


class SpanRecord:
    """One finished span: identity, interval, attributes."""

    __slots__ = ("name", "seq", "span_id", "parent_id", "t0", "t1",
                 "attrs", "pid", "tid", "trace_id", "uid", "parent_uid")

    def __init__(self, name, seq, span_id, parent_id, t0, t1, attrs, pid, tid,
                 trace_id=None, uid=None, parent_uid=None):
        self.name = name
        #: Monotonic start counter — the deterministic ordering key.
        self.seq = seq
        self.span_id = span_id
        self.parent_id = parent_id
        #: Wall-clock start/end, seconds relative to the tracer's origin.
        self.t0 = t0
        self.t1 = t1
        self.attrs = attrs
        self.pid = pid
        self.tid = tid
        #: Cross-process trace identity (None unless a context was active).
        self.trace_id = trace_id
        self.uid = uid
        self.parent_uid = parent_uid

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, seq={self.seq}, "
                f"dur={self.duration * 1e3:.3f}ms, attrs={self.attrs})")


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: The singleton no-op span; identity-comparable in tests.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager for one open span of a :class:`Tracer`."""

    __slots__ = ("_tracer", "name", "seq", "span_id", "parent_id", "t0", "t1",
                 "attrs", "trace_id", "uid", "parent_uid")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.seq = self.span_id = self.parent_id = -1
        self.t0 = self.t1 = 0.0
        self.trace_id = self.uid = self.parent_uid = None

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        tr = self._tracer
        self.seq = self.span_id = next(tr._counter)
        stack = tr._stack()
        parent = stack[-1] if stack else None
        self.parent_id = parent.span_id if parent is not None else None
        ctx = _trace_context.current()
        if ctx is not None:
            self.trace_id = ctx.trace_id
            self.uid = _trace_context.make_uid(self.seq)
            if parent is not None and parent.trace_id == ctx.trace_id \
                    and parent.uid is not None:
                self.parent_uid = parent.uid
            else:
                self.parent_uid = ctx.span_id
        stack.append(self)
        self.t0 = time.perf_counter() - tr.origin
        return self

    def __exit__(self, *exc) -> bool:
        tr = self._tracer
        self.t1 = time.perf_counter() - tr.origin
        stack = tr._stack()
        if stack and stack[-1] is self:
            stack.pop()
        rec = SpanRecord(
            name=self.name,
            seq=self.seq,
            span_id=self.span_id,
            parent_id=self.parent_id,
            t0=self.t0,
            t1=self.t1,
            attrs=self.attrs,
            pid=os.getpid(),
            tid=threading.get_ident(),
            trace_id=self.trace_id,
            uid=self.uid,
            parent_uid=self.parent_uid,
        )
        with tr._lock:
            tr._finished.append(rec)
        return False


class Tracer:
    """Collects finished :class:`SpanRecord` rows for one instrumented run."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        #: Unix epoch of the origin, for cross-referencing external logs.
        self.epoch = time.time()
        self._counter = itertools.count()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[SpanRecord] = []

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    def spans(self) -> list[SpanRecord]:
        """Finished spans in completion order."""
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    # ------------------------------------------------------------------ #
    # Cross-process aggregation
    # ------------------------------------------------------------------ #
    def mark(self) -> int:
        """Watermark into the finished list (pair with :meth:`drain`)."""
        with self._lock:
            return len(self._finished)

    def drain(self, start: int = 0) -> list[SpanRecord]:
        """Remove and return the spans finished since ``start``.

        Pool workers use this to ship exactly one call's spans back to the
        parent without re-sending (or leaking) earlier ones.
        """
        with self._lock:
            taken = self._finished[start:]
            del self._finished[start:]
        return taken

    def add_span(self, name: str, t0_abs: float, t1_abs: float, *,
                 trace_id=None, uid=None, parent_uid=None, attrs=None,
                 pid=None, tid=None) -> SpanRecord:
        """Record a synthetic span from absolute (epoch) timestamps.

        Used for intervals that are only known after the fact — e.g. the
        ``serve.queue_wait`` segment between a job's submission and its
        claim — and by :meth:`ingest` for spans shipped from workers.  The
        span gets a fresh local seq id; ``uid`` defaults to a fresh
        process-unique uid when the span belongs to a trace.
        """
        seq = next(self._counter)
        if uid is None and trace_id is not None:
            uid = _trace_context.make_uid(seq)
        rec = SpanRecord(
            name=name,
            seq=seq,
            span_id=seq,
            parent_id=None,
            t0=t0_abs - self.epoch,
            t1=t1_abs - self.epoch,
            attrs=dict(attrs or {}),
            pid=pid if pid is not None else os.getpid(),
            tid=tid if tid is not None else threading.get_ident(),
            trace_id=trace_id,
            uid=uid,
            parent_uid=parent_uid,
        )
        with self._lock:
            self._finished.append(rec)
        return rec

    def ingest(self, records) -> int:
        """Merge spans shipped from another process (wire dicts with
        absolute timestamps, as built by ``repro.obs.context``).

        Each span keeps its trace-scoped identity (``trace_id``/``uid``/
        ``parent_uid``, child pid/tid) but is assigned a *fresh* local seq
        id, so parent-side aggregation never duplicates sequence numbers.
        Returns the number of spans ingested.
        """
        n = 0
        for rec in records:
            self.add_span(
                rec["name"], rec["t0"], rec["t1"],
                trace_id=rec.get("trace_id"),
                uid=rec.get("uid"),
                parent_uid=rec.get("parent_uid"),
                attrs=rec.get("attrs"),
                pid=rec.get("pid"),
                tid=rec.get("tid"),
            )
            n += 1
        return n

    def aggregate(self) -> list[dict]:
        """Per-name rollup: count, total/mean/max duration, sorted by total.

        The console sink renders this as the "where did wall time go" table.
        """
        agg: dict[str, list] = {}
        for rec in self.spans():
            row = agg.get(rec.name)
            if row is None:
                agg[rec.name] = [1, rec.duration, rec.duration]
            else:
                row[0] += 1
                row[1] += rec.duration
                row[2] = max(row[2], rec.duration)
        out = [
            {"name": name, "count": c, "total": tot, "mean": tot / c, "max": mx}
            for name, (c, tot, mx) in agg.items()
        ]
        out.sort(key=lambda r: (-r["total"], r["name"]))
        return out

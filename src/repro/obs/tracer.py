"""Span-based wall-clock tracer with a no-op fast path.

A *span* is a named, attributed interval of real (wall-clock) time — "this
planner search took 120 ms", "this simulator run took 40 ms" — as opposed to
the *simulated* time recorded in :class:`repro.sim.trace.Trace`.  Spans nest:
each span remembers its parent (the innermost open span on the same thread),
so exports reconstruct the call tree of an instrumented run.

Determinism: every span carries a **monotonic counter** (``seq``, assigned at
span *start* from a process-wide counter) alongside its wall-clock
timestamps.  Exports keyed on ``seq`` (see
:func:`repro.obs.sinks.write_jsonl` with ``include_wall=False``) are
byte-identical across repeated runs of a deterministic program, which lets
tests diff trace files directly.

Overhead: when tracing is disabled (the default), :func:`repro.obs.span`
returns one shared :data:`NOOP_SPAN` object whose ``__enter__``/``__exit__``
do nothing — a single global-flag check plus one attribute lookup, so
instrumented hot paths pay ~nothing (guarded by
``tests/perf/test_obs_overhead.py``).

Thread/process safety: span ids come from :class:`itertools.count` (atomic
under CPython's GIL); the per-thread open-span stack lives in
``threading.local``; finished spans are appended under a lock.  Spans opened
in forked worker processes land in the *child's* tracer copy and are not
merged back — instrument at the fan-out call site instead (see
:func:`repro.perf.sweep.sweep`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time


class SpanRecord:
    """One finished span: identity, interval, attributes."""

    __slots__ = ("name", "seq", "span_id", "parent_id", "t0", "t1",
                 "attrs", "pid", "tid")

    def __init__(self, name, seq, span_id, parent_id, t0, t1, attrs, pid, tid):
        self.name = name
        #: Monotonic start counter — the deterministic ordering key.
        self.seq = seq
        self.span_id = span_id
        self.parent_id = parent_id
        #: Wall-clock start/end, seconds relative to the tracer's origin.
        self.t0 = t0
        self.t1 = t1
        self.attrs = attrs
        self.pid = pid
        self.tid = tid

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, seq={self.seq}, "
                f"dur={self.duration * 1e3:.3f}ms, attrs={self.attrs})")


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: The singleton no-op span; identity-comparable in tests.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager for one open span of a :class:`Tracer`."""

    __slots__ = ("_tracer", "name", "seq", "span_id", "parent_id", "t0",
                 "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.seq = self.span_id = self.parent_id = -1
        self.t0 = 0.0

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        tr = self._tracer
        self.seq = self.span_id = next(tr._counter)
        stack = tr._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.t0 = time.perf_counter() - tr.origin
        return self

    def __exit__(self, *exc) -> bool:
        tr = self._tracer
        t1 = time.perf_counter() - tr.origin
        stack = tr._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        rec = SpanRecord(
            name=self.name,
            seq=self.seq,
            span_id=self.span_id,
            parent_id=self.parent_id,
            t0=self.t0,
            t1=t1,
            attrs=self.attrs,
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        with tr._lock:
            tr._finished.append(rec)
        return False


class Tracer:
    """Collects finished :class:`SpanRecord` rows for one instrumented run."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        #: Unix epoch of the origin, for cross-referencing external logs.
        self.epoch = time.time()
        self._counter = itertools.count()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[SpanRecord] = []

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    def spans(self) -> list[SpanRecord]:
        """Finished spans in completion order."""
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def aggregate(self) -> list[dict]:
        """Per-name rollup: count, total/mean/max duration, sorted by total.

        The console sink renders this as the "where did wall time go" table.
        """
        agg: dict[str, list] = {}
        for rec in self.spans():
            row = agg.get(rec.name)
            if row is None:
                agg[rec.name] = [1, rec.duration, rec.duration]
            else:
                row[0] += 1
                row[1] += rec.duration
                row[2] = max(row[2], rec.duration)
        out = [
            {"name": name, "count": c, "total": tot, "mean": tot / c, "max": mx}
            for name, (c, tot, mx) in agg.items()
        ]
        out.sort(key=lambda r: (-r["total"], r["name"]))
        return out

"""Performance plumbing: parallel experiment sweeps.

The planner itself is vectorized in :mod:`repro.core.fast_scan`; this
package covers the layer above it — fanning independent experiment grid
points across worker processes with deterministic result ordering.
"""

from repro.perf.record import load_bench_json, write_bench_json
from repro.perf.sweep import ForkPool, default_jobs, sweep

__all__ = ["ForkPool", "default_jobs", "load_bench_json", "sweep", "write_bench_json"]

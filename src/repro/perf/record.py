"""Machine-readable benchmark records.

``benchmarks/perf_*.py`` scripts historically wrote human-oriented ``.txt``
reports to ``results/``; this module adds a structured JSON sibling so CI
can diff runs mechanically (``benchmarks/check_regression.py`` gates
nightly runs on these files).  One record per benchmark script:

.. code-block:: json

    {
      "schema": "bench-v1",
      "bench": "perf_planner",
      "config": {"model": "bert48", "cluster": "B", "gbs": 64},
      "git_rev": "7f02317",
      "entries": [
        {"name": "level_batched", "ms": 68.2, "speedup": 3.96}
      ]
    }

``ms`` is the measured wall (best-of-N, matching the ``.txt``); ``speedup``
is relative to whichever baseline the script designates and may be absent
for reference rows.  Extra per-entry keys are allowed and preserved.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any

SCHEMA = "bench-v1"


def git_rev(repo_root: str | Path | None = None) -> str:
    """Short git revision of ``repo_root`` (or cwd), or "unknown"."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_record(
    bench: str,
    config: dict[str, Any],
    entries: list[dict[str, Any]],
    repo_root: str | Path | None = None,
) -> dict[str, Any]:
    """Assemble one benchmark record (see module docstring for the schema)."""
    for e in entries:
        if "name" not in e or "ms" not in e:
            raise ValueError(f"bench entry needs 'name' and 'ms': {e!r}")
    return {
        "schema": SCHEMA,
        "bench": bench,
        "config": config,
        "git_rev": git_rev(repo_root),
        "entries": entries,
    }


def write_bench_json(
    path: str | Path,
    bench: str,
    config: dict[str, Any],
    entries: list[dict[str, Any]],
    repo_root: str | Path | None = None,
) -> Path:
    """Write a benchmark record to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = bench_record(bench, config, entries, repo_root=repo_root)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a benchmark record."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {data.get('schema')!r}"
        )
    return data

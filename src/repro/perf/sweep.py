"""Parallel fan-out of independent experiment grid points.

The Fig. 12/13/14 drivers evaluate a grid (model × config × GBS, or model ×
GPU count) whose points are fully independent: each runs a planner search
plus a handful of simulator replays and takes seconds.  :func:`sweep` fans
such a grid across a ``ProcessPoolExecutor`` with two guarantees:

* **Deterministic ordering.**  Results are collected in *submission* order,
  never completion order, so a parallel run produces byte-identical report
  output to the serial path (enforced by ``tests/perf/test_sweep.py``).
* **Graceful fallback.**  ``jobs <= 1``, single-point grids, and platforms
  where forking workers fails (sandboxed CI) all run serially in-process —
  same results, no crash.

Workers must be *module-level* functions called with picklable positional
arguments (strings, ints), because each point re-derives profiles and
clusters inside the worker via the experiment layer's ``lru_cache``'d
helpers.  The ``fork`` start method is used where available so workers
inherit already-warm caches from the parent — including the process-default
content-addressed :class:`~repro.core.plancache.PlanCache` in-memory tier
that ``repro.experiments.common`` threads through every planner call, so a
grid point re-planning an already-seen (model, cluster, GBS, config) hits
instead of searching.  Spawn-based pools get the same reuse from the
cache's optional on-disk tier (``repro … --plan-cache DIR``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Sequence

import repro.obs as obs

__all__ = ["default_jobs", "sweep", "ForkPool"]


def default_jobs() -> int:
    """Worker count for ``jobs=None``: all cores but one (min 1)."""
    return max(1, (os.cpu_count() or 1) - 1)


def _run_serial(fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
    return [fn(*t) for t in tasks]


def _call_with_context(ctx_dict: dict, fn: Callable[..., Any], *args) -> Any:
    """Pool-worker shim: re-install a trace context, capture telemetry.

    Module-level (picklable) wrapper around
    :func:`repro.obs.context.run_captured`; the parent unwraps the payload
    with :func:`repro.obs.context.ingest_payload`.
    """
    from repro.obs.context import run_captured

    return run_captured(ctx_dict, fn, *args)


class ForkPool:
    """Persistent fork-preferred process pool with inline degradation.

    The machinery :func:`sweep` historically created per call, factored out
    so long-running consumers (the :mod:`repro.serve` worker pool) can hold
    one pool across many submissions: workers fork from the parent *once*
    and inherit its already-warm in-memory state — including the
    process-default :class:`~repro.core.plancache.PlanCache` tier — for the
    lifetime of the pool.

    Degradation is permanent and silent: if the platform cannot spawn
    processes (sandboxed CI) or the pool breaks, every subsequent call runs
    ``fn`` inline in the calling thread — same results, no crash.  Pass
    ``inline=True`` to skip processes entirely (deterministic single-process
    testing).
    """

    def __init__(self, jobs: int | None = None, *, inline: bool = False):
        import threading

        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        self._inline = inline
        self._pool = None
        self._lock = threading.Lock()  # submit() may come from many threads

    @property
    def mode(self) -> str:
        """``"fork"`` while a process pool is live/possible, else ``"inline"``."""
        return "inline" if self._inline else "fork"

    def _ensure(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing as mp
                from concurrent.futures import ProcessPoolExecutor

                try:
                    context = mp.get_context("fork")
                except ValueError:  # platform without fork (e.g. Windows)
                    context = mp.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=context
                )
            return self._pool

    def _degrade(self) -> None:
        self.shutdown(wait=False)
        self._inline = True

    def run(self, fn: Callable[..., Any], *args) -> Any:
        """Execute ``fn(*args)`` on a pool worker (or inline) and return it.

        Exceptions raised *by fn* propagate unchanged in both modes; only
        pool-infrastructure failures trigger inline degradation.

        When the calling thread has a :mod:`repro.obs.context` trace
        context installed, the call is wrapped so the worker re-installs
        the context and ships its spans/metrics back for parent-side
        ingestion — cross-process calls stay on one connected trace.
        (Inline calls need nothing: the context is already on the thread.)
        """
        if self._inline:
            return fn(*args)
        from concurrent.futures.process import BrokenProcessPool

        from repro.obs import context as trace_context

        snap = trace_context.snapshot()
        try:
            if snap is not None:
                payload = self._ensure().submit(
                    _call_with_context, snap, fn, *args
                ).result()
                return trace_context.ingest_payload(payload)
            return self._ensure().submit(fn, *args).result()
        except (OSError, PermissionError, BrokenProcessPool):
            self._degrade()
            return fn(*args)

    def map_ordered(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """Apply ``fn`` to every task, returning results in task order."""
        if self._inline:
            return _run_serial(fn, tasks)
        try:
            pool = self._ensure()
            futures = [pool.submit(fn, *t) for t in tasks]
            return [f.result() for f in futures]
        except (OSError, PermissionError):
            # Process spawn blocked (sandbox, fd limits): fall back to serial.
            self._degrade()
            return _run_serial(fn, tasks)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=wait)
            except Exception:
                pass


def sweep(
    fn: Callable[..., Any],
    tasks: Iterable[tuple],
    jobs: int | None = 1,
) -> list[Any]:
    """Apply ``fn(*task)`` to every task, optionally across processes.

    Parameters
    ----------
    fn:
        Module-level worker function (must be picklable).
    tasks:
        Iterable of positional-argument tuples, one per grid point.
    jobs:
        Worker processes; ``None`` → :func:`default_jobs`, ``<= 1`` → serial.

    Returns results **in task order** regardless of completion order.
    """
    tasks = [tuple(t) for t in tasks]
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, len(tasks))
    with obs.span(
        "perf.sweep",
        fn=getattr(fn, "__name__", str(fn)),
        tasks=len(tasks),
        jobs=jobs,
    ):
        if jobs <= 1:
            return _run_serial(fn, tasks)

        pool = ForkPool(jobs)
        try:
            return pool.map_ordered(fn, tasks)
        finally:
            pool.shutdown()

"""DAPPLE runtime: executes plans and schedules on the simulated cluster."""

from repro.runtime.checkpointing import (
    STRATEGIES,
    StageCheckpointing,
    normalize_strategy,
    stage_checkpointing,
)
from repro.runtime.dataparallel import (
    DataParallelResult,
    dp_iteration_time,
    overlapped_allreduce_exposure,
)
from repro.runtime.executor import (
    ExecutionResult,
    IterationOps,
    PipelineExecutor,
    execute_plan,
)
from repro.runtime.analysis import PipelineReport, analyze, closed_form_efficiency
from repro.runtime.memory import MemoryModel, OutOfMemoryError, StageMemory
from repro.runtime.steady_state import SteadyStateResult, simulate_iterations

__all__ = [
    "STRATEGIES",
    "StageCheckpointing",
    "normalize_strategy",
    "stage_checkpointing",
    "DataParallelResult",
    "dp_iteration_time",
    "overlapped_allreduce_exposure",
    "ExecutionResult",
    "IterationOps",
    "PipelineExecutor",
    "execute_plan",
    "MemoryModel",
    "OutOfMemoryError",
    "StageMemory",
    "SteadyStateResult",
    "simulate_iterations",
    "PipelineReport",
    "analyze",
    "closed_form_efficiency",
]

"""Post-run pipeline analysis: bubbles, utilization, efficiency.

Implements the paper's §II-A accounting on simulated traces:

* per-device busy/idle breakdown and bubble fraction;
* measured pipeline efficiency (average device utilization);
* the closed-form prediction ``E = 1 / (1 + P)`` with
  ``P = (1+α)(S−1)/M`` for comparison against measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.executor import ExecutionResult


@dataclass(frozen=True)
class DeviceBreakdown:
    """Busy/idle split of one device over an iteration."""

    device: str
    busy: float
    idle: float

    @property
    def utilization(self) -> float:
        """Busy fraction of this device over the iteration."""
        total = self.busy + self.idle
        return self.busy / total if total > 0 else 0.0


@dataclass(frozen=True)
class PipelineReport:
    """Efficiency summary of one simulated iteration."""

    devices: list[DeviceBreakdown]
    makespan: float
    measured_efficiency: float
    predicted_efficiency: float
    num_stages: int
    num_micro_batches: int
    acr: float

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction — the paper's pipeline 'bubble' overhead."""
        return 1.0 - self.measured_efficiency

    def summary(self) -> str:
        """Human-readable efficiency report (measured vs closed form)."""
        lines = [
            f"pipeline: S={self.num_stages} stages, M={self.num_micro_batches} "
            f"micro-batches, ACR={self.acr:.3f}",
            f"measured efficiency {self.measured_efficiency * 100:.1f}% "
            f"(closed-form §II-A prediction {self.predicted_efficiency * 100:.1f}%)",
        ]
        for d in self.devices:
            lines.append(
                f"  {d.device:>8s}: busy {d.busy * 1e3:8.1f} ms "
                f"({d.utilization * 100:5.1f}%)"
            )
        return "\n".join(lines)


def closed_form_efficiency(num_stages: int, num_micro_batches: int, acr: float) -> float:
    """Paper §II-A: ``1 / (1 + P)``, ``P = (1+α)(S−1)/M``."""
    if num_stages < 1 or num_micro_batches < 1:
        raise ValueError("need >=1 stage and micro-batch")
    p = (1.0 + acr) * (num_stages - 1) / num_micro_batches
    return 1.0 / (1.0 + p)


def analyze(execution: ExecutionResult, acr: float | None = None) -> PipelineReport:
    """Build a :class:`PipelineReport` from an executed iteration."""
    plan = execution.plan
    trace = execution.trace
    makespan = trace.makespan()

    devices = []
    for stage in plan.stages:
        for d in stage.devices:
            key = d.resource_key
            busy = trace.busy_time(key)
            devices.append(DeviceBreakdown(device=key, busy=busy, idle=makespan - busy))
    # Deduplicate (interleaved plans list a device under several stages).
    seen: dict[str, DeviceBreakdown] = {}
    for d in devices:
        seen.setdefault(d.device, d)
    devices = sorted(seen.values(), key=lambda d: int(d.device.split(":")[1]))

    measured = float(np.mean([d.utilization for d in devices])) if devices else 0.0
    if acr is None:
        acr = 0.0
    predicted = closed_form_efficiency(
        plan.num_stages, plan.num_micro_batches, acr
    )
    return PipelineReport(
        devices=devices,
        makespan=makespan,
        measured_efficiency=measured,
        predicted_efficiency=predicted,
        num_stages=plan.num_stages,
        num_micro_batches=plan.num_micro_batches,
        acr=acr,
    )

"""Activation re-computation strategies (paper §III, Chen et al. [13]).

Three policies for what a stage keeps between a micro-batch's forward and
backward:

* ``"none"`` — keep every intermediate (fastest, most memory);
* ``"boundary"`` — the paper's GPipe-aligned policy: keep only the stage's
  input activation, rematerialize everything during backward (≈ one extra
  forward of compute, the "~20 %" overhead the paper cites);
* ``"sqrt"`` — Chen et al.'s √n checkpointing *within* the stage: keep
  ⌈√L⌉ segment boundaries, rematerialize one segment at a time, paying
  roughly one extra forward but bounding the transient to the largest
  segment instead of the whole stage.

Strategies are orthogonal to the DAPPLE schedule (paper contribution #3):
the executor composes any of them with early backward scheduling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.plan import ParallelPlan
from repro.core.profiler import ModelProfile

#: Accepted strategy names (True/False map to boundary/none for backward
#: compatibility with the original boolean ``recompute`` flag).
STRATEGIES = ("none", "boundary", "sqrt")


def normalize_strategy(value) -> str:
    """Map legacy booleans and strings onto a strategy name."""
    if value is True:
        return "boundary"
    if value is False or value is None:
        return "none"
    if value in STRATEGIES:
        return value
    raise ValueError(f"unknown checkpoint strategy {value!r}; expected {STRATEGIES}")


@dataclass(frozen=True)
class StageCheckpointing:
    """Memory/time consequences of a strategy for one stage replica."""

    strategy: str
    resident_per_microbatch: float  # bytes held from forward to backward
    transient_backward: float  # extra bytes alive during one backward
    extra_backward_time: float  # rematerialization compute per micro-batch


def stage_checkpointing(
    profile: ModelProfile,
    plan: ParallelPlan,
    stage_idx: int,
    strategy,
) -> StageCheckpointing:
    """Compute the checkpointing profile of ``plan.stages[stage_idx]``."""
    strategy = normalize_strategy(strategy)
    stage = plan.stages[stage_idx]
    b = plan.device_batch(stage_idx)
    lo, hi = stage.layer_lo, stage.layer_hi
    full = profile.stored_bytes(lo, hi, b)

    # Stage input checkpoint: the boundary tensor (or a tiny input slice
    # for the first stage).
    if lo > 0:
        input_ckpt = profile.boundary_bytes(lo, plan.micro_batch_size) / stage.replicas
    else:
        input_ckpt = full * 0.02
    input_ckpt = min(input_ckpt, full)

    if strategy == "none":
        return StageCheckpointing("none", full, 0.0, 0.0)

    if strategy == "boundary":
        return StageCheckpointing(
            "boundary",
            resident_per_microbatch=input_ckpt,
            transient_backward=max(0.0, full - input_ckpt),
            extra_backward_time=profile.fwd_time(lo, hi, b),
        )

    # sqrt: segment the stage into ~sqrt(L) pieces; keep each segment's
    # input activation, rematerialize one segment at a time.
    n_layers = hi - lo
    segments = max(1, int(math.ceil(math.sqrt(n_layers))))
    seg_len = int(math.ceil(n_layers / segments))
    bounds = list(range(lo, hi, seg_len)) + [hi]
    ckpt_bytes = input_ckpt + sum(
        profile.boundary_bytes(cut, plan.micro_batch_size) / stage.replicas
        for cut in bounds[1:-1]
    )
    largest_segment = max(
        profile.stored_bytes(bounds[i], bounds[i + 1], b) for i in range(len(bounds) - 1)
    )
    resident = min(ckpt_bytes, full)
    # All segments except the last are rematerialized (the last's forward
    # immediately precedes its backward in the 1F1B interleave only for the
    # final stage; be conservative and recompute everything).
    extra = profile.fwd_time(lo, hi, b)
    return StageCheckpointing(
        "sqrt",
        resident_per_microbatch=resident,
        transient_backward=max(0.0, largest_segment - resident),
        extra_backward_time=extra,
    )

"""Data-parallel training baselines (paper §VI-C comparison arms).

Two DP variants appear throughout the paper's figures:

* **DP No Overlap** — gradient accumulation over local micro-batches, then
  one exposed AllReduce:
  ``T = steps·(F + B) + AR(total_grads)``.
* **DP + Normal Overlap** — the AllReduce of each gradient bucket starts as
  soon as that bucket's accumulated gradient is final, i.e. during the
  *last* micro-batch's backward pass, overlapping communication with the
  remaining backward compute [Poseidon-style].  Layers complete backward in
  reverse order, so late-model parameters (e.g. VGG's giant fc layers) get
  the longest overlap window — the paper calls VGG's weight-at-the-end /
  compute-at-the-front distribution "overlapping-friendly".

The overlap model walks layers in backward order, accumulates them into
bandwidth-friendly buckets (NCCL/Horovod fusion buffers), and serializes
bucket AllReduces on the network channel behind their readiness times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.collectives import allreduce_time
from repro.cluster.device import Device
from repro.cluster.topology import Cluster
from repro.core.profiler import ModelProfile

#: Gradient-fusion bucket size (bytes); matches common NCCL/Horovod defaults.
DEFAULT_BUCKET_BYTES = 25 * 1024 * 1024


def overlapped_allreduce_exposure(
    profile: ModelProfile,
    cluster: Cluster,
    devices: Sequence[Device],
    device_batch: float,
    layer_lo: int = 0,
    layer_hi: int | None = None,
    bucket_bytes: float = DEFAULT_BUCKET_BYTES,
) -> float:
    """Extra time beyond the backward pass spent on overlapped AllReduce.

    Simulates the last micro-batch's backward over layers
    ``[layer_lo, layer_hi)`` in reverse order.  A gradient bucket becomes
    ready when the backward of all its layers completed; bucket AllReduces
    run serially on the comm channel, each starting no earlier than its
    readiness.  Returns ``max(0, comm_end − backward_total)`` — the exposed
    communication tail the figures call the overlap benefit's complement.
    """
    layer_hi = profile.num_layers if layer_hi is None else layer_hi
    devices = list(devices)
    if len(devices) <= 1:
        return 0.0

    # Consecutive bucket rings pipeline over the links, so per-hop ring
    # latency is paid once, not once per bucket: charge each bucket its
    # volume time only, plus one full-latency ring at the end.
    ring_latency = allreduce_time(1.0, cluster, devices)

    t_comp = 0.0
    t_comm = 0.0
    bucket = 0.0
    total_bytes = 0.0
    for l in range(layer_hi - 1, layer_lo - 1, -1):
        t_comp += profile.bwd_time(l, l + 1, device_batch)
        bucket += profile.layers[l].param_bytes
        if bucket >= bucket_bytes:
            vol = allreduce_time(bucket, cluster, devices) - ring_latency
            t_comm = max(t_comm, t_comp) + max(vol, 0.0)
            total_bytes += bucket
            bucket = 0.0
    if bucket > 0:
        vol = allreduce_time(bucket, cluster, devices) - ring_latency
        t_comm = max(t_comm, t_comp) + max(vol, 0.0)
    t_comm += ring_latency
    return max(0.0, t_comm - t_comp)


@dataclass(frozen=True)
class DataParallelResult:
    """One DP training-iteration estimate."""

    iteration_time: float
    compute_time: float
    allreduce_exposed: float
    steps: int
    device_batch: float

    @property
    def comm_fraction(self) -> float:
        """Share of the iteration spent on exposed AllReduce."""
        return self.allreduce_exposed / self.iteration_time if self.iteration_time else 0.0


def dp_iteration_time(
    profile: ModelProfile,
    cluster: Cluster,
    devices: Sequence[Device],
    global_batch_size: int,
    overlap: bool = True,
    micro_batch: int | None = None,
) -> DataParallelResult:
    """Iteration time of synchronous DP on ``devices`` at ``global_batch_size``.

    Each device accumulates gradients over local micro-batches of
    ``micro_batch`` samples (default: the model's profiling batch), then all
    devices AllReduce the full gradient set.  With ``overlap=True`` the
    AllReduce overlaps the last micro-batch's backward.
    """
    devices = list(devices)
    if not devices:
        raise ValueError("DP needs at least one device")
    if global_batch_size < 1:
        raise ValueError(f"bad global batch size {global_batch_size}")
    n = profile.num_layers
    local = global_batch_size / len(devices)
    mb = micro_batch if micro_batch is not None else profile.graph.profile_batch
    steps = max(1, round(local / mb))
    device_batch = local / steps

    fwd = profile.fwd_time(0, n, device_batch)
    bwd = profile.bwd_time(0, n, device_batch)
    compute = steps * (fwd + bwd)

    grad_bytes = profile.param_bytes(0, n)
    if len(devices) == 1:
        exposed = 0.0
    elif overlap:
        exposed = overlapped_allreduce_exposure(profile, cluster, devices, device_batch)
    else:
        exposed = allreduce_time(grad_bytes, cluster, devices)
    return DataParallelResult(
        iteration_time=compute + exposed,
        compute_time=compute,
        allreduce_exposed=exposed,
        steps=steps,
        device_batch=device_batch,
    )


def single_device_time(profile: ModelProfile, global_batch_size: int) -> float:
    """Time for one device to process the whole global batch sequentially.

    The paper's speedup denominator (§VI-C): "the time executing all
    micro-batches sequentially on a single device".
    """
    n = profile.num_layers
    mb = profile.graph.profile_batch
    steps = max(1, global_batch_size // mb)
    per_step = global_batch_size / steps
    return steps * (profile.fwd_time(0, n, per_step) + profile.bwd_time(0, n, per_step))

"""Pipelined execution of a plan on the simulated cluster.

Compiles (plan, schedule) into a :class:`~repro.sim.engine.TaskGraph` —
forward/backward ops per stage replica, cross-stage transfers holding NIC
resources, per-stage gradient AllReduce — and runs it on the deterministic
simulator.  The construction mirrors the paper's TF graph (§V-B):

* data edges: ``F(s, m) → send(s→s+1, m) → F(s+1, m)`` and the mirrored
  backward chain, plus ``F(last, m) → B(last, m)``;
* control edges: consecutive tasks of a stage's schedule are chained per
  replica, exactly like the paper's control-dependency construction
  (Fig. 11) that enforces early-backward order;
* weights update: each stage's AllReduce waits on all its backwards
  (gradient accumulation, Fig. 10).

Memory effects implement §III-B: a forward allocates the micro-batch's
resident activations; the matching backward releases them (and, with
re-computation, transiently rematerializes the discarded intermediates,
paying the forward's compute time again).
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.obs as obs
from repro.cluster.collectives import allreduce_time
from repro.cluster.topology import Cluster
from repro.cluster.transfer import transfer_time
from repro.core.plan import ParallelPlan
from repro.core.profiler import ModelProfile
from repro.core.scheduler import (
    StageSchedule,
    validate_schedule,
)
from repro.runtime.memory import MemoryModel, OutOfMemoryError
from repro.schedules.base import PipeSchedule
from repro.schedules.registry import build_schedule
from repro.sim.engine import MemEffect, Op, Simulator, TaskGraph
from repro.sim.trace import MemoryTimeline, Trace


@dataclass
class IterationOps:
    """Per-stage head/tail op names of one emitted iteration.

    ``first_ops[stage]`` are the first scheduled ops of each replica (what a
    subsequent iteration must wait behind); ``final_ops[stage]`` is the
    stage's weights-update dependency (its AllReduce, or the last backward
    when the stage is not replicated).
    """

    first_ops: dict[int, list[str]]
    final_ops: dict[int, list[str]]
    #: Last *forward* op per replica — what an asynchronous next iteration
    #: chains behind (async pipelines keep forwards flowing while the
    #: previous batch's backwards drain).
    last_forward_ops: dict[int, list[str]]


@dataclass
class ExecutionResult:
    """Outcome of one simulated training iteration."""

    plan: ParallelPlan
    iteration_time: float
    trace: Trace
    memory: MemoryTimeline
    schedule: StageSchedule
    recompute: bool
    #: The typed schedule IR the iteration was built from, when the
    #: executor was given a registry spec or a :class:`PipeSchedule`
    #: (``None`` for raw legacy task lists).
    pipe_schedule: "PipeSchedule | None" = None

    @property
    def throughput(self) -> float:
        """Samples per second."""
        return self.plan.global_batch_size / self.iteration_time

    def peak_memory_per_device(self) -> dict[str, float]:
        """Peak live bytes per device resource key."""
        return self.memory.peak_all()

    def max_peak_memory(self) -> float:
        """Largest per-device peak (the OOM-relevant number)."""
        peaks = self.memory.peak_all()
        return max(peaks.values()) if peaks else 0.0

    def average_peak_memory(self) -> float:
        """Mean of per-device peaks — the paper's Table VI metric."""
        peaks = [
            v for k, v in self.memory.peak_all().items() if str(k).startswith("gpu")
        ]
        return sum(peaks) / len(peaks) if peaks else 0.0

    def device_utilization(self) -> dict[str, float]:
        """Busy fraction of each device over the iteration."""
        out = {}
        for stage in self.plan.stages:
            for d in stage.devices:
                out[d.resource_key] = self.trace.utilization(d.resource_key)
        return out


class PipelineExecutor:
    """Builds and runs the task graph for one training iteration."""

    def __init__(
        self,
        profile: ModelProfile,
        cluster: Cluster,
        plan: ParallelPlan,
        schedule: str | StageSchedule | PipeSchedule = "dapple",
        warmup_policy: str = "PA",
        recompute: bool = False,
        enforce_memory: bool = True,
        device_slowdown: dict | None = None,
        sim_engine: str | None = None,
    ):
        from repro.runtime.checkpointing import normalize_strategy, stage_checkpointing

        self.profile = profile
        self.cluster = cluster
        self.plan = plan
        #: Simulator event loop: "compiled" (default), "reference" (oracle),
        #: or None to defer to the REPRO_SIM_ENGINE environment variable.
        self.sim_engine = sim_engine
        self.checkpoint_strategy = normalize_strategy(recompute)
        self.recompute = self.checkpoint_strategy != "none"
        self.memory_model = MemoryModel(profile, plan, recompute=recompute)
        self._stage_ckpt = [
            stage_checkpointing(profile, plan, i, self.checkpoint_strategy)
            for i in range(plan.num_stages)
        ]
        # Fault/straggler injection: per-device compute-time multipliers
        # (global id -> factor >= 1). Synchronous micro-batch slicing means
        # one slow replica delays every micro-batch of its stage — the
        # "tail effect" sensitivity of synchronous training.
        self.device_slowdown = dict(device_slowdown or {})
        for gid, factor in self.device_slowdown.items():
            if factor < 1.0:
                raise ValueError(f"slowdown factor for device {gid} must be >=1, got {factor}")
        self.stage_mem = self.memory_model.all_stages()

        m = plan.num_micro_batches
        s = plan.num_stages
        if enforce_memory:
            d_caps = self.memory_model.max_in_flight()  # raises on OOM
        else:
            d_caps = [m] * s

        self.pipe_schedule: PipeSchedule | None = None
        if isinstance(schedule, str):
            # Resolve any registry spec ("dapple", "gpipe", "interleaved:v=2",
            # "zb2bp:w=0.4", ...).  Unknown names raise a ValueError listing
            # the registered names.  One global cap (not per-stage): warm-up
            # depths must be non-increasing along the pipeline or the control
            # chains form a cross-stage cycle (an upstream stage waiting on a
            # backward its downstream neighbour schedules after a forward the
            # upstream has not released yet).
            cap = min(d_caps)
            self.pipe_schedule = build_schedule(
                schedule,
                plan=plan,
                num_micro_batches=m,
                warmup_policy=warmup_policy,
                max_in_memory=cap,
            )
        elif isinstance(schedule, PipeSchedule):
            self.pipe_schedule = schedule

        if self.pipe_schedule is not None:
            if self.pipe_schedule.num_stages != s:
                raise ValueError(
                    f"schedule addresses {self.pipe_schedule.num_stages} "
                    f"stages but the plan has {s}"
                )
            if self.pipe_schedule.num_micro_batches != m:
                raise ValueError(
                    f"schedule covers {self.pipe_schedule.num_micro_batches} "
                    f"micro-batches but the plan has {m}"
                )
            self.schedule = self.pipe_schedule.to_stage_schedule()
            if enforce_memory:
                # The IR declares its per-stage residency high-water mark;
                # reject schedules whose peak cannot fit the stage's devices
                # (GPipe at large M, interleaved at large v, a too-deep PB
                # warm-up, ...) before building the graph.
                for i, hw in enumerate(self.pipe_schedule.memory_high_water()):
                    sm = self.stage_mem[i]
                    if sm.peak_bytes(hw) > sm.capacity_bytes:
                        raise OutOfMemoryError(
                            f"{self.pipe_schedule.name} schedule stage {i}: "
                            f"{hw} resident micro-batches need "
                            f"{sm.peak_bytes(hw) / 2**30:.1f} GiB > "
                            f"{sm.capacity_bytes / 2**30:.1f} GiB"
                        )
        else:
            self.schedule = schedule
        validate_schedule(self.schedule, m)

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def _comm_resources(self, senders, receivers) -> tuple:
        keys = set()
        for s in senders:
            for r in receivers:
                if s.global_id != r.global_id:
                    keys.update(self.cluster.transfer_resources(s, r))
        return tuple(sorted(keys))

    def build_graph(self) -> TaskGraph:
        """Compile one training iteration into a fresh task graph."""
        g = TaskGraph()
        with obs.span("runtime.build_graph", plan=self.plan.notation) as sp:
            self.build_into(g)
            sp.set(ops=len(g))
        return g

    def build_into(
        self, g: TaskGraph, prefix: str = "", include_init: bool = True,
        priority_base: float = 0.0,
    ) -> "IterationOps":
        """Emit one iteration's ops into ``g`` with names under ``prefix``.

        Returns the per-stage first/last op names so callers can chain
        multiple iterations (see :mod:`repro.runtime.steady_state`).
        """
        plan = self.plan
        prof = self.profile
        m = plan.num_micro_batches
        mbs = plan.micro_batch_size
        first_ops: dict[int, list[str]] = {}
        final_ops: dict[int, list[str]] = {}
        last_forward_ops: dict[int, list[str]] = {}

        # Persistent memory (weights, optimizer states, grad buffers).
        if include_init:
            for i, stage in enumerate(plan.stages):
                for d in stage.devices:
                    op = Op(f"{prefix}init/s{i}/{d.resource_key}", 0.0, priority=-1e9)
                    op.mem_effects.append(
                        MemEffect(d.resource_key, self.stage_mem[i].persistent_bytes)
                    )
                    g.add(op)

        # Backward split: BI carries this fraction of the combined backward
        # time, BW the rest (only consulted for schedules emitting BI/BW).
        w_frac = (
            self.pipe_schedule.backward_weight_fraction
            if self.pipe_schedule is not None
            else 0.5
        )

        # Compute ops per stage replica.  A schedule may impose its own
        # dispatch priorities (interleaved schedules order virtual stages
        # sharing a device); the default is stream position.
        for i, stage in enumerate(plan.stages):
            b = plan.device_batch(i)
            fwd = prof.fwd_time(stage.layer_lo, stage.layer_hi, b)
            bwd = prof.bwd_time(stage.layer_lo, stage.layer_hi, b)
            sm = self.stage_mem[i]
            resident = sm.per_microbatch_bytes
            transient = sm.transient_backward_bytes
            prios = None
            if self.pipe_schedule is not None:
                prios = self.pipe_schedule.stage_priorities(i)
            for pos, task in enumerate(self.schedule[i]):
                prio = priority_base + (prios[pos] if prios is not None else pos)
                for r, d in enumerate(stage.devices):
                    slow = self.device_slowdown.get(d.global_id, 1.0)
                    if task.kind == "F":
                        op = Op(
                            f"{prefix}F/s{i}/m{task.micro_batch}/r{r}",
                            fwd * slow,
                            resources=(d.resource_key,),
                            priority=prio,
                            tags={"kind": "F", "stage": i, "mb": task.micro_batch},
                        )
                        op.mem_effects.append(MemEffect(d.resource_key, resident))
                    elif task.kind == "B":
                        dur = (bwd + self._stage_ckpt[i].extra_backward_time) * slow
                        op = Op(
                            f"{prefix}B/s{i}/m{task.micro_batch}/r{r}",
                            dur,
                            resources=(d.resource_key,),
                            priority=prio,
                            tags={"kind": "B", "stage": i, "mb": task.micro_batch},
                        )
                        if transient > 0:
                            op.mem_effects.append(MemEffect(d.resource_key, transient))
                            op.mem_effects.append(
                                MemEffect(d.resource_key, -transient, at_end=True)
                            )
                        op.mem_effects.append(
                            MemEffect(d.resource_key, -resident, at_end=True)
                        )
                    elif task.kind == "BI":
                        # Grad-input phase: on the cross-stage gradient
                        # chain; reads the activations (re-materializing
                        # them first under checkpointing) but does not
                        # release them.
                        dur = (
                            bwd * (1.0 - w_frac)
                            + self._stage_ckpt[i].extra_backward_time
                        ) * slow
                        op = Op(
                            f"{prefix}BI/s{i}/m{task.micro_batch}/r{r}",
                            dur,
                            resources=(d.resource_key,),
                            priority=prio,
                            tags={"kind": "BI", "stage": i, "mb": task.micro_batch},
                        )
                        if transient > 0:
                            op.mem_effects.append(MemEffect(d.resource_key, transient))
                            op.mem_effects.append(
                                MemEffect(d.resource_key, -transient, at_end=True)
                            )
                    else:  # BW — grad-weight phase, releases the activations.
                        op = Op(
                            f"{prefix}BW/s{i}/m{task.micro_batch}/r{r}",
                            bwd * w_frac * slow,
                            resources=(d.resource_key,),
                            priority=prio,
                            tags={"kind": "BW", "stage": i, "mb": task.micro_batch},
                        )
                        op.mem_effects.append(
                            MemEffect(d.resource_key, -resident, at_end=True)
                        )
                    g.add(op)

        # Control chains: schedule order per replica (paper Fig. 11).
        for i, stage in enumerate(plan.stages):
            heads = []
            for r in range(stage.replicas):
                prev = None
                for task in self.schedule[i]:
                    name = f"{prefix}{task.kind}/s{i}/m{task.micro_batch}/r{r}"
                    if prev is not None:
                        g.add_dep(prev, name)
                    else:
                        heads.append(name)
                    prev = name
            first_ops[i] = heads

        # Which backward flavour each stage runs per micro-batch: the
        # grad-chain op ("B", or "BI" when split) carries the cross-stage
        # gradient; the releasing op ("B", or "BW" when split) frees the
        # activations and contributes the weight gradients.
        split = [
            {t.micro_batch for t in self.schedule[i] if t.kind == "BI"}
            for i in range(plan.num_stages)
        ]

        def grad_op(i: int, mb: int) -> str:
            return "BI" if mb in split[i] else "B"

        def release_op(i: int, mb: int) -> str:
            return "BW" if mb in split[i] else "B"

        # F->backward on the same stage (stored activations are the data
        # dep); split backwards add F->BI and BI->BW (BW consumes both the
        # activations and the output gradient BI received).
        for i, stage in enumerate(plan.stages):
            for mb in range(m):
                gk = grad_op(i, mb)
                for r in range(stage.replicas):
                    g.add_dep(
                        f"{prefix}F/s{i}/m{mb}/r{r}", f"{prefix}{gk}/s{i}/m{mb}/r{r}"
                    )
                    if gk == "BI":
                        g.add_dep(
                            f"{prefix}BI/s{i}/m{mb}/r{r}",
                            f"{prefix}BW/s{i}/m{mb}/r{r}",
                        )

        # Cross-stage transfers.
        for i in range(plan.num_stages - 1):
            src, dst = plan.stages[i], plan.stages[i + 1]
            nbytes = prof.boundary_bytes(src.layer_hi, mbs)
            t_fwd = transfer_time(self.cluster, nbytes, src.devices, dst.devices)
            t_bwd = transfer_time(self.cluster, nbytes, dst.devices, src.devices)
            res_fwd = self._comm_resources(src.devices, dst.devices)
            res_bwd = self._comm_resources(dst.devices, src.devices)
            for mb in range(m):
                op = Op(
                    f"{prefix}send/s{i}/m{mb}",
                    t_fwd,
                    resources=res_fwd,
                    priority=priority_base + mb,
                    tags={"kind": "send", "stage": i, "mb": mb},
                )
                g.add(op)
                for r in range(src.replicas):
                    g.add_dep(f"{prefix}F/s{i}/m{mb}/r{r}", f"{prefix}send/s{i}/m{mb}")
                for r in range(dst.replicas):
                    g.add_dep(f"{prefix}send/s{i}/m{mb}", f"{prefix}F/s{i+1}/m{mb}/r{r}")
                op = Op(
                    f"{prefix}sendback/s{i}/m{mb}",
                    t_bwd,
                    resources=res_bwd,
                    priority=priority_base + mb,
                    tags={"kind": "sendback", "stage": i, "mb": mb},
                )
                g.add(op)
                for r in range(dst.replicas):
                    g.add_dep(
                        f"{prefix}{grad_op(i + 1, mb)}/s{i+1}/m{mb}/r{r}",
                        f"{prefix}sendback/s{i}/m{mb}",
                    )
                for r in range(src.replicas):
                    g.add_dep(
                        f"{prefix}sendback/s{i}/m{mb}",
                        f"{prefix}{grad_op(i, mb)}/s{i}/m{mb}/r{r}",
                    )

        # Gradient AllReduce per replicated stage, after all its backwards
        # (for split backwards: the weight gradient exists only once BW ran).
        for i, stage in enumerate(plan.stages):
            last_rel = next(
                t for t in reversed(self.schedule[i]) if t.kind in ("B", "BW")
            )
            last_backwards = [
                f"{prefix}{last_rel.kind}/s{i}/m{last_rel.micro_batch}/r{r}"
                for r in range(stage.replicas)
            ]
            last_fwd_mb = max(t.micro_batch for t in self.schedule[i] if t.kind == "F")
            last_forward_ops[i] = [
                f"{prefix}F/s{i}/m{last_fwd_mb}/r{r}" for r in range(stage.replicas)
            ]
            if stage.replicas < 2:
                final_ops[i] = last_backwards
                continue
            params = prof.param_bytes(stage.layer_lo, stage.layer_hi)
            dur = allreduce_time(params, self.cluster, stage.devices)
            op = Op(
                f"{prefix}allreduce/s{i}",
                dur,
                resources=(f"ar:{i}",),
                priority=priority_base + 10**6,
                tags={"kind": "AR", "stage": i},
            )
            g.add(op)
            for mb in range(m):
                for r in range(stage.replicas):
                    g.add_dep(
                        f"{prefix}{release_op(i, mb)}/s{i}/m{mb}/r{r}",
                        f"{prefix}allreduce/s{i}",
                    )
            final_ops[i] = [f"{prefix}allreduce/s{i}"]
        return IterationOps(
            first_ops=first_ops,
            final_ops=final_ops,
            last_forward_ops=last_forward_ops,
        )

    def run(self) -> ExecutionResult:
        """Simulate the compiled iteration and package the outcome."""
        with obs.span("runtime.execute", plan=self.plan.notation) as sp:
            graph = self.build_graph()
            res = Simulator(graph, engine=self.sim_engine).run()
            sp.set(iteration_time=res.makespan)
        return ExecutionResult(
            plan=self.plan,
            iteration_time=res.makespan,
            trace=res.trace,
            memory=res.memory,
            schedule=self.schedule,
            recompute=self.recompute,
            pipe_schedule=self.pipe_schedule,
        )


def execute_plan(
    profile: ModelProfile,
    cluster: Cluster,
    plan: ParallelPlan,
    schedule: str | StageSchedule | PipeSchedule = "dapple",
    warmup_policy: str = "PA",
    recompute: bool = False,
    enforce_memory: bool = True,
    device_slowdown: dict | None = None,
    sim_engine: str | None = None,
) -> ExecutionResult:
    """One-call façade: build the task graph, simulate, return the result."""
    return PipelineExecutor(
        profile,
        cluster,
        plan,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
        enforce_memory=enforce_memory,
        device_slowdown=device_slowdown,
        sim_engine=sim_engine,
    ).run()

"""Per-stage device memory accounting (paper §III-B, §V-C, Table VI).

For a stage covering layers ``[lo, hi)`` with per-device sub-batch ``b``:

* **persistent** — weights + optimizer states + the gradient-accumulation
  buffer; resident for the whole run;
* **per-micro-batch activations** — what forward must keep for backward.
  Without re-computation this is the full ``stored_bytes`` of the stage's
  layers; with re-computation only the stage-input checkpoint survives
  ("storing activations only at the partition boundaries", §VI-E), and the
  full intermediate set is rematerialized transiently during backward.

``D = max_resident_micro_batches`` is the memory cap on concurrently
in-flight micro-batches that bounds the scheduler's warm-up count ``Ki``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import ParallelPlan
from repro.core.profiler import ModelProfile
from repro.models.graph import FP32, GRAD_BYTES_PER_PARAM


class OutOfMemoryError(RuntimeError):
    """A stage cannot hold even one in-flight micro-batch."""


@dataclass(frozen=True)
class StageMemory:
    """Memory footprint of one stage replica."""

    persistent_bytes: float
    full_activation_bytes: float  # resident per micro-batch, no recompute
    checkpoint_bytes: float  # resident per micro-batch with recompute
    capacity_bytes: float
    recompute: bool
    #: Explicit transient override (set by segmented strategies, where only
    #: the largest segment is rematerialized at a time).
    transient_override: float | None = None

    @property
    def per_microbatch_bytes(self) -> float:
        """Resident activation bytes per in-flight micro-batch."""
        return self.checkpoint_bytes if self.recompute else self.full_activation_bytes

    @property
    def transient_backward_bytes(self) -> float:
        """Extra bytes rematerialized during one backward with recompute."""
        if not self.recompute:
            return 0.0
        if self.transient_override is not None:
            return self.transient_override
        return max(0.0, self.full_activation_bytes - self.checkpoint_bytes)

    def max_resident_micro_batches(self) -> int:
        """``D``: in-flight micro-batches the device memory can hold."""
        budget = self.capacity_bytes - self.persistent_bytes - self.transient_backward_bytes
        if self.per_microbatch_bytes <= 0:
            return 10**9 if budget >= 0 else 0
        return max(0, int(budget // self.per_microbatch_bytes))

    def peak_bytes(self, resident_micro_batches: int) -> float:
        """Peak usage with ``resident_micro_batches`` live micro-batches."""
        return (
            self.persistent_bytes
            + resident_micro_batches * self.per_microbatch_bytes
            + self.transient_backward_bytes
        )


class MemoryModel:
    """Builds :class:`StageMemory` for every stage of a plan.

    ``recompute`` accepts the legacy booleans or a strategy name from
    :mod:`repro.runtime.checkpointing` (``"none"``/``"boundary"``/``"sqrt"``).
    """

    def __init__(self, profile: ModelProfile, plan: ParallelPlan, recompute=False):
        from repro.runtime.checkpointing import normalize_strategy

        self.profile = profile
        self.plan = plan
        self.strategy = normalize_strategy(recompute)
        self.recompute = self.strategy != "none"

    def stage_memory(self, stage_idx: int) -> StageMemory:
        """Footprint of one replica of ``plan.stages[stage_idx]``."""
        from repro.runtime.checkpointing import stage_checkpointing

        stage = self.plan.stages[stage_idx]
        b = self.plan.device_batch(stage_idx)
        params = self.profile.param_bytes(stage.layer_lo, stage.layer_hi)
        persistent = (
            self.profile.state_bytes(stage.layer_lo, stage.layer_hi)
            + params / FP32 * GRAD_BYTES_PER_PARAM
        )
        full = self.profile.stored_bytes(stage.layer_lo, stage.layer_hi, b)
        ckpt = stage_checkpointing(self.profile, self.plan, stage_idx, self.strategy)
        return StageMemory(
            persistent_bytes=persistent,
            full_activation_bytes=full,
            checkpoint_bytes=ckpt.resident_per_microbatch,
            # Heterogeneous replicas: the smallest device is the binding
            # constraint (every replica holds the same state + slices).
            capacity_bytes=min(d.spec.memory_bytes for d in stage.devices),
            recompute=self.recompute,
            transient_override=ckpt.transient_backward if self.recompute else None,
        )

    def all_stages(self) -> list[StageMemory]:
        """Footprints for every stage of the plan, in order."""
        return [self.stage_memory(i) for i in range(self.plan.num_stages)]

    def max_in_flight(self) -> list[int]:
        """Per-stage ``D`` values; raises if any stage cannot hold one."""
        out = []
        for i, sm in enumerate(self.all_stages()):
            d = sm.max_resident_micro_batches()
            if d < 1:
                raise OutOfMemoryError(
                    f"stage {i} of {self.plan.model.name} needs "
                    f"{sm.peak_bytes(1) / 2**30:.1f} GiB for one micro-batch "
                    f"but the device has {sm.capacity_bytes / 2**30:.1f} GiB"
                )
            out.append(d)
        return out

"""Multi-iteration simulation: warm-up vs steady-state throughput.

A single simulated iteration includes the pipeline's fill and drain; real
training amortizes those over thousands of iterations.  This module chains
``N`` iterations in one task graph — iteration ``k+1`` of a stage starts
once the stage's weights update of iteration ``k`` completed (its
AllReduce, or its last backward when unreplicated), which is exactly the
synchronization the paper's Fig. 10 weights-update subgraph imposes — and
separates the first-iteration cost from the steady-state per-iteration
cost.

Synchronous training cannot overlap iterations — stage 0's weights update
is literally the last drain event — so steady-state equals the single-
iteration makespan.  The ``sync=False`` mode relaxes the weights-update
dependency to the previous iteration's last *forward* (PipeDream's
asynchronous regime): iterations then overlap and throughput rises, which
quantifies exactly the throughput-vs-staleness trade-off the paper uses to
motivate synchronous DAPPLE (§I–II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import Cluster
from repro.core.plan import ParallelPlan
from repro.core.profiler import ModelProfile
from repro.runtime.executor import PipelineExecutor
from repro.sim.engine import Simulator, TaskGraph
from repro.sim.trace import Trace


@dataclass
class SteadyStateResult:
    """Timing of an ``num_iterations``-long simulated training run."""

    plan: ParallelPlan
    num_iterations: int
    total_time: float
    iteration_ends: list[float]
    trace: Trace

    @property
    def first_iteration_time(self) -> float:
        """Completion time of iteration 0 (includes pipeline fill)."""
        return self.iteration_ends[0]

    @property
    def steady_iteration_time(self) -> float:
        """Average per-iteration time once the pipeline is warm."""
        if self.num_iterations < 2:
            return self.first_iteration_time
        return (self.iteration_ends[-1] - self.iteration_ends[0]) / (
            self.num_iterations - 1
        )

    @property
    def steady_throughput(self) -> float:
        """Samples/second in steady state."""
        return self.plan.global_batch_size / self.steady_iteration_time

    @property
    def warmup_overhead(self) -> float:
        """First-iteration time relative to a steady iteration (≥ 1)."""
        return self.first_iteration_time / self.steady_iteration_time


def simulate_iterations(
    profile: ModelProfile,
    cluster: Cluster,
    plan: ParallelPlan,
    num_iterations: int = 4,
    schedule: str = "dapple",
    warmup_policy: str = "PA",
    recompute: bool = False,
    enforce_memory: bool = True,
    sync: bool = True,
    sim_engine: str | None = None,
) -> SteadyStateResult:
    """Simulate ``num_iterations`` back-to-back training iterations.

    With ``sync=True`` (DAPPLE semantics) a stage's next iteration waits on
    its weights update; since stage 0's last backward is the final drain
    event, synchronous iterations cannot overlap and steady-state time
    equals the single-iteration makespan.  With ``sync=False`` the next
    iteration's forwards may start before the weight update — PipeDream's
    asynchronous regime — which overlaps iterations and raises throughput
    at the cost of stale weights (the convergence concern motivating
    DAPPLE, §I).
    """
    if num_iterations < 1:
        raise ValueError(f"need >=1 iteration, got {num_iterations}")
    ex = PipelineExecutor(
        profile,
        cluster,
        plan,
        schedule=schedule,
        warmup_policy=warmup_policy,
        recompute=recompute,
        enforce_memory=enforce_memory,
    )
    graph = TaskGraph()
    prev = None
    # Priority bases keep iteration k's ops ahead of k+1's in dispatch ties.
    stride = 10**7
    for k in range(num_iterations):
        info = ex.build_into(
            graph, prefix=f"i{k}/", include_init=(k == 0), priority_base=k * stride
        )
        if prev is not None:
            for s in range(plan.num_stages):
                tails = prev.final_ops[s] if sync else prev.last_forward_ops[s]
                for tail in tails:
                    for head in info.first_ops[s]:
                        graph.add_dep(tail, head)
        prev = info

    res = Simulator(graph, engine=sim_engine).run()
    # One pass over the trace rows (no TraceEvent materialization on the
    # columnar path): every op name is "i{k}/...", so bucket max end by k.
    ends = [0.0] * num_iterations
    for name, _start, end, _res, _tags in res.trace.iter_rows():
        k = int(name[1 : name.index("/")])
        if end > ends[k]:
            ends[k] = end
    return SteadyStateResult(
        plan=plan,
        num_iterations=num_iterations,
        total_time=res.makespan,
        iteration_ends=ends,
        trace=res.trace,
    )

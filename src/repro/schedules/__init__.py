"""Typed pipeline-schedule IR and the schedule registry.

``repro.schedules`` is the single place schedules live: the task
vocabulary (:mod:`~repro.schedules.tasks`), the :class:`PipeSchedule`
abstract IR (:mod:`~repro.schedules.base`), four concrete schedules
(:mod:`~repro.schedules.library`), and the name registry every CLI/serve
surface resolves ``--schedule`` specs through
(:mod:`~repro.schedules.registry`).
"""

from repro.schedules.base import PipeSchedule
from repro.schedules.library import (
    Dapple1F1BSchedule,
    GPipeSchedule,
    Interleaved1F1BSchedule,
    ZeroBubble2BPSchedule,
)
from repro.schedules.registry import (
    UnknownScheduleError,
    build_schedule,
    parse_schedule_spec,
    register_schedule,
    schedule_help,
    schedule_names,
)
from repro.schedules.tasks import (
    COMM_KINDS,
    COMPUTE_KINDS,
    RELEASE_KINDS,
    Backward,
    BackwardInput,
    BackwardWeight,
    Forward,
    PipeTask,
    RecvAct,
    RecvGrad,
    SendAct,
    SendGrad,
    task_from_kind,
)

__all__ = [
    "PipeSchedule",
    "GPipeSchedule",
    "Dapple1F1BSchedule",
    "Interleaved1F1BSchedule",
    "ZeroBubble2BPSchedule",
    "UnknownScheduleError",
    "register_schedule",
    "schedule_names",
    "schedule_help",
    "parse_schedule_spec",
    "build_schedule",
    "PipeTask",
    "Forward",
    "Backward",
    "BackwardInput",
    "BackwardWeight",
    "RecvAct",
    "SendAct",
    "RecvGrad",
    "SendGrad",
    "COMPUTE_KINDS",
    "COMM_KINDS",
    "RELEASE_KINDS",
    "task_from_kind",
]

"""`PipeSchedule` — the abstract schedule IR the runtime consumes.

A :class:`PipeSchedule` describes *one training iteration* of an
``S``-stage pipeline over ``M`` micro-batches as ``S`` ordered streams of
typed :class:`~repro.schedules.tasks.PipeTask` objects (generator-style,
after neuronx-distributed's ``PipeSchedule`` ABC).  The runtime
(:class:`~repro.runtime.executor.PipelineExecutor`) lowers the compute
tasks of each stream into simulator ops and control-dependency chains;
everything else — conformance checking, memory prediction, bubble
accounting — queries the IR directly:

* :meth:`steps` — generator of one stage's full stream, communication
  markers included;
* :meth:`stage_tasks` — the cached compute-task list per stage (what the
  executor lowers);
* :meth:`num_virtual_stages` — total stages the schedule addresses (for
  interleaved schedules this counts virtual stages, i.e. chunks x devices);
* :meth:`memory_high_water` — per-stage peak count of concurrently
  resident micro-batches, *declared by the IR*; the conformance battery
  cross-checks it against the simulated
  :class:`~repro.sim.trace.MemoryTimeline` so IR and runtime cannot drift.

Subclasses implement :meth:`stage_stream` (and optionally
:meth:`stage_priorities` to impose a device-level order across virtual
stages sharing a device).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from repro.core.scheduler import MicroBatchTask, validate_schedule
from repro.schedules.tasks import (
    COMPUTE_KINDS,
    PipeTask,
    RecvAct,
    RecvGrad,
    SendAct,
    SendGrad,
)

__all__ = ["PipeSchedule"]


class PipeSchedule(ABC):
    """Directs pipeline execution by generating per-stage task streams.

    Parameters
    ----------
    num_stages:
        Number of (virtual) pipeline stages the schedule addresses.
    num_micro_batches:
        Micro-batches ``M`` in one training iteration.
    """

    #: Registry name of the schedule family (set by subclasses).
    name: str = "?"
    #: Fraction of the combined backward spent in the grad-weight phase —
    #: only consulted for schedules that emit split BI/BW tasks.
    backward_weight_fraction: float = 0.5

    def __init__(self, num_stages: int, num_micro_batches: int):
        if num_stages < 1:
            raise ValueError(f"need >=1 stage, got {num_stages}")
        if num_micro_batches < 1:
            raise ValueError(f"need >=1 micro-batch, got {num_micro_batches}")
        self.num_stages = num_stages
        self.num_micro_batches = num_micro_batches
        self._streams: dict[int, list[PipeTask]] = {}

    # ------------------------------------------------------------------ #
    # The abstract core
    # ------------------------------------------------------------------ #
    @abstractmethod
    def stage_stream(self, stage: int) -> Iterator[PipeTask]:
        """Yield the ordered compute tasks of ``stage`` (F/B/BI/BW only)."""

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def stage_tasks(self, stage: int) -> list[PipeTask]:
        """The (cached) compute-task list of one stage's stream."""
        if stage not in self._streams:
            if not 0 <= stage < self.num_stages:
                raise ValueError(
                    f"stage {stage} out of range [0, {self.num_stages})"
                )
            self._streams[stage] = list(self.stage_stream(stage))
        return self._streams[stage]

    def steps(self, stage: int) -> Iterator[PipeTask]:
        """Generate one stage's full stream, communication markers included.

        Around every compute task the generator interpolates the transfer
        markers that stage position implies: interior stages receive
        activations before each F and send them on after, receive output
        gradients before each backward(-input) and send input gradients
        upstream after.  The runtime derives real transfer ops from data
        dependencies instead; this view exists for analysis and rendering.
        """
        first, last = stage == 0, stage == self.num_stages - 1
        for t in self.stage_tasks(stage):
            if t.kind == "F":
                if not first:
                    yield RecvAct(t.micro_batch)
                yield t
                if not last:
                    yield SendAct(t.micro_batch)
            elif t.kind in ("B", "BI"):
                if not last:
                    yield RecvGrad(t.micro_batch)
                yield t
                if not first and t.kind == "B":
                    yield SendGrad(t.micro_batch)
            else:  # BW — local to the stage
                yield t
            if t.kind == "BI" and not first:
                yield SendGrad(t.micro_batch)

    def num_virtual_stages(self) -> int:
        """Total (virtual) stages addressed — chunks x devices if interleaved."""
        return self.num_stages

    def memory_high_water(self) -> list[int]:
        """Per-stage peak count of concurrently resident micro-batches.

        A micro-batch is resident from its F until its releasing backward
        (B, or BW for split backwards).  The conformance battery checks
        the simulated memory timeline against the bound this declares.
        """
        from repro.core.scheduler import max_resident_micro_batches

        return [
            max_resident_micro_batches(self.stage_tasks(i))
            for i in range(self.num_stages)
        ]

    def stage_priorities(self, stage: int) -> Sequence[float] | None:
        """Optional dispatch priorities per task of one stage's stream.

        ``None`` (the default) means "stream position" — correct whenever
        each stage owns its devices.  Interleaved schedules override this
        with device-level positions so virtual stages sharing a device
        interleave in the intended global order.
        """
        return None

    def to_stage_schedule(self) -> list[list[MicroBatchTask]]:
        """Lower to the legacy ``StageSchedule`` shape the runtime builds from.

        The lowering is lossless for scheduling purposes: each typed task
        becomes a ``MicroBatchTask(kind, micro_batch)`` so the graph
        builder, invariants, and legacy comparisons all operate on one
        representation.  ``Dapple1F1BSchedule``'s output is bit-identical
        to :func:`repro.core.scheduler.dapple_schedule` by construction
        (enforced by the differential test battery).
        """
        out = []
        for i in range(self.num_stages):
            tasks = self.stage_tasks(i)
            bad = [t for t in tasks if t.kind not in COMPUTE_KINDS]
            if bad:
                raise ValueError(
                    f"stage {i} stream contains non-compute task {bad[0]!r}"
                )
            out.append([MicroBatchTask(t.kind, t.micro_batch) for t in tasks])
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` on an illegal stream (see ``validate_schedule``)."""
        validate_schedule(self.to_stage_schedule(), self.num_micro_batches)

    def describe(self) -> str:
        """One-line human description for CLI/help output."""
        return (
            f"{self.name}: S={self.num_stages} stages, "
            f"M={self.num_micro_batches} micro-batches, "
            f"high-water {self.memory_high_water()}"
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_stages={self.num_stages}, "
            f"num_micro_batches={self.num_micro_batches})"
        )

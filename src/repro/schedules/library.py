"""The concrete schedule library: GPipe, DAPPLE 1F1B, interleaved, ZB-2BP.

Four :class:`~repro.schedules.base.PipeSchedule` implementations:

* :class:`GPipeSchedule` — all forwards, then all backwards in reverse
  (paper Fig. 3a); peak residency grows with ``M``.
* :class:`Dapple1F1BSchedule` — the paper's early-backward 1F1B schedule
  (Fig. 3b).  Its task streams are *bit-identical* to the legacy
  :func:`repro.core.scheduler.dapple_schedule` (it delegates to it), a
  property the differential test battery enforces.
* :class:`Interleaved1F1BSchedule` — Megatron-style interleaved 1F1B over
  virtual stages: each of ``P`` devices hosts ``v`` layer chunks, shrinking
  the per-chunk pipeline fill so bubbles drop at small ``M``.  Requires an
  interleaved plan (``v`` stages per device, round-robin) and ``M`` a
  multiple of ``P``.
* :class:`ZeroBubble2BPSchedule` — 2BP-style zero-bubble scheduling
  (PAPERS.md: "2BP: 2-Stage Backpropagation"): backward splits into a
  grad-input phase ``BI`` (the only task on the cross-stage gradient
  chain) and a grad-weight phase ``BW`` that runs off the critical path.
  The cooldown drains through the shorter BI-only chain while the
  deferred ``BW`` tasks fill the tail bubbles; steady-state ``BW`` runs
  inline so the activation high-water mark stays at the 1F1B bound
  ``Ki`` (the memory-neutral ZB-H1 flavour).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.scheduler import dapple_schedule, gpipe_schedule, warmup_counts
from repro.schedules.base import PipeSchedule
from repro.schedules.tasks import (
    Backward,
    BackwardInput,
    BackwardWeight,
    Forward,
    PipeTask,
    task_from_kind,
)

__all__ = [
    "GPipeSchedule",
    "Dapple1F1BSchedule",
    "Interleaved1F1BSchedule",
    "ZeroBubble2BPSchedule",
]


class GPipeSchedule(PipeSchedule):
    """All-forwards-then-all-backwards flush schedule (paper Fig. 3a)."""

    name = "gpipe"

    def stage_stream(self, stage: int) -> Iterator[PipeTask]:
        legacy = gpipe_schedule(self.num_stages, self.num_micro_batches)[stage]
        for t in legacy:
            yield task_from_kind(t.kind, t.micro_batch)


class Dapple1F1BSchedule(PipeSchedule):
    """DAPPLE early-backward 1F1B (paper Fig. 3b), bit-identical to the
    legacy ``dapple_schedule`` task streams."""

    name = "dapple"

    def __init__(
        self,
        num_stages: int,
        num_micro_batches: int,
        warmup_policy: str = "PA",
        max_in_memory: int | None = None,
    ):
        super().__init__(num_stages, num_micro_batches)
        self.warmup_policy = warmup_policy
        self.max_in_memory = max_in_memory
        # Delegate to the legacy generator — the bit-identity anchor.
        self._legacy = dapple_schedule(
            num_stages, num_micro_batches,
            policy=warmup_policy, max_in_memory=max_in_memory,
        )

    def stage_stream(self, stage: int) -> Iterator[PipeTask]:
        for t in self._legacy[stage]:
            yield task_from_kind(t.kind, t.micro_batch)

    def warmup_counts(self) -> list[int]:
        """Per-stage warm-up depths ``Ki`` this schedule was built with."""
        return warmup_counts(
            self.num_stages, self.num_micro_batches,
            policy=self.warmup_policy, max_in_memory=self.max_in_memory,
        )


class Interleaved1F1BSchedule(PipeSchedule):
    """Megatron-style interleaved 1F1B over ``v`` virtual stages per device.

    Virtual stage ``s`` lives on device ``s % P`` as chunk ``s // P``.
    Each device's stream processes micro-batches in groups of ``P`` per
    chunk: warm-up injects ``min(2(P-r-1) + (v-1)P, Mv)`` forwards on
    device ``r``, the steady state alternates one forward with one
    backward, and the cooldown drains the remaining backwards with chunks
    in reverse order.  Per-virtual-stage streams are projections of the
    device stream; :meth:`stage_priorities` exposes the device-level
    positions so the runtime preserves the intended cross-chunk interleave
    on the shared device.
    """

    name = "interleaved"

    def __init__(
        self,
        num_devices: int,
        num_micro_batches: int,
        chunks: int = 2,
    ):
        if num_devices < 1:
            raise ValueError(f"need >=1 device, got {num_devices}")
        if chunks < 1:
            raise ValueError(f"need >=1 chunk per device, got {chunks}")
        if num_micro_batches % num_devices != 0:
            raise ValueError(
                f"interleaved 1F1B needs M divisible by the device count: "
                f"M={num_micro_batches}, P={num_devices}"
            )
        super().__init__(num_devices * chunks, num_micro_batches)
        self.num_devices = num_devices
        self.chunks = chunks
        self._device_streams: dict[int, list[tuple[int, PipeTask]]] = {}

    # ------------------------------------------------------------------ #
    # Device-level order (the Megatron interleaved schedule)
    # ------------------------------------------------------------------ #
    def _forward_unit(self, k: int) -> tuple[int, int]:
        """(chunk, micro_batch) of the k-th forward unit on any device."""
        p, v = self.num_devices, self.chunks
        cycle = k % (p * v)
        return cycle // p, (k // (p * v)) * p + k % p

    def _backward_unit(self, k: int) -> tuple[int, int]:
        """(chunk, micro_batch) of the k-th backward unit (chunks reversed)."""
        p, v = self.num_devices, self.chunks
        cycle = k % (p * v)
        return self.chunks - 1 - cycle // p, (k // (p * v)) * p + k % p

    def device_stream(self, device: int) -> list[tuple[int, PipeTask]]:
        """Ordered ``(virtual_stage, task)`` pairs executed by one device."""
        if device in self._device_streams:
            return self._device_streams[device]
        if not 0 <= device < self.num_devices:
            raise ValueError(
                f"device {device} out of range [0, {self.num_devices})"
            )
        p, v, m = self.num_devices, self.chunks, self.num_micro_batches
        total = m * v
        warmup = min(total, 2 * (p - device - 1) + (v - 1) * p)
        out: list[tuple[int, PipeTask]] = []

        def fwd(k: int) -> tuple[int, PipeTask]:
            chunk, mb = self._forward_unit(k)
            return chunk * p + device, Forward(mb)

        def bwd(k: int) -> tuple[int, PipeTask]:
            chunk, mb = self._backward_unit(k)
            return chunk * p + device, Backward(mb)

        out.extend(fwd(k) for k in range(warmup))
        for k in range(total - warmup):
            out.append(fwd(warmup + k))
            out.append(bwd(k))
        out.extend(bwd(k) for k in range(total - warmup, total))
        self._device_streams[device] = out
        return out

    # ------------------------------------------------------------------ #
    # PipeSchedule interface
    # ------------------------------------------------------------------ #
    def stage_stream(self, stage: int) -> Iterator[PipeTask]:
        device = stage % self.num_devices
        for s, task in self.device_stream(device):
            if s == stage:
                yield task

    def stage_priorities(self, stage: int) -> Sequence[float]:
        """Device-level positions of this virtual stage's tasks."""
        device = stage % self.num_devices
        return [
            pos for pos, (s, _t) in enumerate(self.device_stream(device))
            if s == stage
        ]

    def describe(self) -> str:
        return (
            f"{self.name}: P={self.num_devices} devices x v={self.chunks} "
            f"chunks = {self.num_stages} virtual stages, "
            f"M={self.num_micro_batches}"
        )


class ZeroBubble2BPSchedule(PipeSchedule):
    """Zero-bubble 1F1B with the backward split into BI and BW phases.

    Per stage ``i`` with warm-up depth ``Ki`` (same PA/PB policies as
    DAPPLE): inject ``Ki`` forwards, then in steady state run
    ``BI(mb), BW(mb), F(mb+Ki)`` — the inline ``BW`` keeps residency at
    the 1F1B bound — and in the cooldown run the remaining grad-input
    phases *first* (they alone gate the upstream sendback chain) with the
    deferred grad-weight phases after them, filling the tail bubble.
    """

    name = "zb2bp"

    def __init__(
        self,
        num_stages: int,
        num_micro_batches: int,
        warmup_policy: str = "PA",
        max_in_memory: int | None = None,
        weight_fraction: float = 0.5,
    ):
        super().__init__(num_stages, num_micro_batches)
        if not 0.0 < weight_fraction < 1.0:
            raise ValueError(
                f"weight_fraction must be in (0, 1), got {weight_fraction}"
            )
        self.warmup_policy = warmup_policy
        self.max_in_memory = max_in_memory
        self.backward_weight_fraction = weight_fraction
        self._ks = warmup_counts(
            num_stages, num_micro_batches,
            policy=warmup_policy, max_in_memory=max_in_memory,
        )

    def stage_stream(self, stage: int) -> Iterator[PipeTask]:
        m = self.num_micro_batches
        k = self._ks[stage]
        for mb in range(k):
            yield Forward(mb)
        for mb in range(m - k):
            yield BackwardInput(mb)
            yield BackwardWeight(mb)
            yield Forward(mb + k)
        for mb in range(m - k, m):
            yield BackwardInput(mb)
        for mb in range(m - k, m):
            yield BackwardWeight(mb)

    def warmup_counts(self) -> list[int]:
        """Per-stage warm-up depths ``Ki`` this schedule was built with."""
        return list(self._ks)

    def describe(self) -> str:
        return (
            f"{self.name}: S={self.num_stages} stages, "
            f"M={self.num_micro_batches}, BI/BW split "
            f"{1 - self.backward_weight_fraction:.2f}/"
            f"{self.backward_weight_fraction:.2f}"
        )

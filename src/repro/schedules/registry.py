"""Schedule registry: name/spec strings → :class:`PipeSchedule` instances.

Every user-facing surface that names a schedule — ``--schedule`` on the
CLI, the ``"schedule"`` key of the serve protocol, the fault/ensemble
paths, ``repro check`` — resolves through this registry, so adding a
schedule here makes it available everywhere at once (the same pattern as
:func:`repro.cluster.configs.config_by_name` for hardware configs).

Spec grammar::

    name                      # e.g. "dapple", "gpipe", "zb2bp"
    name:key=value[,key=...]  # e.g. "interleaved:v=2", "zb2bp:w=0.4"

Values parse as int, then float, then bare string.  Unknown names raise
:class:`UnknownScheduleError` (a ``ValueError``) listing the valid names;
unknown parameter keys raise plain ``ValueError``.

:func:`build_schedule` needs the execution context — the plan (for stage
count and, for interleaved, the device/chunk geometry), ``M``, the warm-up
policy, and the memory cap ``D`` — and returns a ready
:class:`~repro.schedules.base.PipeSchedule`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.schedules.base import PipeSchedule
from repro.schedules.library import (
    Dapple1F1BSchedule,
    GPipeSchedule,
    Interleaved1F1BSchedule,
    ZeroBubble2BPSchedule,
)

__all__ = [
    "UnknownScheduleError",
    "register_schedule",
    "schedule_names",
    "schedule_help",
    "parse_schedule_spec",
    "build_schedule",
]


class UnknownScheduleError(ValueError):
    """A schedule spec names a schedule the registry does not know."""


#: name -> (builder, allowed parameter keys, one-line help)
_REGISTRY: dict[str, tuple[Callable[..., PipeSchedule], frozenset, str]] = {}
#: alias -> canonical name
_ALIASES: dict[str, str] = {}


def register_schedule(
    name: str,
    builder: Callable[..., PipeSchedule],
    params: tuple[str, ...] = (),
    help: str = "",
    aliases: tuple[str, ...] = (),
) -> None:
    """Register ``builder`` under ``name`` (and ``aliases``).

    ``builder(params_dict, plan=..., num_micro_batches=...,
    warmup_policy=..., max_in_memory=...)`` must return a
    :class:`PipeSchedule`.
    """
    if name in _REGISTRY or name in _ALIASES:
        raise ValueError(f"schedule {name!r} already registered")
    _REGISTRY[name] = (builder, frozenset(params), help)
    for alias in aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"schedule alias {alias!r} already registered")
        _ALIASES[alias] = name


def schedule_names() -> tuple[str, ...]:
    """Canonical registered schedule names, in registration order."""
    return tuple(_REGISTRY)


def schedule_help() -> str:
    """One line per registered schedule, for ``--help`` text."""
    return "; ".join(
        f"{name} — {help}" for name, (_b, _p, help) in _REGISTRY.items()
    )


def _parse_value(raw: str) -> Any:
    for conv in (int, float):
        try:
            return conv(raw)
        except ValueError:
            continue
    return raw


def parse_schedule_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``"name:k=v,..."`` into the canonical name and a params dict."""
    head, _sep, tail = spec.strip().partition(":")
    name = head.strip().lower()
    name = _ALIASES.get(name, name)
    if name not in _REGISTRY:
        valid = ", ".join(schedule_names())
        raise UnknownScheduleError(
            f"unknown schedule {head.strip()!r} (valid: {valid})"
        )
    params: dict[str, Any] = {}
    if tail:
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"bad schedule parameter {item!r} in {spec!r} "
                    "(want key=value)"
                )
            params[key] = _parse_value(value.strip())
    allowed = _REGISTRY[name][1]
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ValueError(
            f"schedule {name!r} does not take parameter(s) {unknown} "
            f"(valid: {sorted(allowed) or 'none'})"
        )
    return name, params


def build_schedule(
    spec: str,
    *,
    plan,
    num_micro_batches: int | None = None,
    warmup_policy: str = "PA",
    max_in_memory: int | None = None,
) -> PipeSchedule:
    """Resolve ``spec`` against the registry and build the schedule.

    ``plan`` supplies the stage count and (for interleaved) the
    device/chunk geometry; ``max_in_memory`` is the memory cap ``D`` on
    concurrently resident micro-batches warm-up depths are clamped to.
    """
    name, params = parse_schedule_spec(spec)
    builder = _REGISTRY[name][0]
    m = num_micro_batches if num_micro_batches is not None \
        else plan.num_micro_batches
    return builder(
        params,
        plan=plan,
        num_micro_batches=m,
        warmup_policy=warmup_policy,
        max_in_memory=max_in_memory,
    )


# --------------------------------------------------------------------- #
# Built-in builders
# --------------------------------------------------------------------- #
def _build_dapple(params, *, plan, num_micro_batches, warmup_policy,
                  max_in_memory) -> Dapple1F1BSchedule:
    return Dapple1F1BSchedule(
        plan.num_stages, num_micro_batches,
        warmup_policy=params.get("policy", warmup_policy),
        max_in_memory=max_in_memory,
    )


def _build_gpipe(params, *, plan, num_micro_batches, warmup_policy,
                 max_in_memory) -> GPipeSchedule:
    return GPipeSchedule(plan.num_stages, num_micro_batches)


def _interleave_geometry(plan, chunks: int | None) -> tuple[int, int]:
    """Derive ``(P devices, v chunks)`` from an interleaved plan."""
    s = plan.num_stages
    v = chunks
    if v is None:
        v = plan.meta.get("virtual_per_device") if plan.meta else None
    if v is None:
        raise ValueError(
            "interleaved schedule needs the chunk count: pass "
            "'interleaved:v=N' or use a plan built by "
            "interleaved_straight_plan (which records it)"
        )
    if s % v != 0:
        raise ValueError(
            f"plan has {s} stages, not divisible by v={v} chunks per device"
        )
    p = s // v
    # Stage s must live on the same device set as stage s % P — the
    # round-robin chunk placement the schedule's geometry assumes.
    for i in range(s):
        a = tuple(d.global_id for d in plan.stages[i].devices)
        b = tuple(d.global_id for d in plan.stages[i % p].devices)
        if a != b:
            raise ValueError(
                f"interleaved schedule expects round-robin chunk placement "
                f"(stage {i} on the devices of stage {i % p}); build the "
                f"plan with interleaved_straight_plan"
            )
    return p, v


def _build_interleaved(params, *, plan, num_micro_batches, warmup_policy,
                       max_in_memory) -> Interleaved1F1BSchedule:
    chunks = params.get("v")
    p, v = _interleave_geometry(plan, chunks)
    return Interleaved1F1BSchedule(p, num_micro_batches, chunks=v)


def _build_zb2bp(params, *, plan, num_micro_batches, warmup_policy,
                 max_in_memory) -> ZeroBubble2BPSchedule:
    return ZeroBubble2BPSchedule(
        plan.num_stages, num_micro_batches,
        warmup_policy=params.get("policy", warmup_policy),
        max_in_memory=max_in_memory,
        weight_fraction=params.get("w", 0.5),
    )


register_schedule(
    "dapple", _build_dapple, params=("policy",),
    help="DAPPLE early-backward 1F1B (paper Fig. 3b); 'policy=PA|PB' "
         "overrides the warm-up policy",
    aliases=("1f1b",),
)
register_schedule(
    "gpipe", _build_gpipe,
    help="GPipe flush: all forwards then all backwards (paper Fig. 3a)",
)
register_schedule(
    "interleaved", _build_interleaved, params=("v",),
    help="Megatron-style interleaved 1F1B over v virtual stages per device "
         "('v=N'; needs an interleaved plan and M divisible by the device "
         "count)",
)
register_schedule(
    "zb2bp", _build_zb2bp, params=("w", "policy"),
    help="zero-bubble 2BP: backward split into grad-input (BI) and "
         "grad-weight (BW) phases, BW filling the cooldown bubble "
         "('w=FRAC' sets the BW share of backward time, default 0.5)",
)

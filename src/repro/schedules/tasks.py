"""Typed pipeline-schedule tasks — the vocabulary of the schedule IR.

A schedule is, per (virtual) stage, an ordered stream of :class:`PipeTask`
objects.  Compute tasks occupy the stage's devices:

* :class:`Forward` — forward pass of one micro-batch (allocates its
  resident activations);
* :class:`Backward` — the classic *combined* backward (grad-input and
  grad-weight fused, as in GPipe/DAPPLE; releases the activations);
* :class:`BackwardInput` / :class:`BackwardWeight` — the 2BP split
  (PAPERS.md: "2BP: 2-Stage Backpropagation"): ``BackwardInput`` computes
  dL/d(input) and is the only task on the cross-stage gradient chain;
  ``BackwardWeight`` computes dL/d(weights) off the critical path and is
  what finally releases the micro-batch's activations.

Communication markers (:class:`RecvAct`, :class:`SendAct`,
:class:`RecvGrad`, :class:`SendGrad`) annotate where a stream touches its
neighbours; the runtime derives the actual transfer ops from data
dependencies, so the markers exist for analysis and documentation of a
stream (see :meth:`~repro.schedules.base.PipeSchedule.steps`).

Every task is a frozen value object keyed by ``micro_batch``; ``kind`` is
a short class-level code (``"F"``, ``"B"``, ``"BI"``, ``"BW"``, ...) that
doubles as the op-kind tag the runtime attaches to simulated ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

__all__ = [
    "PipeTask",
    "Forward",
    "Backward",
    "BackwardInput",
    "BackwardWeight",
    "RecvAct",
    "SendAct",
    "RecvGrad",
    "SendGrad",
    "COMPUTE_KINDS",
    "COMM_KINDS",
    "RELEASE_KINDS",
]


@dataclass(frozen=True)
class PipeTask:
    """One schedule step of one micro-batch on one (virtual) stage."""

    micro_batch: int
    #: Short kind code, set per subclass (``"F"``, ``"BI"``, ...).
    kind: ClassVar[str] = "?"
    #: True for tasks that occupy the stage's devices (F/B/BI/BW).
    compute: ClassVar[bool] = False

    def __repr__(self) -> str:
        return f"{self.kind}{self.micro_batch}"


class Forward(PipeTask):
    """Forward pass; allocates the micro-batch's resident activations."""

    kind = "F"
    compute = True


class Backward(PipeTask):
    """Combined backward (grad-input + grad-weight); releases activations."""

    kind = "B"
    compute = True


class BackwardInput(PipeTask):
    """Grad-input half of a split backward — the cross-stage grad chain."""

    kind = "BI"
    compute = True


class BackwardWeight(PipeTask):
    """Grad-weight half of a split backward; releases the activations."""

    kind = "BW"
    compute = True


class RecvAct(PipeTask):
    """Marker: activations of this micro-batch arrive from the upstream stage."""

    kind = "recv_act"


class SendAct(PipeTask):
    """Marker: activations of this micro-batch leave for the downstream stage."""

    kind = "send_act"


class RecvGrad(PipeTask):
    """Marker: output gradients arrive from the downstream stage."""

    kind = "recv_grad"


class SendGrad(PipeTask):
    """Marker: input gradients leave for the upstream stage."""

    kind = "send_grad"


#: Kinds that occupy stage devices and become simulated compute ops.
COMPUTE_KINDS = frozenset({"F", "B", "BI", "BW"})
#: Marker kinds describing cross-stage traffic around a stream.
COMM_KINDS = frozenset({"recv_act", "send_act", "recv_grad", "send_grad"})
#: Kinds whose completion releases a micro-batch's resident activations.
RELEASE_KINDS = frozenset({"B", "BW"})

_BY_KIND = {
    cls.kind: cls
    for cls in (Forward, Backward, BackwardInput, BackwardWeight,
                RecvAct, SendAct, RecvGrad, SendGrad)
}


def task_from_kind(kind: str, micro_batch: int) -> PipeTask:
    """Build the typed task for a ``kind`` code (inverse of ``task.kind``)."""
    try:
        return _BY_KIND[kind](micro_batch)
    except KeyError:
        raise ValueError(f"unknown pipe-task kind {kind!r}") from None

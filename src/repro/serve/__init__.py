"""Planner-as-a-service: a zero-dependency HTTP plan server.

The repo's planner has so far been a one-shot CLI; this package turns it
into a long-running service — the ROADMAP's "serves heavy traffic" shape —
built entirely on the standard library (``http.server`` + ``json``):

* :mod:`repro.serve.protocol` — the ``plan-request-v1`` wire schema and its
  decoding into ``(ModelProfile, Cluster, GBS, PlannerConfig)`` via
  :mod:`repro.core.serialization`;
* :mod:`repro.serve.store` — content-addressed artifact store (SHA-256 of
  the payload bytes), holding results, ``--explain`` breakdowns, and
  ``repro.check`` conformance reports;
* :mod:`repro.serve.jobs` — bounded async job queue with backpressure
  (429 + ``Retry-After`` once full) and drain semantics;
* :mod:`repro.serve.workers` — worker pool executing ``plan_best`` through
  :class:`repro.perf.sweep.ForkPool` (fork workers inherit the warm
  in-memory plan-cache tier; the shared disk tier serves cross-worker and
  cross-restart hits);
* :mod:`repro.serve.server` — the HTTP front end (``POST /v1/plans``,
  ``GET /v1/jobs/<id>``, ``GET /v1/artifacts/<digest>``,
  ``GET /v1/cache/stats``, ``GET /healthz``) with SIGTERM-friendly
  graceful drain;
* :mod:`repro.serve.client` — a stdlib-``urllib`` client used by
  ``repro submit`` and the tests.

Served plans are bit-identical to a direct :func:`~repro.core.planner.plan_best`
call for the same request — enforced by ``repro.check``'s served-plan
oracle and the end-to-end tests.
"""

from repro.serve.client import PlanClient, ServiceError
from repro.serve.jobs import Job, JobQueue, QueueClosed, QueueFull
from repro.serve.protocol import PlanRequest, RequestError, decode_plan_request
from repro.serve.server import PlanServer
from repro.serve.store import ArtifactStore
from repro.serve.workers import WorkerPool, execute_request

__all__ = [
    "ArtifactStore",
    "Job",
    "JobQueue",
    "PlanClient",
    "PlanRequest",
    "PlanServer",
    "QueueClosed",
    "QueueFull",
    "RequestError",
    "ServiceError",
    "WorkerPool",
    "decode_plan_request",
    "execute_request",
]

"""Stdlib-``urllib`` client for the plan service.

Powers ``repro submit`` and the end-to-end tests; no third-party HTTP
stack.  :class:`PlanClient` wraps the four interactions a consumer needs:
submit a request, poll its job, fetch artifacts, read service stats.
Non-2xx responses raise :class:`ServiceError` carrying the HTTP status
and the server's JSON error message.

Tracing: when the calling thread has a :mod:`repro.obs.context` trace
context installed (e.g. inside ``with obs.start_trace(...)``), every
request carries it in ``X-Repro-Trace``/``X-Repro-Parent`` headers, and
``submit``/``wait``/``artifact`` open ``client.*`` spans — so a round trip
through the service shows up as one connected trace spanning the client
process, the server threads, and the fork workers.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

import repro.obs as obs
from repro.obs import context as trace_context


class ServiceError(RuntimeError):
    """Non-2xx response (or transport failure) from the plan service."""

    def __init__(self, message: str, status: int | None = None,
                 body: dict[str, Any] | None = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}

    @property
    def retry_after(self) -> float | None:
        v = self.body.get("retry_after")
        return float(v) if v is not None else None


class PlanClient:
    """Minimal blocking client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------ transport ------------------------------- #
    def _request(self, method: str, path: str,
                 payload: dict[str, Any] | None = None) -> tuple[int, bytes, str]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        headers.update(trace_context.to_headers(trace_context.snapshot()))
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (
                    resp.status,
                    resp.read(),
                    resp.headers.get("Content-Type", "application/json"),
                )
        except urllib.error.HTTPError as e:
            body = e.read()
            try:
                parsed = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = {"error": body.decode("utf-8", "replace")}
            retry_after = e.headers.get("Retry-After")
            if retry_after is not None:
                parsed.setdefault("retry_after", retry_after)
            raise ServiceError(
                f"{method} {path} -> {e.code}: {parsed.get('error', parsed)}",
                status=e.code, body=parsed,
            ) from e
        except urllib.error.URLError as e:
            raise ServiceError(f"{method} {path} failed: {e.reason}") from e

    def _json(self, method: str, path: str,
              payload: dict[str, Any] | None = None) -> dict[str, Any]:
        _status, body, _ct = self._request(method, path, payload)
        return json.loads(body.decode("utf-8"))

    # -------------------------------- API ----------------------------------- #
    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def cache_stats(self) -> dict[str, Any]:
        return self._json("GET", "/v1/cache/stats")

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """POST one plan request; returns the 202 body (``job_id`` inside)."""
        with obs.span("client.submit"):
            return self._json("POST", "/v1/plans", request)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def artifact(self, digest: str) -> tuple[bytes, str]:
        """Fetch one artifact; returns ``(payload, content_type)``."""
        with obs.span("client.fetch", digest=digest):
            _status, body, content_type = self._request(
                "GET", f"/v1/artifacts/{digest}"
            )
        return body, content_type

    def metrics(self) -> str:
        """Fetch the Prometheus text exposition from ``GET /metrics``."""
        _status, body, _ct = self._request("GET", "/metrics")
        return body.decode("utf-8")

    def artifact_json(self, digest: str) -> Any:
        payload, _ct = self.artifact(digest)
        return json.loads(payload.decode("utf-8"))

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_interval: float = 0.02) -> dict[str, Any]:
        """Poll until the job settles; returns the final job dict.

        Raises :class:`ServiceError` if the job failed or the deadline
        passes while it is still queued/running.
        """
        deadline = time.monotonic() + timeout
        with obs.span("client.wait", job=job_id):
            return self._wait(job_id, timeout, poll_interval, deadline)

    def _wait(self, job_id: str, timeout: float, poll_interval: float,
              deadline: float) -> dict[str, Any]:
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {job.get('error', 'unknown error')}",
                    body=job,
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for {job_id} "
                    f"(state: {job['state']})",
                    body=job,
                )
            time.sleep(poll_interval)

    def result(self, job: dict[str, Any]) -> dict[str, Any]:
        """Fetch the ``result`` artifact of a completed job dict."""
        digest = job.get("artifacts", {}).get("result")
        if digest is None:
            raise ServiceError(f"job {job.get('id')} has no result artifact")
        return self.artifact_json(digest)

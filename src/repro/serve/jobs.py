"""Bounded async job queue with backpressure and drain semantics.

Jobs move ``queued -> running -> done | failed``.  The queue bounds only
the *pending* depth: once ``max_depth`` submissions are waiting for a
worker, further submissions raise :class:`QueueFull`, which the HTTP
layer maps to ``429 Too Many Requests`` + ``Retry-After`` — the service
sheds load instead of building an unbounded backlog.

:meth:`JobQueue.close` starts a graceful drain: new submissions raise
:class:`QueueClosed` (HTTP 503) while already-accepted jobs keep flowing
to workers; :meth:`JobQueue.wait_idle` blocks until every accepted job
has finished, which is exactly the SIGTERM handshake ``repro serve``
performs before exiting.

All state lives behind one lock + condition; completed jobs are kept (the
service is for bounded test/bench/CLI traffic, and results are one
``GET /v1/jobs/<id>`` away) but their payloads are small — artifacts live
in the content-addressed store, jobs only carry digests.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Suggested client back-off (seconds) attached to 429 responses.
RETRY_AFTER_S = 1


class QueueFull(RuntimeError):
    """Pending depth limit reached (HTTP 429)."""


class QueueClosed(RuntimeError):
    """Queue is draining/closed; no new submissions (HTTP 503)."""


@dataclass
class Job:
    """One plan request moving through the service."""

    id: str
    request: dict[str, Any]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: artifact name ("result", "explain", "check") -> content digest
    artifacts: dict[str, str] = field(default_factory=dict)
    #: small result summary for job listings (notation, latency, cache_hit)
    summary: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    #: trace-context snapshot captured at submission (``repro.obs.context``)
    #: — carried through the queue so worker threads/processes re-install
    #: the submitting request's identity; None when tracing was off.
    trace: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        out = {
            "id": self.id,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "artifacts": dict(self.artifacts),
            "summary": dict(self.summary),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.trace is not None and self.trace.get("trace_id"):
            out["trace_id"] = self.trace["trace_id"]
        return out


class JobQueue:
    """FIFO queue of :class:`Job` with a bounded pending depth."""

    def __init__(self, max_depth: int = 64):
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._jobs: dict[str, Job] = {}
        self._running = 0
        self._closed = False
        self._ids = itertools.count(1)
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0

    # ------------------------------- intake -------------------------------- #
    def submit(self, request: dict[str, Any],
               trace: dict[str, Any] | None = None) -> Job:
        """Accept one request or raise :class:`QueueFull`/:class:`QueueClosed`."""
        with self._lock:
            if self._closed:
                raise QueueClosed("server is draining; not accepting new jobs")
            if len(self._pending) >= self.max_depth:
                self.rejected += 1
                raise QueueFull(
                    f"queue depth limit reached ({self.max_depth} pending)"
                )
            job = Job(id=f"job-{next(self._ids):06d}", request=dict(request),
                      trace=trace)
            self._pending.append(job)
            self._jobs[job.id] = job
            self.submitted += 1
            self._has_work.notify()
            return job

    # ------------------------------- workers -------------------------------- #
    def claim(self, timeout: float | None = None) -> Job | None:
        """Pop the oldest pending job (marking it running), or None on timeout."""
        with self._lock:
            if not self._pending:
                self._has_work.wait(timeout)
            if not self._pending:
                return None
            job = self._pending.pop(0)
            job.state = "running"
            job.started_at = time.time()
            self._running += 1
            return job

    def _settle(self, job: Job) -> None:
        job.finished_at = time.time()
        self._running -= 1
        if self._running == 0 and not self._pending:
            self._idle.notify_all()

    def finish(self, job: Job, artifacts: dict[str, str], summary: dict[str, Any]) -> None:
        with self._lock:
            job.state = "done"
            job.artifacts = dict(artifacts)
            job.summary = dict(summary)
            self.completed += 1
            self._settle(job)

    def fail(self, job: Job, error: str) -> None:
        with self._lock:
            job.state = "failed"
            job.error = error
            self.failed += 1
            self._settle(job)

    # ------------------------------- queries -------------------------------- #
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    @property
    def depth(self) -> int:
        """Jobs accepted but not yet claimed by a worker."""
        with self._lock:
            return len(self._pending)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._running

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> dict[str, int | bool]:
        with self._lock:
            return {
                "depth": len(self._pending),
                "in_flight": self._running,
                "max_depth": self.max_depth,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "closed": self._closed,
            }

    # -------------------------------- drain --------------------------------- #
    def close(self) -> None:
        """Refuse new submissions; queued/running jobs keep executing."""
        with self._lock:
            self._closed = True
            # Wake idle workers so their claim() loops observe the close.
            self._has_work.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is pending or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._pending or self._running:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

"""Wire schema for plan requests (``plan-request-v1``).

A request is plain JSON naming a planning problem:

.. code-block:: json

    {
      "model": "bert48",             // zoo name ...
      "graph": {...},                // ... or an inline layer graph
      "config": "A",                 // hardware config letter ...
      "cluster": {...},              // ... or an inline topology
      "devices": 16,
      "gbs": 64,                     // omitted -> paper default for the model
      "planner": {"beam_width": 48}, // PlannerConfig overrides
      "explain": false,              // also produce the Tw/Ts/Te breakdown
      "check": false,                // also run the conformance battery
      "schedule": "dapple"           // schedule spec for the check arm
    }

``schedule`` accepts any :mod:`repro.schedules` registry spec
(``"dapple"``, ``"gpipe"``, ``"zb2bp:w=0.4"``, ...); it is validated at
decode time against the registry and echoed in the response.

:func:`decode_plan_request` validates the shape (unknown keys, exclusive
``model``/``graph`` and ``config``/``cluster`` pairs, type errors) and
:meth:`PlanRequest.resolve` builds the concrete ``(ModelProfile, Cluster,
GBS, PlannerConfig)`` tuple via :mod:`repro.core.serialization` — both
raise :class:`RequestError`, which the HTTP layer maps to a 400.

Decoding is deterministic: the same JSON body always resolves to the same
fingerprint in the content-addressed plan cache, so repeated requests
short-circuit through :class:`~repro.core.plancache.PlanCache` in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster import config_by_name
from repro.core.profiler import profile_model
from repro.core.serialization import (
    cluster_from_dict,
    graph_from_dict,
    planner_config_from_dict,
)
from repro.models import PAPER_FIGURES, get_model, model_names

SCHEMA = "plan-request-v1"

#: Keys a request body may carry; anything else is rejected with a 400.
_ALLOWED_KEYS = {
    "schema", "model", "graph", "config", "cluster", "devices", "gbs",
    "planner", "explain", "check", "schedule",
}


class RequestError(ValueError):
    """Malformed or unresolvable plan request (HTTP 400)."""


@dataclass
class PlanRequest:
    """A validated (but not yet resolved) planning problem."""

    model: str | None = None
    graph: dict[str, Any] | None = None
    config: str = "A"
    cluster: dict[str, Any] | None = None
    devices: int = 16
    gbs: int | None = None
    planner: dict[str, Any] = field(default_factory=dict)
    explain: bool = False
    check: bool = False
    #: Schedule registry spec the check arm executes under.
    schedule: str = "dapple"

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable body: ``decode_plan_request(req.to_dict())`` == req."""
        out: dict[str, Any] = {"schema": SCHEMA}
        if self.graph is not None:
            out["graph"] = self.graph
        else:
            out["model"] = self.model
        if self.cluster is not None:
            out["cluster"] = self.cluster
        else:
            out["config"] = self.config
        out["devices"] = self.devices
        if self.gbs is not None:
            out["gbs"] = self.gbs
        if self.planner:
            out["planner"] = self.planner
        if self.explain:
            out["explain"] = True
        if self.check:
            out["check"] = True
        if self.schedule != "dapple":
            out["schedule"] = self.schedule
        return out

    def resolve(self):
        """Build ``(profile, cluster, gbs, planner_config)`` or raise 400."""
        try:
            if self.graph is not None:
                graph = graph_from_dict(self.graph)
            else:
                graph = get_model(self.model)
            if self.cluster is not None:
                cluster = cluster_from_dict(self.cluster)
            else:
                cluster = config_by_name(self.config, self.devices)
            cfg = planner_config_from_dict(self.planner)
        except (ValueError, KeyError) as e:
            msg = e.args[0] if e.args else e
            raise RequestError(str(msg)) from e
        gbs = self.gbs
        if gbs is None:
            key = (self.model or graph.name).strip().lower()
            gbs = PAPER_FIGURES[key].global_batch_size if key in PAPER_FIGURES else 64
        if gbs < 1:
            raise RequestError(f"global batch size must be >= 1, got {gbs}")
        return profile_model(graph), cluster, int(gbs), cfg


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise RequestError(msg)


def decode_plan_request(data: Any) -> PlanRequest:
    """Validate a JSON body into a :class:`PlanRequest` (raises 400s)."""
    _require(isinstance(data, dict), "request body must be a JSON object")
    schema = data.get("schema", SCHEMA)
    _require(schema == SCHEMA, f"unsupported request schema {schema!r} (want {SCHEMA!r})")
    unknown = sorted(set(data) - _ALLOWED_KEYS)
    _require(not unknown, f"unknown request key(s) {unknown}")

    model = data.get("model")
    graph = data.get("graph")
    _require(
        (model is None) != (graph is None),
        "request must carry exactly one of 'model' (zoo name) or 'graph' (inline)",
    )
    if model is not None:
        _require(isinstance(model, str), "'model' must be a string")
        _require(
            model.strip().lower() in model_names(),
            f"unknown model {model!r} (valid: {model_names()})",
        )
    if graph is not None:
        _require(isinstance(graph, dict), "'graph' must be an object")

    cluster = data.get("cluster")
    config = data.get("config", "A")
    _require(
        cluster is None or "config" not in data,
        "request may carry 'config' (letter) or 'cluster' (inline), not both",
    )
    _require(isinstance(config, str), "'config' must be a string")
    if cluster is not None:
        _require(isinstance(cluster, dict), "'cluster' must be an object")

    devices = data.get("devices", 16)
    _require(isinstance(devices, int) and not isinstance(devices, bool) and devices >= 1,
             f"'devices' must be a positive integer, got {devices!r}")
    gbs = data.get("gbs")
    _require(
        gbs is None or (isinstance(gbs, int) and not isinstance(gbs, bool) and gbs >= 1),
        f"'gbs' must be a positive integer, got {gbs!r}",
    )
    planner = data.get("planner", {})
    _require(isinstance(planner, dict), "'planner' must be an object of PlannerConfig fields")
    explain = data.get("explain", False)
    check = data.get("check", False)
    _require(isinstance(explain, bool), "'explain' must be a boolean")
    _require(isinstance(check, bool), "'check' must be a boolean")
    schedule = data.get("schedule", "dapple")
    _require(isinstance(schedule, str), "'schedule' must be a string")
    if "schedule" in data:
        from repro.schedules import parse_schedule_spec

        try:
            parse_schedule_spec(schedule)
        except ValueError as e:
            raise RequestError(str(e)) from e

    req = PlanRequest(
        model=model, graph=graph, config=config, cluster=cluster,
        devices=devices, gbs=gbs, planner=dict(planner),
        explain=explain, check=check, schedule=schedule,
    )
    # Resolve eagerly so submissions fail fast with a 400 (bad PlannerConfig
    # field, malformed inline graph/cluster) instead of queueing a job that
    # can only fail later.
    req.resolve()
    return req

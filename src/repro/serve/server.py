"""The HTTP front end: ``ThreadingHTTPServer`` over the job queue.

Endpoints (all JSON):

====================================  =========================================
``POST /v1/plans``                    submit a plan request -> 202 + job id;
                                      400 malformed, 429 + ``Retry-After``
                                      when the queue is full, 503 draining
``GET  /v1/jobs``                     list jobs (most recent last)
``GET  /v1/jobs/<id>``                job status, summary, artifact digests
``GET  /v1/artifacts/<digest>``       fetch one content-addressed artifact
``GET  /v1/cache/stats``              plan-cache + artifact-store + queue stats
``GET  /healthz``                     liveness + readiness, queue depth,
                                      workers, rolling SLO summary; with
                                      ``?ready=1`` returns 503 when not ready
``GET  /metrics``                     Prometheus text exposition of the obs
                                      registry + live service gauges
====================================  =========================================

Every request is counted (``serve.requests`` by route and status), spanned
(``serve.request``), fed into the rolling SLO windows, and appended to an
optional JSONL access log; live service state (queue depth, in-flight
requests, worker utilization, cache hit rate) is exported as gauges on
each ``/metrics`` scrape.

Tracing: the server runs with observability **enabled by default**
(``obs_enabled=True``; the caller's prior enabled-state is restored on
close/drain, mirroring the plan-cache swap).  Each request gets a
:class:`repro.obs.context.TraceContext` — continued from the client's
``X-Repro-Trace`` headers when present, freshly minted otherwise — so the
HTTP span, queue record, worker threads, and fork workers all share one
trace_id.

Shutdown is graceful by default: :meth:`PlanServer.drain` (the SIGTERM
handler of ``repro serve``) closes the queue (new submissions -> 503),
waits for in-flight jobs to finish, then stops the HTTP listener.
"""

from __future__ import annotations

import json
import re
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs

import repro.obs as obs
from repro.obs import context as trace_context
from repro.obs.export import PROM_CONTENT_TYPE, SloTracker, render_prometheus

from repro import __version__
from repro.core.plancache import PlanCache, swap_default
from repro.serve.jobs import RETRY_AFTER_S, JobQueue, QueueClosed, QueueFull
from repro.serve.protocol import RequestError, decode_plan_request
from repro.serve.store import ArtifactStore
from repro.serve.workers import WorkerPool

#: Default bound on the plan cache's disk tier (LRU-evicted beyond this).
DEFAULT_CACHE_MAX_BYTES = 256 * 2**20

#: Largest accepted request body; inline graphs are a few KB, so 8 MiB is
#: generous while still bounding memory per connection.
MAX_BODY_BYTES = 8 * 2**20

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9._-]+)$")
_ARTIFACT_PATH = re.compile(r"^/v1/artifacts/([0-9a-f]+)$")


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection; all state lives on ``self.server.app``."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------ plumbing -------------------------------- #
    @property
    def app(self) -> "PlanServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # default stderr chatter off
        pass

    def _send(self, status: int, payload: Any, *, content_type: str = "application/json",
              headers: dict[str, str] | None = None) -> int:
        body = (
            payload if isinstance(payload, bytes)
            else (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass
        return status

    def _error(self, status: int, message: str,
               headers: dict[str, str] | None = None) -> int:
        return self._send(status, {"error": message, "status": status}, headers=headers)

    # ------------------------------- methods -------------------------------- #
    def do_GET(self):  # noqa: N802 (http.server naming)
        self._route("GET")

    def do_POST(self):  # noqa: N802
        self._route("POST")

    def _route(self, method: str) -> None:
        app = self.app
        path, _, query = self.path.partition("?")
        route = _route_label(method, path)
        ctx = app.request_context(self.headers)
        app._inflight_add(1)
        t0 = time.perf_counter()
        try:
            with trace_context.use(ctx):
                with obs.span("serve.request", method=method,
                              path=path) as sp:
                    status = app.dispatch(self, method, path, query)
                    sp.set(route=route, status=status)
        finally:
            app._inflight_add(-1)
        if sp is not obs.NOOP_SPAN:
            # Derive latency from the span's own clock reads so the SLO
            # windows and `repro obs summarize` over the JSONL export see
            # bit-identical durations for the same requests.
            elapsed_ms = (sp.t1 - sp.t0) * 1e3
        else:
            elapsed_ms = (time.perf_counter() - t0) * 1e3
        obs.counter("serve.requests", route=route, status=str(status)).inc()
        if status >= 500:
            obs.counter("serve.errors", route=route).inc()
        obs.histogram("serve.request_ms").observe(elapsed_ms)
        obs.histogram("serve.request_ms", route=route).observe(elapsed_ms)
        app.slo.record(route, status, elapsed_ms)
        app.access_log(method, path, status, elapsed_ms,
                       trace_id=ctx.trace_id if ctx is not None else None)


def _route_label(method: str, path: str) -> str:
    if _JOB_PATH.match(path):
        return f"{method} /v1/jobs/<id>"
    if _ARTIFACT_PATH.match(path):
        return f"{method} /v1/artifacts/<digest>"
    return f"{method} {path}"


class PlanServer:
    """Long-running planner service bound to one host:port.

    ``port=0`` binds an ephemeral port (tests, benchmarks); read
    :attr:`url` after :meth:`start`.  ``data_dir`` holds the two
    content-addressed tiers (``artifacts/`` and ``plancache/``); omitted,
    a temporary directory is created and reused for the server's lifetime.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        queue_depth: int = 64,
        data_dir: str | Path | None = None,
        exec_mode: str = "fork",
        cache_max_bytes: int | None = DEFAULT_CACHE_MAX_BYTES,
        access_log: str | Path | None = None,
        start_workers: bool = True,
        obs_enabled: bool = True,
        slo_window: int = 512,
    ):
        self.host = host
        self._requested_port = port
        # The service is observable by default: requests are traced and
        # /metrics is live without any caller setup.  The caller's prior
        # enabled-state is restored on close()/drain() (same pattern as
        # the plan-cache default swap below).
        self._obs_enabled = obs_enabled
        self._obs_prev_enabled = obs.enabled()
        self._obs_restored = False
        if obs_enabled and not self._obs_prev_enabled:
            obs.enable()
        self.slo = SloTracker(capacity=slo_window)
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        if data_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            data_dir = self._tmpdir.name
        else:
            self._tmpdir = None
        self.data_dir = Path(data_dir)
        self.store = ArtifactStore(self.data_dir / "artifacts")
        self.cache_dir = self.data_dir / "plancache"
        self.cache_max_bytes = cache_max_bytes
        # The service's disk tier doubles as the process-default cache, so
        # inline execution and fork workers (which inherit it) share one
        # content-addressed store of search results.  The caller's prior
        # default is restored on close()/drain() so an embedded server
        # (tests, the served-plan oracle) leaves no global footprint.
        self.cache = PlanCache(self.cache_dir, max_disk_bytes=cache_max_bytes)
        self._prev_cache_state = swap_default(self.cache)
        self._cache_restored = False
        self.queue = JobQueue(max_depth=queue_depth)
        self.pool = WorkerPool(
            self.queue, self.store,
            workers=workers, exec_mode=exec_mode,
            cache_dir=str(self.cache_dir), cache_max_bytes=cache_max_bytes,
            event_log=self.access_log_event,
        )
        self._start_workers = start_workers
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._access_log_path = Path(access_log) if access_log else None
        self._access_log_lock = threading.Lock()
        self._draining = False
        self.started_at = time.time()
        obs.gauge("serve.queue_depth").set_fn(lambda: float(self.queue.depth))

    # ------------------------------ lifecycle ------------------------------- #
    @property
    def port(self) -> int:
        return self._httpd.server_address[1] if self._httpd else self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PlanServer":
        """Bind the socket and start serving in background threads."""
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._serve_thread.start()
        if self._start_workers:
            self.pool.start()
        return self

    def start_workers(self) -> None:
        """Start the worker pool (when constructed with start_workers=False)."""
        self.pool.start()

    def wait(self) -> None:
        """Block the calling thread until the server is shut down."""
        if self._serve_thread is not None:
            self._serve_thread.join()

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: refuse new jobs, finish accepted ones, stop."""
        with obs.span("serve.drain"):
            self._draining = True
            clean = self.pool.drain(timeout)
            self._stop_http()
            self._restore_cache()
        self._restore_obs()
        return clean

    def close(self) -> None:
        """Hard stop (tests): abandon queued jobs, stop everything."""
        self._draining = True
        self.queue.close()
        self.pool.stop()
        self._stop_http()
        self._restore_cache()
        self._restore_obs()
        if self._tmpdir is not None:
            try:
                self._tmpdir.cleanup()
            except OSError:
                pass
            self._tmpdir = None

    def _restore_cache(self) -> None:
        if not self._cache_restored:
            swap_default(*self._prev_cache_state)
            self._cache_restored = True

    def _restore_obs(self) -> None:
        if not self._obs_restored:
            if self._obs_enabled and not self._obs_prev_enabled:
                obs.disable()
            self._obs_restored = True

    # ------------------------------- tracing -------------------------------- #
    def request_context(self, headers) -> "trace_context.TraceContext | None":
        """Per-request trace context: continue the client's, else mint one."""
        if not self._obs_enabled:
            return None
        ctx = trace_context.from_headers(headers)
        if ctx is None:
            ctx = trace_context.TraceContext(trace_context.new_trace_id())
        return ctx

    def _inflight_add(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta

    @property
    def in_flight(self) -> int:
        """HTTP requests currently being handled (all routes)."""
        with self._inflight_lock:
            return self._inflight

    def _stop_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    # ------------------------------ access log ------------------------------ #
    def access_log(self, method: str, path: str, status: int, ms: float,
                   trace_id: str | None = None) -> None:
        record = {
            "ts": time.time(), "event": "request", "method": method,
            "path": path, "status": status, "ms": round(ms, 3),
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        self._write_log(record)

    def access_log_event(self, event: str, **fields: Any) -> None:
        """Append a non-request event (e.g. per-job timing) to the log."""
        self._write_log({"ts": time.time(), "event": event, **fields})

    def _write_log(self, record: dict[str, Any]) -> None:
        if self._access_log_path is None:
            return
        line = json.dumps(record, sort_keys=True)
        with self._access_log_lock:
            try:
                with open(self._access_log_path, "a") as fh:
                    fh.write(line + "\n")
            except OSError:
                pass

    # ------------------------------- routing -------------------------------- #
    def dispatch(self, h: _Handler, method: str, path: str,
                 query: str = "") -> int:
        try:
            return self._dispatch(h, method, path, query)
        except Exception as e:  # never let a handler kill the connection thread
            return h._error(500, f"internal error: {type(e).__name__}: {e}")

    def _dispatch(self, h: _Handler, method: str, path: str,
                  query: str = "") -> int:
        if method == "GET":
            if path == "/healthz":
                payload = self.health()
                want_ready = parse_qs(query).get("ready", ["0"])[-1] == "1"
                status = 503 if want_ready and not payload["ready"] else 200
                return h._send(status, payload)
            if path == "/metrics":
                return h._send(
                    200, self.render_metrics().encode("utf-8"),
                    content_type=PROM_CONTENT_TYPE,
                )
            if path == "/v1/cache/stats":
                return h._send(200, self.cache_stats())
            if path == "/v1/jobs":
                return h._send(200, {"jobs": [j.to_dict() for j in self.queue.jobs()]})
            m = _JOB_PATH.match(path)
            if m:
                job = self.queue.get(m.group(1))
                if job is None:
                    return h._error(404, f"no such job {m.group(1)!r}")
                return h._send(200, job.to_dict())
            m = _ARTIFACT_PATH.match(path)
            if m:
                found = self.store.get(m.group(1))
                if found is None:
                    return h._error(404, f"no such artifact {m.group(1)!r}")
                payload, content_type = found
                return h._send(200, payload, content_type=content_type)
            return h._error(404, f"no such endpoint {method} {path}")

        if method == "POST" and path == "/v1/plans":
            return self._submit(h)
        return h._error(404, f"no such endpoint {method} {path}")

    def _submit(self, h: _Handler) -> int:
        try:
            length = int(h.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return h._error(400, "missing or invalid Content-Length")
        if length <= 0 or length > MAX_BODY_BYTES:
            return h._error(400, f"body must be 1..{MAX_BODY_BYTES} bytes, got {length}")
        try:
            data = json.loads(h.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            return h._error(400, f"body is not valid JSON: {e}")
        try:
            request = decode_plan_request(data)
        except RequestError as e:
            return h._error(400, str(e))
        try:
            # Snapshot the request's trace context (parented at the open
            # serve.request span) so worker threads/processes re-join it.
            job = self.queue.submit(request.to_dict(),
                                    trace=trace_context.snapshot())
        except QueueFull as e:
            return h._error(429, str(e), headers={"Retry-After": str(RETRY_AFTER_S)})
        except QueueClosed as e:
            return h._error(503, str(e))
        return h._send(202, {
            "job_id": job.id,
            "status_url": f"/v1/jobs/{job.id}",
            "job": job.to_dict(),
        })

    # ------------------------------- reports -------------------------------- #
    def health(self) -> dict[str, Any]:
        q = self.queue.stats()
        # Readiness (for load balancers): stop routing here while draining
        # or when the queue has no room left for a single new submission.
        ready = (not self._draining and not q["closed"]
                 and q["depth"] < q["max_depth"])
        return {
            "status": "draining" if self._draining else "ok",
            "ready": ready,
            "version": __version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue": q,
            "workers": self.pool.workers,
            "workers_busy": self.pool.busy,
            "in_flight": self.in_flight,
            "exec_mode": self.pool.mode,
            "slo": self.slo.summary(),
        }

    def render_metrics(self) -> str:
        """The obs registry in Prometheus text format, with live service
        gauges (queue depth, in-flight, utilization, cache hit rate, SLO
        percentiles) refreshed at scrape time."""
        if obs.enabled():
            reg = obs.registry()
            q = self.queue.stats()
            reg.gauge("serve.queue_depth").set(float(q["depth"]))
            reg.gauge("serve.queue_capacity").set(float(q["max_depth"]))
            reg.gauge("serve.in_flight").set(float(self.in_flight))
            busy = self.pool.busy
            reg.gauge("serve.workers_busy").set(float(busy))
            reg.gauge("serve.worker_utilization").set(
                busy / self.pool.workers if self.pool.workers else 0.0
            )
            done = [j for j in self.queue.jobs() if j.state == "done"]
            hits = sum(1 for j in done if j.summary.get("cache_hit"))
            reg.gauge("serve.cache_hit_rate").set(
                hits / len(done) if done else 0.0
            )
            reg.gauge("serve.ready").set(1.0 if self.health()["ready"] else 0.0)
            for route, s in self.slo.summary().items():
                if not s["count"]:
                    continue
                reg.gauge("serve.slo_requests", route=route).set(s["count"])
                reg.gauge("serve.slo_error_rate", route=route).set(
                    s["error_rate"]
                )
                for pname in ("p50_ms", "p95_ms", "p99_ms"):
                    reg.gauge(f"serve.slo_{pname}", route=route).set(s[pname])
        return render_prometheus()

    def cache_stats(self) -> dict[str, Any]:
        cache = self.cache
        jobs = self.queue.jobs()
        done = [j for j in jobs if j.state == "done"]
        return {
            # In fork mode the in-process hit/miss counters reflect only this
            # process; disk_entries/bytes are read from the shared tier and
            # the "served" block aggregates per-job hits across workers.
            "plan_cache": cache.stats() if cache is not None else None,
            "served": {
                "jobs_done": len(done),
                "cache_hits": sum(1 for j in done if j.summary.get("cache_hit")),
            },
            "artifacts": self.store.stats(),
            "queue": self.queue.stats(),
        }

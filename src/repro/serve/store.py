"""Content-addressed artifact store for served results.

Every artifact (result JSON, ``--explain`` report text, conformance
report) is stored under the SHA-256 hex digest of its payload bytes —
the same content-addressing discipline as the plan cache, so identical
results deduplicate across jobs (a warm cache hit re-serving the same
plan stores zero new bytes) and a digest fetched via
``GET /v1/artifacts/<digest>`` is immutable by construction.

Writes are atomic (temp file + rename into place), safe against
concurrent workers producing the same artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

#: kind -> (file suffix, HTTP content type)
_KINDS = {
    "json": (".json", "application/json"),
    "text": (".txt", "text/plain; charset=utf-8"),
}


class ArtifactStore:
    """Flat directory of ``<sha256>.<ext>`` artifacts."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------- write --------------------------------- #
    def put(self, payload: bytes | str, kind: str = "json") -> str:
        """Store one artifact; returns its content digest (idempotent)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown artifact kind {kind!r} (valid: {sorted(_KINDS)})")
        data = payload.encode("utf-8") if isinstance(payload, str) else payload
        digest = hashlib.sha256(data).hexdigest()
        suffix, _ = _KINDS[kind]
        path = self.directory / f"{digest}{suffix}"
        if path.exists():
            return digest
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".tmp-", suffix=suffix)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return digest

    def put_json(self, obj: Any) -> str:
        """Store a JSON-serializable object canonically (sorted keys)."""
        return self.put(json.dumps(obj, sort_keys=True), kind="json")

    # -------------------------------- read --------------------------------- #
    def get(self, digest: str) -> tuple[bytes, str] | None:
        """Return ``(payload, content_type)`` for a digest, or None."""
        if not _valid_digest(digest):
            return None
        for suffix, content_type in _KINDS.values():
            path = self.directory / f"{digest}{suffix}"
            try:
                return path.read_bytes(), content_type
            except OSError:
                continue
        return None

    def get_json(self, digest: str) -> Any | None:
        found = self.get(digest)
        if found is None:
            return None
        return json.loads(found[0].decode("utf-8"))

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    # ------------------------------- inventory ------------------------------ #
    def stats(self) -> dict[str, int]:
        count = 0
        total = 0
        for p in self.directory.iterdir():
            if p.name.startswith(".tmp-"):
                continue
            try:
                total += p.stat().st_size
            except OSError:
                continue
            count += 1
        return {"artifacts": count, "bytes": total}


def _valid_digest(digest: str) -> bool:
    """Hex-only digests; rejects path traversal in URL-supplied values."""
    return (
        isinstance(digest, str)
        and len(digest) == 64
        and all(c in "0123456789abcdef" for c in digest)
    )

"""Worker pool: executes queued plan requests through ``ForkPool``.

``N`` dispatcher threads each claim jobs from the :class:`JobQueue` and
run :func:`execute_request` through one shared
:class:`repro.perf.sweep.ForkPool` — the same fork-parallel machinery the
experiment sweeps use.  Fork workers inherit the parent's warm in-memory
plan-cache tier at pool creation; the shared *disk* tier (one directory
under the server's data dir) gives every worker process O(1) warm hits on
repeated/near-identical requests for the whole service lifetime, and
survives restarts.  Where process pools are unavailable (sandboxed CI, or
``exec_mode="inline"``), jobs run inline in the dispatcher threads — same
results, still concurrent across jobs up to the thread count.

:func:`execute_request` is a module-level function of picklable arguments
(the raw request dict plus cache configuration), returning a JSON-safe
response dict — exactly what crosses the process boundary and what the
server persists to the artifact store.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable

import repro.obs as obs
from repro.obs import context as trace_context

from repro.core.plancache import configure_default, default_cache
from repro.core.planner import plan_best
from repro.perf.sweep import ForkPool
from repro.serve.jobs import Job, JobQueue
from repro.serve.protocol import RequestError, decode_plan_request
from repro.serve.store import ArtifactStore

RESPONSE_SCHEMA = "plan-response-v1"


def _ensure_cache(cache_dir: str | None, max_disk_bytes: int | None):
    """Make the process-default plan cache point at the service tier.

    Idempotent: a fork worker that inherited an already-configured cache
    (including its warm in-memory tier) keeps it; a cold process (spawn
    pool, first inline call) attaches the disk tier itself.
    """
    cache = default_cache()
    want = str(cache_dir) if cache_dir is not None else None
    have = str(cache.directory) if cache is not None and cache.directory else None
    if cache is None or have != want:
        cache = configure_default(directory=cache_dir, max_disk_bytes=max_disk_bytes)
    return cache


def execute_request(
    request_data: dict[str, Any],
    cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
) -> dict[str, Any]:
    """Resolve and execute one plan request; returns the response dict.

    Runs in a pool worker process (or inline).  The response carries the
    serialized plan, the estimate decomposition, search counters, whether
    the plan cache served the search, the pure-execution wall time
    (``timing.exec_ms``), and — when requested — the ``--explain`` report
    text and the ``repro.check`` conformance report.
    """
    t_exec = time.perf_counter()
    with obs.span("serve.execute"):
        response = _execute(request_data, cache_dir, cache_max_bytes)
    response["timing"] = {
        "exec_ms": round((time.perf_counter() - t_exec) * 1e3, 3),
    }
    return response


def _execute(
    request_data: dict[str, Any],
    cache_dir: str | None,
    cache_max_bytes: int | None,
) -> dict[str, Any]:
    from repro.core.serialization import plan_to_dict
    from repro.obs.explain import explain_plan

    req = decode_plan_request(request_data)
    profile, cluster, gbs, cfg = req.resolve()
    cache = _ensure_cache(cache_dir, cache_max_bytes)
    hits_before = cache.hits if cache is not None else 0
    result = plan_best(profile, cluster, gbs, cfg, cache=cache)
    cache_hit = cache is not None and cache.hits > hits_before
    plan = result.plan
    est = result.estimate
    response: dict[str, Any] = {
        "schema": RESPONSE_SCHEMA,
        "request": req.to_dict(),
        "plan": plan_to_dict(plan),
        "notation": plan.notation,
        "split": plan.split_notation,
        "num_micro_batches": plan.num_micro_batches,
        "estimate": {
            "latency": est.latency,
            "warmup": est.warmup,
            "steady": est.steady,
            "ending": est.ending,
            "pivot": est.pivot,
            "acr": est.acr,
        },
        "counters": {
            "states_explored": result.states_explored,
            "plans_evaluated": result.plans_evaluated,
            "infeasible_plans": result.infeasible_plans,
        },
        "cache_hit": cache_hit,
    }
    if req.explain:
        response["explain"] = explain_plan(profile, cluster, result).report()
    if req.check:
        from repro.check.invariants import verify_execution
        from repro.runtime.memory import OutOfMemoryError

        try:
            report = verify_execution(profile, cluster, plan,
                                      schedule=req.schedule)
            response["check"] = {
                "ok": report.ok,
                "schedule": req.schedule,
                "invariants": list(report.checks),
                "violations": [str(v) for v in report.violations],
                "render": report.render(),
            }
        except OutOfMemoryError as e:
            response["check"] = {"ok": False, "skipped": "oom", "error": str(e)}
    return response


class WorkerPool:
    """Dispatcher threads draining a :class:`JobQueue` through a ForkPool."""

    def __init__(
        self,
        queue: JobQueue,
        store: ArtifactStore,
        *,
        workers: int = 2,
        exec_mode: str = "fork",
        cache_dir: str | None = None,
        cache_max_bytes: int | None = None,
        event_log: Callable[..., None] | None = None,
    ):
        if exec_mode not in ("fork", "inline"):
            raise ValueError(f"exec_mode must be 'fork' or 'inline', got {exec_mode!r}")
        self.queue = queue
        self.store = store
        self.workers = max(1, workers)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cache_max_bytes = cache_max_bytes
        self.pool = ForkPool(self.workers, inline=(exec_mode == "inline"))
        self._event_log = event_log
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._loop, name=f"serve-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]

    @property
    def mode(self) -> str:
        return self.pool.mode

    @property
    def busy(self) -> int:
        """Dispatcher threads currently executing a job (utilization)."""
        with self._busy_lock:
            return self._busy

    def _busy_add(self, delta: int) -> None:
        with self._busy_lock:
            self._busy += delta

    def start(self) -> None:
        for t in self._threads:
            t.start()

    # ------------------------------ job loop -------------------------------- #
    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=0.1)
            if job is None:
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        ctx = trace_context.TraceContext.from_dict(job.trace)
        queue_wait_ms = max(0.0, (job.started_at - job.submitted_at) * 1e3)
        self._busy_add(1)
        try:
            # Re-install the submitting request's trace context so the job
            # span (and everything ForkPool ships back from the worker
            # process) stays on the request's trace.
            with trace_context.use(ctx):
                self._run_job_traced(job, ctx, queue_wait_ms)
        finally:
            self._busy_add(-1)

    def _run_job_traced(self, job: Job, ctx, queue_wait_ms: float) -> None:
        with obs.span("serve.job", job=job.id) as jsp:
            if ctx is not None and jsp is not obs.NOOP_SPAN:
                # The time the job sat in the queue is only known once a
                # dispatcher claims it: record it retroactively as a
                # synthetic span under the job span.
                obs.tracer().add_span(
                    "serve.queue_wait", job.submitted_at, job.started_at,
                    trace_id=ctx.trace_id, parent_uid=jsp.uid,
                    attrs={"job": job.id},
                )
            obs.histogram("serve.queue_wait_ms").observe(queue_wait_ms)
            t_pool = time.perf_counter()
            try:
                response = self.pool.run(
                    execute_request, job.request, self.cache_dir, self.cache_max_bytes
                )
            except (RequestError, ValueError, KeyError, RuntimeError) as e:
                self._fail(job, ctx, f"{type(e).__name__}: {e}")
                return
            except Exception:
                self._fail(job, ctx, traceback.format_exc(limit=5))
                return
            pool_ms = (time.perf_counter() - t_pool) * 1e3
            exec_ms = (response.get("timing") or {}).get("exec_ms")
            timing: dict[str, Any] = {"queue_wait_ms": round(queue_wait_ms, 3)}
            if exec_ms is not None:
                timing["exec_ms"] = exec_ms
                # Pool dispatch overhead: wall time around the pool call
                # minus the worker-measured pure execution time.
                timing["dispatch_ms"] = round(max(0.0, pool_ms - exec_ms), 3)
                obs.histogram("serve.exec_ms").observe(exec_ms)
            # Clients see where time went via the stored response payload;
            # serialize_ms can't be in it (it is measured while storing the
            # payload) so the full split lives on the job summary below.
            response["timing"] = dict(timing)
            t_ser = time.perf_counter()
            artifacts = {"result": self.store.put_json(response)}
            if response.get("explain") is not None:
                artifacts["explain"] = self.store.put(response["explain"], kind="text")
            if response.get("check") is not None:
                artifacts["check"] = self.store.put_json(response["check"])
            serialize_ms = (time.perf_counter() - t_ser) * 1e3
            obs.histogram("serve.serialize_ms").observe(serialize_ms)
            timing["serialize_ms"] = round(serialize_ms, 3)
            timing["total_ms"] = round(
                queue_wait_ms + pool_ms + serialize_ms, 3
            )
            summary = {
                "notation": response["notation"],
                "split": response["split"],
                "num_micro_batches": response["num_micro_batches"],
                "latency": response["estimate"]["latency"],
                "cache_hit": response["cache_hit"],
                "timing": timing,
            }
            if response.get("check") is not None:
                summary["check_ok"] = response["check"].get("ok")
            if response["cache_hit"]:
                obs.counter("serve.cache_hit").inc()
            obs.counter("serve.jobs", outcome="done").inc()
            self.queue.finish(job, artifacts, summary)
            if self._event_log is not None:
                self._event_log(
                    "job", job_id=job.id, outcome="done",
                    trace_id=ctx.trace_id if ctx is not None else None,
                    **timing,
                )

    def _fail(self, job: Job, ctx, error: str) -> None:
        self.queue.fail(job, error)
        obs.counter("serve.jobs", outcome="failed").inc()
        if self._event_log is not None:
            self._event_log(
                "job", job_id=job.id, outcome="failed",
                trace_id=ctx.trace_id if ctx is not None else None,
                error=error.splitlines()[-1] if error else "",
            )

    # -------------------------------- stop ---------------------------------- #
    def drain(self, timeout: float | None = 30.0) -> bool:
        """Close intake, finish accepted jobs, stop threads. True if clean."""
        self.queue.close()
        idle = self.queue.wait_idle(timeout)
        self.stop()
        return idle

    def stop(self) -> None:
        """Stop dispatcher threads without waiting for queued jobs."""
        self._stop.set()
        for t in self._threads:
            if t.is_alive():
                t.join(timeout=5.0)
        self.pool.shutdown()

"""Discrete-event simulation substrate.

This package provides the execution engine underneath the DAPPLE runtime:
a deterministic list-scheduling simulator over a static task graph
(:mod:`repro.sim.engine`), resource bookkeeping (:mod:`repro.sim.resources`),
execution traces with per-device memory timelines (:mod:`repro.sim.trace`),
and a vectorized multi-scenario engine that simulates whole fault ensembles
in one pass (:mod:`repro.sim.batched`).

The simulator plays the role that the TensorFlow graph executor plays in the
paper: it runs operations as soon as their data/control dependencies are
satisfied and their resources (GPU streams, network links) are free.
"""

from repro.sim.batched import (
    BatchedSimulation,
    ScenarioView,
    run_batched,
    run_batched_graph,
)
from repro.sim.chrome_trace import export_chrome_trace, trace_to_events
from repro.sim.compiled import (
    ColumnarMemoryTimeline,
    ColumnarTrace,
    CompiledTaskGraph,
    compile_graph,
    run_compiled,
)
from repro.sim.engine import ENGINES, Op, TaskGraph, Simulator, SimulationResult
from repro.sim.resources import Resource, ResourcePool
from repro.sim.trace import Trace, TraceEvent, MemoryTimeline

__all__ = [
    "Op",
    "TaskGraph",
    "Simulator",
    "SimulationResult",
    "ENGINES",
    "CompiledTaskGraph",
    "ColumnarTrace",
    "ColumnarMemoryTimeline",
    "compile_graph",
    "run_compiled",
    "BatchedSimulation",
    "ScenarioView",
    "run_batched",
    "run_batched_graph",
    "Resource",
    "ResourcePool",
    "Trace",
    "TraceEvent",
    "MemoryTimeline",
    "export_chrome_trace",
    "trace_to_events",
]

"""Batched multi-scenario simulation: one compiled graph, S duration rows.

Monte-Carlo fault ensembles (:mod:`repro.faults`) simulate the *same* task
graph many times, varying only the duration column — the structure
(dependencies, resources, priorities, memory effects) is fixed per plan.
The per-seed path pays the full cost every time: rebuild the graph, re-intern
resources, re-run the event loop from t=0.  :func:`run_batched` instead
compiles the graph once and advances every scenario through shared loop
state:

* **Scenario-major layout** — durations arrive as one ``(S, ops)`` float64
  matrix; row ``s`` is scenario ``s``'s duration column.  All structural
  columns (adjacency, resource slots, priorities, memory effects, the
  pre-sorted root set) are derived once from the
  :class:`~repro.sim.compiled.CompiledTaskGraph` and reused by every row, as
  are the per-resource waiter heaps and busy flags (both drain back to empty
  when a scenario completes, so reuse is free).
* **Row dedup** — scenarios whose duration rows are bytewise identical share
  one simulation (common when a fault model's draw misses the graph).
* **Incremental re-simulation** — while simulating the baseline row the
  runner snapshots its full dispatch state at a few op-count milestones
  (snapshots are only taken at dispatch-pass boundaries, where the fresh
  list and candidate heap are both empty, so the saved state is complete).
  A later scenario that differs from the baseline only in ops that start
  *after* a snapshot's clock replays from that snapshot instead of t=0:
  durations only influence the simulation from the moment a changed op is
  dispatched, so every event up to the snapshot is bit-identical to the
  baseline's and its trace prefix can be sliced instead of recomputed.
  Scenarios that perturb early ops fall back to a full per-scenario run —
  same results, no savings.

The event loop body is the compiled engine's (same (priority, submission
seq) dispatch order, same completion-calendar drain), so per-scenario
makespans, traces, and memory timelines are **bit-identical** to running
:func:`repro.sim.compiled.run_compiled` on a graph rebuilt with that row —
enforced by ``tests/sim/test_batched_equivalence.py`` and the
``repro check`` oracles.

Observability is pre-aggregated: the loop appends per-timestamp completion
batch sizes and waiter depths (an O(1) incremental counter, not an O(R)
scan) to plain lists shared across the whole batch, and records them with
one bulk :meth:`~repro.obs.metrics.Histogram.observe_many` call per batch —
this is what brings obs-enabled simulation overhead under 20%.
"""

from __future__ import annotations

import gc
import heapq

import numpy as np

import repro.obs as obs
from repro.sim.compiled import (
    ColumnarMemoryTimeline,
    ColumnarTrace,
    CompiledTaskGraph,
    compile_graph,
)
from repro.sim.trace import PHASE_END, PHASE_START

__all__ = [
    "run_batched",
    "BatchedSimulation",
    "ScenarioView",
    "DEFAULT_SNAPSHOTS",
]

#: Dispatch-state snapshots taken along the baseline scenario for the
#: incremental fast path.
DEFAULT_SNAPSHOTS = 8

#: Below this op count a full re-run is cheaper than snapshot bookkeeping.
_INCREMENTAL_MIN_OPS = 512

#: Histogram buckets shared with the compiled engine (same metric names, so
#: summaries unify across engines).
_WAITER_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128)
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class _Snapshot:
    """Complete dispatch state at one pass boundary of the baseline run.

    Captured only where the fresh list and candidate heap are both empty, so
    (busy, waiters, pred_left, completion calendar, clock, seq counter) plus
    the trace/memory prefix lengths fully determine the rest of the run.
    """

    __slots__ = (
        "now", "busy", "waiters", "pred_left", "bucket", "times",
        "seq", "olen", "mlen", "parked",
    )

    def __init__(self, now, busy, waiters, pred_left, bucket, times,
                 seq, olen, mlen, parked):
        self.now = now
        self.busy = busy
        self.waiters = waiters
        self.pred_left = pred_left
        self.bucket = bucket
        self.times = times
        self.seq = seq
        self.olen = olen
        self.mlen = mlen
        self.parked = parked


class _BatchRunner:
    """Shared per-graph loop state, reused across scenario rows.

    Busy flags and waiter heaps are owned by the runner: both are empty
    again after every successful run (every op completes, every parked op is
    eventually promoted), so consecutive scenarios pay zero re-allocation.
    A failed run (cycle/deadlock) leaves them dirty — the exception aborts
    the whole batch, so the runner is never reused after one.
    """

    def __init__(self, cg: CompiledTaskGraph, record_memory: bool, track: bool):
        self.cg = cg
        n = cg.num_ops
        prio = cg.priorities.tolist()
        self.prio = prio
        self.succ = cg._succ_lists
        self.res = cg._res_lists
        self.record_memory = record_memory
        if record_memory:
            self.mem_start = cg.mem_start
            self.mem_end = cg.mem_end
        else:
            # All-empty effect columns: the loop's ``if ms:`` guards never
            # fire, so skipping memory costs nothing extra per op.
            self.mem_start = self.mem_end = [()] * n
        self.pred0 = list(cg._pred_list)
        self.busy = [False] * cg.num_resources
        self.waiters: list[list] = [[] for _ in range(cg.num_resources)]
        # Roots carry the same (priority, seq, id) tuples the compiled loop
        # would build — seq assigned in graph order — pre-sorted once.
        roots = []
        seq = 0
        for i in range(n):
            if not self.pred0[i]:
                roots.append((prio[i], seq, i))
                seq += 1
        roots.sort()
        self.roots = roots
        self.root_seq = seq
        # Per-batch obs pre-aggregation (bulk-recorded by run_batched).
        self.batch_sizes: list | None = [] if track else None
        self.depths: list | None = [] if track else None

    def run(self, dur, thresholds=None, resume=None, base=None):
        """Simulate one duration row; returns (order, ends, mem, snapshots).

        ``thresholds`` (op-count milestones) requests snapshots along this
        run; ``resume`` replays from a prior run's snapshot, with ``base``
        supplying the (order, ends, mem) columns to slice the prefix from.
        """
        cg = self.cg
        n = cg.num_ops
        prio = self.prio
        succ = self.succ
        res = self.res
        mem_start = self.mem_start
        mem_end = self.mem_end
        busy = self.busy
        waiters = self.waiters
        heappush = heapq.heappush
        heappop = heapq.heappop
        P_START = PHASE_START
        P_END = PHASE_END
        batch_sizes = self.batch_sizes
        depths = self.depths
        track = depths is not None

        if resume is None:
            pred_left = self.pred0[:]
            order_col: list[int] = []
            ends_col: list[float] = []
            mem_rows: list[tuple] = []
            fresh = self.roots[:]
            seq = self.root_seq
            run_bucket: dict = {}
            run_times: list[float] = []
            now = 0.0
            parked = 0
        else:
            base_order, base_ends, base_mem = base
            pred_left = resume.pred_left[:]
            order_col = base_order[:resume.olen]
            ends_col = base_ends[:resume.olen]
            mem_rows = base_mem[:resume.mlen] if self.record_memory else []
            busy[:] = resume.busy
            for r, w in enumerate(resume.waiters):
                if w:
                    waiters[r][:] = w
            fresh = []
            seq = resume.seq
            run_bucket = {t: b[:] for t, b in resume.bucket.items()}
            run_times = resume.times[:]
            now = resume.now
            parked = resume.parked

        add_ord = order_col.append
        add_end = ends_col.append
        add_mem = mem_rows.append
        add_fresh = fresh.append
        cand: list = []
        get_bucket = run_bucket.get
        snaps: list[_Snapshot] = []
        ti = 0

        while True:
            # Dispatch pass — identical to the compiled engine's: start
            # candidates in (priority, seq) order, park blocked ones on the
            # first busy resource they need.
            fn = len(fresh)
            if fn > 1:
                fresh.sort()
            fi = 0
            while True:
                if fi < fn:
                    f = fresh[fi]
                    if cand:
                        c0 = cand[0]
                        fp = f[0]
                        if c0[0] < fp or (c0[0] == fp and c0[1] < f[1]):
                            pr, sq, i, src = heappop(cand)
                        else:
                            pr, sq, i = f
                            src = -1
                            fi += 1
                    else:
                        pr, sq, i = f
                        src = -1
                        fi += 1
                elif cand:
                    pr, sq, i, src = heappop(cand)
                else:
                    break
                rs = res[i]
                if type(rs) is int:
                    if busy[rs]:
                        heappush(waiters[rs], (pr, sq, i))
                        parked += 1
                        if src >= 0 and not busy[src]:
                            w = waiters[src]
                            if w:
                                wp, ws, wi = heappop(w)
                                parked -= 1
                                heappush(cand, (wp, ws, wi, src))
                        continue
                    busy[rs] = True
                elif rs is not None:
                    r_blocked = -1
                    for r in rs:
                        if busy[r]:
                            r_blocked = r
                            break
                    if r_blocked >= 0:
                        heappush(waiters[r_blocked], (pr, sq, i))
                        parked += 1
                        if src >= 0 and not busy[src]:
                            w = waiters[src]
                            if w:
                                wp, ws, wi = heappop(w)
                                parked -= 1
                                heappush(cand, (wp, ws, wi, src))
                        continue
                    for r in rs:
                        busy[r] = True
                ms = mem_start[i]
                if ms:
                    add_mem((now, P_START, ms))
                end = now + dur[i]
                b = get_bucket(end)
                if b is None:
                    run_bucket[end] = [(sq, i)]
                    heappush(run_times, end)
                else:
                    b.append((sq, i))
            del fresh[:]

            if thresholds is not None and ti < len(thresholds):
                oc = len(order_col)
                if oc >= thresholds[ti]:
                    if oc < n:
                        snaps.append(_Snapshot(
                            now, busy[:], [w[:] for w in waiters],
                            pred_left[:],
                            {t: b[:] for t, b in run_bucket.items()},
                            run_times[:], seq, oc, len(mem_rows), parked,
                        ))
                    while ti < len(thresholds) and thresholds[ti] <= oc:
                        ti += 1

            if not run_times:
                break
            now = heappop(run_times)
            batch = run_bucket.pop(now)
            if track:
                # Pre-aggregate per distinct timestamp: the waiter depth is
                # an incrementally-maintained counter, not an O(R) scan, and
                # both series are histogram-recorded in bulk after the batch.
                batch_sizes.append(len(batch))
                depths.append(parked)
            batch.sort()
            for sq, i in batch:
                rs = res[i]
                if type(rs) is int:
                    busy[rs] = False
                    w = waiters[rs]
                    if w:
                        wp, ws, wi = heappop(w)
                        parked -= 1
                        heappush(cand, (wp, ws, wi, rs))
                elif rs is not None:
                    for r in rs:
                        busy[r] = False
                        w = waiters[r]
                        if w:
                            wp, ws, wi = heappop(w)
                            parked -= 1
                            heappush(cand, (wp, ws, wi, r))
                me = mem_end[i]
                if me:
                    add_mem((now, P_END, me))
                add_ord(i)
                add_end(now)
                for s in succ[i]:
                    c = pred_left[s] - 1
                    pred_left[s] = c
                    if not c:
                        add_fresh((prio[s], seq, s))
                        seq += 1

        if len(order_col) != n:
            # Cold path — same diagnostics as the compiled engine.
            indeg = list(self.pred0)
            queue = [i for i, d in enumerate(indeg) if not d]
            seen = 0
            while queue:
                u = queue.pop()
                seen += 1
                for v in succ[u]:
                    c = indeg[v] - 1
                    indeg[v] = c
                    if not c:
                        queue.append(v)
            if seen != n:
                raise ValueError("task graph contains a dependency cycle")
            stuck = [cg.ops[i].name for i in range(n) if pred_left[i] > 0]
            raise RuntimeError(
                f"simulation deadlocked: {n - len(order_col)} ops never ran "
                f"(first few blocked: {stuck[:5]})"
            )
        return order_col, ends_col, mem_rows, snaps


class ScenarioView:
    """Vectorized read-only view of one scenario's schedule.

    Exposes per-op start/end arrays and per-resource busy totals / op
    sequences that are bit-identical to what :class:`~repro.sim.trace.Trace`
    derives event-by-event (enforced by the batched-equivalence tests):

    * starts are ``end - duration`` elementwise — the same float expression
      the trace evaluates per event;
    * per-resource busy totals accumulate event widths with ``np.add.at`` in
      ``by_resource`` order ((start, end)-sorted, stable over completion
      order), which applies additions sequentially and therefore reproduces
      ``Trace.busy_time``'s left-to-right sum bit-for-bit (``reduceat``-style
      pairwise reduction would not);
    * :meth:`resource_sequence` is ``by_resource`` as op ids, backing the
      critical-path walk in :mod:`repro.faults.analysis`.
    """

    def __init__(self, compiled: CompiledTaskGraph, order, ends, durations):
        self.compiled = compiled
        n = compiled.num_ops
        order_arr = np.asarray(order, dtype=np.int64)
        ends_arr = np.asarray(ends, dtype=np.float64)
        dur = np.asarray(durations, dtype=np.float64)
        end_by_op = np.empty(n, dtype=np.float64)
        end_by_op[order_arr] = ends_arr
        pos = np.empty(n, dtype=np.int64)
        pos[order_arr] = np.arange(n, dtype=np.int64)
        self.order = order_arr
        self.end_by_op = end_by_op
        self.start_by_op = end_by_op - dur
        self.pos_by_op = pos
        self._sorted: tuple | None = None
        self._busy: np.ndarray | None = None
        self._seq_cache: dict = {}
        self._seq_pos: dict = {}

    def _sorted_incidence(self) -> tuple:
        """(op ids, resource slots) of every event×resource entry, sorted by
        (resource, start, end, completion order) — by_resource order, all
        resources concatenated."""
        if self._sorted is None:
            ops_e, res_e = self.compiled.res_incidence
            idx = np.lexsort((
                self.pos_by_op[ops_e],
                self.end_by_op[ops_e],
                self.start_by_op[ops_e],
                res_e,
            ))
            self._sorted = (ops_e[idx], res_e[idx])
        return self._sorted

    def busy_by_slot(self) -> np.ndarray:
        """Per-resource-slot total busy time (see class docstring)."""
        if self._busy is None:
            cg = self.compiled
            busy = np.zeros(cg.num_resources, dtype=np.float64)
            if cg.num_ops:
                ops_s, res_s = self._sorted_incidence()
                widths = self.end_by_op - self.start_by_op
                np.add.at(busy, res_s, widths[ops_s])
            self._busy = busy
        return self._busy

    def busy_time(self, key) -> float:
        """``Trace.busy_time(key)``, bit-identical (0.0 for unknown keys)."""
        slot = self.compiled.slot_of.get(key)
        if slot is None:
            return 0.0
        return float(self.busy_by_slot()[slot])

    def resource_sequence(self, slot: int) -> np.ndarray:
        """Op ids that occupied resource ``slot``, in ``by_resource`` order."""
        seq = self._seq_cache.get(slot)
        if seq is None:
            ops_s, res_s = self._sorted_incidence()
            lo = np.searchsorted(res_s, slot, side="left")
            hi = np.searchsorted(res_s, slot, side="right")
            seq = ops_s[lo:hi]
            self._seq_cache[slot] = seq
        return seq

    def resource_index(self, slot: int) -> dict:
        """op id → position within :meth:`resource_sequence`."""
        m = self._seq_pos.get(slot)
        if m is None:
            m = {int(o): k for k, o in enumerate(self.resource_sequence(slot))}
            self._seq_pos[slot] = m
        return m


class BatchedSimulation:
    """Results of one :func:`run_batched` call over S scenarios.

    Holds the shared compiled graph, the duration matrix, and per-scenario
    columnar (order, ends, memory) buffers — deduplicated scenarios alias
    the same buffers.  Full :class:`~repro.sim.engine.SimulationResult`
    objects and :class:`ScenarioView` analysis views materialize lazily.
    """

    def __init__(self, compiled, durations, orders, ends, mems, kinds):
        self.compiled = compiled
        #: The (S, ops) duration matrix actually simulated.
        self.durations = durations
        self._orders = orders
        self._ends = ends
        self._mems = mems
        #: Per-scenario provenance: "full", "reused", or "incremental".
        self.scenario_kinds = kinds
        #: Scenario makespans, index-aligned with the input rows.
        self.makespans = np.array(
            [e[-1] if e else 0.0 for e in ends], dtype=np.float64
        )
        self._views: dict[int, ScenarioView] = {}

    @property
    def num_scenarios(self) -> int:
        return len(self._orders)

    def makespan(self, s: int) -> float:
        """Scenario ``s``'s makespan as the native python float the per-seed
        path would report."""
        ends = self._ends[s]
        return ends[-1] if ends else 0.0

    def result(self, s: int):
        """Materialize scenario ``s`` as a full SimulationResult."""
        from repro.sim.engine import SimulationResult

        if self._mems is None:
            raise RuntimeError(
                "run_batched(record_memory=False) keeps no memory timelines; "
                "use view()/makespan() or re-run with record_memory=True"
            )
        trace = ColumnarTrace(
            self.compiled, self._orders[s], self._ends[s],
            durations=self.durations[s],
        )
        memory = ColumnarMemoryTimeline(self.compiled.device_keys, self._mems[s])
        return SimulationResult(
            makespan=trace.makespan(), trace=trace, memory=memory
        )

    def view(self, s: int) -> ScenarioView:
        """Analysis view of scenario ``s``; deduplicated scenarios share one
        view (and therefore its lazily-computed derived arrays)."""
        key = id(self._ends[s])
        v = self._views.get(key)
        if v is None:
            v = ScenarioView(
                self.compiled, self._orders[s], self._ends[s],
                self.durations[s],
            )
            self._views[key] = v
        return v


def run_batched(
    cg: CompiledTaskGraph,
    durations,
    *,
    record_memory: bool = True,
    snapshots: int = DEFAULT_SNAPSHOTS,
) -> BatchedSimulation:
    """Simulate every row of a ``(S, ops)`` duration matrix over one graph.

    Row 0 is the *baseline*: it always runs in full and anchors both the
    dedup table and the incremental fast path (callers stacking perturbed
    rows under the clean duration column get maximal prefix sharing for
    free).  ``snapshots`` bounds how many dispatch-state snapshots the
    baseline records (0 disables the incremental path); ``record_memory=False``
    skips memory-timeline collection for analysis-only ensembles.

    Every scenario's (order, ends, memory) output is bit-identical to
    :func:`~repro.sim.compiled.run_compiled` on a graph rebuilt with that
    row's durations.
    """
    rows = np.asarray(durations, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError(
            f"durations must be a (scenarios, ops) matrix, got shape {rows.shape}"
        )
    S, n = rows.shape
    if n != cg.num_ops:
        raise ValueError(
            f"duration matrix has {n} columns for {cg.num_ops} ops"
        )
    if S == 0:
        raise ValueError("need at least one scenario row")
    if n and float(rows.min()) < 0:
        s, i = np.unravel_index(int(rows.argmin()), rows.shape)
        raise ValueError(
            f"perturbed duration for op {cg.ops[int(i)].name!r} is negative "
            f"({rows[s, i]}) in scenario {s}"
        )
    track = obs.enabled()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with obs.span("sim.run_batched", scenarios=S, ops=n):
            sim = _run_batch(cg, rows, record_memory, snapshots, track)
    finally:
        if gc_was_enabled:
            gc.enable()
    if track:
        _record_batch_metrics(sim)
    return sim


def _run_batch(cg, rows, record_memory, snapshots, track) -> BatchedSimulation:
    n = cg.num_ops
    S = rows.shape[0]
    runner = _BatchRunner(cg, record_memory, track)

    thresholds = None
    if snapshots and S > 1 and n >= _INCREMENTAL_MIN_OPS:
        step = n // (snapshots + 1)
        if step > 0:
            thresholds = [step * k for k in range(1, snapshots + 1)]

    base_row = rows[0]
    order0, ends0, mem0, snaps = runner.run(
        base_row.tolist(), thresholds=thresholds
    )
    orders = [order0]
    ends = [ends0]
    mems = [mem0]
    kinds = ["full"]
    seen = {base_row.tobytes(): 0}

    start0 = None
    if S > 1 and snaps:
        # Baseline per-op start times gate snapshot validity: a snapshot at
        # clock t is replayable for a scenario iff every changed op starts
        # strictly after t in the baseline (so nothing divergent was
        # dispatched at or before the snapshot).
        order_arr = np.asarray(order0, dtype=np.int64)
        start0 = np.empty(n, dtype=np.float64)
        start0[order_arr] = np.asarray(ends0) - base_row[order_arr]

    for s in range(1, S):
        row = rows[s]
        key = row.tobytes()
        hit = seen.get(key)
        if hit is not None:
            orders.append(orders[hit])
            ends.append(ends[hit])
            mems.append(mems[hit])
            kinds.append("reused")
            continue
        snap = None
        if start0 is not None:
            changed = np.flatnonzero(row != base_row)
            if changed.size:
                t_star = float(start0[changed].min())
                for cs in reversed(snaps):
                    if cs.now < t_star:
                        snap = cs
                        break
        if snap is not None:
            o, e, m, _ = runner.run(
                row.tolist(), resume=snap, base=(order0, ends0, mem0)
            )
            kinds.append("incremental")
        else:
            o, e, m, _ = runner.run(row.tolist())
            kinds.append("full")
        seen[key] = s
        orders.append(o)
        ends.append(e)
        mems.append(m)

    if track:
        # One bulk histogram call per series for the whole batch — the loop
        # itself only did list appends.
        obs.histogram(
            "sim.waiter_depth", buckets=_WAITER_BUCKETS
        ).observe_many(runner.depths)
        obs.histogram(
            "sim.completion_batch", buckets=_BATCH_BUCKETS
        ).observe_many(runner.batch_sizes)

    return BatchedSimulation(
        cg, rows, orders, ends, mems if record_memory else None, tuple(kinds),
    )


def _record_batch_metrics(sim: BatchedSimulation) -> None:
    """Publish per-batch scenario provenance counters (obs enabled only)."""
    kinds = sim.scenario_kinds
    obs.counter("sim.batched_scenarios").inc(len(kinds))
    obs.counter("sim.batched_reused").inc(kinds.count("reused"))
    obs.counter("sim.batched_incremental").inc(kinds.count("incremental"))


def run_batched_graph(graph, durations=None, **kwargs) -> BatchedSimulation:
    """Convenience wrapper: compile ``graph`` and run its own durations
    (plus any extra rows) batched.  ``durations=None`` runs the single
    unperturbed row."""
    cg = compile_graph(graph)
    if durations is None:
        durations = cg.durations[None, :]
    return run_batched(cg, durations, **kwargs)

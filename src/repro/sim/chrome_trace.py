"""Export simulation traces to Chrome trace-event JSON.

Open the resulting file in ``chrome://tracing`` or https://ui.perfetto.dev
to inspect a simulated training iteration interactively — one row per GPU /
NIC / collective channel, one slice per op, with stage and micro-batch ids
attached as arguments.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.trace import Trace

#: Stable color names of the Chrome trace-viewer palette per op kind.
_COLORS = {
    "F": "thread_state_running",
    "B": "thread_state_runnable",
    "send": "rail_response",
    "sendback": "rail_animation",
    "AR": "detailed_memory_dump",
}


def _row_key(resource: str) -> tuple[int, str]:
    """Sort GPUs numerically first, then links/collectives.

    GPU ids are usually small integers (``gpu:3``) and sort numerically,
    but nothing in the simulator requires numeric ids — non-numeric ones
    (``gpu:a0``) sort lexicographically after the numeric block instead of
    crashing the export.
    """
    text = str(resource)
    if text.startswith("gpu:"):
        suffix = text.split(":", 1)[1]
        try:
            return (0, f"{int(suffix):06d}")
        except ValueError:
            # "~" sorts after every digit, keeping numeric ids first.
            return (0, f"~{suffix}")
    return (1, text)


def trace_to_events(trace: Trace, time_scale: float = 1e6) -> list[dict]:
    """Convert a trace into Chrome 'X' (complete) events, one per op-resource.

    ``time_scale`` converts seconds to the viewer's microseconds.  Rows are
    streamed via :meth:`~repro.sim.trace.Trace.iter_rows`, so a columnar
    trace is exported without materializing per-event objects, and each
    emitted dict is built exactly once — ``args`` aliases the op's tags
    mapping rather than copying it, so treat the result as read-only.
    """
    spans = list(trace.iter_rows())
    rows = sorted({r for _n, _s, _e, res, _t in spans for r in res}, key=_row_key)
    tid_of = {r: i for i, r in enumerate(rows)}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": str(resource)},
        }
        for resource, tid in tid_of.items()
    ]
    for name, start, end, resources, tags in spans:
        kind = tags.get("kind", "?")
        ts = start * time_scale
        dur = max((end - start) * time_scale, 0.01)
        cname = _COLORS.get(kind)
        for r in resources:
            events.append(
                {
                    "name": name,
                    "cat": kind,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid_of[r],
                    "ts": ts,
                    "dur": dur,
                    "cname": cname,
                    "args": tags,
                }
            )
    return events


def export_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` as a Chrome trace-event JSON file."""
    path = Path(path)
    payload = {"traceEvents": trace_to_events(trace), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path

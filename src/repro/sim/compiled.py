"""Compiled simulator core: indexed task graphs + waiter-queue dispatch.

:func:`compile_graph` presents a :class:`~repro.sim.engine.TaskGraph` as a
:class:`CompiledTaskGraph`: integer op ids in submission order, CSR-style
successor/predecessor arrays, resource keys and memory-effect devices
interned to dense slots, and durations/priorities/memory deltas as numpy
columns (materialized lazily — the event loop itself runs on plain-python
views, which are several times faster to index one element at a time).
The underlying columns are maintained incrementally by ``TaskGraph.add`` /
``add_dep``, so compilation is an O(1) wrap, not a per-op pass.
:func:`run_compiled` then executes the lowered graph with an event loop
that keeps a *waiter heap per resource slot*: an op found blocked at
dispatch time parks on the first busy resource it needs, and a completion
event only promotes the best waiter of each resource it just freed (plus
newly-woken successors) — unlike the reference engine in
:mod:`repro.sim.engine`, which drains and re-pushes its entire ready heap
on every completion (O(ready set) per event, quadratic under contention).

The dispatch invariant that makes the waiter heaps *exact* (not merely a
heuristic) is:

* within one dispatch pass resources are only acquired, never released, so
  an op blocked before the pass on a resource that was not freed by this
  event cannot possibly start during it;
* a parked op's registered resource is busy at registration time, so the op
  cannot become runnable before that resource is freed;
* at most one waiter per *free* resource sits in the candidate heap at a
  time, and it is always that queue's (priority, seq) minimum: when a
  resource is freed its best waiter is promoted, and whenever a promoted
  candidate parks on a *different* resource while its source is still free,
  the source's next-best waiter is promoted in its place.  A queue stops
  being drained only when its resource is re-acquired (nobody else parked
  there could start anyway) or the queue empties — so every op the
  reference greedy pass would start is considered, in the same order.

Candidates are ordered by the same ``(priority, submission-seq)`` key as the
reference ready heap, and the submission sequence is assigned at the same
points (graph order for roots, wake order for successors), so event order,
makespans, and memory timelines are **bit-identical** to the reference
engine — enforced by ``tests/sim/test_compiled_equivalence.py``.

Traces and memory deltas are recorded into columnar buffers;
:class:`ColumnarTrace` / :class:`ColumnarMemoryTimeline` materialize the
classic :class:`~repro.sim.trace.TraceEvent` objects and per-device delta
lists lazily, on first access.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import operator
from functools import cached_property

import numpy as np

from repro.sim.trace import (
    MemoryTimeline,
    Trace,
    TraceEvent,
    PHASE_END,
    PHASE_START,
)

class CompiledTaskGraph:
    """A :class:`~repro.sim.engine.TaskGraph` lowered to dense indices.

    The canonical storage is plain-python columns (lists indexed by op id,
    adjacency as tuples of int ids) because the event loop interprets them
    element-wise; the numpy views (``durations``, ``priorities``,
    ``pred_count``, and the CSR pairs) are cached properties materialized
    on first access for vectorized analyses and the columnar trace.
    """

    def __init__(self, ops, succ_lists, res_lists, pred_count, resource_keys,
                 device_keys, mem_start, mem_end, id_of,
                 durations=None, priorities=None, res_flat=None):
        #: Original Op objects in id order (id = submission order); names,
        #: tags, and resource-key tuples are read from here when trace rows
        #: are lazily materialized.
        self.ops = ops
        self.id_of = id_of
        self.resource_keys = resource_keys
        self.device_keys = device_keys
        #: Per-op start/end memory effects as tuples of (device_slot, delta).
        self.mem_start = mem_start
        self.mem_end = mem_end
        self._dur_list = (
            [op.duration for op in ops] if durations is None else durations
        )
        self._prio_list = (
            [op.priority for op in ops] if priorities is None else priorities
        )
        self._succ_lists = succ_lists
        self._res_lists = res_lists
        self._pred_list = pred_count
        #: Optional pre-flattened (op ids, resource slots) incidence columns
        #: maintained incrementally by the graph (same op-major order the
        #: CSR expansion would produce); ``res_incidence`` wraps them
        #: directly instead of rebuilding the CSR on the first query.
        self._res_flat = res_flat

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def num_resources(self) -> int:
        return len(self.resource_keys)

    @cached_property
    def durations(self) -> np.ndarray:
        return np.array(self._dur_list, dtype=np.float64)

    @cached_property
    def priorities(self) -> np.ndarray:
        return np.array(self._prio_list, dtype=np.float64)

    @cached_property
    def pred_count(self) -> np.ndarray:
        return np.array(self._pred_list, dtype=np.int64)

    @cached_property
    def succ_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency: successors of op ``i`` live at
        ``indices[indptr[i]:indptr[i+1]]``."""
        return _to_csr(self._succ_lists)

    @cached_property
    def res_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR op→resource-slot incidence (same layout as :attr:`succ_csr`)."""
        # The resource column is shape-specialized (None / int / tuple) for
        # the event loop; normalize to tuples for CSR packing.
        return _to_csr([
            () if rs is None else (rs,) if type(rs) is int else rs
            for rs in self._res_lists
        ])

    @cached_property
    def res_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened op×resource incidence: parallel (op id, resource slot)
        arrays, op-major with each op's slots in declaration order — the
        expansion batched analyses sort per scenario."""
        if self._res_flat is not None:
            ops_l, slots_l = self._res_flat
            return (
                np.array(ops_l, dtype=np.int64),
                np.array(slots_l, dtype=np.int64),
            )
        indptr, indices = self.res_csr
        ops_e = np.repeat(
            np.arange(self.num_ops, dtype=np.int64), np.diff(indptr)
        )
        return ops_e, indices

    @cached_property
    def slot_of(self) -> dict:
        """Resource key → dense slot (inverse of :attr:`resource_keys`)."""
        return {k: i for i, k in enumerate(self.resource_keys)}

    @cached_property
    def pred_lists(self) -> list[list[int]]:
        """Predecessors of each op, in predecessor-submission order (the
        iteration order the critical-path walk in :mod:`repro.faults`
        tie-breaks on)."""
        preds: list[list[int]] = [[] for _ in range(self.num_ops)]
        for i, succs in enumerate(self._succ_lists):
            for j in succs:
                preds[j].append(i)
        return preds


def _to_csr(lists) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list of index tuples into (indptr, indices) CSR arrays."""
    indptr = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum([len(x) for x in lists], out=indptr[1:])
    indices = np.fromiter(
        (i for xs in lists for i in xs), dtype=np.int64, count=int(indptr[-1])
    )
    return indptr, indices


def compile_graph(graph) -> CompiledTaskGraph:
    """Wrap ``graph``'s indexed columns as a :class:`CompiledTaskGraph`.

    The columns themselves (op ids, int adjacency, interned resource and
    device slots, duration/priority/memory-effect columns) are maintained
    *incrementally* by :meth:`~repro.sim.engine.TaskGraph.add` and
    ``add_dep``, so this is an O(1) view construction rather than a per-op
    lowering pass.  The view aliases the live graph: compile after the
    graph is fully built, and don't mutate the graph between compiling and
    running.
    """
    return CompiledTaskGraph(
        list(graph._ops.values()),
        graph._succ_ids,
        graph._res_col,
        graph._pred_n,
        graph._res_keys,
        graph._dev_keys,
        graph._mem_start_col,
        graph._mem_end_col,
        graph._id_of,
        graph._dur_col,
        graph._prio_col,
        res_flat=(graph._res_flat_ops, graph._res_flat_slots),
    )


class ColumnarTrace(Trace):
    """A :class:`~repro.sim.trace.Trace` backed by columnar buffers.

    Event rows arrive as two parallel columns — op id and end time, in
    completion order, one plain append each in the hot loop; the ``starts``
    column is derived as ``end - duration`` (numpy, elementwise) — exactly
    the expression the reference engine evaluates per event.
    :class:`~repro.sim.trace.TraceEvent` objects are materialized lazily,
    on first access of :attr:`events` or per row from :meth:`find`, which
    answers from the compiled name index in O(1) instead of scanning.
    :meth:`by_resource` reuses the base class's lazily-built per-resource
    index.
    """

    def __init__(self, compiled: CompiledTaskGraph, order, ends,
                 durations=None) -> None:
        # Deliberately does not call Trace.__init__: ``events`` is a lazy
        # property here, not an eagerly-filled list.
        self._compiled = compiled
        self._order = order
        self._ends_list = ends
        # Per-scenario duration override (batched engine): the compiled
        # graph's column describes the clean graph, not the row simulated.
        self._durations = durations
        self._events: list[TraceEvent] | None = None
        self._event_cache: dict[int, TraceEvent] = {}
        self._op_to_event: dict[int, int] | None = None
        self._starts: list[float] | None = None
        # Completion times are emitted in non-decreasing order, so the
        # makespan is simply the last row's end.
        self._makespan = ends[-1] if ends else 0.0
        self._name_idx = None
        self._res_idx = None
        self._mutated = False

    def _cols(self) -> tuple[list[int], list[float]]:
        return self._order, self._ends_list

    def _starts_col(self) -> list[float]:
        if self._starts is None:
            order, ends = self._cols()
            dur = self._durations
            if dur is None:
                dur = self._compiled.durations
            starts = np.asarray(ends, dtype=np.float64)
            starts = starts - np.asarray(dur, dtype=np.float64)[
                np.asarray(order, dtype=np.int64)
            ]
            self._starts = starts.tolist()
        return self._starts

    def _event(self, k: int) -> TraceEvent:
        ev = self._event_cache.get(k)
        if ev is None:
            order, ends = self._cols()
            op = self._compiled.ops[order[k]]
            ev = TraceEvent(
                name=op.name,
                start=self._starts_col()[k],
                end=ends[k],
                resources=op.resources,
                tags=op.tags,
            )
            self._event_cache[k] = ev
        return ev

    @property
    def events(self) -> list[TraceEvent]:
        if self._events is None:
            self._events = [self._event(k) for k in range(len(self._order))]
        return self._events

    def add(self, event: TraceEvent) -> None:
        # Rare post-run mutation: materialize, then behave like a plain
        # Trace (columnar fast paths disable themselves via ``_mutated``).
        self.events
        self._mutated = True
        super().add(event)

    def iter_rows(self):
        if self._mutated:
            yield from super().iter_rows()
            return
        ops = self._compiled.ops
        starts = self._starts_col()
        order, ends = self._cols()
        for k, end in enumerate(ends):
            op = ops[order[k]]
            yield op.name, starts[k], end, op.resources, op.tags

    def find(self, name: str) -> TraceEvent:
        if self._mutated:
            return super().find(name)
        op_id = self._compiled.id_of.get(name)
        if op_id is None:
            raise KeyError(f"expected exactly one event named {name!r}, got 0")
        if self._op_to_event is None:
            order, _ = self._cols()
            self._op_to_event = {i: k for k, i in enumerate(order)}
        return self._event(self._op_to_event[op_id])

    def busy_totals(self) -> dict | None:
        """Per-resource busy time, vectorized; ``None`` once mutated.

        Bit-identical to summing event widths in ``iter_rows`` order (the
        accumulation :func:`repro.sim.engine._record_sim_metrics` performs):
        ``np.add.at`` applies additions sequentially, and the incidence
        entries are expanded op-major in completion order — the same
        left-to-right sum per resource.
        """
        if self._mutated:
            return None
        cg = self._compiled
        order, ends = self._cols()
        if not order:
            return {}
        ops_e, res_e = cg.res_incidence
        # Event index (completion position) of each incidence entry; numpy
        # argsort(stable) over it reproduces the python loop's visit order.
        order_a = np.asarray(order, dtype=np.int64)
        pos = np.empty(cg.num_ops, dtype=np.int64)
        pos[order_a] = np.arange(len(order), dtype=np.int64)
        entry_pos = pos[ops_e]
        sort_idx = np.argsort(entry_pos, kind="stable")
        # Width of each event, ``end - start``.  ``start`` is defined as
        # ``end - duration`` (see ``_starts_col``), so the width must be
        # computed as the round-trip ``end - (end - duration)`` — NOT as
        # ``duration`` directly — to stay bit-equal to the per-event
        # subtraction the scalar accumulation performs.
        dur = self._durations
        if dur is None:
            dur = cg.durations
        ends_a = np.asarray(ends, dtype=np.float64)
        widths = ends_a - (
            ends_a - np.asarray(dur, dtype=np.float64)[order_a]
        )
        busy = np.zeros(cg.num_resources, dtype=np.float64)
        np.add.at(busy, res_e[sort_idx], widths[entry_pos[sort_idx]])
        keys = cg.resource_keys
        # Resources actually touched: bincount+flatnonzero gives the same
        # set as np.unique(res_e) (sorted ascending) at a fraction of the
        # cost on this scale of incidence column.
        seen = np.flatnonzero(np.bincount(res_e, minlength=cg.num_resources))
        return {keys[int(r)]: float(busy[int(r)]) for r in seen}


class ColumnarMemoryTimeline(MemoryTimeline):
    """A :class:`~repro.sim.trace.MemoryTimeline` fed from a packed buffer.

    The simulator appends one ``(time, phase, effects)`` row per op side
    with memory effects — ``effects`` is the op's interned
    ``(device slot, delta)`` tuple straight from the compiled graph, so the
    hot loop pays a single append per op rather than one per record.  The
    per-device delta lists of the base class are populated lazily, on the
    first query, preserving record order (and therefore the base class's
    bit-exact sorted materialization).
    """

    def __init__(self, device_keys, mem_rows):
        super().__init__()
        self._pending = (device_keys, mem_rows)

    def _thaw(self) -> None:
        if self._pending is None:
            return
        device_keys, mem_rows = self._pending
        self._pending = None
        deltas = self._deltas
        for t, p, effects in mem_rows:
            for d, v in effects:
                rows = deltas.get(device_keys[d])
                if rows is None:
                    rows = deltas[device_keys[d]] = []
                rows.append((t, p, v))

    def record(self, device, time, delta, phase=PHASE_START) -> None:
        self._thaw()
        super().record(device, time, delta, phase)

    def devices(self) -> list:
        self._thaw()
        return super().devices()

    def _materialize(self, device):
        self._thaw()
        return super()._materialize(device)

    def peak_all(self) -> dict:
        """Peak live bytes per device, vectorized over the packed buffer.

        Bit-identical to the base class's per-device materialization:
        ``np.lexsort`` keyed ``(delta, phase, time, device)`` reproduces,
        within each device segment, exactly the ascending ``(time, phase,
        delta)`` tuple order of ``sorted(rows)`` (ties stay in record order
        — both sorts are stable), and the running sum is taken per segment
        with ``np.cumsum`` — the same left-to-right addition sequence the
        base class performs on that device's delta column.  Answering from
        the packed rows directly skips the python thaw loop entirely.
        """
        if self._pending is None:
            return super().peak_all()
        device_keys, mem_rows = self._pending
        if not mem_rows:
            return {}
        # Column extraction stays at C speed: map(itemgetter)/chain feed
        # fromiter directly, with no python-level loop over the rows.
        n = len(mem_rows)
        get0, get1, get2 = (
            operator.itemgetter(0), operator.itemgetter(1),
            operator.itemgetter(2),
        )
        effs = list(map(get2, mem_rows))
        counts = np.fromiter(map(len, effs), dtype=np.int64, count=n)
        pairs = list(itertools.chain.from_iterable(effs))
        if not pairs:
            return {}
        m = len(pairs)
        dev_a = np.fromiter(map(get0, pairs), dtype=np.int64, count=m)
        val_a = np.fromiter(map(get1, pairs), dtype=np.float64, count=m)
        t_a = np.repeat(
            np.fromiter(map(get0, mem_rows), dtype=np.float64, count=n),
            counts,
        )
        p_a = np.repeat(
            np.fromiter(map(get1, mem_rows), dtype=np.int64, count=n),
            counts,
        )
        order = np.lexsort((val_a, p_a, t_a, dev_a))
        dev_s = dev_a[order]
        val_s = val_a[order]
        cuts = np.flatnonzero(dev_s[1:] != dev_s[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        stops = np.concatenate((cuts, [dev_s.size]))
        out = {}
        for a, b in zip(starts.tolist(), stops.tolist()):
            key = device_keys[int(dev_s[a])]
            out[key] = float(np.cumsum(val_s[a:b]).max(initial=0.0))
        return dict(sorted(out.items(), key=lambda kv: str(kv[0])))


def run_compiled(cg: CompiledTaskGraph):
    """Execute a compiled graph; returns a SimulationResult.

    Bit-identical to ``Simulator._run_reference`` by construction: same
    (priority, submission-seq) dispatch order, same completion drain at
    simultaneous timestamps, same memory-record multiset per device.

    The cyclic garbage collector is paused for the duration of the loop
    (restored on exit): the loop allocates millions of small tuples that
    can never form cycles, and generational scans over them cost ~30% of
    the run time on large graphs.
    """
    import repro.obs as obs
    from repro.sim.engine import SimulationResult

    # Pre-aggregation buffers: the loop appends per-timestamp samples to
    # plain lists; the histograms are recorded in one bulk observe_many call
    # each after the run, keeping the enabled-path overhead on the loop to
    # two list appends per distinct completion timestamp.
    stats = ([], []) if obs.enabled() else None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        result = _run_compiled_loop(cg, SimulationResult, stats)
    finally:
        if gc_was_enabled:
            gc.enable()
    if stats is not None:
        obs.histogram(
            "sim.waiter_depth", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128)
        ).observe_many(stats[0])
        obs.histogram(
            "sim.completion_batch", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
        ).observe_many(stats[1])
    return result


def _run_compiled_loop(cg: CompiledTaskGraph, SimulationResult, stats=None):
    n = cg.num_ops
    # Round-trip the float columns through numpy: the graph's floats were
    # allocated piecemeal during construction and are scattered across the
    # heap; .tolist() re-materializes them contiguously, which measurably
    # cuts cache misses in the loop below on large graphs.
    dur = cg.durations.tolist()
    prio = cg.priorities.tolist()
    succ = cg._succ_lists
    res = cg._res_lists
    mem_start = cg.mem_start
    mem_end = cg.mem_end
    pred_left = list(cg._pred_list)
    busy = [False] * cg.num_resources
    # Per-resource waiter heaps of (priority, seq, op id).  At most one
    # representative of each free resource's queue — always its minimum —
    # sits in the candidate heap at a time, so a completion costs O(log W)
    # in its waiters rather than re-examining all of them.
    waiters: list[list[tuple[float, int, int]]] = [
        [] for _ in range(cg.num_resources)
    ]
    heappush = heapq.heappush
    heappop = heapq.heappop
    P_START = PHASE_START
    P_END = PHASE_END

    # Parallel trace columns (op id, end time) in completion order and the
    # packed memory stream: one (time, phase, effects) row per op side with
    # effects.  All plain list appends in the loop — no per-event objects.
    order_col: list[int] = []
    ends_col: list[float] = []
    mem_rows: list[tuple] = []
    add_ord = order_col.append
    add_end = ends_col.append
    add_mem = mem_rows.append

    # Freshly-woken ops go to a plain ``fresh`` list — (priority, seq, op
    # id), seq assigned at wake time in reference order (graph order for
    # roots, wake order for successors).  Each dispatch pass sorts it once
    # and merge-walks it against the candidate heap, which holds only
    # *promoted waiters* as (priority, seq, op id, source slot): ``source``
    # is the resource slot whose waiter queue produced the candidate — if it
    # parks elsewhere while its source is still free, the source's next
    # waiter is promoted so the queue's minimum stays represented.  In the
    # common un-contended case a woken op therefore costs two list appends
    # and one sorted-list read instead of two heap operations.
    seq = 0
    fresh: list[tuple[float, int, int]] = []
    add_fresh = fresh.append
    for i in range(n):
        if not pred_left[i]:
            add_fresh((prio[i], seq, i))
            seq += 1
    cand: list[tuple[float, int, int, int]] = []
    # Total ops currently parked across all waiter heaps, maintained
    # incrementally so the per-timestamp obs sample below is O(1) instead of
    # an O(resources) scan.
    parked = 0
    if stats is not None:
        depth_samples, batch_samples = stats

    # Completion calendar: a heap of *distinct* end times plus a bucket of
    # (seq, op id) pairs per time.  Simulated ops complete in large batches
    # at shared timestamps (every micro-batch tick retires one op per
    # device), so one heap operation is amortized over a whole batch; the
    # reference's (end-time, seq) pop order is recovered by sorting each
    # bucket on seq as it is drained.
    run_bucket: dict[float, list[tuple[int, int]]] = {}
    run_times: list[float] = []
    get_bucket = run_bucket.get
    now = 0.0

    while True:
        # Dispatch pass: start candidates in (priority, seq) order; park
        # blocked ones on the first busy resource they need.  ``fresh`` is
        # consumed front-to-back after sorting; ``cand`` only ever receives
        # promoted waiters, so it is empty whenever nothing is parked.
        fn = len(fresh)
        if fn > 1:
            fresh.sort()
        fi = 0
        while True:
            if fi < fn:
                f = fresh[fi]
                if cand:
                    c0 = cand[0]
                    fp = f[0]
                    if c0[0] < fp or (c0[0] == fp and c0[1] < f[1]):
                        pr, sq, i, src = heappop(cand)
                    else:
                        pr, sq, i = f
                        src = -1
                        fi += 1
                else:
                    pr, sq, i = f
                    src = -1
                    fi += 1
            elif cand:
                pr, sq, i, src = heappop(cand)
            else:
                break
            # The resource column is shape-specialized: a bare int (the
            # overwhelmingly common single-resource op) skips tuple
            # iteration entirely; None means no resources at all.
            rs = res[i]
            if type(rs) is int:
                if busy[rs]:
                    heappush(waiters[rs], (pr, sq, i))
                    parked += 1
                    # The candidate left its source queue without acquiring
                    # the source: promote that queue's next waiter (if the
                    # source is still free) so its minimum stays in ``cand``.
                    if src >= 0 and not busy[src]:
                        w = waiters[src]
                        if w:
                            wp, ws, wi = heappop(w)
                            parked -= 1
                            heappush(cand, (wp, ws, wi, src))
                    continue
                busy[rs] = True
            elif rs is not None:
                r_blocked = -1
                for r in rs:
                    if busy[r]:
                        r_blocked = r
                        break
                if r_blocked >= 0:
                    heappush(waiters[r_blocked], (pr, sq, i))
                    parked += 1
                    if src >= 0 and not busy[src]:
                        w = waiters[src]
                        if w:
                            wp, ws, wi = heappop(w)
                            parked -= 1
                            heappush(cand, (wp, ws, wi, src))
                    continue
                for r in rs:
                    busy[r] = True
            ms = mem_start[i]
            if ms:
                add_mem((now, P_START, ms))
            end = now + dur[i]
            b = get_bucket(end)
            if b is None:
                run_bucket[end] = [(sq, i)]
                heappush(run_times, end)
            else:
                b.append((sq, i))
        del fresh[:]

        if not run_times:
            break
        now = heappop(run_times)
        # Drain every completion at this instant before dispatching, so
        # resources freed simultaneously are all visible (and their waiters
        # all enter the same candidate heap).  The bucket may mix ops
        # started in different dispatch passes; seq order restores the
        # reference's tie-break.
        batch = run_bucket.pop(now)
        if stats is not None:
            # One branch per distinct timestamp, not per op; samples land in
            # plain lists and are histogram-recorded in bulk after the loop.
            batch_samples.append(len(batch))
            depth_samples.append(parked)
        batch.sort()
        for sq, i in batch:
            rs = res[i]
            if type(rs) is int:
                busy[rs] = False
                w = waiters[rs]
                if w:
                    wp, ws, wi = heappop(w)
                    parked -= 1
                    heappush(cand, (wp, ws, wi, rs))
            elif rs is not None:
                for r in rs:
                    busy[r] = False
                    w = waiters[r]
                    if w:
                        wp, ws, wi = heappop(w)
                        parked -= 1
                        heappush(cand, (wp, ws, wi, r))
            me = mem_end[i]
            if me:
                add_mem((now, P_END, me))
            add_ord(i)
            add_end(now)
            for s in succ[i]:
                c = pred_left[s] - 1
                pred_left[s] = c
                if not c:
                    add_fresh((prio[s], seq, s))
                    seq += 1

    if len(order_col) != n:
        # Cold path: distinguish a structural dependency cycle (the
        # canonical ValueError, historically raised up front by
        # ``validate_acyclic``) from a genuine resource deadlock.
        indeg = list(cg._pred_list)
        queue = [i for i, d in enumerate(indeg) if not d]
        seen = 0
        while queue:
            u = queue.pop()
            seen += 1
            for v in succ[u]:
                c = indeg[v] - 1
                indeg[v] = c
                if not c:
                    queue.append(v)
        if seen != n:
            raise ValueError("task graph contains a dependency cycle")
        stuck = [cg.ops[i].name for i in range(n) if pred_left[i] > 0]
        raise RuntimeError(
            f"simulation deadlocked: {n - len(order_col)} ops never ran "
            f"(first few blocked: {stuck[:5]})"
        )
    trace = ColumnarTrace(cg, order_col, ends_col)
    memory = ColumnarMemoryTimeline(cg.device_keys, mem_rows)
    return SimulationResult(makespan=trace.makespan(), trace=trace, memory=memory)

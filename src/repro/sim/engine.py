"""Deterministic list-scheduling discrete-event simulator.

The DAPPLE runtime compiles a pipeline schedule into a static :class:`TaskGraph`
of :class:`Op` nodes — forward/backward computations bound to GPU resources,
activation transfers bound to link resources, AllReduce collectives bound to
virtual group channels — connected by data and control dependencies, exactly
mirroring how the paper's TF implementation chains micro-batch units with
control edges (paper Fig. 11).

The :class:`Simulator` then executes the graph with event-driven list
scheduling:

* an op becomes *ready* once all its predecessors completed;
* at every completion event the dispatcher scans ready ops in priority order
  and starts each op whose resource set is entirely free;
* ties are broken by submission order, making runs fully deterministic.

Memory effects attached to ops feed a :class:`~repro.sim.trace.MemoryTimeline`
so peak-memory comparisons (paper Table VI, Fig. 3c) fall out of the same run
that produces the makespan.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.sim.resources import ResourcePool
from repro.sim.trace import MemoryTimeline, Trace, TraceEvent, PHASE_END, PHASE_START


@dataclass
class MemEffect:
    """A memory delta applied on ``device`` at op start or end."""

    device: object
    delta: float
    at_end: bool = False


@dataclass
class Op:
    """One schedulable operation.

    Attributes
    ----------
    name:
        Unique human-readable id (also used to express dependencies).
    duration:
        Busy time in seconds; zero-duration ops are allowed (barriers).
    resources:
        Resource keys held exclusively for ``duration``.
    priority:
        Lower runs first among simultaneously-ready ops.  The runtime uses
        this to keep the intended micro-batch interleaving when a device has
        several runnable ops.
    tags:
        Free-form metadata copied into the trace (stage id, micro-batch id,
        op kind) for post-run assertions and Gantt rendering.
    """

    name: str
    duration: float
    resources: tuple = ()
    priority: float = 0.0
    tags: dict = field(default_factory=dict)
    mem_effects: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.name!r} has negative duration {self.duration}")
        self.resources = tuple(self.resources)


class TaskGraph:
    """A static DAG of ops with data/control dependencies."""

    def __init__(self) -> None:
        self._ops: dict[str, Op] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred_count: dict[str, int] = {}
        self._order: list[str] = []

    def add(self, op: Op) -> Op:
        if op.name in self._ops:
            raise ValueError(f"duplicate op name {op.name!r}")
        self._ops[op.name] = op
        self._succ[op.name] = []
        self._pred_count[op.name] = 0
        self._order.append(op.name)
        return op

    def add_dep(self, before: str, after: str) -> None:
        """Declare that ``after`` may only start once ``before`` completed."""
        if before not in self._ops:
            raise KeyError(f"unknown op {before!r}")
        if after not in self._ops:
            raise KeyError(f"unknown op {after!r}")
        self._succ[before].append(after)
        self._pred_count[after] += 1

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def op(self, name: str) -> Op:
        return self._ops[name]

    def ops(self) -> list[Op]:
        return [self._ops[n] for n in self._order]

    def validate_acyclic(self) -> None:
        """Raise ``ValueError`` if the dependency graph has a cycle."""
        indeg = dict(self._pred_count)
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            n = queue.pop()
            seen += 1
            for m in self._succ[n]:
                indeg[m] -= 1
                if indeg[m] == 0:
                    queue.append(m)
        if seen != len(self._ops):
            raise ValueError("task graph contains a dependency cycle")


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    makespan: float
    trace: Trace
    memory: MemoryTimeline

    def peak_memory(self, device) -> float:
        return self.memory.peak(device)


class Simulator:
    """Executes a :class:`TaskGraph` and returns a :class:`SimulationResult`."""

    def __init__(self, graph: TaskGraph) -> None:
        graph.validate_acyclic()
        self._graph = graph

    def run(self) -> SimulationResult:
        graph = self._graph
        pool = ResourcePool()
        trace = Trace()
        memory = MemoryTimeline()

        pred_left = dict(graph._pred_count)
        seq = itertools.count()
        op_ids = {op.name: i for i, op in enumerate(graph.ops())}

        # Ready heap: (priority, submission-sequence, name).
        ready: list[tuple[float, int, str]] = []
        for op in graph.ops():
            if pred_left[op.name] == 0:
                heapq.heappush(ready, (op.priority, next(seq), op.name))

        # Completion heap: (end-time, sequence, name).
        running: list[tuple[float, int, str]] = []
        now = 0.0
        completed = 0

        def try_dispatch() -> None:
            """Start every ready op whose resources are free, priority order."""
            skipped: list[tuple[float, int, str]] = []
            while ready:
                prio, sq, name = heapq.heappop(ready)
                op = graph.op(name)
                if pool.is_free(op.resources):
                    pool.acquire(op.resources, op_ids[name])
                    for eff in op.mem_effects:
                        if not eff.at_end:
                            memory.record(eff.device, now, eff.delta, PHASE_START)
                    heapq.heappush(running, (now + op.duration, sq, name))
                else:
                    skipped.append((prio, sq, name))
            for item in skipped:
                heapq.heappush(ready, item)

        def _complete(name: str, end: float) -> bool:
            """Retire one finished op: release resources, settle memory,
            trace it, and wake successors.  Returns True when the dispatch
            state may have changed (resources freed or new ops ready) —
            False means a rescan of the ready heap would be a no-op.
            """
            nonlocal completed
            op = graph.op(name)
            pool.release(op.resources, op_ids[name])
            for eff in op.mem_effects:
                if eff.at_end:
                    memory.record(eff.device, end, eff.delta, PHASE_END)
            trace.add(
                TraceEvent(
                    name=name,
                    start=end - op.duration,
                    end=end,
                    resources=op.resources,
                    tags=op.tags,
                )
            )
            completed += 1
            woke = False
            for succ in graph._succ[name]:
                pred_left[succ] -= 1
                if pred_left[succ] == 0:
                    heapq.heappush(ready, (graph.op(succ).priority, next(seq), succ))
                    woke = True
            return woke or bool(op.resources)

        try_dispatch()
        total = len(graph)
        while running:
            end, _, name = heapq.heappop(running)
            now = end
            changed = _complete(name, now)
            # Also drain any other ops finishing at the same instant before
            # dispatching, so resources freed simultaneously are all visible.
            while running and running[0][0] == now:
                _, _, name2 = heapq.heappop(running)
                changed = _complete(name2, now) or changed
            if changed:
                try_dispatch()

        if completed != total:
            stuck = [n for n, c in pred_left.items() if c > 0]
            raise RuntimeError(
                f"simulation deadlocked: {total - completed} ops never ran "
                f"(first few blocked: {stuck[:5]})"
            )
        return SimulationResult(makespan=trace.makespan(), trace=trace, memory=memory)

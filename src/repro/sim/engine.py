"""Deterministic list-scheduling discrete-event simulator.

The DAPPLE runtime compiles a pipeline schedule into a static :class:`TaskGraph`
of :class:`Op` nodes — forward/backward computations bound to GPU resources,
activation transfers bound to link resources, AllReduce collectives bound to
virtual group channels — connected by data and control dependencies, exactly
mirroring how the paper's TF implementation chains micro-batch units with
control edges (paper Fig. 11).

The :class:`Simulator` then executes the graph with event-driven list
scheduling:

* an op becomes *ready* once all its predecessors completed;
* at every completion event the dispatcher scans ready ops in priority order
  and starts each op whose resource set is entirely free;
* ties are broken by submission order, making runs fully deterministic.

Memory effects attached to ops feed a :class:`~repro.sim.trace.MemoryTimeline`
so peak-memory comparisons (paper Table VI, Fig. 3c) fall out of the same run
that produces the makespan.

Two engines implement these semantics:

* ``"compiled"`` (default) — :mod:`repro.sim.compiled` lowers the graph to
  integer op ids, CSR adjacency, and interned resource slots, and dispatches
  with per-resource waiter queues so a completion only re-examines ops
  actually blocked on the freed resources.  Traces and memory deltas land in
  columnar buffers with lazy :class:`~repro.sim.trace.TraceEvent`
  materialization.
* ``"reference"`` — the original name-keyed drain-everything loop below,
  kept as the bit-identical oracle for debugging and equivalence testing
  (``tests/sim/test_compiled_equivalence.py``).
* ``"batched"`` — the multi-scenario engine (:mod:`repro.sim.batched`)
  invoked as a one-row batch; same loop body as compiled, same results.
  Fault ensembles use it directly with a whole (seeds × ops) duration
  matrix, which is where it earns its keep.

Select globally with the ``REPRO_SIM_ENGINE`` environment variable or per
run via ``Simulator(graph, engine=...)``.
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass, field

import repro.obs as obs
from repro.sim.resources import ResourcePool
from repro.sim.trace import MemoryTimeline, Trace, TraceEvent, PHASE_END, PHASE_START


@dataclass
class MemEffect:
    """A memory delta applied on ``device`` at op start or end."""

    device: object
    delta: float
    at_end: bool = False


@dataclass
class Op:
    """One schedulable operation.

    Attributes
    ----------
    name:
        Unique human-readable id (also used to express dependencies).
    duration:
        Busy time in seconds; zero-duration ops are allowed (barriers).
    resources:
        Resource keys held exclusively for ``duration``.
    priority:
        Lower runs first among simultaneously-ready ops.  The runtime uses
        this to keep the intended micro-batch interleaving when a device has
        several runnable ops.
    tags:
        Free-form metadata copied into the trace (stage id, micro-batch id,
        op kind) for post-run assertions and Gantt rendering.

    An op's duration, priority, resources, and memory effects are snapshot
    into the graph's indexed columns by :meth:`TaskGraph.add` — attach
    ``mem_effects`` *before* adding the op to a graph.  Mutations after
    ``add`` are seen only by the reference engine.
    """

    name: str
    duration: float
    resources: tuple = ()
    priority: float = 0.0
    tags: dict = field(default_factory=dict)
    mem_effects: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.name!r} has negative duration {self.duration}")
        self.resources = tuple(self.resources)


class TaskGraph:
    """A static DAG of ops with data/control dependencies.

    Alongside the name-keyed maps (used by the reference engine and
    external callers), the graph incrementally maintains an *indexed form*:
    integer op ids in submission order, int-id adjacency, resource keys and
    memory-effect devices interned to dense slots, and duration/priority
    columns.  :func:`repro.sim.compiled.compile_graph` wraps these columns
    in O(1) instead of re-deriving them with a per-op pass.  Op metadata is
    snapshot at :meth:`add` time (see :class:`Op`).
    """

    def __init__(self) -> None:
        self._ops: dict[str, Op] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred_count: dict[str, int] = {}
        self._order: list[str] = []
        # Indexed form, maintained incrementally by add()/add_dep().
        self._id_of: dict[str, int] = {}
        self._succ_ids: list[list[int]] = []
        self._pred_n: list[int] = []
        self._dur_col: list[float] = []
        self._prio_col: list[float] = []
        self._res_slot_of: dict = {}
        self._res_keys: list = []
        # Per-op resource slots, shape-specialized for the event loop:
        # ``None`` (no resources), a bare ``int`` (the overwhelmingly common
        # single-resource op), or a tuple of slots.
        self._res_col: list = []
        # Flat op×resource incidence (parallel op-id / slot columns,
        # op-major, slots in declaration order) — the expansion vectorized
        # analyses consume; maintained here so compile stays O(1).
        self._res_flat_ops: list[int] = []
        self._res_flat_slots: list[int] = []
        self._dev_slot_of: dict = {}
        self._dev_keys: list = []
        self._mem_start_col: list[tuple] = []
        self._mem_end_col: list[tuple] = []

    def add(self, op: Op) -> Op:
        name = op.name
        if name in self._ops:
            raise ValueError(f"duplicate op name {name!r}")
        self._ops[name] = op
        self._succ[name] = []
        self._pred_count[name] = 0
        self._order.append(name)

        self._id_of[name] = len(self._succ_ids)
        self._succ_ids.append([])
        self._pred_n.append(0)
        self._dur_col.append(op.duration)
        self._prio_col.append(op.priority)
        resources = op.resources
        if resources:
            op_id = self._id_of[name]
            slot_of = self._res_slot_of
            keys = self._res_keys
            flat_ops = self._res_flat_ops
            flat_slots = self._res_flat_slots
            slots = []
            for key in resources:
                s = slot_of.get(key)
                if s is None:
                    s = slot_of[key] = len(keys)
                    keys.append(key)
                slots.append(s)
                flat_ops.append(op_id)
                flat_slots.append(s)
            self._res_col.append(slots[0] if len(slots) == 1 else tuple(slots))
        else:
            self._res_col.append(None)
        effects = op.mem_effects
        if effects:
            dev_of = self._dev_slot_of
            dev_keys = self._dev_keys
            starts: list = []
            ends: list = []
            for eff in effects:
                d = dev_of.get(eff.device)
                if d is None:
                    d = dev_of[eff.device] = len(dev_keys)
                    dev_keys.append(eff.device)
                (ends if eff.at_end else starts).append((d, eff.delta))
            self._mem_start_col.append(tuple(starts))
            self._mem_end_col.append(tuple(ends))
        else:
            self._mem_start_col.append(())
            self._mem_end_col.append(())
        return op

    def add_dep(self, before: str, after: str) -> None:
        """Declare that ``after`` may only start once ``before`` completed."""
        id_of = self._id_of
        i = id_of.get(before)
        if i is None:
            raise KeyError(f"unknown op {before!r}")
        j = id_of.get(after)
        if j is None:
            raise KeyError(f"unknown op {after!r}")
        self._succ[before].append(after)
        self._pred_count[after] += 1
        self._succ_ids[i].append(j)
        self._pred_n[j] += 1

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def op(self, name: str) -> Op:
        return self._ops[name]

    def ops(self) -> list[Op]:
        return [self._ops[n] for n in self._order]

    def validate_acyclic(self) -> None:
        """Raise ``ValueError`` if the dependency graph has a cycle."""
        indeg = list(self._pred_n)
        queue = [i for i, d in enumerate(indeg) if not d]
        seen = 0
        succ = self._succ_ids
        while queue:
            n = queue.pop()
            seen += 1
            for m in succ[n]:
                c = indeg[m] - 1
                indeg[m] = c
                if not c:
                    queue.append(m)
        if seen != len(self._ops):
            raise ValueError("task graph contains a dependency cycle")


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    makespan: float
    trace: Trace
    memory: MemoryTimeline

    def peak_memory(self, device) -> float:
        return self.memory.peak(device)


#: Valid ``Simulator(engine=...)`` values.  ``"batched"`` routes a single
#: run through the multi-scenario engine (:mod:`repro.sim.batched`) as a
#: one-row batch — bit-identical to ``"compiled"``; its real payoff is
#: multi-seed ensembles (``repro.faults``), which hand the batched engine a
#: whole duration matrix at once.
ENGINES = ("compiled", "reference", "batched")


class Simulator:
    """Executes a :class:`TaskGraph` and returns a :class:`SimulationResult`.

    ``engine`` selects the event loop: ``"compiled"`` (indexed task graph +
    waiter-queue dispatch, the default) or ``"reference"`` (the oracle loop,
    bit-identical but slower).  ``engine=None`` reads the
    ``REPRO_SIM_ENGINE`` environment variable, falling back to compiled.

    Graph validation is lazy: a dependency cycle surfaces as a
    ``ValueError`` from :meth:`run` (an acyclic graph can never deadlock in
    this model — every dispatched op completes and every freed resource
    promotes its best waiter — so the cycle check only runs on the failure
    path instead of taxing every successful simulation with an O(V+E)
    pre-pass).
    """

    def __init__(self, graph: TaskGraph, engine: str | None = None) -> None:
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE", "compiled")
        if engine not in ENGINES:
            raise ValueError(f"unknown sim engine {engine!r} (one of {ENGINES})")
        self._graph = graph
        self.engine = engine

    def run(self, validate: bool | None = None) -> SimulationResult:
        """Simulate the graph; optionally conformance-check the outcome.

        ``validate=True`` runs the engine-agnostic invariants of
        :func:`repro.check.invariants.check_simulation` (completeness,
        dependency order, resource exclusivity, duration fidelity, makespan
        lower bound) on the fresh result and raises
        :class:`~repro.check.invariants.ConformanceError` on any violation.
        ``validate=None`` defers to the ``REPRO_SIM_VALIDATE`` environment
        variable (off by default — the scan is a full trace pass).
        """
        if validate is None:
            validate = os.environ.get("REPRO_SIM_VALIDATE", "").lower() not in (
                "", "0", "false",
            )
        if not obs.enabled():
            result = self._run()
        else:
            with obs.span(
                "sim.run", engine=self.engine, ops=len(self._graph)
            ) as sp:
                result = self._run()
                sp.set(makespan=result.makespan)
            _record_sim_metrics(result)
        if validate:
            from repro.check.invariants import check_simulation

            check_simulation(self._graph, result).raise_if_failed()
        return result

    def _run(self) -> SimulationResult:
        if self.engine == "reference":
            return self._run_reference()
        if self.engine == "batched":
            from repro.sim.batched import run_batched
            from repro.sim.compiled import compile_graph

            cg = compile_graph(self._graph)
            # One-row batch over the graph's own duration column; no
            # snapshots — there is nothing to replay incrementally.
            return run_batched(
                cg, cg.durations[None, :], snapshots=0
            ).result(0)
        from repro.sim.compiled import compile_graph, run_compiled

        return run_compiled(compile_graph(self._graph))

    def _run_reference(self) -> SimulationResult:
        graph = self._graph
        pool = ResourcePool()
        trace = Trace()
        memory = MemoryTimeline()

        pred_left = dict(graph._pred_count)
        seq = itertools.count()
        op_ids = {op.name: i for i, op in enumerate(graph.ops())}

        # Ready heap: (priority, submission-sequence, name).
        ready: list[tuple[float, int, str]] = []
        for op in graph.ops():
            if pred_left[op.name] == 0:
                heapq.heappush(ready, (op.priority, next(seq), op.name))

        # Completion heap: (end-time, sequence, name).
        running: list[tuple[float, int, str]] = []
        now = 0.0
        completed = 0

        def try_dispatch() -> None:
            """Start every ready op whose resources are free, priority order."""
            skipped: list[tuple[float, int, str]] = []
            while ready:
                prio, sq, name = heapq.heappop(ready)
                op = graph.op(name)
                if pool.try_acquire(op.resources, op_ids[name]):
                    for eff in op.mem_effects:
                        if not eff.at_end:
                            memory.record(eff.device, now, eff.delta, PHASE_START)
                    heapq.heappush(running, (now + op.duration, sq, name))
                else:
                    skipped.append((prio, sq, name))
            for item in skipped:
                heapq.heappush(ready, item)

        def _complete(name: str, end: float) -> bool:
            """Retire one finished op: release resources, settle memory,
            trace it, and wake successors.  Returns True when the dispatch
            state may have changed (resources freed or new ops ready) —
            False means a rescan of the ready heap would be a no-op.
            """
            nonlocal completed
            op = graph.op(name)
            pool.release(op.resources, op_ids[name])
            for eff in op.mem_effects:
                if eff.at_end:
                    memory.record(eff.device, end, eff.delta, PHASE_END)
            trace.add(
                TraceEvent(
                    name=name,
                    start=end - op.duration,
                    end=end,
                    resources=op.resources,
                    tags=op.tags,
                )
            )
            completed += 1
            woke = False
            for succ in graph._succ[name]:
                pred_left[succ] -= 1
                if pred_left[succ] == 0:
                    heapq.heappush(ready, (graph.op(succ).priority, next(seq), succ))
                    woke = True
            return woke or bool(op.resources)

        try_dispatch()
        total = len(graph)
        while running:
            end, _, name = heapq.heappop(running)
            now = end
            changed = _complete(name, now)
            # Also drain any other ops finishing at the same instant before
            # dispatching, so resources freed simultaneously are all visible.
            while running and running[0][0] == now:
                _, _, name2 = heapq.heappop(running)
                changed = _complete(name2, now) or changed
            if changed:
                try_dispatch()

        if completed != total:
            graph.validate_acyclic()  # a cycle raises the canonical ValueError
            stuck = [n for n, c in pred_left.items() if c > 0]
            raise RuntimeError(
                f"simulation deadlocked: {total - completed} ops never ran "
                f"(first few blocked: {stuck[:5]})"
            )
        return SimulationResult(makespan=trace.makespan(), trace=trace, memory=memory)


def _record_sim_metrics(result: SimulationResult) -> None:
    """Publish post-run metrics: event count, per-resource occupancy,
    per-device memory peaks.  Called only while observability is enabled;
    columnar traces answer through a vectorized busy-time pass
    (:meth:`~repro.sim.compiled.ColumnarTrace.busy_totals`, bit-identical to
    the row scan), and the python ``iter_rows`` fallback keeps plain traces
    working — either way the event loop itself stays untouched."""
    trace = result.trace
    makespan = result.makespan
    fast = getattr(trace, "busy_totals", None)
    if fast is not None and not trace._mutated:
        # Columnar trace: the per-resource occupancy gauges are registered
        # with collect-time providers (Gauge.set_fn) sharing one memoized
        # busy_totals() pass — the vectorized sum runs once, at first read,
        # off the simulation's critical path.  The label set needs no
        # computation: every interned resource key appears in at least one
        # op's incidence, so it matches busy_totals' key set exactly.
        events = len(trace._cols()[0])
        if makespan > 0:
            cache: list = []

            def _busy() -> dict:
                if not cache:
                    cache.append(fast() or {})
                return cache[0]

            for r in sorted(trace._compiled.resource_keys, key=str):
                obs.gauge("sim.occupancy", resource=str(r)).set_fn(
                    lambda r=r: _busy().get(r, 0.0) / makespan
                )
    else:
        events = 0
        busy = {}
        for _name, start, end, resources, _tags in trace.iter_rows():
            events += 1
            width = end - start
            for r in resources:
                busy[r] = busy.get(r, 0.0) + width
        if makespan > 0:
            for r in sorted(busy, key=str):
                obs.gauge("sim.occupancy", resource=str(r)).set(
                    busy[r] / makespan
                )
    obs.counter("sim.events").inc(events)
    # Memory peaks likewise: the columnar timeline's packed buffer names
    # every device up front, and peak_all (vectorized, bit-identical to
    # per-device peak()) is deferred behind one shared memoized provider.
    memory = result.memory
    pending = getattr(memory, "_pending", None)
    if pending is not None:
        mem_cache: list = []

        def _peaks() -> dict:
            if not mem_cache:
                mem_cache.append(memory.peak_all())
            return mem_cache[0]

        for dev in sorted(pending[0], key=str):
            obs.gauge("sim.memory_peak_bytes", device=str(dev)).set_fn(
                lambda d=dev: _peaks().get(d, 0.0)
            )
    else:
        for dev, peak in memory.peak_all().items():
            obs.gauge("sim.memory_peak_bytes", device=str(dev)).set(peak)

"""Resource bookkeeping for the discrete-event simulator.

A *resource* is anything an operation occupies exclusively for its duration:
a GPU compute stream, a machine's NIC, an NVLink lane, or a virtual
"collective" channel used to serialize AllReduce operations of one replica
group.  Resources are identified by hashable keys (usually strings such as
``"gpu:3"`` or ``"nic:0->1"``).

The simulator in :mod:`repro.sim.engine` only needs two operations: check
whether a set of resources is simultaneously free, and mark them busy/free.
Keeping this logic in a small class makes the dispatch loop easy to test in
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable


@dataclass(frozen=True)
class Resource:
    """A named exclusive resource.

    Attributes
    ----------
    key:
        Unique hashable identifier, e.g. ``"gpu:0"``.
    kind:
        Free-form category tag (``"gpu"``, ``"link"``, ``"collective"``);
        only used for traces and debugging.
    """

    key: Hashable
    kind: str = "generic"


@dataclass
class ResourcePool:
    """Tracks which resources are currently occupied and by which op.

    The pool is permissive: resources are registered lazily the first time
    they are referenced, so callers do not need to pre-declare the hardware
    inventory.  ``owner`` maps a busy resource key to the integer id of the
    op holding it.
    """

    owner: dict = field(default_factory=dict)

    def is_free(self, keys: Iterable[Hashable]) -> bool:
        """Return True iff *every* key in ``keys`` is currently unoccupied."""
        return all(k not in self.owner for k in keys)

    def acquire(self, keys: Iterable[Hashable], op_id: int) -> None:
        """Mark ``keys`` busy, owned by ``op_id``.

        Raises
        ------
        RuntimeError
            If any key is already busy — this indicates a scheduler bug, so
            we fail loudly instead of silently corrupting the simulation.
            Keys claimed earlier in the same call are rolled back first, so
            the pool state stays consistent for post-mortem inspection.
        """
        owner = self.owner
        claimed = []
        for k in keys:
            if k in owner:
                holder = owner[k]
                for c in claimed:
                    del owner[c]
                raise RuntimeError(
                    f"double acquire of resource {k!r}: held by op {holder}, "
                    f"claimed by op {op_id}"
                )
            owner[k] = op_id
            claimed.append(k)

    def try_acquire(self, keys: Iterable[Hashable], op_id: int) -> bool:
        """Claim ``keys`` for ``op_id`` iff all are free, in one pass.

        Returns True on success.  On failure the pool is left unchanged
        (keys claimed before the busy one are rolled back) and returns
        False instead of raising — this is the dispatch-loop fast path,
        where a busy resource is the common case, not a bug.
        """
        owner = self.owner
        claimed = []
        for k in keys:
            if k in owner:
                for c in claimed:
                    del owner[c]
                return False
            owner[k] = op_id
            claimed.append(k)
        return True

    def release(self, keys: Iterable[Hashable], op_id: int) -> None:
        """Free ``keys`` previously acquired by ``op_id``."""
        for k in keys:
            got = self.owner.pop(k, None)
            if got != op_id:
                raise RuntimeError(
                    f"resource {k!r} released by op {op_id} but owned by {got}"
                )

    def busy_keys(self) -> set:
        """Snapshot of currently-occupied resource keys."""
        return set(self.owner)

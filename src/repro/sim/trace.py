"""Execution traces and per-device memory timelines.

The runtime asks the simulator two kinds of questions after a run:

* *When did each op execute?* — answered by :class:`Trace`, a flat list of
  :class:`TraceEvent` rows suitable for Gantt rendering and assertions about
  schedule structure (e.g. "backward of micro-batch 0 on stage 0 starts
  before forward of micro-batch K").
* *How much memory was live on each device over time?* — answered by
  :class:`MemoryTimeline`, built from (time, delta) pairs emitted by ops.

Memory deltas emitted at op *end* are applied before deltas emitted at op
*start* when timestamps tie: an op that frees activations completes before
the next op (which allocates) begins, so this ordering reflects the physical
sequence on a device and avoids reporting phantom peaks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

# Phase codes used to order simultaneous memory events: frees (op end) are
# applied before allocations (op start) at equal timestamps.
PHASE_END = 0
PHASE_START = 1


@dataclass(frozen=True)
class TraceEvent:
    """One executed op occurrence."""

    name: str
    start: float
    end: float
    resources: tuple
    tags: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


#: Sentinel marking a duplicated name in the lazily-built name index.
_DUP = object()


class Trace:
    """Ordered record of executed ops.

    The makespan is maintained incrementally by :meth:`add`; the name and
    per-resource lookups build their indices lazily on first use so that
    recording stays O(1) per event and queries stop linear-scanning the
    event list (the executor's post-run assertions call :meth:`find` per
    stage, and Gantt rendering calls :meth:`by_resource` per device).
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._makespan: float = 0.0
        self._name_idx: dict | None = None
        self._res_idx: dict | None = None

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)
        if event.end > self._makespan:
            self._makespan = event.end
        if self._name_idx is not None:
            self._name_idx[event.name] = (
                _DUP if event.name in self._name_idx else event
            )
        self._res_idx = None

    def makespan(self) -> float:
        """Completion time of the last op (0.0 for an empty trace)."""
        return self._makespan

    def iter_rows(self):
        """Yield ``(name, start, end, resources, tags)`` per executed op.

        Subclasses backed by columnar storage override this to stream rows
        without materializing :class:`TraceEvent` objects.
        """
        for e in self.events:
            yield e.name, e.start, e.end, e.resources, e.tags

    def _build_res_idx(self) -> dict:
        idx: dict = {}
        for e in self.events:
            for r in e.resources:
                idx.setdefault(r, []).append(e)
        for evs in idx.values():
            evs.sort(key=lambda e: (e.start, e.end))
        return idx

    def by_resource(self, key) -> list[TraceEvent]:
        """Events that occupied resource ``key``, in start order."""
        if self._res_idx is None:
            self._res_idx = self._build_res_idx()
        return list(self._res_idx.get(key, ()))

    def find(self, name: str) -> TraceEvent:
        """Return the unique event with ``name``; raise if absent/ambiguous."""
        if self._name_idx is None:
            idx: dict = {}
            for e in self.events:
                idx[e.name] = _DUP if e.name in idx else e
            self._name_idx = idx
        hit = self._name_idx.get(name)
        if hit is None or hit is _DUP:
            count = sum(1 for e in self.events if e.name == name)
            raise KeyError(
                f"expected exactly one event named {name!r}, got {count}"
            )
        return hit

    def busy_time(self, key) -> float:
        """Total occupied time of resource ``key`` (no overlap by design)."""
        return sum(e.duration for e in self.by_resource(key))

    def utilization(self, key) -> float:
        """Busy fraction of resource ``key`` over the full makespan."""
        ms = self.makespan()
        return self.busy_time(key) / ms if ms > 0 else 0.0


class MemoryTimeline:
    """Per-device memory usage over time, built from deltas.

    Deltas are accumulated as ``(time, phase, delta_bytes)`` triples and
    materialized lazily into sorted step functions.  All computations are
    vectorized with numpy prefix sums so a timeline with hundreds of
    thousands of events stays cheap to query.
    """

    def __init__(self) -> None:
        self._deltas: dict[object, list[tuple[float, int, float]]] = {}
        self._cache: dict[object, tuple[np.ndarray, np.ndarray]] = {}

    def record(self, device, time: float, delta: float, phase: int = PHASE_START) -> None:
        """Record a memory delta (bytes) on ``device`` at ``time``."""
        self._deltas.setdefault(device, []).append((time, phase, delta))
        self._cache.pop(device, None)

    def devices(self) -> list:
        return sorted(self._deltas, key=str)

    def _materialize(self, device) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, usage) arrays: usage[i] holds from times[i] on."""
        cached = self._cache.get(device)
        if cached is not None:
            return cached
        rows = sorted(self._deltas.get(device, ()))
        if not rows:
            out = (np.zeros(1), np.zeros(1))
            self._cache[device] = out
            return out
        times = np.array([r[0] for r in rows], dtype=float)
        usage = np.cumsum(np.array([r[2] for r in rows], dtype=float))
        self._cache[device] = (times, usage)
        return times, usage

    def peak(self, device) -> float:
        """Maximum live bytes ever observed on ``device``."""
        _, usage = self._materialize(device)
        return float(usage.max(initial=0.0))

    def peak_all(self) -> dict:
        """Peak live bytes for every device."""
        return {d: self.peak(d) for d in self.devices()}

    def usage_at(self, device, time: float) -> float:
        """Live bytes on ``device`` at ``time`` (right-continuous)."""
        times, usage = self._materialize(device)
        idx = bisect.bisect_right(times.tolist(), time) - 1
        return float(usage[idx]) if idx >= 0 else 0.0

    def curve(self, device, num_points: int = 200, until: float | None = None):
        """Sample the usage step function at ``num_points`` uniform times.

        Returns ``(sample_times, sampled_usage)`` numpy arrays — the data
        behind the paper's Fig. 3(c) memory-consumption plot.
        """
        times, usage = self._materialize(device)
        horizon = until if until is not None else (times[-1] if len(times) else 1.0)
        horizon = max(horizon, 1e-12)
        sample_t = np.linspace(0.0, horizon, num_points)
        idx = np.searchsorted(times, sample_t, side="right") - 1
        sampled = np.where(idx >= 0, usage[np.clip(idx, 0, len(usage) - 1)], 0.0)
        return sample_t, sampled

    def final(self, device) -> float:
        """Live bytes after the last event — should equal persistent state."""
        _, usage = self._materialize(device)
        return float(usage[-1]) if len(usage) else 0.0

"""Numerical training engine: numpy autograd + DAPPLE-scheduled trainer.

The paper argues (§VI-A) that all of DAPPLE's pipeline-latency optimizations
"give equivalent gradients for training when keeping global batch size
fixed and thus convergence is safely preserved".  This package makes that
claim executable: a small reverse-mode autograd engine over numpy
(:mod:`repro.training.autograd`), standard layers and optimizers, and a
pipeline trainer (:mod:`repro.training.pipeline_trainer`) that runs
micro-batched, stage-partitioned, replica-sliced training in DAPPLE's
early-backward order and produces gradients numerically equal to
single-device full-batch training.
"""

from repro.training.autograd import Tensor, no_grad
from repro.training.layers import (
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
    mse_loss,
    softmax_cross_entropy,
)
from repro.training.optim import SGD, Adam, RMSProp, clip_grad_norm
from repro.training.data_parallel_trainer import DataParallelTrainer
from repro.training.pipeline_trainer import (
    PipelineTrainer,
    gradients_of,
    sequential_step_gradients,
)

__all__ = [
    "Tensor",
    "no_grad",
    "Linear",
    "Module",
    "ReLU",
    "Sequential",
    "Tanh",
    "mse_loss",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "RMSProp",
    "clip_grad_norm",
    "DataParallelTrainer",
    "PipelineTrainer",
    "gradients_of",
    "sequential_step_gradients",
]

"""Minimal reverse-mode autograd over numpy arrays.

Tape-based: every operation appends a node holding its inputs and a
backward closure; :meth:`Tensor.backward` walks the tape in reverse
topological order accumulating gradients.  Float64 by default so the
pipeline-vs-sequential gradient-equivalence tests can assert tight
tolerances.

This is intentionally a small engine — enough to express the MLP-style
stage partitions the equivalence experiments need — not a deep-learning
framework.
"""

from __future__ import annotations

import contextlib
from typing import Callable

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the context (inference/updates)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for ax, dim in enumerate(shape):
        if dim == 1 and grad.shape[ax] != 1:
            grad = grad.sum(axis=ax, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], tuple] | None = None

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    def _make(self, data, parents, backward) -> "Tensor":
        req = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=req)
        if req:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def backward(self, grad=None) -> None:
        """Accumulate gradients of a scalar (or given seed) into the graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a seed requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Reverse topological order via iterative DFS.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and node._backward is None:
                node.grad = g if node.grad is None else node.grad + g
            if node._backward is None:
                continue
            for parent, pg in zip(node._parents, node._backward(g)):
                if pg is None or not parent.requires_grad:
                    continue
                key = id(parent)
                grads[key] = pg if key not in grads else grads[key] + pg

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return _unbroadcast(g, self.shape), _unbroadcast(g, other.shape)

        return self._make(out_data, (self, other), backward)

    def __sub__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(g):
            return _unbroadcast(g, self.shape), _unbroadcast(-g, other.shape)

        return self._make(out_data, (self, other), backward)

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(g):
            return (
                _unbroadcast(g * other.data, self.shape),
                _unbroadcast(g * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product; supports batched (N-D) operands à la numpy."""
        out_data = self.data @ other.data

        def backward(g):
            ga = g @ np.swapaxes(other.data, -1, -2)
            gb = np.swapaxes(self.data, -1, -2) @ g
            return _unbroadcast(ga, self.shape), _unbroadcast(gb, other.shape)

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, *axes) -> "Tensor":
        """Permute axes; gradient applies the inverse permutation."""
        axes = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(g):
            return (g.transpose(inverse),)

        return self._make(self.data.transpose(axes), (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0) with mask-gated gradient."""
        mask = self.data > 0

        def backward(g):
            return (g * mask,)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data**2),)

        return self._make(out_data, (self,), backward)

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(g):
            return (
                _unbroadcast(g / other.data, self.shape),
                _unbroadcast(-g * self.data / (other.data**2), other.shape),
            )

        return self._make(out_data, (self, other), backward)

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return self._make(-self.data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        def backward(g):
            return (g / self.data,)

        return self._make(np.log(self.data), (self,), backward)

    def pow(self, exponent: float) -> "Tensor":
        """Elementwise power with a constant exponent."""
        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return self._make(self.data**exponent, (self,), backward)

    __pow__ = pow

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self.pow(0.5)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        """View with a new shape; gradient reshapes back."""
        old = self.shape

        def backward(g):
            return (g.reshape(old),)

        return self._make(self.data.reshape(*shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        """Fancy indexing; gradients scatter-add back (repeats accumulate)."""
        def backward(g):
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return (full,)

        return self._make(self.data[index], (self,), backward)

    def sum_axis(self, axis: int, keepdims: bool = True) -> "Tensor":
        """Sum along one axis."""
        def backward(g):
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean_axis(self, axis: int, keepdims: bool = True) -> "Tensor":
        """Mean along one axis."""
        n = self.data.shape[axis]

        def backward(g):
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g / n, self.shape).copy(),)

        return self._make(
            self.data.mean(axis=axis, keepdims=keepdims), (self,), backward
        )

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically-stable softmax along ``axis``."""
        z = self.data - self.data.max(axis=axis, keepdims=True)
        ez = np.exp(z)
        out_data = ez / ez.sum(axis=axis, keepdims=True)

        def backward(g):
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            return (out_data * (g - dot),)

        return self._make(out_data, (self,), backward)

    def sum(self) -> "Tensor":
        """Sum over all elements (scalar output)."""
        def backward(g):
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._make(self.data.sum(), (self,), backward)

    def mean(self) -> "Tensor":
        """Mean over all elements (scalar output)."""
        n = self.data.size

        def backward(g):
            return (np.broadcast_to(g / n, self.shape).copy(),)

        return self._make(self.data.mean(), (self,), backward)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, grad={'yes' if self.requires_grad else 'no'})"

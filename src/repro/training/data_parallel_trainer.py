"""Numerical data-parallel training with gradient accumulation.

The DP baseline of the paper's figures, executed numerically: ``W``
workers each hold a full model replica, process their shard of the global
batch in local micro-batches (gradient accumulation, §II), then AllReduce
the summed gradients and apply one synchronous update.  Like
:class:`~repro.training.pipeline_trainer.PipelineTrainer`, losses are
normalized by the global batch size so the result is numerically equal to
single-device full-batch training — letting tests assert that *both*
parallelization families (and therefore any hybrid of them) preserve
convergence.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.training.autograd import Tensor
from repro.training.layers import Sequential
from repro.training.optim import Optimizer
from repro.training.pipeline_trainer import LossFn


class DataParallelTrainer:
    """Synchronous DP over ``num_workers`` full model replicas."""

    def __init__(
        self,
        model: Sequential,
        num_workers: int,
        micro_batches_per_worker: int = 1,
    ):
        if num_workers < 1:
            raise ValueError(f"need >=1 worker, got {num_workers}")
        if micro_batches_per_worker < 1:
            raise ValueError(
                f"need >=1 micro-batch per worker, got {micro_batches_per_worker}"
            )
        self.model = model
        self.num_workers = num_workers
        self.micro_batches_per_worker = micro_batches_per_worker
        self.replicas = [copy.deepcopy(model) for _ in range(num_workers)]

    def step_gradients(
        self, x: np.ndarray, y: np.ndarray, loss_fn: LossFn
    ) -> tuple[float, list[np.ndarray]]:
        """One global batch: shard, accumulate locally, AllReduce (sum)."""
        n = len(x)
        shards_x = np.array_split(np.asarray(x, dtype=np.float64), self.num_workers)
        shards_y = np.array_split(np.asarray(y), self.num_workers)
        total_loss = 0.0
        for rep in self.replicas:
            rep.zero_grad()

        for rep, sx, sy in zip(self.replicas, shards_x, shards_y):
            if len(sx) == 0:
                continue
            steps = min(self.micro_batches_per_worker, len(sx))
            for mx, my in zip(np.array_split(sx, steps), np.array_split(sy, steps)):
                pred = rep(Tensor(mx))
                loss = loss_fn(pred, my, float(n))
                loss.backward()  # grads accumulate across micro-batches
                total_loss += float(loss.data)

        # AllReduce: sum gradients across workers.
        reduced = [p.grad.copy() for p in self.replicas[0].parameters()]
        for rep in self.replicas[1:]:
            for acc, p in zip(reduced, rep.parameters()):
                acc += p.grad
        return total_loss, reduced

    def train_step(
        self, x: np.ndarray, y: np.ndarray, loss_fn: LossFn, optimizer: Optimizer
    ) -> float:
        """AllReduce → apply → broadcast (the paper's Fig. 10 update)."""
        loss, grads = self.step_gradients(x, y, loss_fn)
        optimizer.step(grads)
        values = self.model.state()
        for rep in self.replicas:
            rep.load_state(values)
        return loss

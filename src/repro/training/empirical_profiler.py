"""Empirical profiler: measure a real numpy model into a planner graph.

The paper's workflow is *profile → plan → run* (Fig. 1): the profiler runs
each layer on a device and records compute time, activation size and
parameter size.  This module does exactly that for the numpy training
engine — it executes each module of a :class:`~repro.training.layers.Sequential`
on real hardware (this CPU), times forward and backward per layer, measures
the actual boundary tensors and parameter arrays, and emits a
:class:`~repro.models.graph.LayerGraph` that the DAPPLE planner consumes
like any zoo model.

Times are normalized to FLOPs through a calibration measurement, so the
resulting graph can be re-targeted at any :class:`~repro.cluster.GPUSpec`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.models.graph import LayerGraph, LayerSpec
from repro.training.autograd import Tensor
from repro.training.layers import Sequential


@dataclass(frozen=True)
class MeasuredLayer:
    """Raw wall-clock measurements for one module."""

    name: str
    fwd_seconds: float
    bwd_seconds: float
    params: int
    activation_bytes: float
    stored_bytes: float


def _calibrate_flops(seconds: float = 0.05) -> float:
    """Measure this host's sustained GEMM FLOP/s (float64 numpy)."""
    n = 256
    a = np.random.default_rng(0).standard_normal((n, n))
    b = np.random.default_rng(1).standard_normal((n, n))
    # Warm up BLAS threads.
    a @ b
    reps = 0
    start = time.perf_counter()
    while time.perf_counter() - start < seconds:
        a @ b
        reps += 1
    elapsed = time.perf_counter() - start
    return reps * 2.0 * n**3 / elapsed


def measure_model(
    model: Sequential,
    sample_input: np.ndarray,
    repeats: int = 3,
) -> list[MeasuredLayer]:
    """Time each module's forward and backward on ``sample_input``.

    The backward measurement seeds each layer output with a ones-gradient
    and times only that layer's backward closure by re-running the layer in
    isolation on a detached input.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >=1, got {repeats}")
    measured: list[MeasuredLayer] = []
    x = np.asarray(sample_input, dtype=np.float64)
    batch = max(1, len(x))
    for idx, module in enumerate(model.modules):
        leaf = Tensor(x, requires_grad=True)

        fwd_times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = module(leaf)
            fwd_times.append(time.perf_counter() - t0)

        bwd_times = []
        for _ in range(repeats):
            leaf2 = Tensor(x, requires_grad=True)
            out2 = module(leaf2)
            seed = np.ones_like(out2.data)
            t0 = time.perf_counter()
            out2.backward(seed)
            bwd_times.append(time.perf_counter() - t0)

        params = sum(p.data.size for p in getattr(module, "parameters", list)())
        measured.append(
            MeasuredLayer(
                name=f"{idx}:{type(module).__name__}",
                fwd_seconds=min(fwd_times) / batch,
                bwd_seconds=min(bwd_times) / batch,
                params=params,
                activation_bytes=out.data.nbytes / batch,
                stored_bytes=(x.nbytes + out.data.nbytes) / batch,
            )
        )
        x = out.data
    return measured


def profile_sequential(
    model: Sequential,
    sample_input: np.ndarray,
    name: str = "measured-model",
    profile_batch: int | None = None,
    optimizer: str = "adam",
    host_flops: float | None = None,
) -> LayerGraph:
    """Build a planner :class:`LayerGraph` from real measurements.

    Wall-clock seconds are converted to *equivalent FLOPs* via the host's
    measured GEMM throughput, so the planner's device model (e.g. a V100
    spec) scales them consistently with the zoo's analytical graphs.
    """
    flops_per_second = host_flops if host_flops is not None else _calibrate_flops()
    rows = measure_model(model, sample_input)
    layers = []
    for row in rows:
        fwd_flops = max(row.fwd_seconds * flops_per_second, 1.0)
        bwd_ratio = max(row.bwd_seconds / max(row.fwd_seconds, 1e-12), 0.1)
        layers.append(
            LayerSpec(
                name=row.name,
                flops_fwd=fwd_flops,
                params=row.params,
                activation_out_bytes=row.activation_bytes,
                stored_bytes=row.stored_bytes,
                bwd_flops_ratio=bwd_ratio,
            )
        )
    return LayerGraph(
        name=name,
        layers=layers,
        profile_batch=profile_batch or max(1, len(sample_input)),
        optimizer=optimizer,
    )

"""Layers and losses for the numerical training engine."""

from __future__ import annotations

import numpy as np

from repro.training.autograd import Tensor


class Module:
    """Base class: a callable with named parameters."""

    def parameters(self) -> list[Tensor]:
        out: list[Tensor] = []
        for v in vars(self).values():
            if isinstance(v, Tensor) and v.requires_grad:
                out.append(v)
            elif isinstance(v, Module):
                out.extend(v.parameters())
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        out.extend(item.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def state(self) -> list[np.ndarray]:
        """Copies of current parameter values (for replication/snapshots)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(params) != len(state):
            raise ValueError(f"state has {len(state)} arrays, module has {len(params)}")
        for p, s in zip(params, state):
            p.data[...] = s


class Linear(Module):
    """Dense layer ``y = x W + b`` with Xavier-uniform init."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        bound = float(np.sqrt(6.0 / (in_dim + out_dim)))
        self.weight = Tensor(rng.uniform(-bound, bound, (in_dim, out_dim)), requires_grad=True)
        self.bias = Tensor(np.zeros(out_dim), requires_grad=True)

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLU(Module):
    """Rectified linear unit."""

    def __call__(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __call__(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic-sigmoid activation."""

    def __call__(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mu = x.mean_axis(-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean_axis(-1, keepdims=True)
        inv = (var + Tensor(self.eps)).pow(-0.5)
        return centered * inv * self.gamma + self.beta


class Embedding(Module):
    """Token-embedding lookup (integer indices → rows of a table)."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.table = Tensor(rng.standard_normal((vocab, dim)) * 0.02, requires_grad=True)

    def __call__(self, indices) -> Tensor:
        idx = np.asarray(indices.data if isinstance(indices, Tensor) else indices).astype(int)
        return self.table[idx]


class Dropout(Module):
    """Inverted dropout driven by an explicit per-step seed.

    Synchronous data/pipeline parallel training requires every replica to
    draw the *same* mask (real frameworks broadcast RNG seeds); callers set
    ``seed`` once per step.  With ``training=False`` (default) the layer is
    the identity, so the gradient-equivalence guarantees are unaffected
    unless a caller opts in.
    """

    def __init__(self, p: float = 0.1):
        if not (0.0 <= p < 1.0):
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.training = False
        self.seed = 0

    def __call__(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        rng = np.random.default_rng(self.seed)
        mask = (rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    """A layer pipeline — the structure DAPPLE partitions into stages."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def __call__(self, x: Tensor) -> Tensor:
        for m in self.modules:
            x = m(x)
        return x

    def __len__(self) -> int:
        return len(self.modules)

    def slice(self, lo: int, hi: int) -> "Sequential":
        """Sub-pipeline of modules [lo, hi) — one DAPPLE stage."""
        if not (0 <= lo < hi <= len(self.modules)):
            raise IndexError(f"invalid module range [{lo}, {hi})")
        return Sequential(*self.modules[lo:hi])


def mse_loss(pred: Tensor, target: Tensor, normalizer: float | None = None) -> Tensor:
    """Sum of squared errors divided by ``normalizer`` (default: size).

    Passing the *global* batch size as ``normalizer`` makes micro-batch
    losses sum exactly to the full-batch loss — the convention DAPPLE's
    gradient accumulation relies on.
    """
    diff = pred - target
    sq = diff * diff
    total = sq.sum()
    n = normalizer if normalizer is not None else float(pred.data.size)
    return total * Tensor(1.0 / n)


def softmax_cross_entropy(
    logits: Tensor, labels: np.ndarray, normalizer: float | None = None
) -> Tensor:
    """Cross-entropy with integer labels, normalized by ``normalizer``.

    Implemented with a custom backward (softmax − one-hot) for stability.
    """
    labels = np.asarray(labels)
    z = logits.data - logits.data.max(axis=1, keepdims=True)
    ez = np.exp(z)
    probs = ez / ez.sum(axis=1, keepdims=True)
    n = normalizer if normalizer is not None else float(len(labels))
    nll = -np.log(probs[np.arange(len(labels)), labels] + 1e-300).sum() / n

    out = Tensor(nll)
    if logits.requires_grad:
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(len(labels)), labels] = 1.0

        def backward(g):
            return (g * (probs - one_hot) / n,)

        out.requires_grad = True
        out._parents = (logits,)
        out._backward = backward
    return out

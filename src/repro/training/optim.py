"""Optimizers for the numerical training engine (the paper's three: §VI-A).

All optimizers consume explicit ``(param, grad)`` updates so the pipeline
trainer can apply *accumulated* gradients exactly once per global batch —
the synchronous weights-update step of the paper's Fig. 10.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.training.autograd import Tensor


def clip_grad_norm(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm.  Deterministic and replica-independent when
    applied to the AllReduced gradients, so it preserves the pipeline/DP
    gradient-equivalence guarantees.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base: holds parameters and per-parameter state slots.

    ``weight_decay`` applies decoupled L2 decay (AdamW-style: decay added
    to the update, not the gradient) uniformly across subclasses.
    """

    def __init__(self, params: Sequence[Tensor], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be >=0, got {weight_decay}")
        self.params = list(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, grads: Sequence[np.ndarray] | None = None) -> None:
        """Apply one update from ``grads`` (default: each param's ``.grad``)."""
        if grads is None:
            grads = [p.grad for p in self.params]
        if len(grads) != len(self.params):
            raise ValueError(f"{len(grads)} grads for {len(self.params)} params")
        for i, (p, g) in enumerate(zip(self.params, grads)):
            if g is None:
                raise ValueError(f"missing gradient for parameter {i}")
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            self._update(i, p, np.asarray(g))

    def _update(self, idx: int, p: Tensor, g: np.ndarray) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """SGD with classical momentum (VGG/ResNet in the paper)."""

    def __init__(self, params, lr: float = 0.1, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _update(self, idx, p, g):
        v = self._velocity[idx]
        v *= self.momentum
        v += g
        p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (GNMT/BERT/XLNet in the paper)."""

    def __init__(self, params, lr: float = 1e-4, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self, grads=None):
        self._t += 1
        super().step(grads)

    def _update(self, idx, p, g):
        m = self._m[idx]
        v = self._v[idx]
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * g * g
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (AmoebaNet in the paper)."""

    def __init__(self, params, lr: float = 1e-3, decay: float = 0.9,
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.decay = decay
        self.eps = eps
        self._acc = [np.zeros_like(p.data) for p in self.params]

    def _update(self, idx, p, g):
        acc = self._acc[idx]
        acc *= self.decay
        acc += (1 - self.decay) * g * g
        p.data -= self.lr * g / (np.sqrt(acc) + self.eps)

"""DAPPLE-scheduled pipelined training with exact gradient equivalence.

Implements the paper's execution semantics numerically, in one process:

* the global batch is split into ``M`` micro-batches (paper §II-A);
* the model is partitioned into contiguous stages; each stage may be
  *replicated*, in which case every micro-batch is split into even slices
  across the replicas (paper Fig. 8a) — each replica holds its own
  parameter copy;
* tasks run in the early-backward (1F1B) order produced by
  :func:`repro.core.scheduler.dapple_schedule`, respecting the same
  data dependencies the runtime simulator enforces;
* per-replica gradients accumulate over micro-batches, are AllReduced
  (summed) across replicas, and applied once per global batch
  (paper Fig. 10).

Because micro-batch losses are normalized by the *global* batch size, the
accumulated+reduced gradients are numerically equal to single-device
full-batch gradients — the paper's convergence-preservation claim, which
:mod:`tests.training.test_equivalence` asserts to float64 precision.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.scheduler import StageSchedule, dapple_schedule, validate_schedule
from repro.training.autograd import Tensor
from repro.training.layers import Module, Sequential
from repro.training.optim import Optimizer

#: loss_fn(predictions, target_slice, normalizer) -> scalar Tensor.
LossFn = Callable[[Tensor, np.ndarray, float], Tensor]


def gradients_of(model: Module) -> list[np.ndarray]:
    """Copies of the model's current parameter gradients."""
    out = []
    for p in model.parameters():
        if p.grad is None:
            raise ValueError("parameter has no gradient; run backward first")
        out.append(p.grad.copy())
    return out


def sequential_step_gradients(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: LossFn,
) -> tuple[float, list[np.ndarray]]:
    """Reference: full-batch forward/backward on a single device."""
    model.zero_grad()
    pred = model(Tensor(x))
    loss = loss_fn(pred, y, float(len(x)))
    loss.backward()
    return float(loss.data), gradients_of(model)


@dataclass
class _MicroBatchState:
    """Per-(stage, micro-batch) bookkeeping during one pipeline step."""

    leaves: list[Tensor]  # per-replica input leaf tensors
    outputs: list[Tensor]  # per-replica outputs (or losses on last stage)
    done_forward: bool = False
    done_backward: bool = False


class PipelineTrainer:
    """Runs DAPPLE-scheduled training steps over a partitioned model."""

    def __init__(
        self,
        model: Sequential,
        split_points: Sequence[int],
        num_micro_batches: int,
        replicas: Sequence[int] | None = None,
        warmup_policy: str = "PA",
    ):
        self.model = model
        bounds = [0, *split_points, len(model)]
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"split points must be strictly increasing, got {split_points}")
        self.bounds = bounds
        self.num_stages = len(bounds) - 1
        self.num_micro_batches = num_micro_batches
        self.replicas = list(replicas) if replicas is not None else [1] * self.num_stages
        if len(self.replicas) != self.num_stages:
            raise ValueError(
                f"{len(self.replicas)} replica counts for {self.num_stages} stages"
            )
        if any(r < 1 for r in self.replicas):
            raise ValueError("replica counts must be >= 1")

        # Deep-copied per-replica stage modules (distinct parameter Tensors,
        # identical values) — real replicas, so the AllReduce below is a
        # genuine cross-worker reduction, not an artifact of sharing.
        self.stage_replicas: list[list[Sequential]] = []
        for s in range(self.num_stages):
            stage = model.slice(bounds[s], bounds[s + 1])
            self.stage_replicas.append(
                [copy.deepcopy(stage) for _ in range(self.replicas[s])]
            )

        self.schedule: StageSchedule = dapple_schedule(
            self.num_stages, num_micro_batches, policy=warmup_policy
        )
        validate_schedule(self.schedule, num_micro_batches)

    # ------------------------------------------------------------------ #
    # One pipelined step
    # ------------------------------------------------------------------ #
    def step_gradients(
        self, x: np.ndarray, y: np.ndarray, loss_fn: LossFn
    ) -> tuple[float, list[np.ndarray]]:
        """Run one global batch; return (loss, reduced gradients).

        Gradients are returned in ``model.parameters()`` order and equal
        the full-batch gradients of ``loss_fn`` on ``(x, y)``.
        """
        m = self.num_micro_batches
        if len(x) % m != 0:
            raise ValueError(f"batch of {len(x)} not divisible into {m} micro-batches")
        xs = np.split(np.asarray(x, dtype=np.float64), m)
        ys = np.split(np.asarray(y), m)
        gbs = float(len(x))

        for reps in self.stage_replicas:
            for rep in reps:
                rep.zero_grad()

        state: dict[tuple[int, int], _MicroBatchState] = {}
        stage_inputs: dict[tuple[int, int], np.ndarray] = {
            (0, mb): xs[mb] for mb in range(m)
        }
        upstream_grads: dict[tuple[int, int], np.ndarray] = {}
        total_loss = 0.0

        cursors = [0] * self.num_stages
        progressed = True
        while progressed:
            progressed = False
            for s in range(self.num_stages):
                while cursors[s] < len(self.schedule[s]):
                    task = self.schedule[s][cursors[s]]
                    if task.kind == "F":
                        if (s, task.micro_batch) not in stage_inputs:
                            break  # upstream forward not done yet
                        self._forward(s, task.micro_batch, stage_inputs, state, ys, loss_fn)
                        if s == self.num_stages - 1:
                            total_loss += sum(
                                float(o.data) for o in state[(s, task.micro_batch)].outputs
                            )
                    else:
                        if s < self.num_stages - 1 and (s, task.micro_batch) not in upstream_grads:
                            break  # downstream backward not done yet
                        self._backward(s, task.micro_batch, state, upstream_grads)
                    cursors[s] += 1
                    progressed = True

        if any(c < len(self.schedule[s]) for s, c in enumerate(cursors)):
            raise RuntimeError("pipeline schedule deadlocked (dependency bug)")

        grads = self._allreduce()
        return total_loss, grads

    def _forward(self, s, mb, stage_inputs, state, ys, loss_fn) -> None:
        full = stage_inputs[(s, mb)]
        slices = np.array_split(full, self.replicas[s])
        leaves = [Tensor(sl, requires_grad=True) for sl in slices]
        outs = [rep(leaf) for rep, leaf in zip(self.stage_replicas[s], leaves)]
        if s == self.num_stages - 1:
            y_slices = np.array_split(ys[mb], self.replicas[s])
            # Normalize every slice loss by the GLOBAL batch size so that
            # micro-batch losses sum exactly to the full-batch loss.
            global_batch = float(len(ys[0])) * self.num_micro_batches
            outs = [
                loss_fn(out, ysl, global_batch) for out, ysl in zip(outs, y_slices)
            ]
        else:
            stage_inputs[(s + 1, mb)] = np.concatenate([o.data for o in outs])
        state[(s, mb)] = _MicroBatchState(leaves=leaves, outputs=outs)
        state[(s, mb)].done_forward = True

    def _backward(self, s, mb, state, upstream_grads) -> None:
        st = state[(s, mb)]
        if s == self.num_stages - 1:
            for out in st.outputs:
                out.backward()
        else:
            grad_full = upstream_grads[(s, mb)]
            # Output slice sizes mirror this stage's replica input slices.
            out_sizes = [len(o.data) for o in st.outputs]
            grad_slices = np.split(grad_full, np.cumsum(out_sizes)[:-1])
            for out, g in zip(st.outputs, grad_slices):
                out.backward(g)
        if s > 0:
            upstream_grads[(s - 1, mb)] = np.concatenate(
                [leaf.grad for leaf in st.leaves]
            )
        st.done_backward = True
        # Release activations — mirrors DAPPLE's early memory reclamation.
        st.leaves = []
        st.outputs = []

    def _allreduce(self) -> list[np.ndarray]:
        """Sum replica gradients per stage; return in model-parameter order."""
        grads: list[np.ndarray] = []
        for s in range(self.num_stages):
            reps = self.stage_replicas[s]
            per_param = [p.grad for p in reps[0].parameters()]
            for rep in reps[1:]:
                for acc, p in zip(per_param, rep.parameters()):
                    acc += p.grad
            grads.extend(per_param)
        return [g.copy() for g in grads]

    # ------------------------------------------------------------------ #
    # Full training step (AllReduce -> apply -> broadcast, paper Fig. 10)
    # ------------------------------------------------------------------ #
    def train_step(
        self, x: np.ndarray, y: np.ndarray, loss_fn: LossFn, optimizer: Optimizer
    ) -> float:
        """One synchronous global-batch update; returns the loss."""
        loss, grads = self.step_gradients(x, y, loss_fn)
        optimizer.step(grads)
        self._broadcast()
        return loss

    def _broadcast(self) -> None:
        """Re-sync every stage replica from the master model's weights."""
        for s in range(self.num_stages):
            master = self.model.slice(self.bounds[s], self.bounds[s + 1])
            values = master.state()
            for rep in self.stage_replicas[s]:
                rep.load_state(values)

"""Transformer building blocks for the numerical training engine.

Built entirely from the autograd primitives (matmul, softmax, layer norm),
these blocks let the gradient-equivalence tests run on the paper's main
workload family — transformer language models — not just MLPs: a
:class:`TransformerBlock` is a pipeline-stage-sized unit exactly like the
zoo's analytical ``transformer_encoder_layer``.

Shapes are 2-D ``(tokens, hidden)``: a batch of sequences is flattened to
rows, and attention runs over fixed-length windows of ``seq_len`` rows.
Flattening keeps the :class:`~repro.training.pipeline_trainer.PipelineTrainer`
batch-slicing semantics unchanged (micro-batches split on the token axis at
sequence boundaries).
"""

from __future__ import annotations

import numpy as np

from repro.training.autograd import Tensor
from repro.training.layers import LayerNorm, Linear, Module, Sequential


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over fixed-length sequence windows.

    The input ``(batch·seq_len, hidden)`` is viewed as ``batch`` windows of
    ``seq_len`` tokens; attention never crosses window boundaries, so
    slicing a batch at sequence granularity preserves exact gradients.
    """

    def __init__(self, hidden: int, heads: int, seq_len: int,
                 rng: np.random.Generator | None = None):
        if hidden % heads != 0:
            raise ValueError(f"hidden {hidden} not divisible by {heads} heads")
        rng = rng or np.random.default_rng(0)
        self.hidden = hidden
        self.heads = heads
        self.seq_len = seq_len
        self.head_dim = hidden // heads
        self.wq = Linear(hidden, hidden, rng)
        self.wk = Linear(hidden, hidden, rng)
        self.wv = Linear(hidden, hidden, rng)
        self.wo = Linear(hidden, hidden, rng)

    def __call__(self, x: Tensor) -> Tensor:
        tokens = x.shape[0]
        if tokens % self.seq_len != 0:
            raise ValueError(
                f"{tokens} tokens do not tile into windows of {self.seq_len}"
            )
        batch = tokens // self.seq_len
        q = self.wq(x).reshape(batch, self.seq_len, self.heads, self.head_dim)
        k = self.wk(x).reshape(batch, self.seq_len, self.heads, self.head_dim)
        v = self.wv(x).reshape(batch, self.seq_len, self.heads, self.head_dim)

        # (batch, heads, seq, head_dim) via reshape-free matmul per axis
        # ordering: fold batch*heads into the leading axis.
        def to_bh(t: Tensor) -> Tensor:
            # (b, s, h, d) -> (b, h, s, d) is a transpose; emulate with
            # reshape+gather-free algebra: use numpy-style transpose op.
            return t.transpose(0, 2, 1, 3)

        q, k, v = to_bh(q), to_bh(k), to_bh(v)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * Tensor(scale)
        probs = scores.softmax(axis=-1)
        ctx = probs.matmul(v)  # (b, h, s, d)
        out = ctx.transpose(0, 2, 1, 3).reshape(tokens, self.hidden)
        return self.wo(out)


class FeedForward(Module):
    """Position-wise feed-forward: Linear → GELU-ish tanh → Linear."""

    def __init__(self, hidden: int, ff_mult: int = 4,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.up = Linear(hidden, ff_mult * hidden, rng)
        self.down = Linear(ff_mult * hidden, hidden, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.down(self.up(x).tanh())


class TransformerBlock(Module):
    """Pre-LN transformer encoder block — one pipeline-stage unit."""

    def __init__(self, hidden: int, heads: int, seq_len: int, ff_mult: int = 4,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.ln1 = LayerNorm(hidden)
        self.attn = MultiHeadSelfAttention(hidden, heads, seq_len, rng)
        self.ln2 = LayerNorm(hidden)
        self.ff = FeedForward(hidden, ff_mult, rng)

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        return x + self.ff(self.ln2(x))


def small_transformer(
    num_blocks: int = 4,
    hidden: int = 32,
    heads: int = 4,
    seq_len: int = 8,
    out_dim: int | None = None,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """A runnable transformer stack for tests and demos."""
    rng = rng or np.random.default_rng(0)
    blocks: list[Module] = [
        TransformerBlock(hidden, heads, seq_len, rng=rng) for _ in range(num_blocks)
    ]
    if out_dim is not None:
        blocks.append(Linear(hidden, out_dim, rng))
    return Sequential(*blocks)

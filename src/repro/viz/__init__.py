"""Text rendering of schedules and memory curves (paper Figs. 3 & 4)."""

from repro.viz.gantt import render_gantt
from repro.viz.memcurve import render_memory_curve

__all__ = ["render_gantt", "render_memory_curve"]

"""ASCII Gantt charts of pipeline execution traces.

Renders one row per GPU with forward cells as the micro-batch digit,
backward cells as the digit followed by ``'``, communication as ``~`` and
idle (bubble) time as ``.`` — a terminal rendition of the paper's Fig. 3/4
schedule diagrams.
"""

from __future__ import annotations

from repro.sim.trace import Trace


def _cell(tags: dict) -> str:
    kind = tags.get("kind", "?")
    mb = tags.get("mb", "")
    mb_char = str(mb % 10) if isinstance(mb, int) else "?"
    if kind == "F":
        return mb_char
    if kind == "B":
        return mb_char.upper() if mb_char.isalpha() else mb_char + "'"
    if kind in ("send", "sendback"):
        return "~"
    if kind == "AR":
        return "#"
    return "?"


def render_gantt(trace: Trace, width: int = 100, resources: list | None = None) -> str:
    """Render ``trace`` as a fixed-width ASCII Gantt chart.

    Parameters
    ----------
    trace:
        An executed simulation trace.
    width:
        Number of character columns representing the full makespan.
    resources:
        Resource keys to show (default: every ``gpu:*`` key, sorted by id).
    """
    makespan = trace.makespan()
    if makespan <= 0:
        return "(empty trace)"
    if resources is None:
        keys = {r for e in trace.events for r in e.resources if str(r).startswith("gpu:")}
        resources = sorted(keys, key=lambda k: int(str(k).split(":")[1]))

    lines = []
    for key in resources:
        row = ["."] * width
        for e in trace.by_resource(key):
            lo = int(e.start / makespan * width)
            hi = max(lo + 1, int(e.end / makespan * width))
            cell = _cell(e.tags)
            for i in range(lo, min(hi, width)):
                # Two-char backward cells ("3'") alternate their characters.
                row[i] = cell[(i - lo) % len(cell)]
        lines.append(f"{str(key):>8s} |{''.join(row)}|")
    header = f"{'':>8s}  t=0{' ' * (width - 12)}t={makespan * 1e3:.1f}ms"
    return "\n".join([header, *lines])

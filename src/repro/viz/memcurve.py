"""ASCII memory-over-time curves (paper Fig. 3c)."""

from __future__ import annotations

import numpy as np

from repro.sim.trace import MemoryTimeline


def render_memory_curve(
    memory: MemoryTimeline,
    device,
    width: int = 80,
    height: int = 12,
    until: float | None = None,
    label: str | None = None,
) -> str:
    """Render a device's memory usage step function as an ASCII sparkplot."""
    t, u = memory.curve(device, num_points=width, until=until)
    peak = float(u.max(initial=0.0))
    if peak <= 0:
        return f"{label or device}: (no memory activity)"
    levels = np.clip((u / peak * height).astype(int), 0, height)
    rows = []
    for h in range(height, 0, -1):
        row = "".join("█" if lv >= h else " " for lv in levels)
        rows.append(f"{'':>4s}|{row}|")
    gib = peak / 2**30
    head = f"{label or device}: peak {gib:.2f} GiB over {t[-1] * 1e3:.1f} ms"
    return "\n".join([head, *rows])

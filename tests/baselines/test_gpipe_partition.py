"""Unit tests for the GPipe block partitioner."""

import pytest

from repro.baselines import balanced_partition, gpipe_plan
from repro.cluster import config_b
from repro.core import profile_model
from repro.models import uniform_model, vgg19


class TestBalancedPartition:
    def test_uniform_costs_even_split(self):
        bounds = balanced_partition([1.0] * 8, 4)
        assert bounds == [0, 2, 4, 6, 8]

    def test_single_block(self):
        assert balanced_partition([1.0, 2.0, 3.0], 1) == [0, 3]

    def test_blocks_equal_items(self):
        assert balanced_partition([5.0, 1.0], 2) == [0, 1, 2]

    def test_minimizes_max_block(self):
        costs = [9.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        bounds = balanced_partition(costs, 2)
        # Optimal: [9] | [1,1,1,1,1] with max 9.
        assert bounds == [0, 1, 6]

    def test_optimality_vs_bruteforce(self):
        import itertools

        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        k = 3
        best = min(
            max(sum(costs[a:b]) for a, b in zip((0,) + cuts, cuts + (len(costs),)))
            for cuts in itertools.combinations(range(1, len(costs)), k - 1)
        )
        bounds = balanced_partition(costs, k)
        got = max(sum(costs[bounds[i] : bounds[i + 1]]) for i in range(k))
        assert got == pytest.approx(best)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            balanced_partition([1.0], 2)
        with pytest.raises(ValueError):
            balanced_partition([1.0, 2.0], 0)


class TestGPipePlan:
    def test_default_one_stage_per_device(self):
        m = uniform_model("u", 8, 1e9, 1000, 1e6, profile_batch=2)
        c = config_b(4)
        plan = gpipe_plan(profile_model(m), c, 16)
        assert plan.num_stages == 4
        assert all(s.replicas == 1 for s in plan.stages)

    def test_explicit_stage_count(self):
        m = uniform_model("u", 8, 1e9, 1000, 1e6, profile_batch=2)
        c = config_b(4)
        plan = gpipe_plan(profile_model(m), c, 16, num_stages=2)
        assert plan.num_stages == 2

    def test_too_many_stages_rejected(self):
        m = uniform_model("u", 8, 1e9, 1000, 1e6, profile_batch=2)
        c = config_b(2)
        with pytest.raises(ValueError):
            gpipe_plan(profile_model(m), c, 16, num_stages=4)

    def test_vgg_partition_balances_compute(self):
        prof = profile_model(vgg19())
        c = config_b(4)
        plan = gpipe_plan(prof, c, 64)
        times = [
            prof.fwd_time(s.layer_lo, s.layer_hi, 1.0) for s in plan.stages
        ]
        # The heaviest stage is within 2x of the mean (convs dominate and
        # are chunky, so perfect balance is impossible).
        assert max(times) < 2.0 * (sum(times) / len(times))

    def test_micro_batch_count(self):
        m = uniform_model("u", 8, 1e9, 1000, 1e6, profile_batch=2)
        c = config_b(2)
        plan = gpipe_plan(profile_model(m), c, 16)
        assert plan.num_micro_batches == 8
